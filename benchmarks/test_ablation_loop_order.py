"""Loop-order ablation: Goto (N-outer) vs Eigen (M-outer) blocking.

The paper notes Eigen "starts to block from the M dimension" because of
its row-major storage.  With an N-outer nest, packed B is amortized over
all M blocks; with an M-outer nest it is re-packed per M block.  For SMM
(one block each way) the orders coincide; at scale the N-outer order's B
amortization wins — quantified here on the same kernel catalog.
"""

import numpy as np

from repro.blas import BlockingParams, GotoDriverConfig, GotoGemmDriver
from repro.kernels import openblas_catalog
from repro.util.tables import format_table


def _driver(machine, outer):
    return GotoGemmDriver(
        machine,
        openblas_catalog(),
        GotoDriverConfig(
            name=f"order-{outer}",
            pack_a_contiguous=True,
            pack_b_contiguous=False,
            outer_loop=outer,
        ),
        blocking=BlockingParams(mc=64, kc=64, nc=128),
    )


def run_orders(machine):
    n_outer = _driver(machine, "n")
    m_outer = _driver(machine, "m")
    rows = []
    for size in (32, 64, 128, 256, 512):
        t_n = n_outer.cost_gemm(size, size, size)
        t_m = m_outer.cost_gemm(size, size, size)
        rows.append((
            size,
            round(t_n.pack_b_cycles),
            round(t_m.pack_b_cycles),
            round(t_n.total_cycles),
            round(t_m.total_cycles),
        ))
    return rows


def test_loop_order(benchmark, machine, emit):
    rows = benchmark(run_orders, machine)
    emit("ablation_loop_order", format_table(
        ["size", "packB (N-outer)", "packB (M-outer)",
         "total (N-outer)", "total (M-outer)"],
        rows, title="loop order: B-pack amortization",
    ))

    by_size = {r[0]: r for r in rows}
    # SMM regime: one block each way, identical cost
    assert by_size[32][1] == by_size[32][2]
    # at scale, the M-outer order re-packs B once per M block
    size = 512
    m_blocks = size // 64
    assert by_size[size][2] > (m_blocks - 1) * by_size[size][1]
    # which costs real total time
    assert by_size[size][4] > by_size[size][3]
