"""Cross-machine ablation: the same study on three ARMv8-class machines.

Phytium 2000+ (the paper's platform), a Graviton2-class cloud server and
an A64FX-class wide-SIMD part.  Which conclusions are about ARMv8 SMM in
general, and which are about Phytium's memory system?
"""

import numpy as np

from repro.blas import make_driver
from repro.machine import a64fx_like, graviton2_like, phytium2000plus
from repro.parallel import MultithreadedGemm
from repro.util.tables import format_table

MACHINES = {
    "phytium2000+": phytium2000plus,
    "graviton2-like": graviton2_like,
    "a64fx-like": a64fx_like,
}


def run_cross_machine():
    rows = []
    for name, factory in MACHINES.items():
        machine = factory()
        effs = {
            lib: make_driver(lib, machine).cost_gemm(48, 48, 48)
            .efficiency(machine, np.float32)
            for lib in ("openblas", "blis", "blasfeo", "eigen")
        }
        mt = MultithreadedGemm(machine, "blis",
                               threads=min(64, machine.n_cores))
        mt_eff = mt.cost(32, 2048, 2048)[0].efficiency(
            machine, np.float32, min(64, machine.n_cores)
        )
        rows.append((
            name,
            round(effs["blasfeo"], 3),
            round(effs["openblas"], 3),
            round(effs["eigen"], 3),
            round(mt_eff, 3),
        ))
    return rows


def test_cross_machine(benchmark, emit):
    rows = benchmark(run_cross_machine)
    emit("ablation_cross_machine", format_table(
        ["machine", "blasfeo 48^3", "openblas 48^3", "eigen 48^3",
         "blis MT small-M"],
        rows, title="the SMM study across three ARMv8-class machines",
    ))

    by_machine = {r[0]: r for r in rows}
    for name, row in by_machine.items():
        # universal conclusion: the packing-free format wins everywhere
        assert row[1] > row[2] and row[1] > row[3], name
    # 128-bit machines: OpenBLAS's 16-row tiles fit 48^3 reasonably and
    # beat Eigen; on the 512-bit part 48 rows are all edge cases for a
    # 64-row tile and the ordering flips — tile/shape matching matters
    # more as vectors widen (the paper's Sec. IV point, amplified)
    assert by_machine["phytium2000+"][2] > by_machine["phytium2000+"][3]
    assert by_machine["graviton2-like"][2] > by_machine["graviton2-like"][3]
    assert by_machine["a64fx-like"][2] < by_machine["a64fx-like"][1]
    # platform-specific conclusion: the MT small-M collapse is worst on
    # Phytium (weakest per-core DRAM share of the three)
    assert by_machine["phytium2000+"][4] <= by_machine["graviton2-like"][4]
