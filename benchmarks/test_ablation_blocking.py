"""Blocking-parameter ablation (the Goto Layers 1-3 knobs).

The paper inherits each library's blocking; this ablation asks how
sensitive single-thread SMM performance is to (mc, kc) around the
cache-derived defaults — and shows that for true SMM (everything fits in
cache) blocking barely matters, while at L2-scale sizes wrong kc hurts.
"""

import numpy as np

from repro.blas import BlockingParams, default_blocking, make_openblas
from repro.kernels import openblas_catalog
from repro.util.tables import format_table


def sweep_blocking(machine):
    rows = []
    for kc in (32, 64, 128, 256, 512):
        for mc in (32, 128, 512):
            drv = make_openblas(
                machine, blocking=BlockingParams(mc=mc, kc=kc, nc=4096)
            )
            small = drv.cost_gemm(40, 40, 40).efficiency(machine, np.float32)
            large = drv.cost_gemm(480, 480, 480).efficiency(
                machine, np.float32
            )
            rows.append((kc, mc, round(small, 3), round(large, 3)))
    return rows


def test_blocking_sensitivity(benchmark, machine, emit):
    rows = benchmark(sweep_blocking, machine)
    emit("ablation_blocking", format_table(
        ["kc", "mc", "eff@40^3", "eff@480^3"], rows,
        title="blocking-parameter sensitivity (OpenBLAS model)",
    ))

    small_effs = [r[2] for r in rows]
    large_effs = [r[3] for r in rows]
    # SMM: blocking choice barely matters (whole problem fits in cache)
    assert max(small_effs) - min(small_effs) < 0.12
    # large problems: the spread is real
    assert max(large_effs) - min(large_effs) > 0.02

    defaults = default_blocking(machine, openblas_catalog(), 4)
    drv = make_openblas(machine)
    default_large = drv.cost_gemm(480, 480, 480).efficiency(
        machine, np.float32
    )
    # the cache-derived default lands in the upper half of the swept range
    assert default_large >= max(large_effs) - 0.10
    assert default_large > min(large_effs)
