"""Benchmark fixtures: machine model and a results emitter."""

import pathlib

import pytest

from repro.machine import phytium2000plus

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def machine():
    """The Phytium 2000+ machine model."""
    return phytium2000plus()


@pytest.fixture(scope="session")
def emit():
    """Writer for rendered figure/table text artifacts."""
    OUT_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        path = OUT_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n[{name}] written to {path}\n{text}")

    return _emit
