"""Batch-parallelism ablation: across-cores vs within-GEMM threading.

For streams of genuinely small GEMMs, within-GEMM threading cannot feed
many cores (the paper's Fig. 10 story), and distributing whole
multiplications across cores — the LIBXSMM / batched-BLAS strategy — wins.
But the strategy *crosses over*: when a stream contains large GEMMs
(attention projection layers), per-GEMM threading scales and batch
distribution is limited by its largest job.  This benchmark measures both
regimes.
"""

import numpy as np

from repro.core import BatchedSmm, ReferenceSmmDriver
from repro.util import make_rng, random_matrix
from repro.util.tables import format_table
from repro.workloads import attention_head_layers, materialize


def _within_cycles(machine, shapes, cores):
    driver = ReferenceSmmDriver(machine, threads=cores) if cores > 1 \
        else ReferenceSmmDriver(machine)
    return sum(driver.cost_gemm(m, n, k)[0].total_cycles
               for (m, n, k) in shapes)


def run_comparison(machine):
    rng = make_rng()
    tiny_pairs = [
        (random_matrix(rng, 16, 16), random_matrix(rng, 16, 16))
        for _ in range(128)
    ]
    tiny_shapes = [(16, 16, 16)] * len(tiny_pairs)

    attn_layers = attention_head_layers(seq=64, model_dim=128, heads=8)
    attn_pairs = materialize(attn_layers, rng)
    attn_shapes = [l.shape for l in attn_layers]

    rows = []
    for name, pairs, shapes in (
        ("tiny-128x16^3", tiny_pairs, tiny_shapes),
        ("attention-64/128", attn_pairs, attn_shapes),
    ):
        for cores in (4, 16, 64):
            batch = BatchedSmm(machine)
            across = batch.run_across_cores(pairs, cores=cores).timing
            within = _within_cycles(machine, shapes, cores)
            rows.append((
                name, cores,
                round(across.total_cycles),
                round(within),
                round(within / across.total_cycles, 2),
            ))
    return rows


def test_batch_parallelism_crossover(benchmark, machine, emit):
    rows = benchmark(run_comparison, machine)
    emit("ablation_batch_parallelism", format_table(
        ["stream", "cores", "across cycles", "within cycles",
         "within/across"],
        rows, title="batch-across vs within-GEMM threading",
    ))

    def ratio(stream, cores):
        return next(r[4] for r in rows if r[0] == stream and r[1] == cores)

    # tiny stream: across-cores wins at every core count, increasingly
    assert ratio("tiny-128x16^3", 4) > 1.0
    assert ratio("tiny-128x16^3", 64) > 2.0
    # mixed attention stream: within-GEMM threading takes over at high
    # core counts (the big projection GEMMs scale; the batch cannot)
    assert ratio("attention-64/128", 64) < 1.0
    # ...which is the crossover: strategy choice depends on the stream
    assert ratio("tiny-128x16^3", 64) > ratio("attention-64/128", 64)
