"""FIG5: single-thread SMM performance of the four libraries (Fig. 5a-d).

Regenerates all four panels of the paper's Figure 5 and checks the shape
claims: BLASFEO on top (~96% best case), Eigen at the bottom (~58% best
case in the paper; capped near 50% by the no-contraction model here), and
small-K behaving unlike small-M/N.
"""

import numpy as np

from repro.analysis import fig5a, fig5b, fig5c, fig5d


def test_fig5a_square(benchmark, machine, emit):
    fig = benchmark(fig5a, machine)
    emit("fig5a", fig.render())
    blasfeo = fig.series_by_name("blasfeo").ys
    eigen = fig.series_by_name("eigen").ys
    assert max(blasfeo) > 0.90  # paper: up to 96% of peak
    assert max(eigen) < 0.60  # paper: Eigen reaches only 58%
    assert np.mean(blasfeo) > np.mean(fig.series_by_name("openblas").ys)


def test_fig5b_small_m(benchmark, machine, emit):
    fig = benchmark(fig5b, machine)
    emit("fig5b", fig.render())
    # BLASFEO dominates everywhere on the small-M sweep
    blasfeo = fig.series_by_name("blasfeo").ys
    for lib in ("openblas", "blis", "eigen"):
        ys = fig.series_by_name(lib).ys
        assert all(b > y for b, y in zip(blasfeo, ys)), lib


def test_fig5c_small_n(benchmark, machine, emit):
    fig = benchmark(fig5c, machine)
    emit("fig5c", fig.render())
    blasfeo = fig.series_by_name("blasfeo").ys
    openblas = fig.series_by_name("openblas").ys
    wins = sum(1 for b, o in zip(blasfeo, openblas) if b > o)
    assert wins >= len(blasfeo) - 1


def test_fig5d_small_k(benchmark, machine, emit):
    fig = benchmark(fig5d, machine)
    emit("fig5d", fig.render())
    # the packing-free advantage collapses when only K is small
    gap_at_smallest = (
        fig.series_by_name("blasfeo").ys[0]
        - fig.series_by_name("openblas").ys[0]
    )
    assert gap_at_smallest < 0.15
