"""EQ4/EQ5 ablation: the micro-kernel design space (paper Sec. III-C).

Sweeps (mr, nr) tiles, measuring scheduled steady-state efficiency, and
verifies the two analytic design rules the paper derives:

* the register constraint (Eq. 4) exactly separates generable from
  non-generable tiles;
* the latency constraint (enough accumulator chains for the FMA pipe)
  separates full-throughput from chain-bound tiles — CMR (Eq. 5) alone is
  not sufficient, which is why the paper pairs it with instruction-layout
  care.
"""

import numpy as np
import pytest

from repro.blas import shared_analyzer, shared_generator
from repro.kernels import (
    KernelSpec,
    compute_to_memory_ratio,
    evaluate_tile,
    registers_needed,
)
from repro.util.errors import KernelDesignError
from repro.util.tables import format_table


def sweep_design_space(machine):
    gen = shared_generator()
    analyzer = shared_analyzer(machine)
    peak = machine.core.flops_per_cycle(np.float32)
    rows = []
    for mr in (4, 8, 12, 16, 24):
        for nr in (1, 2, 4, 8, 12, 16):
            design = evaluate_tile(mr, nr, 4, machine.core)
            try:
                kernel = gen.generate(
                    KernelSpec(mr, nr, unroll=4, label="design")
                )
                eff = analyzer.analyze(kernel).flops_per_cycle / peak
            except KernelDesignError:
                eff = None
            rows.append((mr, nr, design.registers, round(design.cmr, 1),
                         design.chains, design.feasible,
                         None if eff is None else round(eff, 3)))
    return rows


def test_microkernel_design_space(benchmark, machine, emit):
    rows = benchmark(sweep_design_space, machine)
    emit("ablation_microkernel_design", format_table(
        ["mr", "nr", "regs", "CMR", "chains", "feasible(Eq4+lat)", "measured eff"],
        [[c if c is not None else "-" for c in row] for row in rows],
        title="micro-kernel design space",
    ))

    core = machine.core
    for mr, nr, regs, cmr, chains, feasible, eff in rows:
        generable = eff is not None
        # Eq. 4 exactly predicts generability (single-buffer staging)
        assert generable == (
            registers_needed(mr, nr, 4) <= core.vector_registers
        ), (mr, nr)
        if not generable:
            continue
        # the latency constraint predicts full throughput
        need = core.ports["fma"] * core.latencies["fma"]
        if chains >= need:
            assert eff > 0.95, (mr, nr)
        else:
            assert eff < 0.95, (mr, nr)
        # CMR sanity (Eq. 5)
        assert cmr == pytest.approx(
            round(compute_to_memory_ratio(mr, nr), 1)
        )
