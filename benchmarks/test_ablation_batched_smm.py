"""Batched-SMM ablation: the LIBXSMM-style use case end to end.

The paper motivates SMM with DNN/BCSR/ABFT streams; this benchmark runs
those exact workloads through the batched reference-SMM context vs the
OpenBLAS model, and measures the JIT code cache doing its job.
"""

import numpy as np

from repro.core import BatchedSmm
from repro.blas import make_openblas
from repro.util import make_rng, random_matrix
from repro.util.tables import format_table
from repro.workloads import (
    bcsr_spmm,
    encode,
    im2col_conv_layers,
    lstm_cell,
    materialize,
    mlp_layers,
    random_bcsr,
)


def run_streams(machine):
    rng = make_rng()
    rows = []
    models = {
        "mlp-b8": mlp_layers(batch=8),
        "lstm-b4": lstm_cell(batch=4, hidden=64),
        "cnn-28": im2col_conv_layers(image=28, channels=(1, 8, 16)),
    }
    for name, layers in models.items():
        pairs = materialize(layers, rng)
        batch = BatchedSmm(machine)
        res = batch.run(pairs)
        ob = make_openblas(machine)
        ob_cycles = sum(ob.cost_gemm(l.m, l.n, l.k).total_cycles
                        for l in layers)
        rows.append((
            name,
            round(res.timing.gflops(machine), 2),
            round(res.timing.total_cycles),
            round(ob_cycles),
            round(res.jit_hit_rate, 2),
        ))
    return rows


def test_dnn_streams(benchmark, machine, emit):
    rows = benchmark(run_streams, machine)
    emit("ablation_batched_dnn", format_table(
        ["stream", "ref GFLOPS", "ref cycles", "openblas cycles", "jit hit"],
        rows, title="DNN layer streams: batched reference SMM vs OpenBLAS",
    ))
    for name, gflops, ref_cycles, ob_cycles, hit in rows:
        assert ref_cycles < ob_cycles, name  # reference wins every stream
    # a steady stream keeps the code cache warm
    assert rows[0][4] > 0.5


def test_bcsr_stream(benchmark, machine, emit):
    def run():
        rng = make_rng()
        from repro.core import ReferenceSmmDriver

        driver = ReferenceSmmDriver(machine)
        matrix = random_bcsr(rng, 128, 128, br=8, bc=8, density=0.25)
        rhs = random_matrix(rng, 128, 16)
        out, timing = bcsr_spmm(matrix, rhs, driver)
        np.testing.assert_allclose(out, matrix.to_dense() @ rhs,
                                   rtol=1e-4, atol=1e-4)
        return timing

    timing = benchmark(run)
    assert timing.efficiency(machine, np.float32) > 0.4


def test_abft_stream(benchmark, machine):
    def run():
        rng = make_rng()
        from repro.core import ReferenceSmmDriver

        driver = ReferenceSmmDriver(machine)
        payload = random_matrix(rng, 256, 512)
        return encode(payload, driver)

    enc = benchmark(run)
    # the 2xN checksum GEMM is an extreme SMM: far below peak by nature,
    # but the encode must still run at a usable rate
    eff = enc.timing.efficiency(machine, np.float32)
    assert 0.05 < eff < 0.7
