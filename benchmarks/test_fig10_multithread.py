"""FIG10: 64-thread SMM comparison (paper Fig. 10a-c).

OpenBLAS (1-D M partition), BLIS (multi-dimensional) and Eigen (2-D grid)
on irregular shapes with one small dimension.  Shape checks: BLIS best for
small M, peaking around the paper's ~60%; OpenBLAS especially poor when M
is small; everyone far below peak at tiny dimensions.
"""

from repro.analysis import fig10


def test_fig10_multithread(benchmark, machine, emit):
    figs = benchmark(fig10, machine, 64)
    text = "\n\n".join(figs[name].render() for name in sorted(figs))
    emit("fig10", text)

    small_m = figs["small-M"]
    blis = small_m.series_by_name("blis").ys
    openblas = small_m.series_by_name("openblas").ys
    eigen = small_m.series_by_name("eigen").ys

    # BLIS is the best performer for small M
    wins = sum(1 for b, o, e in zip(blis, openblas, eigen)
               if b > o and b > e)
    assert wins >= len(blis) - 2
    # paper: BLIS peaks around 60%
    assert 0.5 < max(blis) < 0.85
    # OpenBLAS especially poor when M is small
    assert openblas[0] < 0.05
    # everyone far below peak at the smallest dimension
    assert all(s.ys[0] < 0.45 for s in small_m.series)
