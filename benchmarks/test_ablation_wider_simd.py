"""Sensitivity ablation: do the paper's SMM conclusions survive a wider
vector unit?  (The paper closes by pointing at A64FX-class machines.)

Runs the single-thread library comparison on the 512-bit ``a64fx_like``
configuration and checks which findings are architecture-specific.
"""

import numpy as np

from repro.analysis import fig5
from repro.machine import a64fx_like
from repro.workloads import fig5a_square


def test_wider_simd_preserves_library_ordering(benchmark, emit):
    wide = a64fx_like()

    def run():
        return fig5(wide, fig5a_square(step=10), "fig5a-wide", 0)

    fig = benchmark(run)
    emit("ablation_wider_simd", fig.render())

    blasfeo = fig.series_by_name("blasfeo").ys
    eigen = fig.series_by_name("eigen").ys
    # BLASFEO's packing-free advantage survives wider SIMD
    wins = sum(
        1 for b, o in zip(blasfeo, fig.series_by_name("openblas").ys)
        if b > o
    )
    assert wins >= len(blasfeo) * 0.8
    # Eigen stays at the bottom
    assert np.mean(eigen) < np.mean(blasfeo)
    # wider vectors make *small* matrices relatively harder: efficiency at
    # the smallest sizes is lower than on the 128-bit machine design point
    assert blasfeo[0] < 0.8
