"""TAB2: BLIS 64-thread breakdown over the M sweep (paper Table II).

Checks the paper's trends: PackB dominates at small M (paper 56.9% at
M=16) and decays with M; the kernel share grows from ~35% to ~80%; sync
stays in single digits; and the multithreaded kernel efficiency sits below
its single-thread counterpart.
"""

from repro.analysis import table2, table2_side_by_side, table2_trend_agreement
from repro.util.tables import format_table


def test_table2_breakdown(benchmark, machine, emit):
    t = benchmark(table2, machine)
    emit("table2", t.render())

    # paper-vs-model artifact with rank-correlation summary
    side = table2_side_by_side(t)
    rho = table2_trend_agreement(t)
    emit("table2_vs_paper", format_table(
        ["M", "kern(paper)", "kern(model)", "packB(paper)", "packB(model)",
         "sync(paper)", "sync(model)", "keff(paper)", "keff(model)"],
        side, title="Table II: paper vs model",
    ) + "\n\nSpearman rho: " + ", ".join(
        f"{k}={v:.2f}" for k, v in sorted(rho.items())
    ))
    # the dominant-phase trends track the paper tightly
    assert rho["kernel"] > 0.9
    assert rho["pack_b"] > 0.9

    kernel = t.column("Kernel")
    pack_b = t.column("PackB")
    sync = t.column("Sync")

    # PackB dominates at M=16 and decays monotonically in trend
    assert pack_b[0] > 50
    assert pack_b[0] > pack_b[len(pack_b) // 2] > pack_b[-1]
    # kernel share grows from small to large M (paper: 35.5 -> 82.2)
    assert kernel[0] < 35
    assert kernel[-1] > 65
    # sync share small but visible (paper: 0.3 - 5.8)
    assert all(0 <= s < 10 for s in sync)
    # dominant phases: kernel + packB explain most of the time everywhere
    for row in t.rows:
        assert row[1] + row[3] > 80
