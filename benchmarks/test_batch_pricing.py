"""BATCH: grid sweeps through the vectorized batch pricing layer.

Prices the paper's Fig. 5(a) grid with :func:`repro.workloads.priced_grid`
(one ``ShapeGridPricer`` call), checks the vectorized per-phase arrays
against per-plan ``Engine`` pricing bit-for-bit, and benchmarks the warm
replay path — the throughput a tuner candidate search or efficiency
sweep sees once the charge tapes are recorded.
"""

import numpy as np

from repro.plan import ENGINE, ShapeGridPricer, clear_batch_pricing_cache
from repro.workloads import fig5a_square, priced_grid


def test_batch_grid_matches_single_plan_pricing(machine, emit):
    shapes = fig5a_square()
    clear_batch_pricing_cache()
    grid = priced_grid(machine, shapes, lib="blasfeo")

    pricer = ShapeGridPricer(machine, lib="blasfeo")
    lines = []
    for i, (m, n, k) in enumerate(shapes):
        single = ENGINE.price(pricer.lower(m, n, k))
        assert grid.total_cycles[i] == single.total_cycles, (m, n, k)
        assert grid.kernel_cycles[i] == single.kernel_cycles, (m, n, k)
        assert grid.executed_flops[i] == single.executed_flops, (m, n, k)
    peak = machine.core.flops_per_cycle(np.float32)
    eff = grid.efficiency(peak)
    for (m, n, k), e in zip(shapes, eff):
        lines.append(f"{m:4d}x{n:4d}x{k:4d}  {e:6.1%}")
    emit("batch_fig5a_blasfeo", "\n".join(lines))
    assert np.all(eff > 0.0)
    assert np.all(eff <= 1.0)


def test_batch_grid_warm_replay(benchmark, machine):
    shapes = fig5a_square()
    pricer = ShapeGridPricer(machine, lib="reference")
    pricer.price_grid(shapes)  # record tapes
    grid = benchmark(pricer.price_grid, shapes)  # replay them
    assert len(grid.timings) == len(shapes)
    info = pricer.cache_info()
    assert info["tapes"]["hits"] > 0
