"""FIG9: kernel-only efficiency of OpenBLAS SMM (paper Fig. 9a-c).

Packing excluded (the paper's note).  Checks: best efficiency ~93% at
edge-free sizes (paper: 93.3% at M=N=80), marked dips at edge-heavy sizes,
and the sawtooth aligned to micro-kernel multiples.
"""

from repro.analysis import fig9


def test_fig9_kernel_efficiency(benchmark, machine, emit):
    sweeps = benchmark(fig9, machine)
    text = "\n\n".join(sweeps[name].render() for name in sorted(sweeps))
    emit("fig9", text)

    m_ys = sweeps["sweep-M"].series[0].ys
    m_xs = sweeps["sweep-M"].xs
    assert max(m_ys) > 0.88  # paper best: 93.3%
    assert min(m_ys) < 0.80  # fluctuation from edge cases

    # sawtooth: mr-multiples beat their non-aligned neighbours
    by_x = dict(zip(m_xs, m_ys))
    assert by_x[80] > by_x[75]
    assert by_x[160] > by_x[155]

    # K sweep shows no edge sawtooth (K is never tiled by mr/nr)
    k_ys = sweeps["sweep-K"].series[0].ys
    tail = k_ys[len(k_ys) // 2:]
    assert max(tail) - min(tail) < 0.08
