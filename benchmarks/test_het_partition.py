"""HET-PARTITION: weighted vs balanced M-strips on a big.LITTLE socket.

Fig. 10-style heterogeneous scaling: the small-M multithreaded sweep
lowered with the 1-D M-split scheme on ``big_little_like()`` (4 big +
4 little cores), once with the legacy balanced split and once with the
throughput-weighted mr-granular partition.  Shape checks: the weighted
partition is strictly cheaper on modeled wall-clock for every shape
(the little class no longer paces the kc-step barrier), and the
homogeneous Phytium lowering is bit-for-bit unaffected by the
partition knob (weighted degenerates to even).
"""

from repro.analysis import fig10_heterogeneous
from repro.machine import big_little_like
from repro.parallel import MultithreadedGemm
from repro.plan.fingerprint import plan_fingerprint


def test_weighted_beats_even_on_big_little(benchmark, emit):
    fig = benchmark(fig10_heterogeneous)
    emit("het_partition", fig.render())

    even = fig.series_by_name("even").ys
    weighted = fig.series_by_name("weighted").ys
    speedup = fig.series_by_name("speedup").ys

    # weighted is strictly cheaper for every Fig. 10 small-M shape
    assert all(w < e for w, e in zip(weighted, even))
    # and meaningfully so somewhere in the sweep (little class off the
    # critical path entirely for at least one shape)
    assert max(speedup) > 1.3
    # never pathological: bounded gain, monotone sanity
    assert all(1.0 < s < 8.0 for s in speedup)


def test_partition_knob_degenerates_on_homogeneous(machine):
    """On the homogeneous Phytium, partition="weighted" is a no-op."""
    shapes = [(64, 2048, 2048), (128, 256, 256)]
    for m, n, k in shapes:
        even = MultithreadedGemm(
            machine, "openblas", threads=8, partition="even"
        ).plan_gemm(m, n, k)
        weighted = MultithreadedGemm(
            machine, "openblas", threads=8, partition="weighted"
        ).plan_gemm(m, n, k)
        assert plan_fingerprint(even) == plan_fingerprint(weighted)
        assert even.price().total_cycles == weighted.price().total_cycles


def test_weighted_partition_tags_match_classes():
    """Every strip of a weighted big.LITTLE plan carries its class tag."""
    from repro.plan.ir import ThreadStripsOp

    mach = big_little_like()
    mt = MultithreadedGemm(mach, "openblas", threads=8)
    assert mt.partition == "weighted"  # auto resolves on asymmetric sockets
    plan = mt.plan_gemm(96, 512, 512)
    strips = [n for _, n in plan.walk() if isinstance(n, ThreadStripsOp)]
    assert strips
    for node in strips:
        assert len(node.core_classes) == len(node.chunks) == 8
        assert node.core_classes == tuple(
            mach.core_class_of(t) for t in range(8)
        )
        # big strips are at least as large as little strips
        bigs = [c for c, t in zip(node.chunks, node.core_classes) if t == 0]
        littles = [c for c, t in zip(node.chunks, node.core_classes)
                   if t == 1]
        assert min(bigs) >= max(littles)
