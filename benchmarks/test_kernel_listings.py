"""Assembly appendix: emit every library's main-kernel listing with its
scheduled steady state — the artifact a reader would diff against real
library kernels.
"""

import numpy as np

from repro.blas import shared_analyzer, shared_generator
from repro.kernels import all_catalogs


def collect_listings(machine):
    gen = shared_generator()
    analyzer = shared_analyzer(machine)
    peak = machine.core.flops_per_cycle(np.float32)
    sections = []
    stats = {}
    for lib, catalog in sorted(all_catalogs().items()):
        kernel = gen.generate(catalog.main)
        state = analyzer.analyze(kernel)
        eff = state.flops_per_cycle / peak
        stats[lib] = eff
        sections.append(
            f"==== {lib}: {catalog.main.name} "
            f"({state.cycles_per_iter / kernel.unroll:.2f} cycles/k-step, "
            f"{eff:.1%} of peak) ====\n" + kernel.listing()
        )
    return "\n\n".join(sections), stats


def test_kernel_listings(benchmark, machine, emit):
    text, stats = benchmark(collect_listings, machine)
    emit("kernel_listings", text)

    # assembly-quality kernels saturate the pipe; Eigen's compiled,
    # uncontracted kernel caps at half
    assert stats["openblas"] > 0.95
    assert stats["blis"] > 0.95
    assert stats["blasfeo"] > 0.95
    assert 0.45 < stats["eigen"] < 0.55
    # the artifact contains real mnemonics
    assert "fmla" in text and "ldr q" in text and ".loop:" in text
