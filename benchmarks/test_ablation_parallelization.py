"""Parallelization ablation (paper Sec. III-D).

Contrasts the three schemes on one shape grid and isolates the two effects
the paper names: fragmentation of a small dimension, and synchronization
span.  Also compares the rule-based BLIS factorizer against the scored
alternative.
"""

import numpy as np

from repro.parallel import (
    MultithreadedGemm,
    barrier_cycles,
    blis_factorization,
    blis_factorization_scored,
)
from repro.util.tables import format_table


def scheme_grid(machine):
    rows = []
    for threads in (8, 16, 64):
        executors = {
            lib: MultithreadedGemm(machine, lib, threads=threads)
            for lib in ("openblas", "blis", "eigen")
        }
        for m in (16, 128):
            row = [threads, m]
            for lib, ex in executors.items():
                t, _ = ex.cost(m, 2048, 2048)
                row.append(round(t.efficiency(machine, np.float32, threads), 3))
            rows.append(row)
    return rows


def test_scheme_comparison(benchmark, machine, emit):
    rows = benchmark(scheme_grid, machine)
    emit("ablation_parallel_schemes", format_table(
        ["threads", "M", "openblas", "blis", "eigen"], rows,
        title="parallelization schemes (fraction of aggregate peak)",
    ))
    # at 64 threads and M=16, the 1-D M partition is the catastrophic one
    row64_m16 = next(r for r in rows if r[0] == 64 and r[1] == 16)
    assert row64_m16[3] > 3 * row64_m16[2]  # blis >> openblas


def test_factorizer_refuses_fragmentation(benchmark, machine):
    def run():
        results = {}
        for m in (8, 16, 64, 256, 2048):
            fact = blis_factorization(m, 2048, 64, 8, 12)
            results[m] = (fact.jc, fact.ic, fact.jr)
        return results

    results = benchmark(run)
    # small M: no M-parallelism at all
    assert results[8][1] == 1
    assert results[16][1] == 1
    # large M: M-parallelism engaged
    assert results[256][1] >= 8
    # ic never fragments below two mr-tiles per thread
    for m, (jc, ic, jr) in results.items():
        assert m // ic >= 16 or ic == 1


def test_sync_span_matters(benchmark, machine, emit):
    # the paper's argument: 8-thread barriers are much cheaper than
    # 64-thread barriers, and BLIS can keep the span at 8
    numa = machine.numa
    rows = benchmark(lambda: [
        (t, round(barrier_cycles(t, numa), 0))
        for t in (2, 4, 8, 16, 32, 64)
    ])
    emit("ablation_sync_span", format_table(
        ["threads in barrier", "cycles"], rows, title="tree-barrier cost",
    ))
    costs = dict(rows)
    assert costs[64] > 2.5 * costs[8]

    fact = blis_factorization(16, 2048, 64, 8, 12)
    assert fact.pack_b_group <= 8


def test_rule_vs_scored_factorizer(benchmark, machine, emit):
    def run():
        rows = []
        mt = MultithreadedGemm(machine, "blis", threads=64)
        for m in (16, 64, 256):
            rule = blis_factorization(m, 2048, 64, 8, 12)
            scored = blis_factorization_scored(m, 2048, 64, 8, 12)
            t_rule, _ = mt.cost(m, 2048, 2048)
            rows.append((
                m,
                f"jc{rule.jc}/ic{rule.ic}/jr{rule.jr}",
                f"jc{scored.jc}/ic{scored.ic}/jr{scored.jr}",
                round(t_rule.efficiency(machine, np.float32, 64), 3),
            ))
        return rows

    rows = benchmark(run)
    emit("ablation_factorizers", format_table(
        ["M", "rule-based", "scored", "rule eff"], rows,
        title="BLIS thread factorization policies",
    ))
    assert all(r[3] > 0 for r in rows)
