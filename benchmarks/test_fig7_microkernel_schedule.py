"""FIG7: the OpenBLAS 8x4 edge micro-kernel under the pipeline model.

The paper prints the kernel's assembly (four adjacent loads, short
dependence distances) and argues it is inefficient.  We re-create the
kernel, schedule it on the modeled core, and report:

* the listing and the scheduled issue table;
* steady-state cycles/k-step for the naive vs an optimized 8x4;
* the OpenBLAS *edge family* (8x4 / 4x4 / 2x4 / 1x4) efficiencies — on an
  out-of-order core this, not load placement, is where the edge penalty
  lives (a reproduction finding, recorded in EXPERIMENTS.md);
* the scheduling-window sensitivity showing how small the window would
  have to be for the paper's load-placement concern to bind.
"""

from repro.analysis import fig7


def test_fig7_schedule_analysis(benchmark, machine, emit):
    result = benchmark(fig7, machine)

    lines = [
        "== naive (OpenBLAS-style) 8x4 edge kernel ==",
        result["naive_listing"],
        "",
        "== scheduled issue table (2 iterations) ==",
        result["schedule_table"],
        "",
        f"naive     : {result['naive_cycles_per_kstep']:.2f} cycles/k-step, "
        f"{result['naive_efficiency']:.1%} of peak",
        f"optimized : {result['optimized_cycles_per_kstep']:.2f} cycles/k-step, "
        f"{result['optimized_efficiency']:.1%} of peak",
        "",
        "== edge-kernel family (naive style) ==",
    ]
    for name, eff in result["edge_family_efficiency"].items():
        lines.append(f"  {name}: {eff:.1%} of peak")
    lines.append("")
    lines.append("== scheduling-window sensitivity (naive 8x4) ==")
    for window, eff in sorted(result["window_sensitivity"].items()):
        lines.append(f"  window={window:3d}: {eff:.1%}")
    emit("fig7", "\n".join(lines))

    # the assembly artifacts of the paper's Figure 7 are present
    assert "ldp" in result["naive_listing"]
    assert "fmla" in result["naive_listing"]
    # narrow edge kernels are the real bottleneck: monotone decay
    fam = result["edge_family_efficiency"]
    assert fam["8x4"] > fam["4x4"] > fam["2x4"] > fam["1x4"]
    assert fam["1x4"] < 0.25
    # the 8x4 kernel itself saturates the FMA pipe
    assert result["naive_efficiency"] > 0.95
