"""TAB1: the library kernel comparison (paper Table I)."""

from repro.analysis import table1


def test_table1_kernel_catalog(benchmark, emit):
    t = benchmark(table1)
    emit("table1", t.render())

    assert t.column("OpenBLAS") == ["Layer 4-7", "8", "16x4,8x8,4x4"]
    assert t.column("BLIS") == ["Layer 6-7", "4", "8x12"]
    assert t.column("BLASFEO") == ["Layer 6-7", "4", "16x4,8x8"]
    assert t.column("Eigen") == ["none", "1", "12x4"]
