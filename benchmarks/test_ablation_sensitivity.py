"""Machine-sensitivity ablation: which hardware parameter causes which
paper effect.

Sweeps one parameter at a time and renders the response curves — the
mechanistic evidence behind DESIGN.md §5.
"""

from repro.analysis import (
    edge_kernel_metric,
    smm_efficiency_metric,
    sweep_parameter,
)
from repro.util.tables import format_table


def test_fma_latency_drives_edge_kernels(benchmark, machine, emit):
    fig = benchmark(
        sweep_parameter, machine, "core.fma_latency",
        [2, 3, 4, 5, 6, 8, 12, 16], edge_kernel_metric(), "sens-fma",
    )
    emit("ablation_sensitivity_fma", fig.render())
    ys = dict(zip(fig.xs, fig.series[0].ys))
    # min(chains/latency, 1) with 4 chains
    assert ys[2] > 0.98
    assert ys[4] > 0.98
    assert 0.45 < ys[8] < 0.55
    assert 0.22 < ys[16] < 0.28


def test_register_count_drives_tile_choice(benchmark, machine, emit):
    from repro.analysis import apply_parameter
    from repro.kernels import JitKernelFactory

    def run():
        rows = []
        for regs in (16, 24, 32):
            varied = apply_parameter(machine, "core.vector_registers", regs)
            jit = JitKernelFactory(varied.core)
            main = jit.main_spec
            rows.append((regs, f"{main.mr}x{main.nr}", main.mr * main.nr))
        return rows

    rows = benchmark(run)
    emit("ablation_sensitivity_registers", format_table(
        ["vector registers", "JIT main tile", "tile area"], rows,
        title="Eq. 4 in action: register file size vs chosen tile",
    ))
    areas = [r[2] for r in rows]
    assert areas[0] < areas[-1]  # more registers -> bigger feasible tile


def test_l1_size_drives_smm_ceiling(benchmark, machine, emit):
    fig = benchmark(
        sweep_parameter, machine, "l1.size_bytes",
        [8 * 1024, 32 * 1024, 128 * 1024],
        smm_efficiency_metric(size=64), "sens-l1",
    )
    emit("ablation_sensitivity_l1", fig.render())
    blasfeo = fig.series_by_name("blasfeo").ys
    # a larger L1 keeps more of the 64^3 working set resident
    assert blasfeo[-1] >= blasfeo[0]


def test_dispatch_width_not_the_bottleneck(benchmark, machine, emit):
    fig = benchmark(
        sweep_parameter, machine, "core.dispatch_width", [2, 4, 8],
        smm_efficiency_metric(size=48), "sens-dispatch",
    )
    emit("ablation_sensitivity_dispatch", fig.render())
    blasfeo = fig.series_by_name("blasfeo").ys
    # from 4-wide to 8-wide dispatch nothing changes: the FMA pipe is the
    # bottleneck, exactly as the paper's peak analysis assumes
    assert abs(blasfeo[2] - blasfeo[1]) < 0.02
    # but starving dispatch at 2-wide does hurt
    assert blasfeo[0] < blasfeo[1] + 1e-9
