"""Fig.-11 ablation: kernel-integrated (fused) packing.

The paper's reference design integrates the B pack into kernel execution.
This ablation quantifies what that buys: the share of the separate pack
cost hidden in the kernel's spare load/store/dispatch slots, across sizes,
and how the cheaper pack shifts the packing-optional decision boundary.
"""

import numpy as np

from repro.core import ReferenceSmmDriver
from repro.util.tables import format_table


def run_fusion_sweep(machine):
    plain = ReferenceSmmDriver(machine, force_packing=True)
    fused = ReferenceSmmDriver(machine, force_packing=True,
                               fused_packing=True)
    rows = []
    for s in (16, 32, 48, 64, 96, 128):
        tp, _ = plain.cost_gemm(s, s, s)
        tf, _ = fused.cost_gemm(s, s, s)
        hidden = 1.0 - tf.pack_b_cycles / tp.pack_b_cycles
        rows.append((
            s,
            round(tp.pack_b_cycles),
            round(tf.pack_b_cycles),
            round(hidden, 2),
            round(tp.efficiency(machine, np.float32), 3),
            round(tf.efficiency(machine, np.float32), 3),
        ))
    return rows


def test_fused_packing(benchmark, machine, emit):
    rows = benchmark(run_fusion_sweep, machine)
    emit("ablation_fused_packing", format_table(
        ["size", "separate packB", "fused packB", "hidden frac",
         "eff separate", "eff fused"],
        rows, title="Fig. 11: kernel-integrated packing",
    ))
    for row in rows:
        size, sep, fus, hidden, e_sep, e_fus = row
        assert fus <= sep, size
        assert e_fus >= e_sep, size
    # a meaningful share of the pack hides in the kernel's slack
    assert max(r[3] for r in rows) > 0.4
