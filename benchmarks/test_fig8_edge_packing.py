"""FIG8: packing the N-edge sliver to keep the SIMD unit fed (paper Fig. 8).

With N % nr == 1 the edge column of B is discontiguous; without packing
the edge kernel falls back to strided scalar loads.  The benchmark runs
the reference SMM with edge packing on and off and checks the paper's
recommendation: packing the small amount of edge data wins.
"""

import numpy as np

from repro.analysis import fig8


def test_fig8_edge_packing(benchmark, machine, emit):
    fig = benchmark(fig8, machine)
    emit("fig8", fig.render())

    packed = fig.series_by_name("edge-packed").ys
    unpacked = fig.series_by_name("edge-unpacked").ys
    # packing the edge sliver never loses and wins on average
    assert all(p >= u - 1e-9 for p, u in zip(packed, unpacked))
    assert np.mean(packed) > np.mean(unpacked)
