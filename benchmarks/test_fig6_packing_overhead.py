"""FIG6: data-packing overhead breakdown for SMM (paper Fig. 6).

Measures the packing share of OpenBLAS runs over the three small-dimension
sweeps and checks the paper's claims: > 50% in the worst small-M/N cases,
negligible when only K is small, and agreement in trend with the analytic
P2C model (Eq. 3).
"""

from repro.analysis import fig6


def test_fig6_packing_overhead(benchmark, machine, emit):
    fig = benchmark(fig6, machine)
    emit("fig6", fig.render())

    small_m = fig.series_by_name("small-M").ys
    small_n = fig.series_by_name("small-N").ys
    small_k = fig.series_by_name("small-K").ys
    p2c_model = fig.series_by_name("p2c-model(small-M)").ys

    # worst cases exceed 50% (paper: "more than 50%")
    assert max(small_m) > 0.5
    assert max(small_n) > 0.5
    # K-independence: packing share negligible for small K
    assert max(small_k) < 0.2
    # monotone decay as the small dimension grows
    assert small_m[0] > small_m[-1]
    assert small_n[0] > small_n[-1]
    # the analytic model ranks the same direction as the measurement
    assert p2c_model[0] > p2c_model[-1]
