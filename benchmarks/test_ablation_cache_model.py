"""Cache-model validation: the analytic GEBP model vs the reference
set-associative simulator.

The drivers use the analytic model for speed; this benchmark replays the
same packing walks through :class:`repro.caches.CacheSim` and checks that
the analytic line-miss counts agree with simulation, and that the
random-replacement shared L2 behaves qualitatively as modeled.
"""

import numpy as np

from repro.caches import CacheSim, GebpCacheModel
from repro.util.tables import format_table


def replay_pack_walk(machine, rows, cols, itemsize=4, contiguous=True):
    """Simulate a packing walk's source reads through a real L1."""
    sim = CacheSim(machine.l1d)
    lda = rows  # column-major source
    misses = 0
    if contiguous:
        # walk in storage order (down columns)
        for j in range(cols):
            for i in range(0, rows, 4):
                misses += sim.access((j * lda + i) * itemsize, 16)
    else:
        # transpose-like walk (across the leading dimension)
        for i in range(rows):
            for j in range(cols):
                misses += sim.access((j * lda + i) * itemsize, itemsize)
    return misses


def test_analytic_matches_simulated_line_misses(benchmark, machine, emit):
    model = GebpCacheModel(machine)

    def run():
        rows = []
        for (r, c) in [(64, 64), (100, 100), (128, 40)]:
            sim_seq = replay_pack_walk(machine, r, c, contiguous=True)
            sim_str = replay_pack_walk(machine, r, c, contiguous=False)
            phase = model.packing_phase(r, c, 4, source_contiguous=True,
                                        source_resident="l2")
            analytic_src = phase.l1_miss_lines / 2  # model counts src + dst
            rows.append((f"{r}x{c}", sim_seq, sim_str, round(analytic_src)))
        return rows

    rows = benchmark(run)
    emit("ablation_cache_validation", format_table(
        ["walk", "sim seq misses", "sim strided misses", "analytic src lines"],
        rows, title="packing-walk line misses: simulation vs model",
    ))
    for name, sim_seq, sim_strided, analytic in rows:
        # both walks touch the same unique lines; the analytic compulsory
        # count must match the sequential simulation within 20%
        assert abs(sim_seq - analytic) / max(sim_seq, 1) < 0.2, name
        # a strided walk over a source larger than L1 misses far more often
        # (that is why its prefetch-overlap constant is lower)
        footprint = int(name.split("x")[0]) * int(name.split("x")[1]) * 4
        if footprint > machine.l1d.size_bytes:
            assert sim_strided > sim_seq, name


def test_random_l2_worse_than_lru_under_thrash(benchmark, machine, emit):
    from dataclasses import replace

    def run():
        results = {}
        for policy in ("lru", "random"):
            cfg = replace(machine.l2, replacement=policy)
            sim = CacheSim(cfg, seed=11)
            # four cores' interleaved streams overflowing one set-group
            lines = int(1.5 * cfg.size_bytes / cfg.line_bytes)
            misses = 0
            for _ in range(3):
                for line in range(0, lines):
                    misses += 0 if sim.access_line(line) else 1
            results[policy] = misses
        return results

    results = benchmark(run)
    emit("ablation_l2_replacement", format_table(
        ["policy", "misses"], list(results.items()),
        title="L2 replacement under a looped over-capacity stream",
    ))
    # LRU fully thrashes a cyclic over-capacity loop; random retains some
    assert results["random"] < results["lru"]


def test_bandwidth_floor_binds_under_contention(benchmark, machine):
    model_solo = GebpCacheModel(machine)
    model_contended = GebpCacheModel(
        machine, active_l2_sharers=4, bandwidth_share=1.0
    )
    phase = benchmark(
        lambda: model_solo.kernel_phase(64, 2048, 256, 16, 4, 4,
                                        b_resident="mem")
    )
    assert model_contended.dram_floor_cycles(phase) > \
        5 * model_solo.dram_floor_cycles(phase)
    dram_gb_s = machine.numa.dram_bytes_per_cycle * machine.core.freq_hz / 1e9
    assert 15 < dram_gb_s < 25  # one DDR4-2400 channel per panel
