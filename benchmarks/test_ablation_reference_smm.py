"""SEC4 ablation: the reference SMM implementation vs the four libraries,
and the contribution of each of its design planks.

The paper proposes (1) packing-optional execution, (2) optimal exact-shape
micro-kernels, (3) JIT-style adaptive generation, (4) multi-dimensional
parallelization — as future work.  We built it; this benchmark measures
what each plank buys.
"""

import numpy as np

from repro.analysis import reference_comparison
from repro.blas import make_blasfeo, make_blis, make_openblas
from repro.core import ReferenceSmmDriver
from repro.parallel import MultithreadedGemm
from repro.util.tables import format_table


def test_reference_vs_libraries(benchmark, machine, emit):
    fig = benchmark(reference_comparison, machine)
    emit("ablation_reference_vs_libraries", fig.render())

    ref = fig.series_by_name("reference").ys
    small = slice(0, 20)  # sizes 5..100
    for lib in ("openblas", "blis", "eigen"):
        ys = fig.series_by_name(lib).ys
        assert np.mean(ref[small]) > np.mean(ys[small]), lib
    blasfeo = fig.series_by_name("blasfeo").ys
    assert np.mean(ref[small]) > 0.95 * np.mean(blasfeo[small])


def packing_optional_ablation(machine):
    rows = []
    adaptive = ReferenceSmmDriver(machine)
    always = ReferenceSmmDriver(machine, force_packing=True)
    never = ReferenceSmmDriver(machine, force_packing=False)
    for shape in [(8, 8, 8), (16, 16, 128), (48, 48, 48), (96, 96, 96),
                  (32, 256, 256), (128, 128, 512)]:
        t_a, dec = adaptive.cost_gemm(*shape)
        t_p, _ = always.cost_gemm(*shape)
        t_n, _ = never.cost_gemm(*shape)
        rows.append((
            "x".join(map(str, shape)),
            round(t_p.total_cycles),
            round(t_n.total_cycles),
            round(t_a.total_cycles),
            "pack" if dec.packed_b else "no-pack",
        ))
    return rows


def test_packing_optional_decision(benchmark, machine, emit):
    rows = benchmark(packing_optional_ablation, machine)
    emit("ablation_packing_optional", format_table(
        ["shape", "always-pack", "never-pack", "adaptive", "choice"],
        rows, title="packing-optional SMM (cycles)",
    ))
    for shape, t_p, t_n, t_a, choice in rows:
        assert t_a <= min(t_p, t_n) * 1.01, shape


def edge_kernel_ablation(machine):
    """JIT exact edges vs the three library edge policies on edge-heavy sizes."""
    ref = ReferenceSmmDriver(machine)
    libs = {
        "openblas(pow2)": make_openblas(machine),
        "blis(pad)": make_blis(machine),
        "blasfeo(pad)": make_blasfeo(machine),
    }
    rows = []
    for s in (11, 23, 37, 75, 121):
        row = [s, round(
            ref.cost_gemm(s, s, s)[0].efficiency(machine, np.float32), 3
        )]
        for drv in libs.values():
            row.append(round(
                drv.cost_gemm(s, s, s).efficiency(machine, np.float32), 3
            ))
        rows.append(row)
    return rows, list(libs)


def test_jit_edges_beat_library_policies(benchmark, machine, emit):
    rows, lib_names = benchmark(edge_kernel_ablation, machine)
    emit("ablation_edge_policies", format_table(
        ["size", "reference(jit)"] + lib_names, rows,
        title="edge-heavy sizes: efficiency by edge policy",
    ))
    for row in rows:
        size, ref_eff = row[0], row[1]
        # exact JIT edges always beat the pow2-kernel and padding policies
        # of the Goto-structured libraries...
        assert ref_eff > row[2], size  # openblas
        assert ref_eff > row[3], size  # blis
        # ...and beat BLASFEO's native panel format from s >= 16 on (below
        # that BLASFEO's zero-pack advantage is unbeatable by design)
        if size >= 16:
            assert ref_eff >= row[4] * 0.97, size


def test_multidim_parallel_reference(benchmark, machine, emit):
    def run():
        ref = ReferenceSmmDriver(machine, threads=64)
        blis = MultithreadedGemm(machine, "blis", threads=64)
        out = []
        for m in (16, 64, 256):
            e_ref = ref.cost_gemm(m, 2048, 2048)[0].efficiency(
                machine, np.float32, 64)
            e_blis = blis.cost(m, 2048, 2048)[0].efficiency(
                machine, np.float32, 64)
            out.append((m, round(e_ref, 3), round(e_blis, 3)))
        return out

    rows = benchmark(run)
    emit("ablation_parallel_reference", format_table(
        ["M", "reference", "blis"], rows,
        title="64-thread reference SMM vs BLIS",
    ))
    # the reference design is at least competitive with BLIS everywhere
    for m, e_ref, e_blis in rows:
        assert e_ref > 0.9 * e_blis, m
