"""Thread-scaling ablation: how SMM (non-)scales from 1 to 64 cores.

The paper evaluates only 1 and 64 threads; this ablation fills in the
curve.  For an irregular small-M shape, adding threads beyond what the
small dimension can feed buys little (BLIS) or actively wastes cores
(OpenBLAS); for a bulk shape both scale.
"""

import numpy as np

from repro.blas import make_blis
from repro.parallel import MultithreadedGemm
from repro.util.tables import format_table

THREADS = (2, 4, 8, 16, 32, 64)


def scaling_curves(machine):
    rows = []
    for (m, n, k) in ((32, 2048, 2048), (1024, 2048, 1024)):
        st = make_blis(machine).cost_gemm(m, n, k).total_cycles
        for t in THREADS:
            row = [f"{m}x{n}x{k}", t]
            for lib in ("openblas", "blis"):
                mt = MultithreadedGemm(machine, lib, threads=t)
                cyc = mt.cost(m, n, k)[0].total_cycles
                row.append(round(st / cyc, 2))  # speedup vs 1-thread BLIS
            rows.append(row)
    return rows


def test_thread_scaling(benchmark, machine, emit):
    rows = benchmark(scaling_curves, machine)
    emit("ablation_thread_scaling", format_table(
        ["shape", "threads", "openblas speedup", "blis speedup"], rows,
        title="speedup over single-thread BLIS",
    ))

    small = [r for r in rows if r[0] == "32x2048x2048"]
    bulk = [r for r in rows if r[0] == "1024x2048x1024"]

    # bulk shape: BLIS speedup keeps growing to 64 threads
    blis_bulk = [r[3] for r in bulk]
    assert blis_bulk[-1] > blis_bulk[0]
    assert blis_bulk[-1] > 10  # real scaling

    # small-M shape: speedup saturates well below linear
    blis_small = [r[3] for r in small]
    assert blis_small[-1] < 0.85 * 64
    # OpenBLAS's 1-D M partition falls behind BLIS once the thread count
    # exceeds what the small M can feed (at 2-4 threads they are close)
    for r in small:
        if r[1] >= 16:
            assert r[3] > r[2], r
        else:
            assert r[3] >= 0.9 * r[2], r


def test_blis_small_m_speedup_saturates(benchmark, machine):
    def run():
        speedups = []
        st = make_blis(machine).cost_gemm(16, 2048, 2048).total_cycles
        for t in (8, 64):
            mt = MultithreadedGemm(machine, "blis", threads=t)
            speedups.append(st / mt.cost(16, 2048, 2048)[0].total_cycles)
        return speedups

    s8, s64 = benchmark(run)
    # going 8 -> 64 threads (8x the cores) buys measurably less than 8x
    assert s64 / s8 < 6.5
