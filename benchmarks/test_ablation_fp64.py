"""Precision ablation: does the characterization hold in double precision?

The paper evaluates fp32 (its Eq. 1-3 use ``sizeof(float)``); Phytium
2000+'s advertised 563.2 GFLOPS is the fp64 figure.  This ablation reruns
the square sweep in fp64: half the SIMD lanes, double the bytes per
element — the qualitative ordering must survive.
"""

import numpy as np

from repro.analysis import fig5
from repro.workloads import fig5a_square


def test_fp64_preserves_ordering(benchmark, machine, emit):
    def run():
        return fig5(machine, fig5a_square(step=10), "fig5a-fp64", 0,
                    dtype=np.float64)

    fig = benchmark(run)
    emit("ablation_fp64", fig.render())

    blasfeo = fig.series_by_name("blasfeo").ys
    eigen = fig.series_by_name("eigen").ys
    openblas = fig.series_by_name("openblas").ys

    # ordering survives the precision change
    assert np.mean(blasfeo) > np.mean(openblas) > np.mean(eigen)
    # fp64 peak per core is half the fp32 peak; efficiencies stay fractions
    assert machine.peak_gflops(np.float64, 64) == 563.2
    assert all(0 < y <= 1 for y in blasfeo)


def test_fp64_packing_story_holds(benchmark, machine):
    from repro.blas import make_openblas

    def run():
        drv = make_openblas(machine, dtype=np.float64)
        small_m = drv.cost_gemm(4, 100, 100)
        small_k = drv.cost_gemm(100, 100, 4)
        return (
            small_m.packing_cycles / small_m.total_cycles,
            small_k.packing_cycles / small_k.total_cycles,
        )

    pack_m, pack_k = benchmark(run)
    # P2C's K-independence is precision-independent
    assert pack_m > 0.4
    assert pack_k < 0.2
