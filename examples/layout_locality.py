#!/usr/bin/env python3
"""Why panel-major storage works *for small matrices*: line utilization.

A first intuition says packed/panel-major layouts win by making kernel
reads sequential.  The cache simulator corrects that intuition: with a
large K, an unpacked column-major B streams whole cache lines too — the
k-loop walks each column densely, and the miss counts tie.

The real effect is a *small-K* effect, which is exactly the paper's SMM
regime: with K elements per column and 16 fp32 elements per line, an
unpacked kernel fetches a 64-byte line per column but uses only K·4 bytes
of it.  Panel-major packs those fragments densely, so the fetched-byte
waste — and the L1 footprint — shrinks by up to 16x.  This example
measures it with the set-associative simulator.

Run:  python examples/layout_locality.py
"""

from repro import phytium2000plus
from repro.caches import CacheSim


def unpacked_reads(sim, kc, nc, nr, ldb, itemsize=4):
    """Kernel-order B reads from an unpacked column-major matrix."""
    misses = 0
    for j0 in range(0, nc, nr):
        for k in range(kc):
            for j in range(j0, min(j0 + nr, nc)):
                misses += sim.access((j * ldb + k) * itemsize, itemsize)
    return misses


def panel_major_reads(sim, kc, nc, nr, itemsize=4):
    """Kernel-order B reads from a densely packed panel-major buffer."""
    misses = 0
    addr = 0
    for _ in range(0, nc, nr):
        for _ in range(kc):
            misses += sim.access(addr, nr * itemsize)
            addr += nr * itemsize
    return misses


def main() -> None:
    machine = phytium2000plus()
    nc, nr, ldb = 128, 4, 2048
    line = machine.l1d.line_bytes

    print("B-sliver reads of one GEBP: nc=128, nr=4, ldb=2048, fp32\n")
    print(f"{'K':>5} {'unpacked misses':>16} {'panel misses':>13} "
          f"{'waste factor':>13} {'unpacked bytes fetched':>23}")
    ratios = {}
    for kc in (2, 4, 8, 16, 32, 128):
        col = CacheSim(machine.l1d)
        pan = CacheSim(machine.l1d)
        m_col = unpacked_reads(col, kc, nc, nr, ldb)
        m_pan = panel_major_reads(pan, kc, nc, nr)
        ratio = m_col / max(m_pan, 1)
        ratios[kc] = ratio
        print(f"{kc:>5} {m_col:>16} {m_pan:>13} {ratio:>12.1f}x "
              f"{m_col * line:>22,}")

    print(
        "\nAt K=128 the layouts tie: a long k-loop consumes unpacked lines"
        "\ncompletely.  As K shrinks toward the SMM regime, the unpacked"
        "\nlayout fetches a full line per column fragment — the waste factor"
        "\napproaches line/(K*4).  Dense panel-major storage (BLASFEO's"
        "\nformat, and what packing produces) removes exactly this waste,"
        "\nwhich is why the paper's packing-free format matters most when"
        "\nthe matrices are small."
    )
    assert ratios[2] > 4.0
    assert ratios[128] < 1.5


if __name__ == "__main__":
    main()
