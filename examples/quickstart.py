#!/usr/bin/env python3
"""Quickstart: run one small GEMM through every modeled library.

Reproduces in miniature what the paper's Figure 5 measures: the same
multiplication, four libraries, very different fractions of peak — with
BLASFEO's packing-free panel format on top and compiled Eigen at the
bottom — plus the paper's Section-IV reference implementation.

Run:  python examples/quickstart.py [size]
"""

import sys

import numpy as np

from repro import (
    ReferenceSmmDriver,
    machine_summary,
    make_driver,
    make_rng,
    phytium2000plus,
    random_matrix,
)


def main() -> None:
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    machine = phytium2000plus()
    print(machine_summary(machine))
    print()

    rng = make_rng()
    a = random_matrix(rng, size, size)
    b = random_matrix(rng, size, size)
    reference_result = a @ b

    print(f"C = A @ B with M = N = K = {size} (fp32), single thread")
    print(f"{'library':<14} {'GFLOPS':>8} {'% of peak':>10} "
          f"{'pack share':>11} {'max |err|':>10}")
    rows = []
    for lib in ("openblas", "blis", "blasfeo", "eigen"):
        driver = make_driver(lib, machine)
        result = driver.gemm(a, b)
        timing = result.timing
        err = float(np.max(np.abs(result.c - reference_result)))
        rows.append((lib, timing.gflops(machine),
                     timing.efficiency(machine, np.float32),
                     timing.packing_cycles / timing.total_cycles, err))

    ref = ReferenceSmmDriver(machine)
    result = ref.gemm(a, b)
    err = float(np.max(np.abs(result.c - reference_result)))
    rows.append(("reference", result.timing.gflops(machine),
                 result.timing.efficiency(machine, np.float32),
                 result.timing.packing_cycles / result.timing.total_cycles,
                 err))

    for lib, gflops, eff, pack, err in rows:
        print(f"{lib:<14} {gflops:>8.2f} {eff:>9.1%} {pack:>10.1%} "
              f"{err:>10.2e}")

    decision = result.info["decision"]
    print()
    print(f"reference SMM decision: packed_b={decision.packed_b}, "
          f"main kernel {decision.kernel_shape}")


if __name__ == "__main__":
    main()
