#!/usr/bin/env python3
"""Full characterization sweep: regenerate every paper figure and table.

Runs the complete experiment battery (Figures 5-10, Tables I-II, plus the
Section-IV reference comparison) and prints the text renderings — the same
artifacts the benchmark harness writes to ``benchmarks/out/``.

Run:  python examples/characterization_sweep.py [--quick]
      python examples/characterization_sweep.py --markdown REPORT.md
"""

import pathlib
import sys
import time

from repro import phytium2000plus
from repro.analysis import (
    fig5a,
    fig5b,
    fig5c,
    fig5d,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    reference_comparison,
    table1,
    table2,
)


def main() -> None:
    quick = "--quick" in sys.argv
    machine = phytium2000plus()
    started = time.time()

    if "--markdown" in sys.argv:
        from repro.analysis import generate_report

        target = pathlib.Path(
            sys.argv[sys.argv.index("--markdown") + 1]
            if sys.argv.index("--markdown") + 1 < len(sys.argv)
            else "REPORT.md"
        )
        target.write_text(generate_report(machine) + "\n")
        print(f"wrote {target} in {time.time() - started:.1f}s")
        return

    print("=" * 72)
    print("Table I — library kernel comparison")
    print("=" * 72)
    print(table1().render())

    for name, fn in (("Figure 5(a)", fig5a), ("Figure 5(b)", fig5b),
                     ("Figure 5(c)", fig5c), ("Figure 5(d)", fig5d)):
        print("\n" + "=" * 72)
        print(f"{name} — single-thread SMM performance")
        print("=" * 72)
        print(fn(machine).render())
        if quick:
            break

    print("\n" + "=" * 72)
    print("Figure 6 — packing overhead")
    print("=" * 72)
    print(fig6(machine).render())

    print("\n" + "=" * 72)
    print("Figure 7 — the 8x4 edge micro-kernel")
    print("=" * 72)
    result = fig7(machine)
    print(result["naive_listing"])
    print(f"\nnaive 8x4: {result['naive_efficiency']:.1%} of peak; "
          f"edge family: " + ", ".join(
              f"{k}={v:.0%}" for k, v in
              result["edge_family_efficiency"].items()))

    print("\n" + "=" * 72)
    print("Figure 8 — packing the N-edge sliver")
    print("=" * 72)
    print(fig8(machine).render())

    print("\n" + "=" * 72)
    print("Figure 9 — kernel-only efficiency")
    print("=" * 72)
    for sweep in fig9(machine).values():
        print(sweep.render())
        if quick:
            break

    print("\n" + "=" * 72)
    print("Figure 10 — 64-thread comparison")
    print("=" * 72)
    for sweep in fig10(machine).values():
        print(sweep.render())
        if quick:
            break

    print("\n" + "=" * 72)
    print("Table II — BLIS multithreaded breakdown")
    print("=" * 72)
    print(table2(machine).render())

    print("\n" + "=" * 72)
    print("Section IV — reference SMM vs the libraries")
    print("=" * 72)
    print(reference_comparison(machine).render())

    print(f"\ncomplete in {time.time() - started:.1f}s "
          "(cost models, no operand arrays)")


if __name__ == "__main__":
    main()
