#!/usr/bin/env python3
"""Algorithm-Based Fault Tolerance: checksum GEMMs as extreme SMM.

The paper's third motivation: ABFT encodes checksums with a tall-and-
skinny weight matrix — a (2 x M) @ (M x N) multiplication, about as
"small-scale" as GEMM gets in one dimension.  This example encodes a
payload, injects a silent bit-flip-style corruption, and uses the double
checksum to locate and correct it.

Run:  python examples/abft_checksum.py
"""

import numpy as np

from repro import ReferenceSmmDriver, make_rng, phytium2000plus, random_matrix
from repro.workloads import correct_single_error, encode, locate_single_error, verify


def main() -> None:
    machine = phytium2000plus()
    rng = make_rng()
    driver = ReferenceSmmDriver(machine)

    payload = random_matrix(rng, 128, 256)
    clean = payload.copy()

    encoding = encode(payload, driver)
    shape = (encoding.weights.shape[0], payload.shape[1], payload.shape[0])
    print(f"checksum GEMM shape (M, N, K) = {shape}  — M << N, K")
    print(f"encode throughput: {encoding.timing.gflops(machine):.2f} GFLOPS "
          f"({encoding.timing.efficiency(machine, np.float32):.1%} of peak; "
          "tall-and-skinny shapes cannot amortize their B traffic)")
    print(f"payload verifies clean: {verify(payload, encoding)}")

    # a silent data corruption strikes
    payload[37, 101] += 0.125
    print(f"\ncorrupted element (37, 101) by +0.125")
    print(f"payload verifies: {verify(payload, encoding)}")

    hit = locate_single_error(payload, encoding)
    row, col, delta = hit
    print(f"located error at ({row}, {col}), delta {delta:+.4f}")

    fixed = correct_single_error(payload, encoding)
    max_err = float(np.max(np.abs(fixed - clean)))
    print(f"corrected; max deviation from clean payload: {max_err:.2e}")
    assert verify(fixed, encoding)
    print("corrected payload verifies clean again")


if __name__ == "__main__":
    main()
