#!/usr/bin/env python3
"""Build your own machine and re-run the characterization on it.

The machine model is fully parameterized; this example sketches a
hypothetical next-generation ARMv9-class part (256-bit SIMD, two FMA
pipes, bigger L1, LRU L2) and asks which of the paper's SMM conclusions
carry over — the "what would this study say about *your* silicon?" use
case for the library.

Run:  python examples/custom_machine.py
"""

import numpy as np

from repro import (
    CacheConfig,
    CoreConfig,
    MachineConfig,
    NumaConfig,
    machine_summary,
    make_driver,
    phytium2000plus,
)
from repro.analysis import fig5, table2
from repro.workloads import fig5a_square


def hypothetical_armv9() -> MachineConfig:
    """A plausible near-future many-core: wider SIMD, saner L2."""
    core = CoreConfig(
        name="armv9-hypo",
        freq_hz=2.6e9,
        dispatch_width=6,
        rob_entries=256,
        ports={"fma": 2, "alu": 3, "load": 3, "store": 2, "branch": 1},
        latencies={"fma": 4, "fmul": 4, "fadd": 3, "alu": 1, "load": 4,
                   "store": 1, "branch": 1, "dup": 3},
        vector_registers=32,
        vector_bits=256,
        scheduler_window=64,
    )
    l1d = CacheConfig(name="L1D", size_bytes=64 * 1024, line_bytes=64,
                      associativity=4, replacement="lru", hit_latency=4)
    l2 = CacheConfig(name="L2", size_bytes=1024 * 1024, line_bytes=64,
                     associativity=8, shared_by=1, replacement="lru",
                     hit_latency=14)
    numa = NumaConfig(panels=4, cores_per_panel=16,
                      local_dram_latency=110, remote_factor=1.4,
                      barrier_stage_cycles=300,
                      dram_bytes_per_cycle=24.0)
    return MachineConfig(core=core, l1d=l1d, l2=l2, numa=numa,
                         name="armv9-hypothetical")


def main() -> None:
    baseline = phytium2000plus()
    custom = hypothetical_armv9()
    print(machine_summary(custom))
    print()

    shapes = fig5a_square(step=20)
    base_fig = fig5(baseline, shapes, "fig5a-base", 0)
    cust_fig = fig5(custom, shapes, "fig5a-custom", 0)

    print("single-thread SMM efficiency, baseline vs hypothetical:")
    print(f"{'size':>6} {'blasfeo@FT2000+':>16} {'blasfeo@armv9':>14} "
          f"{'openblas@FT2000+':>17} {'openblas@armv9':>15}")
    for i, (s, _, _) in enumerate(shapes):
        print(f"{s:>6} "
              f"{base_fig.series_by_name('blasfeo').ys[i]:>15.1%} "
              f"{cust_fig.series_by_name('blasfeo').ys[i]:>13.1%} "
              f"{base_fig.series_by_name('openblas').ys[i]:>16.1%} "
              f"{cust_fig.series_by_name('openblas').ys[i]:>14.1%}")

    # which conclusions survive?
    def mean(fig, lib):
        return float(np.mean(fig.series_by_name(lib).ys))

    print("\nconclusion checks on the hypothetical machine:")
    checks = [
        ("BLASFEO (no packing) still best single-thread",
         mean(cust_fig, "blasfeo") > max(mean(cust_fig, lib) for lib in
                                         ("openblas", "blis", "eigen"))),
        ("Eigen (uncontracted compiled code) still worst",
         mean(cust_fig, "eigen") < min(mean(cust_fig, lib) for lib in
                                       ("openblas", "blis", "blasfeo"))),
        ("small sizes still far below peak",
         cust_fig.series_by_name("blasfeo").ys[0] < 0.85),
    ]
    for label, ok in checks:
        print(f"  [{'x' if ok else ' '}] {label}")

    print("\nTable II analogue on the hypothetical machine (first rows):")
    t2 = table2(custom, threads=custom.n_cores)
    for line in t2.render().splitlines()[:7]:
        print(" ", line)

    # spot-check functional correctness on the custom machine too
    from repro.util import make_rng, random_matrix

    rng = make_rng()
    a, b = random_matrix(rng, 33, 29), random_matrix(rng, 29, 31)
    result = make_driver("blis", custom).gemm(a, b)
    assert np.allclose(result.c, a @ b, atol=1e-4)
    print("\nfunctional check on custom machine: OK")


if __name__ == "__main__":
    main()
