#!/usr/bin/env python3
"""DNN inference on SMM: small-batch MLP / LSTM / CNN layers.

The paper's first motivation for SMM is deep learning: at small batch
sizes every layer is a small GEMM.  This example lowers three model
families to their GEMM streams and runs them through the batched
reference-SMM context, comparing against the OpenBLAS model — the gap is
exactly the paper's packing-plus-edge-case story.

Run:  python examples/dnn_layers.py
"""

import numpy as np

from repro import BatchedSmm, make_driver, make_rng, phytium2000plus
from repro.workloads import (
    im2col_conv_layers,
    lstm_cell,
    materialize,
    mlp_layers,
)


def run_model(name, layers, machine, rng):
    pairs = materialize(layers, rng)

    batch = BatchedSmm(machine)
    result = batch.run(pairs)

    openblas = make_driver("openblas", machine)
    openblas_timing = None
    for a, b in pairs:
        t = openblas.gemm(a, b).timing
        openblas_timing = t if openblas_timing is None \
            else openblas_timing.merged_with(t)

    # verify against NumPy
    for (a, b), out in zip(pairs, result.outputs):
        np.testing.assert_allclose(out, a @ b, rtol=1e-4, atol=1e-4)

    ref_gflops = result.timing.gflops(machine)
    ob_gflops = openblas_timing.gflops(machine)
    print(f"{name:<22} {len(layers):>3} layers  "
          f"reference {ref_gflops:7.2f} GFLOPS  "
          f"openblas {ob_gflops:7.2f} GFLOPS  "
          f"speedup {ref_gflops / ob_gflops:5.2f}x  "
          f"jit-hit {result.jit_hit_rate:5.1%}")
    for layer in layers:
        print(f"    {layer.name:<10} M={layer.m:<5} N={layer.n:<5} "
              f"K={layer.k:<5} ({layer.flops/1e3:8.1f} kflops)")


def main() -> None:
    machine = phytium2000plus()
    rng = make_rng()
    print("small-batch DNN inference as SMM streams "
          "(single core, simulated Phytium 2000+)\n")
    run_model("MLP (batch=8)", mlp_layers(batch=8), machine, rng)
    print()
    run_model("LSTM cell (batch=4)", lstm_cell(batch=4, hidden=64),
              machine, rng)
    print()
    run_model("CNN im2col (28x28)",
              im2col_conv_layers(image=28, channels=(1, 8, 16)),
              machine, rng)


if __name__ == "__main__":
    main()
