#!/usr/bin/env python3
"""Block-sparse matrix multiplication (BCSR) on top of fast SMM.

The paper's second motivation: block-sparse formats such as Block
Compressed Sparse Row turn SpMM into a stream of small dense GEMMs, one
per stored block.  This example builds a random BCSR matrix, multiplies
it by a dense matrix through the reference SMM driver, verifies against
the dense product, and shows how the block size changes the SMM shapes.

Run:  python examples/block_sparse_bcsr.py
"""

import numpy as np

from repro import ReferenceSmmDriver, make_rng, phytium2000plus, random_matrix
from repro.workloads import bcsr_spmm, random_bcsr


def main() -> None:
    machine = phytium2000plus()
    rng = make_rng()

    rows, cols, rhs_cols = 256, 256, 32
    dense_rhs = random_matrix(rng, cols, rhs_cols)
    driver = ReferenceSmmDriver(machine)

    print(f"BCSR SpMM: ({rows} x {cols}) sparse @ ({cols} x {rhs_cols}) "
          f"dense, density 0.15\n")
    print(f"{'block':>8} {'stored':>7} {'GFLOPS':>8} {'% peak':>8} "
          f"{'useful flops':>13}")
    for br, bc in ((4, 4), (8, 8), (16, 16), (32, 32)):
        matrix = random_bcsr(rng, rows, cols, br=br, bc=bc, density=0.15)
        out, timing = bcsr_spmm(matrix, dense_rhs, driver)
        np.testing.assert_allclose(
            out, matrix.to_dense() @ dense_rhs, rtol=1e-4, atol=1e-4
        )
        print(f"{br:>4}x{bc:<3} {matrix.nnz_blocks:>7} "
              f"{timing.gflops(machine):>8.2f} "
              f"{timing.efficiency(machine, np.float32):>7.1%} "
              f"{timing.useful_flops:>13,}")

    print("\nLarger blocks amortize per-call overhead and lift efficiency —")
    print("the LIBXSMM-style argument for block-sparse formats built on SMM.")

    # batch parallelism: every stored block is an independent SMM
    from repro import BatchedSmm
    from repro.workloads import bcsr_spmm_parallel

    matrix = random_bcsr(rng, rows, cols, br=8, bc=8, density=0.15)
    serial_out, serial = bcsr_spmm(matrix, dense_rhs, driver)
    print("\ndistributing the block GEMMs across cores "
          "(8x8 blocks, density 0.15):")
    print(f"{'cores':>6} {'cycles':>12} {'speedup':>8}")
    print(f"{1:>6} {serial.total_cycles:>12,.0f} {'1.0x':>8}")
    for cores in (4, 16, 64):
        out, timing = bcsr_spmm_parallel(
            matrix, dense_rhs, BatchedSmm(machine), cores=cores
        )
        np.testing.assert_allclose(out, serial_out, rtol=1e-4, atol=1e-4)
        speedup = serial.total_cycles / timing.total_cycles
        print(f"{cores:>6} {timing.total_cycles:>12,.0f} "
              f"{speedup:>7.1f}x")


if __name__ == "__main__":
    main()
