"""Tests for stall attribution and the kernel doctor."""

import pytest

from repro.blas import shared_generator
from repro.isa import fmla, ldr_q, movi_zero
from repro.kernels import KernelSpec
from repro.machine import CoreConfig
from repro.pipeline import OoOScheduler, diagnose_kernel


class TestStallAttribution:
    def test_dependency_chain_attributed(self):
        sched = OoOScheduler(CoreConfig())
        stream = [fmla("v0", "v8", "v9") for _ in range(10)]
        res = sched.run(stream, record_ops=True)
        reasons = [op.stall_reason for op in res.ops[1:]]
        assert all(r == "dependency" for r in reasons)

    def test_port_contention_attributed(self):
        sched = OoOScheduler(CoreConfig())
        stream = [fmla(f"v{i}", "v20", "v21") for i in range(8)]
        res = sched.run(stream, record_ops=True)
        # the first issues clean; later ones queue behind the single pipe
        assert res.ops[0].stall_reason in ("none", "dispatch")
        assert sum(1 for op in res.ops if op.stall_reason == "port") >= 4

    def test_load_into_fma_dependency(self):
        sched = OoOScheduler(CoreConfig())
        res = sched.run([ldr_q("v4", "x0"), fmla("v0", "v4", "v2")],
                        record_ops=True)
        assert res.ops[1].stall_reason == "dependency"

    def test_unstalled_first_instruction(self):
        sched = OoOScheduler(CoreConfig())
        res = sched.run([movi_zero("v0")], record_ops=True)
        assert res.ops[0].stall_reason == "none"

    def test_window_attribution_under_tiny_window(self):
        # a latency-stalled fmla chain holds the 2-entry window; the movi
        # ops behind it are ready but cannot enter -> 'window'
        sched = OoOScheduler(CoreConfig(scheduler_window=2))
        stream = [fmla("v0", "v8", "v9") for _ in range(6)]
        stream.append(movi_zero("v16"))
        res = sched.run(stream, record_ops=True)
        movi_op = res.ops[-1]
        assert movi_op.stall_reason == "window"
        # it issued long after its dispatch cycle, held out by the chain
        assert movi_op.issue_cycle > movi_op.dispatch_cycle + 5


class TestKernelDoctor:
    def test_port_bound_main_kernel(self, machine):
        kernel = shared_generator().generate(
            KernelSpec(16, 4, unroll=4, label="doc1")
        )
        diag = diagnose_kernel(kernel, machine.core)
        assert diag.efficiency == pytest.approx(1.0, rel=0.02)
        assert diag.binding_resource == "port:fma"
        assert diag.stall_histogram  # non-empty

    def test_chain_bound_edge_kernel(self, machine):
        kernel = shared_generator().generate(
            KernelSpec(4, 4, unroll=4, label="doc2")
        )
        diag = diagnose_kernel(kernel, machine.core)
        assert diag.efficiency == pytest.approx(0.8, rel=0.05)
        assert diag.binding_resource == "fma-chains"
        assert diag.stall_histogram.get("dependency", 0) > 0

    def test_render_is_informative(self, machine):
        kernel = shared_generator().generate(
            KernelSpec(8, 4, unroll=2, label="doc3")
        )
        text = diagnose_kernel(kernel, machine.core).render()
        assert "cycles/k-step" in text
        assert "binding" in text
        assert "issue-wait attribution" in text

    def test_cli_kernel_command(self, capsys):
        from repro.cli import main

        assert main(["kernel", "8", "4", "--style", "naive"]) == 0
        out = capsys.readouterr().out
        assert "fmla" in out
        assert "binding" in out

    def test_cli_kernel_no_contraction(self, capsys):
        from repro.cli import main

        assert main(["kernel", "12", "4", "--style", "compiled",
                     "--unroll", "1", "--no-contraction"]) == 0
        out = capsys.readouterr().out
        assert "fmul" in out
