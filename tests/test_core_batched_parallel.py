"""Tests for batch-across-cores parallelism and the attention workload."""

import numpy as np
import pytest

from repro.core import BatchedSmm
from repro.util import make_rng, random_matrix
from repro.util.errors import ConfigError, DriverError
from repro.workloads import attention_head_layers, materialize


def make_pairs(rng, count=12, shape=(16, 24, 16)):
    m, n, k = shape
    return [
        (random_matrix(rng, m, k), random_matrix(rng, k, n))
        for _ in range(count)
    ]


class TestBatchAcrossCores:
    def test_outputs_correct(self, machine, rng):
        batch = BatchedSmm(machine)
        pairs = make_pairs(rng)
        result = batch.run_across_cores(pairs, cores=4)
        for (a, b), out in zip(pairs, result.outputs):
            np.testing.assert_allclose(out, a @ b, rtol=1e-4, atol=1e-5)

    def test_critical_path_shrinks_with_cores(self, machine, rng):
        batch = BatchedSmm(machine)
        pairs = make_pairs(rng, count=16)
        t1 = batch.run_across_cores(pairs, cores=1).timing.total_cycles
        t4 = batch.run_across_cores(pairs, cores=4).timing.total_cycles
        t16 = batch.run_across_cores(pairs, cores=16).timing.total_cycles
        assert t4 < t1
        assert t16 < t4
        # near-linear until the batch runs out of parallelism
        assert t1 / t4 > 3.0

    def test_saturates_when_cores_exceed_batch(self, machine, rng):
        batch = BatchedSmm(machine)
        pairs = make_pairs(rng, count=4)
        t4 = batch.run_across_cores(pairs, cores=4).timing
        t32 = batch.run_across_cores(pairs, cores=32).timing
        # no more than a barrier's worth of difference in kernel time
        assert t32.kernel_cycles == pytest.approx(t4.kernel_cycles, rel=0.05)

    def test_lpt_balances_mixed_batch(self, machine, rng):
        batch = BatchedSmm(machine)
        pairs = make_pairs(rng, count=6, shape=(32, 32, 32)) + \
            make_pairs(rng, count=6, shape=(8, 8, 8))
        result = batch.run_across_cores(pairs, cores=4)
        assert result.timing.extra["imbalance"] < 1.5

    def test_join_barrier_charged(self, machine, rng):
        batch = BatchedSmm(machine)
        result = batch.run_across_cores(make_pairs(rng), cores=8)
        assert result.timing.sync_cycles > 0

    def test_rejects_bad_args(self, machine, rng):
        batch = BatchedSmm(machine)
        with pytest.raises(DriverError):
            batch.run_across_cores([], cores=4)
        with pytest.raises(DriverError):
            batch.run_across_cores(make_pairs(rng), cores=0)
        with pytest.raises(DriverError):
            batch.run_across_cores(make_pairs(rng), cores=65)

    def test_across_beats_within_for_tiny_gemms(self, machine, rng):
        """The headline of batch parallelism: for tiny GEMMs, distributing
        whole multiplications across cores beats giving each one all the
        threads."""
        from repro.core import ReferenceSmmDriver

        pairs = make_pairs(rng, count=64, shape=(16, 16, 16))
        batch = BatchedSmm(machine)
        across = batch.run_across_cores(pairs, cores=16).timing

        within_driver = ReferenceSmmDriver(machine, threads=16)
        within_cycles = sum(
            within_driver.cost_gemm(16, 16, 16)[0].total_cycles
            for _ in pairs
        )
        assert across.total_cycles < within_cycles


class TestAttentionWorkload:
    def test_layer_inventory(self):
        layers = attention_head_layers(seq=64, model_dim=128, heads=8)
        assert len(layers) == 3 + 2 * 8 + 1
        names = [l.name for l in layers]
        assert "scores-h0" in names and "context-h7" in names

    def test_head_dim_shapes(self):
        layers = attention_head_layers(seq=32, model_dim=64, heads=4)
        scores = next(l for l in layers if l.name == "scores-h0")
        assert scores.shape == (32, 32, 16)
        context = next(l for l in layers if l.name == "context-h0")
        assert context.shape == (32, 16, 32)

    def test_rejects_indivisible_heads(self):
        with pytest.raises(ConfigError):
            attention_head_layers(model_dim=100, heads=8)

    def test_attention_batch_runs(self, machine, rng):
        layers = attention_head_layers(seq=32, model_dim=64, heads=4)
        pairs = materialize(layers, rng)
        batch = BatchedSmm(machine)
        result = batch.run_across_cores(pairs, cores=8)
        for (a, b), out in zip(pairs, result.outputs):
            np.testing.assert_allclose(out, a @ b, rtol=1e-4, atol=1e-4)
        assert result.timing.efficiency(machine, np.float32, 8) > 0.2
