"""Failure injection: the library must fail loudly and correctly.

Exercises malformed inputs, inconsistent configurations, NaN/Inf
propagation, and adversarial geometry across every subsystem boundary.
"""

import numpy as np
import pytest

from repro.blas import make_driver
from repro.caches import CacheSim, GebpCacheModel
from repro.core import ReferenceSmmDriver
from repro.isa import KernelSequence, fmla, movi_zero
from repro.isa.instructions import Instruction
from repro.machine import CacheConfig, CoreConfig, phytium2000plus
from repro.parallel import MultithreadedGemm
from repro.util import make_rng, random_matrix
from repro.util.errors import (
    ConfigError,
    DriverError,
    IsaError,
    ParallelError,
    ReproError,
    ScheduleError,
)


class TestMalformedInstructions:
    def test_bad_port_rejected(self):
        with pytest.raises(IsaError, match="port"):
            Instruction(text="x", port="teleport", latency_key="alu")

    def test_bad_register_rejected(self):
        with pytest.raises(IsaError, match="register"):
            Instruction(text="x", port="alu", latency_key="alu",
                        reads=("w0",))

    def test_negative_flops_rejected(self):
        with pytest.raises(IsaError):
            Instruction(text="x", port="fma", latency_key="fma", flops=-1)

    def test_unknown_latency_surfaces_at_schedule_time(self, machine):
        from repro.pipeline import OoOScheduler

        rogue = Instruction(text="rogue", port="alu", latency_key="warp")
        with pytest.raises(ScheduleError, match="latency key"):
            OoOScheduler(machine.core).run([rogue])

    def test_kernel_sequence_rejects_garbage(self):
        with pytest.raises(IsaError):
            KernelSequence("bad", (), (movi_zero("v0"), "nop"), (), {})


class TestInconsistentConfigs:
    def test_core_with_zero_window(self):
        with pytest.raises(ConfigError):
            CoreConfig(scheduler_window=0)

    def test_cache_too_small_for_geometry(self):
        with pytest.raises(ConfigError):
            CacheConfig(name="x", size_bytes=32, line_bytes=64)

    def test_cache_model_rejects_oversharing(self, machine):
        with pytest.raises(ConfigError):
            GebpCacheModel(machine, active_l2_sharers=99)

    def test_machine_rejects_core_count_mismatch(self):
        from dataclasses import replace

        base = phytium2000plus()
        with pytest.raises(ConfigError, match="divide"):
            replace(base, l2=replace(base.l2, shared_by=7))


class TestNumericalPoison:
    @pytest.mark.parametrize("lib", ["openblas", "blis", "blasfeo", "eigen"])
    def test_nan_propagates_like_numpy(self, machine, lib):
        rng = make_rng(101)
        a = random_matrix(rng, 8, 8)
        b = random_matrix(rng, 8, 8)
        a[2, 3] = np.nan
        result = make_driver(lib, machine).gemm(a, b)
        reference = a @ b
        np.testing.assert_array_equal(np.isnan(result.c),
                                      np.isnan(reference))

    def test_inf_propagates(self, machine):
        rng = make_rng(102)
        a = random_matrix(rng, 8, 8)
        b = random_matrix(rng, 8, 8)
        a[0, 0] = np.inf
        result = ReferenceSmmDriver(machine).gemm(a, b)
        assert np.isinf(result.c).any()

    def test_zero_alpha_zeroes_product(self, machine):
        rng = make_rng(103)
        a = random_matrix(rng, 8, 8)
        b = random_matrix(rng, 8, 8)
        c = random_matrix(rng, 8, 8)
        result = make_driver("blis", machine).gemm(a, b, c=c, alpha=0.0,
                                                   beta=1.0)
        np.testing.assert_allclose(result.c, c, atol=1e-6)


class TestAdversarialGeometry:
    def test_one_by_everything(self, machine):
        rng = make_rng(104)
        for lib in ("openblas", "blis", "blasfeo", "eigen"):
            drv = make_driver(lib, machine)
            a = random_matrix(rng, 1, 173)
            b = random_matrix(rng, 173, 1)
            result = drv.gemm(a, b)
            np.testing.assert_allclose(result.c, a @ b, rtol=1e-4,
                                       atol=1e-5)

    def test_prime_dimensions(self, machine):
        rng = make_rng(105)
        a = random_matrix(rng, 97, 89)
        b = random_matrix(rng, 89, 83)
        result = ReferenceSmmDriver(machine).gemm(a, b)
        np.testing.assert_allclose(result.c, a @ b, rtol=1e-4, atol=1e-4)

    def test_extreme_aspect_ratio(self, machine):
        rng = make_rng(106)
        a = random_matrix(rng, 2, 1024)
        b = random_matrix(rng, 1024, 2)
        for lib in ("openblas", "blasfeo"):
            result = make_driver(lib, machine).gemm(a, b)
            np.testing.assert_allclose(result.c, a @ b, rtol=1e-3,
                                       atol=1e-3)

    def test_degenerate_dimension_rejected(self, machine):
        a = np.zeros((0, 4), dtype=np.float32, order="F")
        b = np.zeros((4, 4), dtype=np.float32, order="F")
        with pytest.raises(DriverError):
            make_driver("blis", machine).gemm(a, b)


class TestParallelMisuse:
    def test_zero_threads(self, machine):
        with pytest.raises(ParallelError):
            MultithreadedGemm(machine, "blis", threads=0)

    def test_cost_on_invalid_shape(self, machine):
        mt = MultithreadedGemm(machine, "blis", threads=4)
        with pytest.raises(ReproError):
            mt.cost(0, 64, 64)


class TestCacheSimPoison:
    def test_huge_stride_is_safe(self, machine):
        sim = CacheSim(machine.l1d)
        misses = sim.access_range(0, 16, stride=1 << 30)
        assert misses == 16

    def test_zero_width_access_rejected(self, machine):
        sim = CacheSim(machine.l1d)
        with pytest.raises(ConfigError):
            sim.access(0, 0)

    def test_trace_rejects_bad_geometry(self):
        from repro.caches import GebpTraceConfig

        with pytest.raises(ConfigError):
            GebpTraceConfig(mc=4, nc=4, kc=4, mr=0, nr=4)
