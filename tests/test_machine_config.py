"""Unit tests for the machine-model configuration layer."""

import numpy as np
import pytest

from repro.machine import (
    CacheConfig,
    CoreConfig,
    MachineConfig,
    NumaConfig,
    a64fx_like,
    machine_summary,
    phytium2000plus,
)
from repro.util.errors import ConfigError


class TestCoreConfig:
    def test_simd_lanes_fp32_fp64(self):
        core = CoreConfig()
        assert core.simd_lanes(np.float32) == 4
        assert core.simd_lanes(np.float64) == 2

    def test_flops_per_cycle(self):
        core = CoreConfig()
        assert core.flops_per_cycle(np.float32) == 8.0
        assert core.flops_per_cycle(np.float64) == 4.0

    def test_peak_gflops(self):
        core = CoreConfig(freq_hz=2.2e9)
        assert core.peak_gflops(np.float64) == pytest.approx(8.8)

    def test_rejects_missing_port_class(self):
        with pytest.raises(ConfigError, match="port class"):
            CoreConfig(ports={"fma": 1})

    def test_rejects_bad_latency(self):
        with pytest.raises(ConfigError, match="latency"):
            CoreConfig(latencies={"fma": 0})

    def test_rejects_tiny_vector(self):
        with pytest.raises(ConfigError):
            CoreConfig(vector_bits=32)

    def test_rejects_wide_dtype(self):
        core = CoreConfig(vector_bits=64)
        with pytest.raises(ConfigError):
            core.simd_lanes(np.complex128)


class TestCacheConfig:
    def test_n_sets(self):
        c = CacheConfig(name="L1", size_bytes=32 * 1024, line_bytes=64,
                        associativity=4)
        assert c.n_sets == 128

    def test_rejects_bad_replacement(self):
        with pytest.raises(ConfigError, match="replacement"):
            CacheConfig(name="x", size_bytes=1024, replacement="plru")

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ConfigError):
            CacheConfig(name="x", size_bytes=3 * 64 * 4, line_bytes=64,
                        associativity=4)


class TestNumaConfig:
    def test_total_cores(self):
        numa = NumaConfig(panels=8, cores_per_panel=8)
        assert numa.total_cores == 64

    def test_panel_of(self):
        numa = NumaConfig(panels=8, cores_per_panel=8)
        assert numa.panel_of(0) == 0
        assert numa.panel_of(63) == 7
        assert numa.panel_of(8) == 1

    def test_panel_of_out_of_range(self):
        numa = NumaConfig()
        with pytest.raises(ConfigError):
            numa.panel_of(64)

    def test_remote_latency(self):
        numa = NumaConfig(local_dram_latency=100, remote_factor=1.5)
        assert numa.remote_dram_latency == 150


class TestMachineConfig:
    def test_phytium_peak_matches_paper(self, machine):
        # the paper: 563.2 GFLOPS double precision across 64 cores
        assert machine.peak_gflops(np.float64, 64) == pytest.approx(563.2)

    def test_phytium_core_count(self, machine):
        assert machine.n_cores == 64

    def test_l2_cluster_of(self, machine):
        assert machine.l2_cluster_of(0) == 0
        assert machine.l2_cluster_of(3) == 0
        assert machine.l2_cluster_of(4) == 1

    def test_l2_cluster_rejects_bad_core(self, machine):
        with pytest.raises(ConfigError):
            machine.l2_cluster_of(64)

    def test_peak_rejects_too_many_cores(self, machine):
        with pytest.raises(ConfigError):
            machine.peak_gflops(np.float32, 65)

    def test_rejects_shared_l1(self):
        base = phytium2000plus()
        with pytest.raises(ConfigError, match="private"):
            MachineConfig(
                core=base.core,
                l1d=CacheConfig(name="L1D", size_bytes=32 * 1024, shared_by=2),
                l2=base.l2,
                numa=base.numa,
            )

    def test_with_core_override(self, machine):
        faster = machine.with_core(freq_hz=3.0e9)
        assert faster.core.freq_hz == 3.0e9
        assert machine.core.freq_hz == 2.2e9  # original untouched

    def test_summary_mentions_key_facts(self, machine):
        text = machine_summary(machine)
        assert "phytium-2000+" in text
        assert "64" in text
        assert "563.2" in text

    def test_a64fx_like_is_wider(self, wide_machine):
        assert wide_machine.core.vector_bits == 512
        assert wide_machine.core.simd_lanes(np.float32) == 16


class TestPhytiumInstanceDetails:
    def test_scheduler_window_positive(self, machine):
        assert machine.core.scheduler_window > 0

    def test_l2_is_shared_random(self, machine):
        assert machine.l2.shared_by == 4
        assert machine.l2.replacement == "random"

    def test_l1_is_private_lru(self, machine):
        assert machine.l1d.shared_by == 1
        assert machine.l1d.replacement == "lru"

    def test_numa_panels(self, machine):
        assert machine.numa.panels == 8
        assert machine.numa.cores_per_panel == 8
