"""Roofline bounds and the global no-driver-exceeds-the-roof invariant."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blas import make_driver
from repro.core import ReferenceSmmDriver
from repro.parallel import MultithreadedGemm
from repro.timing import respects_roofline, roofline
from repro.util.errors import ConfigError

LIBS = ["openblas", "blis", "blasfeo", "eigen"]


class TestRooflineMath:
    def test_warm_roof_is_compute(self, machine):
        point = roofline(machine, 64, 64, 64, cold=False)
        assert point.compute_bound
        assert point.roof_gflops == machine.peak_gflops(np.float32, 1)

    def test_cold_tiny_k_is_memory_bound(self, machine):
        # K=1: two flops per C element against three operand touches
        point = roofline(machine, 256, 256, 1, cold=True)
        assert not point.compute_bound
        assert point.max_efficiency < 0.5

    def test_cold_large_cube_is_compute_bound(self, machine):
        point = roofline(machine, 512, 512, 512, cold=True)
        assert point.compute_bound

    def test_intensity_grows_with_k(self, machine):
        p1 = roofline(machine, 64, 64, 8, cold=True)
        p2 = roofline(machine, 64, 64, 512, cold=True)
        assert p2.intensity_flops_per_byte > p1.intensity_flops_per_byte

    def test_multicore_roofs_scale(self, machine):
        p1 = roofline(machine, 256, 256, 256, n_cores=1, cold=True)
        p64 = roofline(machine, 256, 256, 256, n_cores=64, cold=True)
        assert p64.compute_roof_gflops == 64 * p1.compute_roof_gflops
        assert p64.memory_roof_gflops == 8 * p1.memory_roof_gflops

    def test_rejects_bad_cores(self, machine):
        with pytest.raises(ConfigError):
            roofline(machine, 8, 8, 8, n_cores=0)

    def test_flop_mismatch_rejected(self, machine):
        t = make_driver("blis", machine).cost_gemm(16, 16, 16)
        with pytest.raises(ConfigError):
            respects_roofline(t, machine, 32, 32, 32)


class TestDriversUnderTheRoof:
    @pytest.mark.parametrize("lib", LIBS)
    @pytest.mark.parametrize("shape", [
        (8, 8, 8), (40, 40, 40), (75, 60, 60), (128, 128, 128),
        (2, 100, 100), (100, 100, 2),
    ])
    def test_single_thread(self, machine, lib, shape):
        t = make_driver(lib, machine).cost_gemm(*shape)
        assert respects_roofline(t, machine, *shape)

    @pytest.mark.parametrize("shape", [
        (8, 8, 8), (13, 27, 9), (96, 96, 96),
    ])
    def test_reference(self, machine, shape):
        t, _ = ReferenceSmmDriver(machine).cost_gemm(*shape)
        assert respects_roofline(t, machine, *shape)

    @pytest.mark.parametrize("lib", ["openblas", "blis", "eigen"])
    def test_multithreaded(self, machine, lib):
        mt = MultithreadedGemm(machine, lib, threads=64)
        shape = (128, 2048, 2048)
        t, _ = mt.cost(*shape)
        assert respects_roofline(t, machine, *shape, n_cores=64)

    @settings(max_examples=25, deadline=None)
    @given(
        m=st.integers(1, 96),
        n=st.integers(1, 96),
        k=st.integers(1, 96),
        lib=st.sampled_from(LIBS),
    )
    def test_roofline_property(self, machine, m, n, k, lib):
        t = make_driver(lib, machine).cost_gemm(m, n, k)
        assert respects_roofline(t, machine, m, n, k)

    @settings(max_examples=15, deadline=None)
    @given(m=st.integers(1, 64), n=st.integers(1, 64), k=st.integers(1, 64))
    def test_reference_roofline_property(self, machine, m, n, k):
        t, _ = ReferenceSmmDriver(machine).cost_gemm(m, n, k)
        assert respects_roofline(t, machine, m, n, k)
