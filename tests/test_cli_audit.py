"""The ``repro audit`` CLI: both heads, self-check, injection, JSON."""

import json

import pytest

from repro.cli import main
from repro.verify.planrules import (
    CACHE_RULES,
    CONCURRENCY_RULES,
    RULE_CATALOG_VERSION,
)


@pytest.fixture()
def warmed_cache(tmp_path):
    """A small on-disk cache warmed through the tune CLI."""
    path = str(tmp_path / "cache.json")
    assert main(["tune", "warm", "--shapes", "4:12:4",
                 "--cache", path, "--jobs", "1"]) == 0
    return path


class TestAuditCli:
    def test_shipped_tree_audits_clean(self, capsys):
        assert main(["audit"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("OK")
        assert "0 finding(s)" in out

    def test_json_payload_shape(self, capsys):
        assert main(["audit", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["mode"] == "audit"
        assert payload["ok"] is True
        assert payload["rule_catalog_version"] == RULE_CATALOG_VERSION
        assert payload["files_scanned"] > 50
        assert payload["findings"] == []

    def test_self_check_fires_all_nine_rules(self, capsys):
        assert main(["audit", "--self-check", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        fired = {r["rule"] for r in payload["results"] if r["fired"]}
        assert fired == set(CONCURRENCY_RULES) | set(CACHE_RULES)

    def test_inject_bad_fails_with_both_heads(self, capsys):
        assert main(["audit", "--inject-bad"]) == 1
        out = capsys.readouterr().out
        assert "C002-unpicklable-submission" in out
        assert "V502-fingerprint-consistency" in out
        assert "FAIL" in out

    def test_warmed_cache_audits_clean(self, warmed_cache, capsys):
        assert main(["audit", "--cache", warmed_cache]) == 0
        out = capsys.readouterr().out
        assert "3 entries" in out and "0 finding(s)" in out

    def test_tampered_cache_fails(self, warmed_cache, capsys):
        data = json.loads(open(warmed_cache).read())
        data["fingerprint"] = "0" * 16
        with open(warmed_cache, "w") as fh:
            json.dump(data, fh)
        assert main(["audit", "--cache", warmed_cache, "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert any(f["rule"] == "V502-fingerprint-consistency"
                   for f in payload["findings"])

    def test_unreadable_cache_exits_2(self, tmp_path, capsys):
        assert main(["audit", "--cache", str(tmp_path / "no.json")]) == 2
        assert "error" in capsys.readouterr().out

    def test_machine_override(self, capsys):
        # the audit verifies against the requested machine model
        assert main(["audit", "--machine", "graviton2_like"]) == 0
        capsys.readouterr()


class TestCatalogCli:
    def test_list_rules_includes_all_families(self, capsys):
        assert main(["lint", "--list-rules", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rule_catalog_version"] == RULE_CATALOG_VERSION
        rules = {r["rule"] for r in payload["rules"]}
        assert set(CONCURRENCY_RULES) <= rules
        assert set(CACHE_RULES) <= rules
        assert "V001-uninitialized-read" in rules or any(
            r.startswith("V0") for r in rules
        )
