"""Gap-filling tests for small utilities and rarely-hit paths."""

import numpy as np
import pytest

from repro.blas import make_blasfeo, quantize_penalty
from repro.blas.base import GemmResult
from repro.caches.simulator import CacheStats
from repro.timing import GemmTiming
from repro.util.errors import DriverError


class TestQuantizePenalty:
    def test_rounds_to_step(self):
        assert quantize_penalty(0.07) == pytest.approx(0.05)
        assert quantize_penalty(0.13) == pytest.approx(0.15)

    def test_zero_stable(self):
        assert quantize_penalty(0.0) == 0.0

    def test_custom_step(self):
        assert quantize_penalty(0.3, step=0.25) == pytest.approx(0.25)


class TestGemmResult:
    def test_gflops_per_core_cycle(self):
        timing = GemmTiming(kernel_cycles=100.0, useful_flops=800)
        result = GemmResult(c=np.zeros((1, 1), dtype=np.float32),
                            timing=timing)
        assert result.gflops_per_core_cycle == pytest.approx(8.0)

    def test_zero_cycles_guarded(self):
        result = GemmResult(c=np.zeros((1, 1), dtype=np.float32),
                            timing=GemmTiming())
        assert result.gflops_per_core_cycle == 0.0


class TestCacheStats:
    def test_reset(self):
        stats = CacheStats(accesses=10, misses=3, evictions=1)
        assert stats.hits == 7
        stats.reset()
        assert stats.accesses == 0
        assert stats.miss_rate == 0.0


class TestBlasfeoValidation:
    def test_incompatible_panel_size_rejected(self, machine):
        from repro.blas import BlasfeoGemmDriver

        with pytest.raises(DriverError, match="panel size"):
            BlasfeoGemmDriver(machine, ps=3)

    def test_compatible_panel_sizes(self, machine):
        from repro.blas import BlasfeoGemmDriver

        for ps in (2, 4, 8):
            drv = BlasfeoGemmDriver(machine, ps=ps)
            assert drv.ps == ps

    def test_cost_gemm_rejects_degenerate(self, machine):
        drv = make_blasfeo(machine)
        with pytest.raises(DriverError):
            drv.cost_gemm(4, 0, 4)


class TestTimingEdgeBehaviour:
    def test_fraction_of_idle_timing(self):
        assert GemmTiming().fraction("kernel") == 0.0

    def test_gflops_of_idle_timing(self, machine):
        assert GemmTiming().gflops(machine) == 0.0

    def test_kernel_efficiency_of_idle_timing(self, machine):
        assert GemmTiming().kernel_efficiency(machine, np.float32) == 0.0


class TestSweepCustomRanges:
    def test_fig5a_custom_step(self):
        from repro.workloads import fig5a_square

        shapes = fig5a_square(step=50, stop=200)
        assert shapes == [(50, 50, 50), (100, 100, 100),
                          (150, 150, 150), (200, 200, 200)]

    def test_fig10_custom_step(self):
        from repro.workloads import fig10_mt_sweeps

        grids = fig10_mt_sweeps(step=128, stop=256)
        assert [m for m, _, _ in grids["small-M"]] == [128, 256]
