"""Correctness + behaviour tests for the four library GEMM drivers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blas import (
    BlockingParams,
    default_blocking,
    make_blasfeo,
    make_blis,
    make_driver,
    make_eigen,
    make_openblas,
)
from repro.kernels import openblas_catalog
from repro.util import make_rng, random_matrix
from repro.util.errors import DriverError

LIBS = ["openblas", "blis", "blasfeo", "eigen"]


@pytest.fixture(scope="module", params=LIBS)
def driver(request, machine):
    return make_driver(request.param, machine)


class TestNumericalCorrectness:
    @pytest.mark.parametrize("m,n,k", [
        (1, 1, 1), (4, 4, 4), (16, 4, 8), (17, 5, 9), (75, 60, 60),
        (80, 80, 80), (3, 200, 7), (200, 3, 7),
    ])
    def test_matches_numpy(self, driver, machine, m, n, k):
        rng = make_rng(m * 10000 + n * 100 + k)
        a = random_matrix(rng, m, k)
        b = random_matrix(rng, k, n)
        result = driver.gemm(a, b)
        np.testing.assert_allclose(result.c, a @ b, rtol=1e-4, atol=1e-5)

    def test_alpha_beta(self, driver):
        rng = make_rng(42)
        a = random_matrix(rng, 12, 8)
        b = random_matrix(rng, 8, 10)
        c = random_matrix(rng, 12, 10)
        result = driver.gemm(a, b, c=c, alpha=2.0, beta=-0.5)
        np.testing.assert_allclose(
            result.c, 2.0 * (a @ b) - 0.5 * c, rtol=1e-4, atol=1e-5
        )

    def test_beta_zero_ignores_c(self, driver):
        rng = make_rng(7)
        a = random_matrix(rng, 8, 8)
        b = random_matrix(rng, 8, 8)
        c = np.full((8, 8), np.nan, dtype=np.float32, order="F")
        # beta == 0 must not propagate NaNs from C
        result = driver.gemm(a, b, c=c, beta=0.0)
        assert not np.any(np.isnan(result.c))

    @settings(max_examples=25, deadline=None)
    @given(
        m=st.integers(1, 64),
        n=st.integers(1, 64),
        k=st.integers(1, 64),
        lib=st.sampled_from(LIBS),
    )
    def test_matches_numpy_property(self, machine, m, n, k, lib):
        drv = make_driver(lib, machine)
        rng = make_rng(m * 64 * 64 + n * 64 + k)
        a = random_matrix(rng, m, k)
        b = random_matrix(rng, k, n)
        np.testing.assert_allclose(
            drv.gemm(a, b).c, a @ b, rtol=1e-4, atol=1e-5
        )


class TestValidation:
    def test_shape_mismatch(self, driver):
        rng = make_rng(1)
        with pytest.raises(DriverError, match="inner dimensions"):
            driver.gemm(random_matrix(rng, 4, 5), random_matrix(rng, 6, 4))

    def test_dtype_mismatch(self, driver):
        rng = make_rng(1)
        a = random_matrix(rng, 4, 4)
        b = random_matrix(rng, 4, 4, dtype=np.float64)
        with pytest.raises(DriverError):
            driver.gemm(a, b)

    def test_bad_c_shape(self, driver):
        rng = make_rng(1)
        a = random_matrix(rng, 4, 4)
        b = random_matrix(rng, 4, 4)
        with pytest.raises(DriverError, match="C shape"):
            driver.gemm(a, b, c=random_matrix(rng, 5, 4))

    def test_unsupported_dtype(self, machine):
        drv = make_openblas(machine)
        a = np.zeros((4, 4), dtype=np.int32, order="F")
        with pytest.raises(DriverError):
            drv.gemm(a, a)

    def test_unknown_library(self, machine):
        with pytest.raises(ValueError, match="unknown library"):
            make_driver("mkl", machine)


class TestTimingBehaviour:
    def test_timing_positive_and_complete(self, driver, machine):
        rng = make_rng(3)
        result = driver.gemm(random_matrix(rng, 40, 24),
                             random_matrix(rng, 24, 36))
        t = result.timing
        assert t.total_cycles > 0
        assert t.kernel_cycles > 0
        assert t.useful_flops == 2 * 40 * 36 * 24
        assert t.executed_flops >= t.useful_flops

    def test_blasfeo_has_no_packing(self, machine):
        drv = make_blasfeo(machine)
        t = drv.cost_gemm(40, 40, 40)
        assert t.pack_a_cycles == 0.0
        assert t.pack_b_cycles == 0.0

    def test_goto_drivers_pack(self, machine):
        for factory in (make_openblas, make_blis, make_eigen):
            t = factory(machine).cost_gemm(40, 40, 40)
            assert t.pack_a_cycles > 0
            assert t.pack_b_cycles > 0

    def test_blasfeo_conversion_charged_when_asked(self, machine):
        free = make_blasfeo(machine).cost_gemm(32, 32, 32)
        charged = make_blasfeo(machine, include_conversion=True) \
            .cost_gemm(32, 32, 32)
        assert free.other_cycles == 0.0
        assert charged.other_cycles > 0.0

    def test_cost_gemm_matches_gemm_timing(self, machine):
        drv = make_openblas(machine)
        rng = make_rng(9)
        a = random_matrix(rng, 30, 20)
        b = random_matrix(rng, 20, 25)
        full = drv.gemm(a, b).timing
        cost = drv.cost_gemm(30, 25, 20)
        assert full.total_cycles == pytest.approx(cost.total_cycles)

    def test_cost_gemm_rejects_bad_shape(self, machine):
        with pytest.raises(DriverError):
            make_openblas(machine).cost_gemm(0, 4, 4)

    def test_padding_waste_blis_on_odd_m(self, machine):
        t = make_blis(machine).cost_gemm(9, 12, 16)
        assert t.padding_waste > 0

    def test_edge_kernels_slow_openblas_at_m75(self, machine):
        drv = make_openblas(machine)
        eff80 = drv.cost_gemm(80, 80, 80).efficiency(machine, np.float32)
        eff75 = drv.cost_gemm(75, 75, 75).efficiency(machine, np.float32)
        assert eff80 > eff75

    def test_cold_run_slower_than_warm(self, machine):
        warm = make_openblas(machine, warm=True).cost_gemm(40, 40, 40)
        cold = make_openblas(machine, warm=False).cost_gemm(40, 40, 40)
        assert cold.total_cycles > warm.total_cycles


class TestBlocking:
    def test_default_blocking_respects_caches(self, machine):
        params = default_blocking(machine, openblas_catalog(), 4)
        # a kc x (mr + nr) sliver pair should fit in half of L1
        sliver_bytes = params.kc * (16 + 4) * 4
        assert sliver_bytes <= machine.l1d.size_bytes
        # the packed A block should fit in L2
        assert params.mc * params.kc * 4 <= machine.l2.size_bytes

    def test_blocking_params_validation(self):
        with pytest.raises(DriverError):
            BlockingParams(mc=0, kc=10, nc=10)

    def test_custom_blocking_used(self, machine):
        custom = BlockingParams(mc=32, kc=32, nc=64)
        drv = make_openblas(machine, blocking=custom)
        assert drv.blocking is custom
        # multiple kc iterations now happen for k=100
        rng = make_rng(11)
        result = drv.gemm(random_matrix(rng, 64, 100),
                          random_matrix(rng, 100, 64))
        np.testing.assert_allclose(
            result.c,
            random_matrix(make_rng(11), 64, 100) @
            random_matrix_second(make_rng(11), 64, 100),
            rtol=1e-4, atol=1e-5,
        )


def random_matrix_second(rng, m, k):
    """Recreate the second draw of the pair (helper for the blocking test)."""
    random_matrix(rng, m, k)  # skip the first draw
    return random_matrix(rng, k, m)
