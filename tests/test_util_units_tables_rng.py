"""Unit tests for repro.util: units, tables, rng."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.rng import DEFAULT_SEED, derive_seed, make_rng, random_matrix
from repro.util.tables import format_figure, format_series, format_table, sparkline
from repro.util.units import (
    cycles_to_seconds,
    format_bytes,
    format_percent,
    gflops,
    ghz,
    kib,
    mib,
)


class TestUnits:
    def test_kib_mib(self):
        assert kib(32) == 32 * 1024
        assert mib(2) == 2 * 1024 * 1024

    def test_ghz(self):
        assert ghz(2.2) == pytest.approx(2.2e9)

    def test_cycles_to_seconds(self):
        assert cycles_to_seconds(2.2e9, 2.2e9) == pytest.approx(1.0)

    def test_cycles_to_seconds_rejects_zero_freq(self):
        with pytest.raises(ValueError):
            cycles_to_seconds(100, 0)

    def test_gflops(self):
        assert gflops(2e9, 1.0) == pytest.approx(2.0)

    def test_gflops_rejects_zero_time(self):
        with pytest.raises(ValueError):
            gflops(1e9, 0.0)

    def test_format_bytes(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(2048) == "2.0 KiB"
        assert format_bytes(3 * 1024 * 1024) == "3.0 MiB"

    def test_format_bytes_rejects_negative(self):
        with pytest.raises(ValueError):
            format_bytes(-1)

    def test_format_percent(self):
        assert format_percent(0.5) == "50.0%"
        assert format_percent(0.123, digits=2) == "12.30%"


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, 4.0]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert "a" in lines[0] and "bb" in lines[0]
        assert "2.50" in lines[2]

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [[1]])

    def test_sparkline_range(self):
        s = sparkline([0, 1, 2, 3])
        assert len(s) == 4
        assert s[0] == "▁" and s[-1] == "█"

    def test_sparkline_constant_and_empty(self):
        assert sparkline([5, 5]) == "▁▁"
        assert sparkline([]) == ""

    def test_format_series_mismatch(self):
        with pytest.raises(ValueError):
            format_series("s", [1, 2], [1.0])

    def test_format_series_content(self):
        text = format_series("lib", [10, 20], [0.5, 0.9], y_label="eff")
        assert "lib" in text and "eff" in text
        assert "0.500" in text

    def test_format_figure(self):
        text = format_figure("fig", [1, 2], [("a", [0.1, 0.2]), ("b", [0.3, 0.4])])
        assert "fig" in text
        assert "a" in text and "b" in text

    def test_format_figure_rejects_short_series(self):
        with pytest.raises(ValueError):
            format_figure("fig", [1, 2], [("a", [0.1])])


class TestRng:
    def test_determinism(self):
        a = make_rng().standard_normal(8)
        b = make_rng().standard_normal(8)
        np.testing.assert_array_equal(a, b)

    def test_derive_seed_stable_and_distinct(self):
        s1 = derive_seed(DEFAULT_SEED, "cache", "L1")
        s2 = derive_seed(DEFAULT_SEED, "cache", "L1")
        s3 = derive_seed(DEFAULT_SEED, "cache", "L2")
        assert s1 == s2
        assert s1 != s3

    def test_random_matrix_order_and_dtype(self):
        m = random_matrix(make_rng(), 5, 7)
        assert m.shape == (5, 7)
        assert m.dtype == np.float32
        assert m.flags["F_CONTIGUOUS"]

    def test_random_matrix_c_order(self):
        m = random_matrix(make_rng(), 5, 7, order="C")
        assert m.flags["C_CONTIGUOUS"]

    def test_random_matrix_rejects_negative(self):
        with pytest.raises(ValueError):
            random_matrix(make_rng(), -1, 3)

    @given(st.integers(min_value=1, max_value=16),
           st.integers(min_value=1, max_value=16))
    def test_random_matrix_bounded(self, r, c):
        m = random_matrix(make_rng(), r, c)
        assert np.all(m >= -1.0) and np.all(m < 1.0)
