"""The GEMM planning service: schema, batching, provenance, transports."""

import asyncio
import dataclasses

import pytest

from repro.plan import price_request_groups
from repro.serving import (
    MicroBatcher,
    PlanClient,
    PlanRequest,
    PlanResponse,
    PlanService,
    TcpPlanClient,
    run_service_once,
    serve_tcp,
)
from repro.tuning import AdaptiveTuner, TuningCache, warm_cache
from repro.util import ConfigError


@pytest.fixture()
def service(machine):
    """A fresh disk-less service per test (fast batching window)."""
    return PlanService(
        machine, machine_name="phytium2000plus", cache_path="",
        max_delay=0.001,
    )


@pytest.fixture(scope="module")
def direct_tuner(machine):
    """An independent tuner for bit-parity comparisons."""
    return AdaptiveTuner(machine, cache=TuningCache(machine, path=""))


class TestSchema:
    def test_request_round_trips(self):
        request = PlanRequest(m=8, n=16, k=24, threads=2,
                              machine="phytium2000plus")
        assert PlanRequest.from_dict(request.to_dict()) == request

    def test_request_token_is_bucketed(self):
        assert PlanRequest(m=24, n=100, k=100).token == \
            "24x112x112:float32:t1"

    def test_request_rejects_bad_shape_threads_dtype(self):
        with pytest.raises(ConfigError):
            PlanRequest(m=0, n=1, k=1)
        with pytest.raises(ConfigError):
            PlanRequest(m=1, n=1, k=1, threads=0)
        with pytest.raises(ConfigError):
            PlanRequest(m=1, n=1, k=1, dtype="banana")
        with pytest.raises(ConfigError):
            PlanRequest.from_dict({"m": 1, "n": 1})

    def test_response_round_trips_with_plan(self, service, direct_tuner):
        plan = direct_tuner.heuristic_plan(8, 8, 8)
        response = PlanResponse(
            request=PlanRequest(m=8, n=8, k=8), provenance="cache",
            plan=plan, pending=True,
        )
        back = PlanResponse.from_dict(response.to_dict())
        assert back.plan.to_dict() == plan.to_dict()
        assert back.pending and back.ok

    def test_response_rejects_unknown_provenance(self):
        with pytest.raises(ConfigError):
            PlanResponse(request=PlanRequest(1, 1, 1), provenance="magic")


class TestMicroBatcher:
    def test_coalesces_concurrent_submissions(self):
        batches = []

        def handler(items):
            batches.append(len(items))
            return [item * 2 for item in items]

        batcher = MicroBatcher(handler, max_batch=64, max_delay=0.005)

        async def main():
            return await asyncio.gather(
                *(batcher.submit(i) for i in range(10))
            )

        assert asyncio.run(main()) == [i * 2 for i in range(10)]
        assert batcher.stats.items == 10
        assert batcher.stats.max_batch > 1  # coalesced, not one-by-one
        assert len(batches) < 10

    def test_max_batch_splits_oversized_windows(self):
        batcher = MicroBatcher(lambda items: list(items), max_batch=4,
                               max_delay=0.005)

        async def main():
            return await asyncio.gather(
                *(batcher.submit(i) for i in range(10))
            )

        assert asyncio.run(main()) == list(range(10))
        assert batcher.stats.max_batch <= 4

    def test_handler_error_fails_the_batch(self):
        def handler(items):
            raise RuntimeError("boom")

        batcher = MicroBatcher(handler, max_delay=0.001)

        async def main():
            with pytest.raises(RuntimeError, match="boom"):
                await batcher.submit(1)

        asyncio.run(main())


class TestServing:
    def test_cold_query_is_heuristic_pending_and_bit_identical(
        self, service, direct_tuner
    ):
        async def body(service):
            return await PlanClient(service).query(10, 12, 14)

        response = run_service_once(service, body)
        assert response.provenance == "heuristic-pending"
        assert response.pending
        direct = direct_tuner.heuristic_plan(10, 12, 14)
        assert response.plan.to_dict() == direct.to_dict()

    def test_prewarm_then_all_hot(self, service):
        shapes = [(6, 6, 6), (10, 10, 10), (14, 14, 14)]

        async def body(service):
            assert service.prewarm(shapes) == 3
            assert service.prewarm(shapes) == 0  # idempotent
            return await PlanClient(service).query_shapes(shapes)

        responses = run_service_once(service, body)
        assert [r.provenance for r in responses] == ["cache"] * 3
        assert service.stats.hit_rate == 1.0

    def test_inflight_dedup_within_one_batch(self, service):
        async def body(service):
            client = PlanClient(service)
            return await client.query_shapes([(9, 9, 9)] * 4)

        responses = run_service_once(service, body)
        assert all(r.provenance == "heuristic-pending" for r in responses)
        # four queries, one bucket: tuned once, deduped three times
        assert service.stats.inflight_deduped == 3
        # and every duplicate got the same plan object
        assert len({id(r.plan) for r in responses}) == 1

    def test_background_tuning_lands_bit_identical_to_search(
        self, service, direct_tuner
    ):
        async def body(service):
            client = PlanClient(service)
            first = await client.query(7, 9, 11)
            await service.drain()
            second = await client.query(7, 9, 11)
            return first, second

        first, second = run_service_once(service, body)
        assert first.provenance == "heuristic-pending"
        assert second.provenance == "cache"
        assert not second.pending
        assert service.stats.tuned_landed == 1
        direct = direct_tuner.search(7, 9, 11)
        assert second.plan.to_dict() == direct.to_dict()

    def test_background_pool_tuning_lands(self, machine, direct_tuner):
        # jobs > 0 with a registry machine takes the ProcessPoolExecutor
        # path: the job must be the picklable module-level worker, not a
        # bound method dragging locks along (regression for the case
        # where every pool job died in pickling as a tune_failure)
        service = PlanService(
            machine, machine_name="phytium2000plus", cache_path="",
            max_delay=0.001, tune_jobs=1,
        )

        async def body(service):
            client = PlanClient(service)
            first = await client.query(7, 9, 11)
            await service.drain()
            second = await client.query(7, 9, 11)
            return first, second

        first, second = run_service_once(service, body)
        assert service.background._pool, "pool path not exercised"
        assert first.provenance == "heuristic-pending"
        assert second.provenance == "cache"
        assert service.stats.tuned_landed >= 1
        assert service.stats.tune_failures == 0
        assert service.stats.last_tune_error == ""
        direct = direct_tuner.search(7, 9, 11)
        assert second.plan.to_dict() == direct.to_dict()

    def test_served_plan_never_worse_than_heuristic(
        self, service, direct_tuner
    ):
        async def body(service):
            client = PlanClient(service)
            await client.query(11, 13, 15)
            await service.drain()
            return await client.query(11, 13, 15)

        response = run_service_once(service, body)
        heuristic = direct_tuner.heuristic_plan(11, 13, 15)
        assert response.plan.total_cycles <= heuristic.total_cycles

    def test_mismatched_machine_dtype_threads_are_errors(self, service):
        async def body(service):
            return await service.query_many([
                PlanRequest(m=8, n=8, k=8, machine="graviton2_like"),
                PlanRequest(m=8, n=8, k=8, dtype="float64"),
                PlanRequest(m=8, n=8, k=8, threads=10_000),
            ])

        responses = run_service_once(service, body)
        assert [r.provenance for r in responses] == ["error"] * 3
        assert "machine" in responses[0].error
        assert "dtype" in responses[1].error
        assert "cores" in responses[2].error
        assert service.stats.errors == 3

    def test_stats_summary_shape(self, service):
        async def body(service):
            await PlanClient(service).query(8, 8, 8)

        run_service_once(service, body)
        summary = service.stats_summary()
        assert summary["service"]["queries"] == 1
        assert summary["batcher"]["items"] == 1
        assert summary["cache"]["shards"] == 8
        assert len(summary["per_shard"]) == 8

    def test_stats_summary_surfaces_sibling_caches(self, service):
        # the engine's own memo caches ride along in --stats: the
        # verification memo, the batch-pricing caches and the
        # steady-state store, each with their hit/miss counters
        summary = service.stats_summary()
        for key in ("verification_memo", "batch_pricing", "steady_store"):
            assert key in summary, key
        assert {"hits", "misses"} <= set(summary["verification_memo"])
        assert {"tapes", "interning"} <= set(summary["batch_pricing"])
        assert {"hits", "misses", "entries"} <= set(summary["steady_store"])
        import json as _json

        _json.dumps(summary)  # the --stats block must stay JSON-able


class TestBatchedPricing:
    def test_price_request_groups_matches_single_shape_pricing(
        self, machine
    ):
        requests = [(8, 8, 8, 1), (12, 10, 8, 2), (8, 8, 8, 1),
                    (16, 4, 12, 2)]
        timings = price_request_groups(machine, requests)
        assert len(timings) == 4
        from repro.plan import ShapeGridPricer

        for (m, n, k, threads), timing in zip(requests, timings):
            alone = ShapeGridPricer(machine, threads=threads).price_grid(
                [(m, n, k)]
            ).timings[0]
            assert timing.total_cycles == alone.total_cycles
        # duplicates price identically
        assert timings[0].total_cycles == timings[2].total_cycles


class TestWarmDedup:
    def test_warm_cache_dedups_shared_buckets(self, machine):
        tuner = AdaptiveTuner(machine, cache=TuningCache(machine, path=""))
        # (65..) and (66..) share the 80x80x80 bucket; (8,8,8) twice is an
        # outright duplicate — each bucket must be tuned exactly once
        shapes = [(8, 8, 8), (8, 8, 8), (65, 65, 65), (66, 66, 66)]
        report = warm_cache(tuner, shapes, jobs=1)
        assert report.requested == 4
        assert report.tuned == 2
        assert report.deduped == 2
        assert "2 deduplicated" in report.render()

        again = warm_cache(tuner, shapes, jobs=1)
        assert again.cache_hits == 4
        assert again.deduped == 0
        assert "deduplicated" not in again.render()


class TestTcpTransport:
    def test_round_trip_stats_shutdown(self, service):
        async def main():
            ready = asyncio.Event()
            bound = []
            server = asyncio.ensure_future(
                serve_tcp(service, port=0, ready=ready, bound=bound)
            )
            await ready.wait()
            client = TcpPlanClient(*bound[0])
            responses = await client.query_batch([
                PlanRequest(m=8, n=8, k=8),
                PlanRequest(m=24, n=16, k=8),
            ])
            stats = await client.stats()
            assert await client.shutdown()
            await server
            return responses, stats

        responses, stats = asyncio.run(main())
        assert [r.provenance for r in responses] == \
            ["heuristic-pending"] * 2
        assert responses[0].plan is not None
        assert stats["service"]["queries"] == 2

    def test_malformed_entries_come_back_as_inline_errors(self, service):
        import json

        async def main():
            ready = asyncio.Event()
            bound = []
            server = asyncio.ensure_future(
                serve_tcp(service, port=0, ready=ready, bound=bound)
            )
            await ready.wait()
            host, port = bound[0]
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(json.dumps({
                "requests": [
                    {"m": 8, "n": 8, "k": 8},
                    {"m": 0, "n": 8, "k": 8},
                ]
            }).encode() + b"\n")
            await writer.drain()
            payload = json.loads(await reader.readline())
            writer.close()
            await writer.wait_closed()
            client = TcpPlanClient(host, port)
            await client.shutdown()
            await server
            return payload

        payload = asyncio.run(main())
        ok, bad = payload["responses"]
        assert ok["provenance"] == "heuristic-pending"
        assert bad["provenance"] == "error"
        assert "invalid request shape" in bad["error"]
