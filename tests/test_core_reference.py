"""Tests for the Section-IV reference SMM driver and its planner."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blas import make_blasfeo, make_openblas
from repro.core import BatchedSmm, ReferenceSmmDriver, jit_tile_plan
from repro.kernels import JitKernelFactory, plan_coverage
from repro.util import make_rng, random_matrix
from repro.util.errors import DriverError


@pytest.fixture()
def ref(machine):
    return ReferenceSmmDriver(machine)


class TestCorrectness:
    @pytest.mark.parametrize("m,n,k", [
        (1, 1, 1), (8, 12, 8), (13, 7, 5), (40, 40, 40), (75, 60, 60),
        (96, 97, 96),
    ])
    def test_matches_numpy(self, ref, m, n, k):
        rng = make_rng(m * 7919 + n * 31 + k)
        a = random_matrix(rng, m, k)
        b = random_matrix(rng, k, n)
        result = ref.gemm(a, b)
        np.testing.assert_allclose(result.c, a @ b, rtol=1e-4, atol=1e-5)

    def test_alpha_beta(self, ref):
        rng = make_rng(2)
        a = random_matrix(rng, 10, 6)
        b = random_matrix(rng, 6, 9)
        c = random_matrix(rng, 10, 9)
        result = ref.gemm(a, b, c=c, alpha=1.5, beta=0.25)
        np.testing.assert_allclose(
            result.c, 1.5 * (a @ b) + 0.25 * c, rtol=1e-4, atol=1e-5
        )

    @settings(max_examples=20, deadline=None)
    @given(m=st.integers(1, 48), n=st.integers(1, 48), k=st.integers(1, 48))
    def test_matches_numpy_property(self, machine, m, n, k):
        ref = ReferenceSmmDriver(machine)
        rng = make_rng(m * 48 * 48 + n * 48 + k)
        a = random_matrix(rng, m, k)
        b = random_matrix(rng, k, n)
        np.testing.assert_allclose(ref.gemm(a, b).c, a @ b,
                                   rtol=1e-4, atol=1e-5)


class TestPackingOptional:
    def test_tiny_problems_skip_packing(self, ref):
        _, decision = ref.cost_gemm(8, 8, 8)
        assert decision.packed_b is False

    def test_force_packing_respected(self, machine):
        forced = ReferenceSmmDriver(machine, force_packing=True)
        timing, decision = forced.cost_gemm(8, 8, 8)
        assert decision.packed_b is True
        assert timing.pack_b_cycles > 0

    def test_force_no_packing(self, machine):
        forced = ReferenceSmmDriver(machine, force_packing=False)
        timing, decision = forced.cost_gemm(128, 128, 128)
        assert decision.packed_b is False
        assert timing.pack_b_cycles == 0.0

    def test_adaptive_beats_or_ties_both_forced(self, machine):
        # the decision must pick the cheaper strategy (that's its contract)
        adaptive = ReferenceSmmDriver(machine)
        packed = ReferenceSmmDriver(machine, force_packing=True)
        unpacked = ReferenceSmmDriver(machine, force_packing=False)
        for shape in [(8, 8, 8), (32, 32, 256), (64, 64, 64), (100, 20, 300)]:
            t_a = adaptive.cost_gemm(*shape)[0].total_cycles
            t_p = packed.cost_gemm(*shape)[0].total_cycles
            t_u = unpacked.cost_gemm(*shape)[0].total_cycles
            assert t_a <= min(t_p, t_u) * 1.001

    def test_decision_estimates_exposed(self, ref):
        _, decision = ref.cost_gemm(16, 16, 16)
        assert decision.pack_cycles_estimate >= 0
        assert decision.nopack_penalty_estimate >= 0
        assert "x" in decision.kernel_shape


class TestAgainstLibraries:
    def test_beats_openblas_on_edge_sizes(self, machine):
        ref = ReferenceSmmDriver(machine)
        ob = make_openblas(machine)
        for s in (11, 23, 75):
            e_ref = ref.cost_gemm(s, s, s)[0].efficiency(machine, np.float32)
            e_ob = ob.cost_gemm(s, s, s).efficiency(machine, np.float32)
            assert e_ref > e_ob

    def test_competitive_with_blasfeo(self, machine):
        ref = ReferenceSmmDriver(machine)
        bf = make_blasfeo(machine)
        for s in (16, 40, 80):
            e_ref = ref.cost_gemm(s, s, s)[0].efficiency(machine, np.float32)
            e_bf = bf.cost_gemm(s, s, s).efficiency(machine, np.float32)
            assert e_ref > 0.85 * e_bf


class TestParallelReference:
    def test_thread_bounds(self, machine):
        with pytest.raises(DriverError):
            ReferenceSmmDriver(machine, threads=0)
        with pytest.raises(DriverError):
            ReferenceSmmDriver(machine, threads=65)

    def test_parallel_correctness(self, machine):
        ref = ReferenceSmmDriver(machine, threads=16)
        rng = make_rng(4)
        a = random_matrix(rng, 32, 24)
        b = random_matrix(rng, 24, 40)
        np.testing.assert_allclose(ref.gemm(a, b).c, a @ b,
                                   rtol=1e-4, atol=1e-5)

    def test_parallel_decision_has_factorization(self, machine):
        ref = ReferenceSmmDriver(machine, threads=64)
        _, decision = ref.cost_gemm(64, 2048, 2048)
        assert decision.factorization is not None
        assert decision.factorization.threads == 64

    def test_refuses_to_fragment_small_m(self, machine):
        ref = ReferenceSmmDriver(machine, threads=64)
        _, decision = ref.cost_gemm(8, 2048, 2048)
        assert decision.factorization.ic == 1


class TestJitTilePlan:
    def test_coverage_exact(self, machine):
        jit = JitKernelFactory(machine.core)
        for (mc, nc) in [(8, 12), (75, 60), (11, 7), (1, 1), (96, 96)]:
            plan = jit_tile_plan(jit, mc, nc)
            assert plan_coverage(plan) == mc * nc

    def test_exact_edges_no_column_padding(self, machine):
        jit = JitKernelFactory(machine.core)
        plan = jit_tile_plan(jit, 16, 13)
        for inv in plan:
            assert inv.padded_cols == inv.cols  # exact-width JIT kernels

    def test_unpacked_edge_b_is_strided(self, machine):
        jit = JitKernelFactory(machine.core)
        plan = jit_tile_plan(jit, 16, 13, pack_edge_b=False)
        n_edges = [inv for inv in plan if inv.cols != jit.main_spec.nr]
        assert n_edges
        assert all(inv.spec.b_layout == "strided" for inv in n_edges)

    def test_strided_plan_all_strided(self, machine):
        jit = JitKernelFactory(machine.core)
        plan = jit_tile_plan(jit, 40, 40, strided=True)
        assert all(inv.spec.b_layout == "strided" for inv in plan)

    @settings(max_examples=30, deadline=None)
    @given(mc=st.integers(1, 150), nc=st.integers(1, 150))
    def test_coverage_property(self, machine, mc, nc):
        jit = JitKernelFactory(machine.core)
        assert plan_coverage(jit_tile_plan(jit, mc, nc)) == mc * nc


class TestBatched:
    def test_outputs_match(self, machine):
        rng = make_rng(8)
        batch = BatchedSmm(machine)
        pairs = [
            (random_matrix(rng, 8, 16), random_matrix(rng, 16, 12))
            for _ in range(5)
        ]
        result = batch.run(pairs)
        for (a, b), out in zip(pairs, result.outputs):
            np.testing.assert_allclose(out, a @ b, rtol=1e-4, atol=1e-5)

    def test_jit_cache_warms_up(self, machine):
        rng = make_rng(9)
        batch = BatchedSmm(machine)
        pairs = [
            (random_matrix(rng, 8, 16), random_matrix(rng, 16, 12))
            for _ in range(20)
        ]
        result = batch.run(pairs)
        assert result.jit_hit_rate > 0.8
        assert result.shapes == ((8, 12, 16),)

    def test_empty_batch_rejected(self, machine):
        with pytest.raises(DriverError):
            BatchedSmm(machine).run([])

    def test_run_accumulate(self, machine):
        rng = make_rng(10)
        batch = BatchedSmm(machine)
        pairs = [
            (random_matrix(rng, 8, 8), random_matrix(rng, 8, 8))
            for _ in range(3)
        ]
        c0 = random_matrix(rng, 8, 8)
        result = batch.run_accumulate(pairs, c0)
        expected = c0 + sum(a @ b for a, b in pairs)
        np.testing.assert_allclose(result.outputs[0], expected,
                                   rtol=1e-4, atol=1e-4)

    def test_accumulate_empty_rejected(self, machine):
        with pytest.raises(DriverError):
            BatchedSmm(machine).run_accumulate(
                [], np.zeros((2, 2), dtype=np.float32)
            )

    def test_timing_merged(self, machine):
        rng = make_rng(11)
        batch = BatchedSmm(machine)
        pairs = [
            (random_matrix(rng, 8, 8), random_matrix(rng, 8, 8))
            for _ in range(4)
        ]
        result = batch.run(pairs)
        assert result.timing.useful_flops == 4 * 2 * 8 * 8 * 8
