"""Core-class-aware machine model: big.LITTLE and SVE-class sockets.

The heterogeneous refactor threads :class:`~repro.machine.config
.CoreClass` through partition, plan IR, pricing, tuner and verifier.
These tests pin the contract at each layer:

* **model** — ``core_class_of`` / ``class_l1d`` / ``class_l2`` /
  ``class_machine`` accessors, homogeneous fallback, repr parity;
* **lowering** — weighted mr-granular strips with per-class tags,
  weakest-claim residency across class caches;
* **pricing** — per-class strip costs make the weighted partition
  strictly cheaper on an asymmetric socket;
* **identity** — class tags fold into the plan fingerprint; the
  homogeneous fingerprint is bit-for-bit the legacy one;
* **tuner** — per-class tile candidates let the SVE-512 class pick a
  wider tile than the NEON baseline through the same search;
* **verifier** — class-aware V31x residency plus the V422/V423
  negative controls.
"""

import numpy as np
import pytest

from repro.kernels import candidate_tiles, class_tile_candidates
from repro.machine import (
    big_little_like,
    machine_summary,
    phytium2000plus,
    sve512_like,
)
from repro.parallel import MultithreadedGemm
from repro.plan.fingerprint import plan_fingerprint
from repro.plan.ir import ThreadStripsOp
from repro.verify import plan_self_check, verify_plan


def strips_of(plan):
    return [n for _, n in plan.walk() if isinstance(n, ThreadStripsOp)]


# ---------------------------------------------------------------------------
# model
# ---------------------------------------------------------------------------


class TestMachineModel:
    def test_homogeneous_single_class(self, machine):
        assert not machine.is_heterogeneous
        assert len(machine.classes) == 1
        assert machine.classes[0].core is machine.core
        assert machine.classes[0].count == machine.n_cores
        assert all(
            machine.core_class_of(c) == 0 for c in range(machine.n_cores)
        )

    def test_big_little_layout(self):
        mach = big_little_like()
        assert mach.is_heterogeneous
        assert len(mach.classes) == 2
        assert mach.n_cores == 8
        assert [mach.core_class_of(c) for c in range(8)] == [0] * 4 + [1] * 4
        # invariant: base core is class 0's core
        assert mach.core is mach.classes[0].core

    def test_class_cache_overrides(self):
        mach = big_little_like()
        # little cores carry smaller private caches than the big ones
        assert (mach.class_l1d(1).size_bytes
                <= mach.class_l1d(0).size_bytes)
        assert mach.class_l2(1).size_bytes <= mach.class_l2(0).size_bytes
        # class 0 overrides default to the machine-level config
        assert mach.class_l1d(0).size_bytes == mach.l1d.size_bytes

    def test_class_machine_projection(self):
        mach = big_little_like()
        little = mach.class_machine(1)
        assert not little.is_heterogeneous
        assert little.core is mach.classes[1].core
        assert little.l1d == mach.class_l1d(1)
        assert little.l2 == mach.class_l2(1)

    def test_core_class_of_bounds(self):
        from repro.util.errors import ConfigError

        mach = big_little_like()
        with pytest.raises(ConfigError):
            mach.core_class_of(8)
        with pytest.raises(ConfigError):
            mach.core_class_of(-1)

    def test_repr_parity_homogeneous(self, machine):
        # legacy fingerprints hash repr(machine): the homogeneous repr
        # must not mention the class field at all
        assert "core_classes" not in repr(machine)
        assert "core_classes" in repr(big_little_like())

    def test_sve512_wider_vectors(self):
        mach = sve512_like()
        widths = {cls.core.vector_bits for cls in mach.classes}
        assert 512 in widths
        assert mach.core.simd_lanes(np.float32) >= 16

    def test_summary_reports_classes(self):
        text = machine_summary(big_little_like())
        assert "panels" in text
        assert "L2 clusters" in text
        assert "classes: 2" in text
        assert "big-ooo-armv8" in text
        assert "little-armv8" in text

    def test_summary_homogeneous_unchanged(self, machine):
        text = machine_summary(machine)
        assert "classes:" not in text
        assert "panels" in text


# ---------------------------------------------------------------------------
# lowering
# ---------------------------------------------------------------------------


class TestHeterogeneousLowering:
    def test_strips_tagged_and_weighted(self):
        mach = big_little_like()
        mt = MultithreadedGemm(mach, "openblas", threads=8)
        assert mt.partition == "weighted"  # auto on asymmetric sockets
        plan = mt.plan_gemm(128, 512, 512)
        nodes = strips_of(plan)
        assert nodes
        for node in nodes:
            assert node.core_classes == tuple(
                mach.core_class_of(t) for t in range(8)
            )
            assert sum(node.chunks) == 128
            big = [c for c, t in zip(node.chunks, node.core_classes)
                   if t == 0]
            little = [c for c, t in zip(node.chunks, node.core_classes)
                      if t == 1]
            assert sum(big) > sum(little)

    def test_homogeneous_strips_untagged(self, machine):
        plan = MultithreadedGemm(machine, "openblas",
                                 threads=8).plan_gemm(128, 512, 512)
        for node in strips_of(plan):
            assert node.core_classes == ()

    def test_chunks_mr_granular(self):
        mach = big_little_like()
        plan = MultithreadedGemm(mach, "openblas",
                                 threads=8).plan_gemm(128, 512, 512)
        for node in strips_of(plan):
            mr = int(plan.meta["kernel_shape"].split("x")[0])
            nonzero = [c for c in node.chunks if c]
            # all but the last nonzero strip are mr-aligned
            for c in nonzero[:-1]:
                assert c % mr == 0

    def test_weakest_claim_residency(self):
        # a warm shape that fits the big L2 but would thrash the little
        # one must not claim "l2" for any strip
        mach = big_little_like()
        mt = MultithreadedGemm(mach, "openblas", threads=8)
        little_l2 = mach.class_l2(1).size_bytes
        big_l2 = mach.class_l2(0).size_bytes
        if little_l2 == big_l2:
            pytest.skip("classes share L2 sizing; nothing to downgrade")
        report = verify_plan(mt.plan_gemm(128, 512, 512))
        assert report.ok, [d.rule for d in report.diagnostics]

    @pytest.mark.parametrize("factory", [big_little_like, sve512_like])
    @pytest.mark.parametrize("library", ["openblas", "blis", "eigen"])
    def test_heterogeneous_plans_verify_clean(self, factory, library):
        mach = factory()
        mt = MultithreadedGemm(mach, library, threads=mach.n_cores)
        for shape in [(64, 256, 256), (33, 129, 65), (16, 2048, 2048)]:
            report = verify_plan(mt.plan_gemm(*shape))
            assert report.ok, (
                factory.__name__, library, shape,
                [d.rule for d in report.diagnostics],
            )


# ---------------------------------------------------------------------------
# pricing and identity
# ---------------------------------------------------------------------------


class TestClassPricing:
    def test_weighted_cheaper_than_even_on_big_little(self):
        mach = big_little_like()
        for shape in [(64, 2048, 2048), (128, 2048, 2048)]:
            even = MultithreadedGemm(
                mach, "openblas", threads=8, partition="even"
            ).cost(*shape)[0].total_cycles
            weighted = MultithreadedGemm(
                mach, "openblas", threads=8, partition="weighted"
            ).cost(*shape)[0].total_cycles
            assert weighted < even

    def test_little_class_paces_even_split(self):
        # under the even split the little class does the same rows at a
        # lower clock: modeled cost must exceed the all-big projection
        mach = big_little_like()
        big_only = mach.class_machine(0)
        het = MultithreadedGemm(
            mach, "openblas", threads=8, partition="even"
        ).cost(128, 1024, 1024)[0].total_cycles
        homo = MultithreadedGemm(
            big_only, "openblas", threads=8
        ).cost(128, 1024, 1024)[0].total_cycles
        assert het > homo

    def test_fingerprint_covers_class_tags(self):
        mach = big_little_like()
        mt = MultithreadedGemm(mach, "openblas", threads=8)
        plan = mt.plan_gemm(64, 256, 256)
        base = plan_fingerprint(plan)
        node = strips_of(plan)[0]
        node.core_classes = tuple(reversed(node.core_classes))
        assert plan_fingerprint(plan) != base

    def test_homogeneous_fingerprint_class_free(self, machine):
        # the canonical form must not leak the (empty) class field, so
        # pre-refactor fingerprints remain valid cache keys
        from repro.plan.fingerprint import canonical_plan_body

        plan = MultithreadedGemm(machine, "openblas",
                                 threads=8).plan_gemm(64, 256, 256)
        assert "core_classes" not in repr(canonical_plan_body(plan))


# ---------------------------------------------------------------------------
# tuner
# ---------------------------------------------------------------------------


class TestClassTuner:
    def test_homogeneous_candidates_are_legacy(self, machine):
        legacy = candidate_tiles(machine.core, np.float32, limit=4)
        classed = class_tile_candidates(machine, np.float32, limit=4)
        assert [(idx, d.mr, d.nr) for idx, d in classed] == [
            (0, d.mr, d.nr) for d in legacy
        ]

    def test_union_over_classes_dedups(self):
        mach = big_little_like()
        classed = class_tile_candidates(mach, np.float32, limit=4)
        shapes = [(d.mr, d.nr) for _, d in classed]
        assert len(shapes) == len(set(shapes))
        assert {idx for idx, _ in classed} <= {0, 1}

    def test_sve512_contributes_wider_tiles(self, machine):
        neon = {(d.mr, d.nr)
                for _, d in class_tile_candidates(machine, np.float32)}
        sve = {(d.mr, d.nr)
               for _, d in class_tile_candidates(sve512_like(), np.float32)}
        assert max(mr * nr for mr, nr in sve) > max(
            mr * nr for mr, nr in neon
        )

    def test_tuner_selects_wider_tile_on_sve512(self, tmp_path):
        from repro.tuning import AdaptiveTuner

        shape = (48, 48, 48)
        neon_plan = AdaptiveTuner(
            phytium2000plus(),
            cache_path=str(tmp_path / "neon.json"),
        ).tune(*shape)
        sve_plan = AdaptiveTuner(
            sve512_like(),
            cache_path=str(tmp_path / "sve.json"),
        ).tune(*shape)
        neon_mr, neon_nr = neon_plan.spec.mr, neon_plan.spec.nr
        sve_mr, sve_nr = sve_plan.spec.mr, sve_plan.spec.nr
        assert sve_mr * sve_nr > neon_mr * neon_nr


# ---------------------------------------------------------------------------
# verifier
# ---------------------------------------------------------------------------


class TestClassVerifier:
    def test_v422_v423_in_self_check(self, machine):
        results = dict(plan_self_check(machine))
        assert results["V422-class-mismatch"] is True
        assert results["V423-unbalanced-strips"] is True
        # and the refactor broke none of the existing controls
        assert all(results.values()), [
            r for r, fired in results.items() if not fired
        ]

    def test_v422_fires_on_unknown_tag(self):
        mach = big_little_like()
        plan = MultithreadedGemm(mach, "openblas",
                                 threads=8).plan_gemm(64, 256, 256)
        node = strips_of(plan)[0]
        node.core_classes = (99,) + tuple(node.core_classes[1:])
        report = verify_plan(plan)
        assert any(d.rule == "V422-class-mismatch"
                   for d in report.diagnostics)

    def test_v423_fires_on_shifted_row(self):
        mach = big_little_like()
        plan = MultithreadedGemm(mach, "openblas",
                                 threads=8).plan_gemm(64, 256, 256)
        node = strips_of(plan)[0]
        chunks = list(node.chunks)
        chunks[0] -= 1
        chunks[-1] += 1
        node.chunks = tuple(chunks)
        report = verify_plan(plan)
        assert any(d.rule == "V423-unbalanced-strips"
                   for d in report.diagnostics)
