"""Unit tests for partitioning, synchronization and the MT executor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import (
    BlisFactorization,
    MultithreadedGemm,
    ThreadTopology,
    barrier_cycles,
    blis_factorization,
    blis_factorization_scored,
    grid_partition,
    openblas_partition,
    split_even,
    sync_points_per_iteration,
)
from repro.util import make_rng, random_matrix
from repro.util.errors import ParallelError


class TestSplitEven:
    def test_exact_division(self):
        assert split_even(12, 4) == [3, 3, 3, 3]

    def test_remainder_spread(self):
        assert split_even(10, 4) == [3, 3, 2, 2]

    def test_more_parts_than_extent(self):
        chunks = split_even(3, 8)
        assert chunks == [1, 1, 1, 0, 0, 0, 0, 0]

    def test_negative_extent(self):
        with pytest.raises(ParallelError):
            split_even(-1, 4)

    @given(st.integers(0, 5000), st.integers(1, 128))
    def test_conservation_and_balance(self, extent, parts):
        chunks = split_even(extent, parts)
        assert sum(chunks) == extent
        assert max(chunks) - min(chunks) <= 1


class TestPartitions:
    def test_openblas_is_1d_over_m(self):
        parts = openblas_partition(128, 2048, 64)
        assert len(parts) == 64
        assert all(n == 2048 for _, n in parts)
        assert sum(m for m, _ in parts) == 128

    def test_openblas_small_m_idles_threads(self):
        parts = openblas_partition(16, 2048, 64)
        assert sum(1 for m, _ in parts if m == 0) == 48

    def test_grid_partition_covers(self):
        parts = grid_partition(128, 256, 64)
        assert len(parts) == 64
        # grid: sum over distinct rows x cols recovers the full extent
        total = sum(m * n for m, n in parts)
        assert total == 128 * 256

    def test_grid_matches_aspect(self):
        # tall problem: more thread rows than columns
        parts = grid_partition(4096, 64, 16)
        m0 = max(m for m, _ in parts)
        n0 = max(n for _, n in parts)
        assert m0 > n0


class TestBlisFactorization:
    def test_threads_conserved(self):
        fact = blis_factorization(128, 2048, 64, 8, 12)
        assert fact.threads == 64

    def test_small_m_not_fragmented(self):
        # the paper: for small M BLIS refuses to parallelize M
        fact = blis_factorization(16, 2048, 64, 8, 12)
        assert fact.ic == 1

    def test_paper_m16_example_sync_group(self):
        fact = blis_factorization(16, 2048, 64, 8, 12)
        assert fact.pack_b_group <= 8

    def test_large_m_uses_ic(self):
        fact = blis_factorization(256, 2048, 64, 8, 12)
        assert fact.ic >= 8

    def test_groups(self):
        fact = BlisFactorization(jc=8, ic=2, jr=4)
        assert fact.pack_b_group == 8
        assert fact.pack_a_group == 4
        assert fact.threads == 64

    def test_invalid_extents(self):
        with pytest.raises(ParallelError):
            blis_factorization(0, 10, 4, 8, 12)

    @settings(max_examples=40, deadline=None)
    @given(
        m=st.integers(1, 512),
        n=st.integers(1, 4096),
        threads=st.sampled_from([1, 2, 4, 8, 16, 32, 64]),
    )
    def test_factorization_always_valid(self, m, n, threads):
        fact = blis_factorization(m, n, threads, 8, 12)
        assert fact.threads == threads
        assert fact.jc >= 1 and fact.ic >= 1 and fact.jr >= 1

    def test_scored_variant_valid(self):
        fact = blis_factorization_scored(128, 2048, 64, 8, 12)
        assert fact.threads == 64


class TestBarrier:
    def test_single_thread_free(self, machine):
        assert barrier_cycles(1, machine.numa) == 0.0

    def test_grows_with_threads(self, machine):
        c8 = barrier_cycles(8, machine.numa)
        c64 = barrier_cycles(64, machine.numa)
        assert 0 < c8 < c64

    def test_cross_panel_costs_more_per_stage(self, machine):
        # 16 threads span 2 panels: more than 4/3 of the 8-thread barrier
        c8 = barrier_cycles(8, machine.numa)
        c16 = barrier_cycles(16, machine.numa)
        assert c16 > c8 * (4 / 3)

    def test_rejects_bad_threads(self, machine):
        with pytest.raises(ParallelError):
            barrier_cycles(0, machine.numa)

    def test_sync_points(self):
        assert sync_points_per_iteration(False, False) == 1
        assert sync_points_per_iteration(True, True) == 3


class TestThreadTopology:
    def test_single_thread(self, machine):
        topo = ThreadTopology.for_machine(machine, 1)
        assert topo.active_l2_sharers == 1
        assert topo.panels_used == 1
        assert topo.shared_remote_fraction == 0.0

    def test_full_machine(self, machine):
        topo = ThreadTopology.for_machine(machine, 64)
        assert topo.active_l2_sharers == 4
        assert topo.panels_used == 8
        assert topo.shared_remote_fraction == pytest.approx(7 / 8)

    def test_too_many_threads(self, machine):
        with pytest.raises(ParallelError):
            ThreadTopology.for_machine(machine, 65)


class TestMultithreadedGemm:
    def test_blasfeo_rejected(self, machine):
        with pytest.raises(ParallelError, match="single-threaded"):
            MultithreadedGemm(machine, "blasfeo", threads=4)

    def test_unknown_library_rejected(self, machine):
        with pytest.raises(ParallelError):
            MultithreadedGemm(machine, "mkl", threads=4)

    def test_functional_correctness(self, machine):
        rng = make_rng(5)
        a = random_matrix(rng, 48, 32)
        b = random_matrix(rng, 32, 40)
        for lib in ("openblas", "blis", "eigen"):
            mt = MultithreadedGemm(machine, lib, threads=8)
            result = mt.gemm(a, b)
            np.testing.assert_allclose(result.c, a @ b, rtol=1e-4, atol=1e-5)

    def test_alpha_beta(self, machine):
        rng = make_rng(6)
        a = random_matrix(rng, 16, 16)
        b = random_matrix(rng, 16, 16)
        c = random_matrix(rng, 16, 16)
        mt = MultithreadedGemm(machine, "blis", threads=4)
        result = mt.gemm(a, b, c=c, alpha=0.5, beta=2.0)
        np.testing.assert_allclose(
            result.c, 0.5 * (a @ b) + 2.0 * c, rtol=1e-4, atol=1e-5
        )

    def test_sync_cycles_present(self, machine):
        mt = MultithreadedGemm(machine, "blis", threads=64)
        timing, _ = mt.cost(64, 1024, 1024)
        assert timing.sync_cycles > 0

    def test_blis_beats_openblas_small_m(self, machine):
        blis = MultithreadedGemm(machine, "blis", threads=64)
        openblas = MultithreadedGemm(machine, "openblas", threads=64)
        t_blis, _ = blis.cost(32, 2048, 2048)
        t_ob, _ = openblas.cost(32, 2048, 2048)
        assert t_blis.efficiency(machine, np.float32, 64) > \
            2 * t_ob.efficiency(machine, np.float32, 64)

    def test_openblas_idle_threads_hurt(self, machine):
        mt = MultithreadedGemm(machine, "openblas", threads=64)
        t16, _ = mt.cost(16, 2048, 2048)
        t256, _ = mt.cost(256, 2048, 2048)
        assert t256.efficiency(machine, np.float32, 64) > \
            4 * t16.efficiency(machine, np.float32, 64)

    def test_more_threads_help_large_problems(self, machine):
        t1 = MultithreadedGemm(machine, "blis", threads=4) \
            .cost(512, 2048, 512)[0]
        t64 = MultithreadedGemm(machine, "blis", threads=64) \
            .cost(512, 2048, 512)[0]
        assert t64.total_cycles < t1.total_cycles

    def test_info_reports_factorization(self, machine):
        mt = MultithreadedGemm(machine, "blis", threads=64)
        _, info = mt.cost(128, 2048, 2048)
        assert info["factorization"].threads == 64

    def test_kernel_efficiency_below_single_thread(self, machine):
        # the paper: MT kernel efficiency is lower than single-thread
        mt = MultithreadedGemm(machine, "blis", threads=64)
        t, _ = mt.cost(64, 2048, 2048)
        ke = t.kernel_efficiency(machine, np.float32, 64)
        assert 0.3 < ke < 0.97
