"""Trace replay on composite plans (merge batches, 2-D critical paths).

``timing_from_trace`` must rebuild the engine's GemmTiming from the
event stream alone for the two composite roots the basic reconciliation
suite (``test_plan_engine.py``) only samples: :class:`MergeOp` batch
plans, whose buckets are sums over sub-plans, and 2-D-grid
:class:`CriticalPathOp` plans (the mt-eigen lowering), whose buckets
come from the slowest chunk of an M x N thread grid.
"""

import json

import pytest

from repro.core import BatchedSmm
from repro.parallel import MultithreadedGemm
from repro.plan import RecordingTraceSink
from repro.plan.ir import CriticalPathOp, MergeOp
from repro.timing import timing_from_trace

BATCHES = [
    [(8, 8, 8)],
    [(8, 8, 8), (16, 16, 16)],
    [(5, 3, 2), (33, 65, 129), (75, 75, 75), (97, 101, 89)],
]


class TestMergeReplay:
    @pytest.mark.parametrize("shapes", BATCHES,
                             ids=["single", "pair", "edge-mix"])
    def test_batched_buckets_rebuild(self, machine, shapes):
        plan = BatchedSmm(machine).plan_batch(shapes)
        assert isinstance(plan.root, MergeOp)
        sink = RecordingTraceSink()
        timing = plan.price(sink=sink)
        replayed = timing_from_trace(sink.events)
        assert replayed.as_dict() == timing.as_dict()

    def test_batched_matches_run_accounting(self, machine):
        batched = BatchedSmm(machine)
        plan = batched.plan_batch(BATCHES[-1])
        sink = RecordingTraceSink()
        timing = plan.price(sink=sink)
        # the merged plan prices to the fold of the per-problem timings,
        # and the replay preserves that through the event stream
        assert timing.total_cycles == pytest.approx(sum(
            batched.driver.cost_gemm(m, n, k)[0].total_cycles
            for m, n, k in BATCHES[-1]
        ))
        assert timing_from_trace(sink.events).total_cycles \
            == timing.total_cycles

    def test_json_round_trip(self, machine):
        plan = BatchedSmm(machine).plan_batch(BATCHES[1])
        sink = RecordingTraceSink()
        timing = plan.price(sink=sink)
        dicts = json.loads(sink.to_json())
        assert timing_from_trace(dicts).as_dict() == timing.as_dict()


class TestCriticalPathReplay:
    @pytest.mark.parametrize("shape,threads", [
        ((256, 2048, 2048), 4),
        ((80, 2048, 2048), 64),
        ((2048, 2048, 16), 64),
    ], ids=["grid-4", "grid-64", "small-k-64"])
    def test_eigen_grid_buckets_rebuild(self, machine, shape, threads):
        plan = MultithreadedGemm(machine, "eigen",
                                 threads=threads).plan_gemm(*shape)
        assert any(isinstance(node, CriticalPathOp)
                   for _, node in plan.walk())
        sink = RecordingTraceSink()
        timing = plan.price(sink=sink)

        totals = sink.bucket_totals()
        assert totals["kernel"] == timing.kernel_cycles
        assert totals["sync"] == timing.sync_cycles

        replayed = timing_from_trace(sink.events)
        assert replayed.as_dict() == timing.as_dict()

    def test_grid_json_round_trip(self, machine):
        plan = MultithreadedGemm(machine, "eigen",
                                 threads=64).plan_gemm(80, 2048, 2048)
        sink = RecordingTraceSink()
        timing = plan.price(sink=sink)
        dicts = json.loads(sink.to_json())
        assert timing_from_trace(dicts).as_dict() == timing.as_dict()

    def test_trace_is_grid_shaped(self, machine):
        plan = MultithreadedGemm(machine, "eigen",
                                 threads=4).plan_gemm(256, 2048, 2048)
        sink = RecordingTraceSink()
        plan.price(sink=sink)
        kinds = [event.kind for event in sink]
        assert kinds[0] == "plan" and kinds[-1] == "total"
        # one phase event stream per grid chunk's critical sub-plan
        assert any(event.kind == "phase" for event in sink)
