"""Tests for the GEBP trace generator and its replay."""

import pytest

from repro.caches import (
    GebpCacheModel,
    GebpTraceConfig,
    gebp_access_stream,
    replay_gebp,
)
from repro.util.errors import ConfigError


class TestTraceGeometry:
    def test_footprints(self):
        cfg = GebpTraceConfig(mc=16, nc=8, kc=32, mr=8, nr=4)
        assert cfg.a_bytes == 16 * 32 * 4
        assert cfg.b_bytes == 32 * 8 * 4
        assert cfg.c_bytes == 16 * 8 * 4

    def test_padded_footprints(self):
        cfg = GebpTraceConfig(mc=11, nc=7, kc=8, mr=8, nr=4)
        assert cfg.a_bytes == 16 * 8 * 4  # 11 -> 2 slivers of 8
        assert cfg.b_bytes == 8 * 8 * 4  # 7 -> 2 slivers of 4

    def test_rejects_bad_geometry(self):
        with pytest.raises(ConfigError):
            GebpTraceConfig(mc=0, nc=8, kc=8, mr=8, nr=4)


class TestStreamStructure:
    def test_access_counts(self):
        cfg = GebpTraceConfig(mc=16, nc=8, kc=4, mr=8, nr=4)
        accesses = list(gebp_access_stream(cfg))
        tiles = (16 // 8) * (8 // 4)
        a_accesses = sum(1 for _, _, t in accesses if t == "A")
        b_accesses = sum(1 for _, _, t in accesses if t == "B")
        c_accesses = sum(1 for _, _, t in accesses if t == "C")
        assert a_accesses == tiles * 4  # one per k-step per tile
        assert b_accesses == tiles * 4
        assert c_accesses == tiles * 4 * 2  # nr columns, load + store

    def test_operand_ranges_disjoint(self):
        cfg = GebpTraceConfig(mc=16, nc=8, kc=4, mr=8, nr=4)
        ranges = {"A": (0, cfg.a_bytes),
                  "B": (cfg.a_bytes, cfg.a_bytes + cfg.b_bytes),
                  "C": (cfg.a_bytes + cfg.b_bytes,
                        cfg.a_bytes + cfg.b_bytes + cfg.c_bytes)}
        for addr, nbytes, tag in gebp_access_stream(cfg):
            lo, hi = ranges[tag]
            assert lo <= addr and addr + nbytes <= hi, (tag, addr)

    def test_custom_bases(self):
        cfg = GebpTraceConfig(mc=8, nc=4, kc=2, mr=8, nr=4)
        accesses = list(gebp_access_stream(cfg, a_base=1 << 20))
        assert all(addr >= 1 << 20 for addr, _, _ in accesses)


class TestReplayAgainstModel:
    def test_cold_compulsory_misses_match_model(self, machine):
        cfg = GebpTraceConfig(mc=32, nc=16, kc=32, mr=8, nr=4)
        stats = replay_gebp(machine, cfg, warm=False)
        line = machine.l1d.line_bytes
        # compulsory lines: each operand touched once, A re-streamed per
        # column tile only if it exceeds L1 (it doesn't here)
        expected_a = cfg.a_bytes / line
        expected_b = cfg.b_bytes / line
        assert stats["A"]["l1_misses"] == pytest.approx(expected_a, rel=0.1)
        assert stats["B"]["l1_misses"] == pytest.approx(expected_b, rel=0.1)

    def test_warm_smm_has_no_misses(self, machine):
        # the paper's repeated-measurement setting: a fitting working set
        # is fully L1-resident on the second pass
        cfg = GebpTraceConfig(mc=16, nc=16, kc=32, mr=8, nr=4)
        stats = replay_gebp(machine, cfg, warm=True)
        assert stats["total"]["l1_misses"] == 0

    def test_large_a_restreams(self, machine):
        # A block ~4x L1: each column tile re-streams it, matching the
        # analytic model's n_col_tiles factor
        cfg = GebpTraceConfig(mc=256, nc=32, kc=128, mr=8, nr=4)
        stats = replay_gebp(machine, cfg, warm=True)
        line = machine.l1d.line_bytes
        one_pass = cfg.a_bytes / line
        n_col_tiles = 32 // 4
        assert stats["A"]["l1_misses"] > 0.8 * one_pass * (n_col_tiles - 1)

    def test_b_sliver_reuse_across_row_tiles(self, machine):
        # with several row tiles, B misses stay ~one pass of the panel
        cfg = GebpTraceConfig(mc=64, nc=16, kc=64, mr=8, nr=4)
        stats = replay_gebp(machine, cfg, warm=False)
        line = machine.l1d.line_bytes
        assert stats["B"]["l1_misses"] == pytest.approx(
            cfg.b_bytes / line, rel=0.15
        )

    def test_model_agrees_on_restream_direction(self, machine):
        model = GebpCacheModel(machine)
        small = model.kernel_phase(32, 16, 32, 8, 4, 4)
        big = model.kernel_phase(256, 32, 128, 8, 4, 4)
        small_replay = replay_gebp(
            machine, GebpTraceConfig(32, 16, 32, 8, 4), warm=True
        )
        big_replay = replay_gebp(
            machine, GebpTraceConfig(256, 32, 128, 8, 4), warm=True
        )
        # both model and simulation agree: big GEBP misses far more
        assert big.l1_miss_lines > small.l1_miss_lines
        assert big_replay["total"]["l1_misses"] > \
            small_replay["total"]["l1_misses"]
