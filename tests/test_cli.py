"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nonsense"])

    def test_gemm_args(self):
        args = build_parser().parse_args(
            ["gemm", "16", "32", "64", "--lib", "blis", "--threads", "8"]
        )
        assert (args.m, args.n, args.k) == (16, 32, 64)
        assert args.lib == "blis"
        assert args.threads == 8

    def test_gemm_rejects_bad_lib(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["gemm", "1", "1", "1", "--lib", "mkl"])


class TestCommands:
    def test_machine(self, capsys):
        assert main(["machine"]) == 0
        out = capsys.readouterr().out
        assert "phytium-2000+" in out
        assert "563.2" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "OpenBLAS" in out and "8x12" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Kernel effic" in out

    def test_fig5b(self, capsys):
        assert main(["fig5b"]) == 0
        out = capsys.readouterr().out
        assert "blasfeo" in out and "eigen" in out

    def test_fig7(self, capsys):
        assert main(["fig7"]) == 0
        out = capsys.readouterr().out
        assert "fmla" in out
        assert "edge family" in out

    def test_fig9_multi_panel(self, capsys):
        assert main(["fig9"]) == 0
        out = capsys.readouterr().out
        assert "fig9-sweep-M" in out
        assert "fig9-sweep-K" in out

    def test_gemm_single_thread(self, capsys):
        assert main(["gemm", "24", "24", "24", "--lib", "blasfeo"]) == 0
        out = capsys.readouterr().out
        assert "% of peak" in out
        assert "blasfeo GEMM 24x24x24" in out

    def test_gemm_reference_shows_decision(self, capsys):
        assert main(["gemm", "16", "16", "16"]) == 0
        out = capsys.readouterr().out
        assert "packed_b=" in out

    def test_gemm_multithreaded(self, capsys):
        assert main(["gemm", "64", "512", "512", "--lib", "blis",
                     "--threads", "16"]) == 0
        out = capsys.readouterr().out
        assert "16 thread(s)" in out
        assert "scheme" in out

    def test_gemm_reference_multithreaded(self, capsys):
        assert main(["gemm", "64", "512", "512", "--threads", "8"]) == 0
        out = capsys.readouterr().out
        assert "8 thread(s)" in out
