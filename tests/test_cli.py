"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nonsense"])

    def test_gemm_args(self):
        args = build_parser().parse_args(
            ["gemm", "16", "32", "64", "--lib", "blis", "--threads", "8"]
        )
        assert (args.m, args.n, args.k) == (16, 32, 64)
        assert args.lib == "blis"
        assert args.threads == 8

    def test_gemm_rejects_bad_lib(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["gemm", "1", "1", "1", "--lib", "mkl"])


class TestCommands:
    def test_machine(self, capsys):
        assert main(["machine"]) == 0
        out = capsys.readouterr().out
        assert "phytium-2000+" in out
        assert "563.2" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "OpenBLAS" in out and "8x12" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Kernel effic" in out

    def test_fig5b(self, capsys):
        assert main(["fig5b"]) == 0
        out = capsys.readouterr().out
        assert "blasfeo" in out and "eigen" in out

    def test_fig7(self, capsys):
        assert main(["fig7"]) == 0
        out = capsys.readouterr().out
        assert "fmla" in out
        assert "edge family" in out

    def test_fig9_multi_panel(self, capsys):
        assert main(["fig9"]) == 0
        out = capsys.readouterr().out
        assert "fig9-sweep-M" in out
        assert "fig9-sweep-K" in out

    def test_gemm_single_thread(self, capsys):
        assert main(["gemm", "24", "24", "24", "--lib", "blasfeo"]) == 0
        out = capsys.readouterr().out
        assert "% of peak" in out
        assert "blasfeo GEMM 24x24x24" in out

    def test_gemm_reference_shows_decision(self, capsys):
        assert main(["gemm", "16", "16", "16"]) == 0
        out = capsys.readouterr().out
        assert "packed_b=" in out

    def test_gemm_multithreaded(self, capsys):
        assert main(["gemm", "64", "512", "512", "--lib", "blis",
                     "--threads", "16"]) == 0
        out = capsys.readouterr().out
        assert "16 thread(s)" in out
        assert "scheme" in out

    def test_gemm_reference_multithreaded(self, capsys):
        assert main(["gemm", "64", "512", "512", "--threads", "8"]) == 0
        out = capsys.readouterr().out
        assert "8 thread(s)" in out


class TestTraceCommand:
    def test_trace_renders_plan_and_reconciles(self, capsys):
        assert main(["trace", "24", "24", "24"]) == 0
        out = capsys.readouterr().out
        assert "execution plan" in out
        assert "jit_sweep" in out
        assert "trace reconciliation: OK" in out

    def test_trace_goto_driver(self, capsys):
        assert main(["trace", "48", "48", "48", "--lib", "openblas"]) == 0
        out = capsys.readouterr().out
        assert "pack" in out and "gebp" in out
        assert "trace reconciliation: OK" in out

    def test_trace_multithreaded(self, capsys):
        assert main(["trace", "80", "512", "512", "--lib", "blis",
                     "--threads", "16"]) == 0
        out = capsys.readouterr().out
        assert "barrier" in out
        assert "trace reconciliation: OK" in out

    def test_trace_json_stdout_is_valid_and_reconciled(self, capsys):
        import json as jsonlib

        assert main(["trace", "33", "17", "9", "--json", "-"]) == 0
        payload = jsonlib.loads(capsys.readouterr().out)
        assert payload["reconciled"] is True
        assert payload["events"][0]["kind"] == "plan"
        assert payload["events"][-1]["kind"] == "total"
        # per-phase event sums must rebuild the timing's buckets
        sums = {}
        for event in payload["events"]:
            if event["kind"] == "phase":
                sums[event["bucket"]] = (
                    sums.get(event["bucket"], 0.0) + event["cycles"]
                )
        timing = payload["timing"]
        for bucket in ("kernel", "pack_a", "pack_b", "sync", "other"):
            assert sums.get(bucket, 0.0) == timing[f"{bucket}_cycles"]

    def test_trace_json_file(self, capsys, tmp_path):
        import json as jsonlib

        path = tmp_path / "trace.json"
        assert main(["trace", "16", "16", "16", "--lib", "blasfeo",
                     "--json", str(path)]) == 0
        assert f"wrote {path}" in capsys.readouterr().out
        payload = jsonlib.loads(path.read_text())
        assert payload["reconciled"] is True
        assert payload["meta"]["driver"] == "blasfeo"

    def test_trace_tuned_requires_reference(self, capsys):
        with pytest.raises(SystemExit):
            main(["trace", "8", "8", "8", "--lib", "blis", "--tuned"])
