"""The ExecutionPlan IR, the pricing engine and the trace layer.

Parity against the pre-refactor accounting lives in
``test_cross_driver_consistency.py`` (the golden suite); these tests pin
the plan layer's own contracts: tree structure, JSON dumps, traced vs
untraced pricing, trace reconciliation, batch merging and the tuner's
provenance stamp.
"""

import json

import pytest

from repro.blas import make_blasfeo, make_driver, make_openblas
from repro.core import BatchedSmm, ReferenceSmmDriver
from repro.parallel import MultithreadedGemm
from repro.pipeline import summarize_trace
from repro.plan import (
    ENGINE,
    ExecutionPlan,
    PHASE_BUCKETS,
    RecordingTraceSink,
    Section,
    TraceEvent,
)
from repro.timing import timing_from_trace
from repro.tuning import AdaptiveTuner
from repro.util import ReproError


class TestPlanTree:
    def test_walk_and_count(self, machine):
        plan = make_openblas(machine).plan_gemm(48, 48, 48)
        nodes = list(plan.walk())
        assert len(nodes) == plan.count_ops() > 1
        depths = [depth for depth, _ in nodes]
        assert depths[0] == 0 and max(depths) >= 1

    def test_render_tree_truncates(self, machine):
        plan = make_openblas(machine).plan_gemm(48, 48, 48)
        text = plan.render_tree(max_lines=2)
        assert len(text.splitlines()) <= 3  # 2 lines + the "... more" note
        assert "more nodes" in text

    def test_to_dict_is_json_ready(self, machine):
        plan = ReferenceSmmDriver(machine).plan_gemm(33, 17, 9)
        dumped = json.loads(json.dumps(plan.to_dict()))
        assert dumped["ops"] == plan.count_ops()
        assert dumped["meta"]["shape"] == [33, 17, 9]
        assert dumped["tree"]["kind"] == "section"

    def test_meta_records_provenance(self, machine):
        driver = ReferenceSmmDriver(machine)
        adaptive = driver.plan_gemm(24, 24, 24)
        assert adaptive.meta["provenance"] == "adaptive"
        pinned = driver.plan_with(24, 24, 24, packed_b=True)
        assert pinned.meta["provenance"] == "pinned"
        assert pinned.meta["decision"].packed_b is True


class TestEngine:
    def test_unknown_node_kind_rejected(self, machine):
        class Rogue:
            kind = "rogue"
            label = "rogue"

        plan = ExecutionPlan(root=Rogue(), meta={}, context=None)
        with pytest.raises(ReproError):
            ENGINE.price(plan)

    def test_empty_section_prices_to_zero(self):
        plan = ExecutionPlan(
            root=Section(label="empty", children=()),
            meta={"useful_flops": 0}, context=None,
        )
        timing = plan.price()
        assert timing.total_cycles == 0.0

    def test_sink_does_not_perturb_pricing(self, machine):
        plan = make_blasfeo(machine).plan_gemm(13, 4, 7)
        silent = plan.price()
        sink = RecordingTraceSink()
        traced = plan.price(sink=sink)
        assert traced.as_dict() == silent.as_dict()
        assert len(sink) > 0


class TestTraceReconciliation:
    @pytest.mark.parametrize("make_plan", [
        lambda m: make_driver("openblas", m).plan_gemm(75, 75, 75),
        lambda m: make_driver("eigen", m).plan_gemm(33, 65, 129),
        lambda m: make_blasfeo(m).plan_gemm(24, 24, 24),
        lambda m: ReferenceSmmDriver(m).plan_gemm(97, 101, 89),
        lambda m: ReferenceSmmDriver(m, threads=16).plan_gemm(64, 512, 512),
        lambda m: MultithreadedGemm(m, "blis", threads=64)
        .plan_gemm(80, 2048, 2048),
        lambda m: MultithreadedGemm(m, "eigen", threads=4)
        .plan_gemm(256, 2048, 2048),
    ], ids=["goto", "goto-m-order", "blasfeo", "reference", "reference-mt",
            "mt-blis", "mt-eigen"])
    def test_phase_events_rebuild_the_buckets(self, machine, make_plan):
        plan = make_plan(machine)
        sink = RecordingTraceSink()
        timing = plan.price(sink=sink)

        totals = sink.bucket_totals()
        assert totals["kernel"] == timing.kernel_cycles
        assert totals["pack_a"] == timing.pack_a_cycles
        assert totals["pack_b"] == timing.pack_b_cycles
        assert totals["sync"] == timing.sync_cycles
        assert totals["other"] == timing.other_cycles

        replayed = timing_from_trace(sink.events)
        assert replayed.as_dict() == timing.as_dict()

    def test_reconciles_from_json_round_trip(self, machine):
        plan = ReferenceSmmDriver(machine).plan_gemm(33, 65, 129)
        sink = RecordingTraceSink()
        timing = plan.price(sink=sink)
        dicts = json.loads(sink.to_json())
        assert timing_from_trace(dicts).as_dict() == timing.as_dict()

    def test_event_stream_shape(self, machine):
        plan = ReferenceSmmDriver(machine).plan_gemm(24, 24, 24)
        sink = RecordingTraceSink()
        plan.price(sink=sink)
        kinds = [event.kind for event in sink]
        assert kinds[0] == "plan" and kinds[-1] == "total"
        assert "phase" in kinds and "kernel_cache" in kinds
        for event in sink:
            if event.kind == "phase":
                assert event.bucket in PHASE_BUCKETS


class TestTraceSummary:
    def test_summary_totals_and_render(self, machine):
        plan = MultithreadedGemm(machine, "openblas", threads=64) \
            .plan_gemm(16, 2048, 2048)
        sink = RecordingTraceSink()
        timing = plan.price(sink=sink)
        summary = summarize_trace(sink.events)
        assert summary.total_cycles == pytest.approx(timing.total_cycles)
        assert summary.useful_flops == timing.useful_flops
        assert summary.top_charges
        text = summary.render()
        assert "sync" in text and "hottest ops" in text

    def test_summary_accepts_dict_events(self, machine):
        plan = make_openblas(machine).plan_gemm(48, 48, 48)
        sink = RecordingTraceSink()
        plan.price(sink=sink)
        from_objects = summarize_trace(sink.events)
        from_dicts = summarize_trace(json.loads(sink.to_json()))
        assert from_dicts.bucket_cycles == from_objects.bucket_cycles
        assert from_dicts.events == from_objects.events


class TestBatchPlans:
    def test_batch_merge_matches_merged_with_fold(self, machine):
        batch = BatchedSmm(machine)
        shapes = [(8, 8, 8), (16, 16, 16), (5, 3, 2), (8, 8, 8)]
        merged = batch.cost_batch(shapes)
        folded = None
        for shape in shapes:
            timing, _ = batch.driver.cost_gemm(*shape)
            folded = timing if folded is None else folded.merged_with(timing)
        assert merged.as_dict() == folded.as_dict()

    def test_batch_trace_emits_one_rollup_per_problem(self, machine):
        batch = BatchedSmm(machine)
        plan = batch.plan_batch([(8, 8, 8), (16, 16, 16)])
        sink = RecordingTraceSink()
        timing = plan.price(sink=sink)
        assert timing_from_trace(sink.events).as_dict() == timing.as_dict()
        phases = [e for e in sink if e.kind == "phase"]
        # five buckets rolled up per sub-problem, nothing double-counted
        assert len(phases) == 2 * len(PHASE_BUCKETS)

    def test_empty_batch_rejected(self, machine):
        with pytest.raises(ReproError):
            BatchedSmm(machine).plan_batch([])


class TestTunerProvenance:
    def test_plan_execution_stamps_tuner_provenance(self, machine,
                                                    tmp_path):
        tuner = AdaptiveTuner(machine,
                              cache_path=str(tmp_path / "cache.json"))
        plan = tuner.plan_execution(24, 16, 8)
        assert plan.meta["provenance"].startswith("tuner:")
        assert plan.meta["tuner"]["source"] in ("tuned", "heuristic")
        assert plan.meta["tuner"]["verified"] is True
        sink = RecordingTraceSink()
        timing = plan.price(sink=sink)
        assert timing_from_trace(sink.events).as_dict() == timing.as_dict()
        plan_events = [e for e in sink if e.kind == "plan"]
        assert plan_events[0].detail["provenance"].startswith("tuner:")

    def test_tuned_plan_costs_what_the_tuner_promised(self, machine,
                                                      tmp_path):
        tuner = AdaptiveTuner(machine,
                              cache_path=str(tmp_path / "cache.json"))
        tuned = tuner.tune(32, 32, 32)
        plan = tuner.plan_execution(32, 32, 32)
        assert plan.price().total_cycles == pytest.approx(
            tuned.total_cycles, rel=1e-9
        )
