"""Unit + property tests for layouts, panel-major storage and addresses."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memlayout import (
    AddressSpace,
    MatrixHandle,
    PanelMajorMatrix,
    bind,
    conversion_element_moves,
    from_panel_major,
    make_matrix,
    to_panel_major,
)
from repro.util import make_rng, random_matrix
from repro.util.errors import LayoutError


class TestAddressSpace:
    def test_alignment(self):
        space = AddressSpace(alignment=64)
        a = space.alloc("a", 10)
        b = space.alloc("b", 10)
        assert a.base % 64 == 0
        assert b.base % 64 == 0
        assert b.base >= a.end

    def test_duplicate_name_rejected(self):
        space = AddressSpace()
        space.alloc("a", 10)
        with pytest.raises(LayoutError):
            space.alloc("a", 10)

    def test_lookup_and_owner(self):
        space = AddressSpace()
        a = space.alloc("a", 100, panel=3)
        assert space.lookup("a") is a
        assert space.owner_of(a.base + 50) is a
        assert space.panel_of(a.base) == 3

    def test_owner_of_unallocated(self):
        space = AddressSpace()
        with pytest.raises(LayoutError):
            space.owner_of(12345)

    def test_lookup_missing(self):
        with pytest.raises(LayoutError):
            AddressSpace().lookup("ghost")

    def test_bad_alignment(self):
        with pytest.raises(LayoutError):
            AddressSpace(alignment=48)

    def test_bytes_allocated(self):
        space = AddressSpace()
        space.alloc("a", 100)
        space.alloc("b", 28)
        assert space.bytes_allocated == 128

    def test_contains(self):
        space = AddressSpace()
        a = space.alloc("a", 10)
        assert a.contains(a.base)
        assert not a.contains(a.end)


class TestPanelMajor:
    def test_round_trip_exact(self, rng):
        dense = random_matrix(rng, 12, 7)
        pm = to_panel_major(dense, ps=4)
        np.testing.assert_array_equal(from_panel_major(pm), dense)

    def test_padding_rows_zero(self, rng):
        dense = random_matrix(rng, 10, 5)
        pm = to_panel_major(dense, ps=4)
        assert pm.padded_rows == 12
        np.testing.assert_array_equal(pm.data[10:, :], 0)

    def test_n_panels(self, rng):
        pm = to_panel_major(random_matrix(rng, 9, 3), ps=4)
        assert pm.n_panels == 3

    def test_panel_view(self, rng):
        dense = random_matrix(rng, 8, 3)
        pm = to_panel_major(dense, ps=4)
        np.testing.assert_array_equal(pm.panel(1), dense[4:8, :])

    def test_panel_out_of_range(self, rng):
        pm = to_panel_major(random_matrix(rng, 8, 3), ps=4)
        with pytest.raises(LayoutError):
            pm.panel(2)

    def test_sliver_is_contiguous_column(self, rng):
        dense = random_matrix(rng, 8, 3)
        pm = to_panel_major(dense, ps=4)
        np.testing.assert_array_equal(pm.sliver(0, 2), dense[0:4, 2])

    def test_sliver_bad_col(self, rng):
        pm = to_panel_major(random_matrix(rng, 8, 3), ps=4)
        with pytest.raises(LayoutError):
            pm.sliver(0, 3)

    def test_element_offset_formula(self, rng):
        pm = to_panel_major(random_matrix(rng, 11, 6), ps=4)
        flat = pm.data.reshape(pm.n_panels, 6, 4).transpose(0, 2, 1)
        for i, j in [(0, 0), (3, 5), (4, 0), (10, 2)]:
            offset = pm.element_offset(i, j)
            panel, rem = divmod(offset, 4 * 6)
            col, lane = divmod(rem, 4)
            assert pm.data[panel * 4 + lane, col] == pytest.approx(
                pm.to_dense()[i, j]
            )

    def test_element_offset_out_of_range(self, rng):
        pm = to_panel_major(random_matrix(rng, 4, 4), ps=4)
        with pytest.raises(LayoutError):
            pm.element_offset(4, 0)

    def test_rejects_non_2d(self):
        with pytest.raises(LayoutError):
            to_panel_major(np.zeros(4, dtype=np.float32), ps=4)

    def test_conversion_moves(self):
        assert conversion_element_moves(10, 5, 4) == 12 * 5
        assert conversion_element_moves(8, 5, 4) == 8 * 5

    def test_backing_store_validation(self):
        with pytest.raises(LayoutError):
            PanelMajorMatrix(rows=5, cols=3, ps=4,
                             data=np.zeros((5, 3), dtype=np.float32))

    @settings(max_examples=40, deadline=None)
    @given(
        rows=st.integers(min_value=1, max_value=40),
        cols=st.integers(min_value=1, max_value=40),
        ps=st.sampled_from([2, 4, 8]),
    )
    def test_round_trip_property(self, rows, cols, ps):
        rng = make_rng(rows * 1000 + cols * 10 + ps)
        dense = random_matrix(rng, rows, cols)
        pm = to_panel_major(dense, ps)
        np.testing.assert_array_equal(pm.to_dense(), dense)
        assert pm.padded_rows % ps == 0
        assert pm.padded_rows - rows < ps


class TestMatrixHandle:
    def test_col_major_properties(self, rng):
        h = make_matrix(random_matrix(rng, 6, 4))
        assert h.rows == 6 and h.cols == 4
        assert h.leading_dim == 6
        assert h.itemsize == 4

    def test_row_major_leading_dim(self, rng):
        h = make_matrix(random_matrix(rng, 6, 4), order="row")
        assert h.leading_dim == 4

    def test_bad_order(self, rng):
        with pytest.raises(LayoutError):
            MatrixHandle(array=random_matrix(rng, 3, 3), order="diag")

    def test_wrong_contiguity_rejected(self, rng):
        c_ordered = np.ascontiguousarray(random_matrix(rng, 3, 4))
        with pytest.raises(LayoutError):
            MatrixHandle(array=c_ordered, order="col")

    def test_element_address_col_major(self, rng):
        space = AddressSpace()
        h = bind(make_matrix(random_matrix(rng, 6, 4)), space, "A")
        base = h.allocation.base
        assert h.element_address(0, 0) == base
        assert h.element_address(1, 0) == base + 4
        assert h.element_address(0, 1) == base + 6 * 4

    def test_element_address_requires_binding(self, rng):
        h = make_matrix(random_matrix(rng, 3, 3))
        with pytest.raises(LayoutError):
            h.element_address(0, 0)

    def test_element_address_bounds(self, rng):
        space = AddressSpace()
        h = bind(make_matrix(random_matrix(rng, 3, 3)), space, "A")
        with pytest.raises(LayoutError):
            h.element_address(3, 0)

    def test_non_2d_rejected(self):
        with pytest.raises(LayoutError):
            make_matrix(np.zeros(3, dtype=np.float32))
