"""Tests for the experiment drivers and result containers."""

import pytest

from repro.analysis import (
    FigureResult,
    FigureSeries,
    TableResult,
    fig5,
    fig5a,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    table1,
    table2,
)
from repro.util.errors import ReproError


class TestResultContainers:
    def test_series_lookup(self):
        fig = FigureResult(
            figure_id="f", x_label="x", y_label="y", xs=[1, 2],
            series=[FigureSeries("a", [0.1, 0.2])],
        )
        assert fig.series_by_name("a").ys == [0.1, 0.2]
        with pytest.raises(ReproError):
            fig.series_by_name("b")

    def test_figure_render(self):
        fig = FigureResult(
            figure_id="f", x_label="x", y_label="y", xs=[1],
            series=[FigureSeries("a", [0.5])],
        )
        assert "f" in fig.render()

    def test_table_column(self):
        t = TableResult("t", headers=["a", "b"], rows=[[1, 2], [3, 4]])
        assert t.column("b") == [2, 4]
        with pytest.raises(ReproError):
            t.column("c")

    def test_table_render(self):
        t = TableResult("t", headers=["a"], rows=[[1]])
        assert "t" in t.render()


class TestFigureExperiments:
    def test_fig5a_structure(self, machine):
        fig = fig5a(machine)
        assert len(fig.xs) == 40
        assert {s.name for s in fig.series} == {
            "openblas", "blis", "blasfeo", "eigen"
        }
        for s in fig.series:
            assert all(0 < y <= 1.0 for y in s.ys)

    def test_fig5_reference_series(self, machine):
        fig = fig5(machine, [(16, 16, 16)], "mini", 0,
                   include_reference=True)
        assert any(s.name == "reference" for s in fig.series)

    def test_fig6_has_p2c_series(self, machine):
        fig = fig6(machine)
        names = {s.name for s in fig.series}
        assert "p2c-model(small-M)" in names
        assert "small-K" in names

    def test_fig7_keys(self, machine):
        result = fig7(machine)
        assert "fmla" in result["naive_listing"]
        assert "ldp" in result["naive_listing"]
        assert result["naive_cycles_per_kstep"] > 0
        assert set(result["edge_family_efficiency"]) == {
            "8x4", "4x4", "2x4", "1x4"
        }
        assert 32 in result["window_sensitivity"]

    def test_fig7_edge_family_ordering(self, machine):
        fam = fig7(machine)["edge_family_efficiency"]
        assert fam["8x4"] > fam["4x4"] > fam["2x4"] > fam["1x4"]

    def test_fig8_structure(self, machine):
        fig = fig8(machine)
        assert {s.name for s in fig.series} == {"edge-packed", "edge-unpacked"}
        assert all(x % 4 == 1 for x in fig.xs)  # N % nr == 1 by design

    def test_fig9_three_sweeps(self, machine):
        sweeps = fig9(machine)
        assert set(sweeps) == {"sweep-M", "sweep-N", "sweep-K"}
        for fig in sweeps.values():
            ys = fig.series[0].ys
            assert all(0 < y <= 1.0 for y in ys)

    def test_fig10_structure(self, machine):
        figs = fig10(machine, threads=64)
        assert set(figs) == {"small-M", "small-N", "small-K"}
        names = {s.name for s in figs["small-M"].series}
        assert names == {"openblas", "blis", "eigen"}


class TestTableExperiments:
    def test_table1_matches_paper(self):
        t = table1()
        assert t.column("OpenBLAS")[1] == "8"
        assert t.column("BLIS")[2] == "8x12"
        assert t.column("Eigen")[0] == "none"

    def test_table2_structure(self, machine):
        t = table2(machine)
        assert t.headers[0] == "M"
        assert len(t.rows) == 16
        assert t.column("M") == list(range(16, 257, 16))

    def test_table2_shares_sum_to_near_100(self, machine):
        t = table2(machine)
        for row in t.rows:
            shares = row[1] + row[2] + row[3] + row[4]
            assert shares == pytest.approx(100.0, abs=1.0)
