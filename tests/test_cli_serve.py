"""The ``repro serve`` CLI: parser wiring and the self-test gate."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.machine == "phytium2000plus"
        assert args.shards == 8
        assert args.jobs == 0
        assert args.host == "127.0.0.1"
        assert args.port == 8513
        assert not args.self_test
        assert not args.stats

    def test_rejects_unknown_machine(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--machine", "x86_like"])

    def test_self_test_flag(self):
        args = build_parser().parse_args(
            ["serve", "--self-test", "--stats", "--shards", "4"]
        )
        assert args.self_test and args.stats and args.shards == 4


class TestSelfTest:
    def test_smoke_passes_and_reports(self, capsys):
        assert main(["serve", "--self-test", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "serve self-test on phytium2000plus" in out
        assert "8 cache shard(s)" in out
        assert "provenance    : cache" in out
        assert "heuristic-pending" in out
        assert "cold query" in out
        assert "tuned landed" in out
        assert "OK: mixed hot/cold batch served, clean shutdown" in out
        # --stats appends the JSON counters block
        assert '"tuning_queue_depth"' in out
