"""Metamorphic correctness tests: algebraic identities every driver must
satisfy regardless of its internal blocking, packing or edge handling.

These catch whole classes of bugs (lost scale factors, mis-accumulated
edges, padded lanes leaking into results) that fixed-example tests miss.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blas import make_driver
from repro.core import ReferenceSmmDriver
from repro.util import make_rng, random_matrix

LIBS = ["openblas", "blis", "blasfeo", "eigen"]


def _driver(machine, lib):
    if lib == "reference":
        return ReferenceSmmDriver(machine)
    return make_driver(lib, machine)


@pytest.fixture(scope="module", params=LIBS + ["reference"])
def any_driver(request, machine):
    return _driver(machine, request.param)


class TestLinearity:
    def test_scaling_a_equals_alpha(self, any_driver, rng):
        a = random_matrix(rng, 13, 9)
        b = random_matrix(rng, 9, 11)
        scaled = any_driver.gemm(np.asarray(2.0 * a, order="F"), b).c
        alphad = any_driver.gemm(a, b, alpha=2.0).c
        np.testing.assert_allclose(scaled, alphad, rtol=1e-5, atol=1e-6)

    def test_additivity_in_a(self, any_driver, rng):
        a1 = random_matrix(rng, 12, 8)
        a2 = random_matrix(rng, 12, 8)
        b = random_matrix(rng, 8, 10)
        sum_first = any_driver.gemm(
            np.asarray(a1 + a2, order="F"), b
        ).c
        separate = any_driver.gemm(a1, b).c + any_driver.gemm(a2, b).c
        np.testing.assert_allclose(sum_first, separate, rtol=1e-4,
                                   atol=1e-5)

    def test_beta_accumulation_is_affine(self, any_driver, rng):
        a = random_matrix(rng, 10, 10)
        b = random_matrix(rng, 10, 10)
        c = random_matrix(rng, 10, 10)
        once = any_driver.gemm(a, b, c=c, beta=1.0).c
        twice = any_driver.gemm(a, b, c=once, beta=1.0).c
        direct = any_driver.gemm(a, b, c=c, alpha=2.0, beta=1.0).c
        np.testing.assert_allclose(twice, direct, rtol=1e-4, atol=1e-5)


class TestStructural:
    def test_identity_b_returns_a(self, any_driver, rng):
        a = random_matrix(rng, 17, 6)
        eye = np.asarray(np.eye(6, dtype=np.float32), order="F")
        out = any_driver.gemm(a, eye).c
        np.testing.assert_allclose(out, a, rtol=1e-5, atol=1e-6)

    def test_zero_a_gives_zero(self, any_driver, rng):
        a = np.zeros((9, 7), dtype=np.float32, order="F")
        b = random_matrix(rng, 7, 5)
        out = any_driver.gemm(a, b).c
        np.testing.assert_array_equal(out, 0)

    def test_block_column_consistency(self, any_driver, rng):
        # computing [B1 | B2] at once equals computing columns separately
        a = random_matrix(rng, 14, 12)
        b = random_matrix(rng, 12, 10)
        whole = any_driver.gemm(a, b).c
        left = any_driver.gemm(a, np.asarray(b[:, :4], order="F")).c
        right = any_driver.gemm(a, np.asarray(b[:, 4:], order="F")).c
        np.testing.assert_allclose(whole, np.hstack([left, right]),
                                   rtol=1e-5, atol=1e-6)

    def test_block_k_accumulation(self, any_driver, rng):
        # A = [A1 | A2], B = [B1; B2]: AB = A1B1 + A2B2
        a = random_matrix(rng, 11, 16)
        b = random_matrix(rng, 16, 9)
        whole = any_driver.gemm(a, b).c
        part1 = any_driver.gemm(np.asarray(a[:, :7], order="F"),
                                np.asarray(b[:7, :], order="F")).c
        part2 = any_driver.gemm(np.asarray(a[:, 7:], order="F"),
                                np.asarray(b[7:, :], order="F")).c
        np.testing.assert_allclose(whole, part1 + part2, rtol=1e-4,
                                   atol=1e-5)


class TestTimingMetamorphic:
    @settings(max_examples=12, deadline=None)
    @given(
        m=st.integers(4, 64), n=st.integers(4, 64), k=st.integers(4, 64),
        lib=st.sampled_from(LIBS),
    )
    def test_cost_deterministic(self, machine, m, n, k, lib):
        drv = make_driver(lib, machine)
        assert drv.cost_gemm(m, n, k).total_cycles == \
            drv.cost_gemm(m, n, k).total_cycles

    @settings(max_examples=12, deadline=None)
    @given(m=st.integers(4, 48), n=st.integers(4, 48), k=st.integers(4, 48),
           lib=st.sampled_from(LIBS))
    def test_doubling_k_never_cheaper(self, machine, m, n, k, lib):
        drv = make_driver(lib, machine)
        t1 = drv.cost_gemm(m, n, k).total_cycles
        t2 = drv.cost_gemm(m, n, 2 * k).total_cycles
        assert t2 > t1

    @settings(max_examples=12, deadline=None)
    @given(m=st.integers(4, 48), n=st.integers(4, 48), k=st.integers(4, 48))
    def test_timing_independent_of_values(self, machine, m, n, k):
        # the cost model must not peek at operand data
        drv = make_driver("blis", machine)
        rng = make_rng(m + n + k)
        a1 = random_matrix(rng, m, k)
        b1 = random_matrix(rng, k, n)
        a2 = np.asarray(np.ones((m, k), dtype=np.float32), order="F")
        b2 = np.asarray(np.ones((k, n), dtype=np.float32), order="F")
        t1 = drv.gemm(a1, b1).timing.total_cycles
        t2 = drv.gemm(a2, b2).timing.total_cycles
        assert t1 == t2
