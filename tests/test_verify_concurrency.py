"""C0xx concurrency-discipline linter: rules, fixtures, tree scan."""

import textwrap

from repro.verify.concurrency import (
    FIXTURES,
    concurrency_self_check,
    fixture_path,
    inject_bad_source,
    lint_file,
    lint_source,
    lint_tree,
)
from repro.verify.planrules import CONCURRENCY_RULES


def lint(snippet):
    return lint_source(textwrap.dedent(snippet), "snippet.py")


def rules_of(diags):
    return sorted({d.rule for d in diags})


class TestC001UnguardedMutation:
    def test_unguarded_write_of_guarded_attr_flagged(self):
        diags = lint("""
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0

                def bump(self):
                    with self._lock:
                        self._n += 1

                def reset(self):
                    self._n = 0
        """)
        assert rules_of(diags) == ["C001-unguarded-mutation"]
        (diag,) = diags
        assert diag.symbol == "C.reset"
        assert diag.line == 14

    def test_mutator_calls_count_as_mutations(self):
        diags = lint("""
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []

                def add(self, x):
                    with self._lock:
                        self._items.append(x)

                def drop(self):
                    self._items.clear()
        """)
        assert rules_of(diags) == ["C001-unguarded-mutation"]

    def test_consistently_unguarded_attrs_not_flagged(self):
        # attributes never mutated under a lock carry no discipline to
        # break (e.g. a _dirty flag by design)
        diags = lint("""
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._dirty = False

                def touch(self):
                    self._dirty = True

                def settle(self):
                    self._dirty = False
        """)
        assert diags == []

    def test_init_writes_never_flagged(self):
        # construction happens-before any concurrent access
        diags = lint("""
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0
                    self._n += 1

                def bump(self):
                    with self._lock:
                        self._n += 1
        """)
        assert diags == []

    def test_guarded_everywhere_is_clean(self):
        diags = lint("""
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0

                def bump(self):
                    with self._lock:
                        self._n += 1

                def reset(self):
                    with self._lock:
                        self._n = 0
        """)
        assert diags == []


class TestC002UnpicklableSubmission:
    def test_bound_method_to_self_pool_flagged(self):
        diags = lint("""
            from concurrent.futures import ProcessPoolExecutor

            class C:
                def __init__(self):
                    self._pool = ProcessPoolExecutor()

                def go(self, x):
                    return self._pool.submit(self._work, x)

                def _work(self, x):
                    return x
        """)
        assert rules_of(diags) == ["C002-unpicklable-submission"]

    def test_lambda_and_nested_function_flagged(self):
        diags = lint("""
            from concurrent.futures import ProcessPoolExecutor

            class C:
                def go(self, xs):
                    def helper(x):
                        return x
                    with ProcessPoolExecutor() as pool:
                        pool.submit(lambda: 1)
                        pool.map(helper, xs)
        """)
        assert [d.rule for d in diags] == [
            "C002-unpicklable-submission",
            "C002-unpicklable-submission",
        ]

    def test_thread_pool_submissions_are_fine(self):
        # threads share the interpreter; bound methods are fine
        diags = lint("""
            from concurrent.futures import ThreadPoolExecutor

            class C:
                def __init__(self):
                    self._pool = ThreadPoolExecutor()

                def go(self, x):
                    return self._pool.submit(self._work, x)

                def _work(self, x):
                    return x
        """)
        assert diags == []

    def test_mixed_evidence_attr_not_flagged(self):
        # an attr that is sometimes a thread pool (the serving stack's
        # self._executor) cannot be assumed to be a process pool
        diags = lint("""
            from concurrent.futures import ProcessPoolExecutor, \\
                ThreadPoolExecutor

            class C:
                def __init__(self, jobs):
                    if jobs:
                        self._executor = ProcessPoolExecutor(jobs)
                    else:
                        self._executor = ThreadPoolExecutor(1)

                def go(self, loop, x):
                    return loop.run_in_executor(
                        self._executor, self._work, x
                    )

                def _work(self, x):
                    return x
        """)
        assert diags == []

    def test_module_level_worker_is_fine(self):
        diags = lint("""
            from concurrent.futures import ProcessPoolExecutor

            def work(x):
                return x

            class C:
                def __init__(self):
                    self._pool = ProcessPoolExecutor()

                def go(self, x):
                    return self._pool.submit(work, x)
        """)
        assert diags == []


class TestC003EagerAsyncioPrimitive:
    def test_init_construction_flagged(self):
        diags = lint("""
            import asyncio

            class C:
                def __init__(self):
                    self._queue = asyncio.Queue()
        """)
        assert rules_of(diags) == ["C003-eager-asyncio-primitive"]

    def test_module_scope_construction_flagged(self):
        diags = lint("""
            import asyncio

            EVENT = asyncio.Event()
        """)
        assert rules_of(diags) == ["C003-eager-asyncio-primitive"]

    def test_lazy_construction_in_coroutine_is_fine(self):
        # the PR 9 fix pattern: build inside the running loop
        diags = lint("""
            import asyncio

            class C:
                def __init__(self):
                    self._queue = None

                async def ensure(self):
                    if self._queue is None:
                        self._queue = asyncio.Queue()
                    return self._queue
        """)
        assert diags == []


class TestC004AwaitHoldingLock:
    def test_await_inside_lock_flagged(self):
        diags = lint("""
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()

                async def go(self):
                    with self._lock:
                        await self.other()

                async def other(self):
                    return 1
        """)
        assert rules_of(diags) == ["C004-await-holding-lock"]

    def test_await_after_lock_released_is_fine(self):
        diags = lint("""
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0

                async def go(self):
                    with self._lock:
                        self._n += 1
                    await self.other()

                async def other(self):
                    return 1
        """)
        assert diags == []


class TestFixturesAndTree:
    def test_every_rule_has_a_fixture_that_fires(self):
        assert set(FIXTURES) == set(CONCURRENCY_RULES)
        results = concurrency_self_check()
        assert [rule for rule, _ in results] == sorted(CONCURRENCY_RULES)
        assert all(fired for _, fired in results)

    def test_fixture_findings_name_the_seeded_bug(self):
        diags = lint_file(fixture_path("C002-unpicklable-submission"))
        assert any("_tune_one" in d.message for d in diags)

    def test_shipped_tree_is_clean(self):
        files, diags = lint_tree()
        assert files > 50  # the whole package, not a subset
        assert diags == []

    def test_tree_scan_excludes_fixtures(self):
        files, diags = lint_tree()
        assert not any("fixtures" in d.file for d in diags)

    def test_inject_bad_source_points_at_a_firing_fixture(self):
        rule_id, path = inject_bad_source()
        assert rule_id in CONCURRENCY_RULES
        diags = lint_file(path)
        assert any(d.rule == rule_id for d in diags)

    def test_diagnostics_render_and_serialize(self):
        diags = lint_file(fixture_path("C001-unguarded-mutation"))
        assert diags
        d = diags[0]
        assert d.where.endswith(f":{d.line}")
        as_dict = d.to_dict()
        assert as_dict["rule"] == d.rule
        assert as_dict["file"] == d.file
