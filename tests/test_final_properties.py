"""Final cross-cutting property batch: conservation and ordering laws."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blas import make_driver
from repro.kernels import JitKernelFactory, plan_coverage
from repro.parallel import MultithreadedGemm, grid_partition
from repro.core import jit_tile_plan


class TestWorkConservation:
    @settings(max_examples=30, deadline=None)
    @given(m=st.integers(1, 256), n=st.integers(1, 256),
           threads=st.sampled_from([2, 4, 8, 16, 64]))
    def test_grid_partition_conserves_area(self, m, n, threads):
        parts = grid_partition(m, n, threads)
        assert sum(mi * nj for mi, nj in parts) == m * n

    @settings(max_examples=20, deadline=None)
    @given(m=st.integers(1, 120), n=st.integers(1, 120))
    def test_jit_plan_padded_at_least_useful(self, machine, m, n):
        jit = JitKernelFactory(machine.core)
        plan = jit_tile_plan(jit, m, n)
        useful = plan_coverage(plan)
        executed = sum(
            inv.padded_rows * inv.padded_cols * inv.calls for inv in plan
        )
        assert useful == m * n
        assert executed >= useful

    @settings(max_examples=15, deadline=None)
    @given(m=st.integers(2, 80), n=st.integers(2, 80), k=st.integers(2, 80),
           lib=st.sampled_from(["openblas", "blis", "blasfeo", "eigen"]))
    def test_executed_flops_bound_useful(self, machine, m, n, k, lib):
        t = make_driver(lib, machine).cost_gemm(m, n, k)
        assert t.useful_flops == 2 * m * n * k
        assert t.executed_flops >= t.useful_flops - 1e-6


class TestMonotonicityLaws:
    @settings(max_examples=15, deadline=None)
    @given(m=st.integers(4, 64), n=st.integers(4, 64), k=st.integers(4, 64))
    def test_bigger_problems_cost_more(self, machine, m, n, k):
        drv = make_driver("blasfeo", machine)
        base = drv.cost_gemm(m, n, k).total_cycles
        assert drv.cost_gemm(m + 4, n, k).total_cycles > base * 0.999
        assert drv.cost_gemm(m, n + 4, k).total_cycles > base * 0.999

    @settings(max_examples=10, deadline=None)
    @given(m=st.integers(32, 128))
    def test_mt_total_work_at_least_serial_kernel(self, machine, m):
        """Parallelism can hide time but not destroy work: the aggregate
        kernel cycles across threads are at least the single-thread
        kernel cycles (padding/edges can only add work)."""
        from repro.blas import make_blis

        st_k = make_blis(machine).cost_gemm(m, 512, 256).kernel_cycles
        mt = MultithreadedGemm(machine, "blis", threads=16)
        t, info = mt.cost(m, 512, 256)
        fact = info["factorization"]
        aggregate = t.kernel_cycles * fact.threads
        assert aggregate > 0.8 * st_k

    def test_efficiency_never_exceeds_one(self, machine):
        for lib in ("openblas", "blis", "blasfeo", "eigen"):
            for s in (8, 16, 32, 64, 128):
                eff = make_driver(lib, machine).cost_gemm(s, s, s) \
                    .efficiency(machine, np.float32)
                assert 0.0 < eff <= 1.0, (lib, s)


class TestDtypeOrdering:
    @settings(max_examples=10, deadline=None)
    @given(s=st.sampled_from([16, 32, 64, 96]))
    def test_fp64_never_faster_in_cycles(self, machine, s):
        """Same shape, half the lanes: fp64 costs at least as many cycles."""
        f32 = make_driver("blasfeo", machine, dtype=np.float32) \
            .cost_gemm(s, s, s).total_cycles
        f64 = make_driver("blasfeo", machine, dtype=np.float64) \
            .cost_gemm(s, s, s).total_cycles
        assert f64 >= f32 * 0.999
