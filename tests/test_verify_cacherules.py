"""V5xx cache & wire integrity: auditor rules and negative controls."""

import json

import pytest

from repro.machine import graviton2_like
from repro.tuning import (
    AdaptiveTuner,
    ShardedTuningCache,
    TuningCache,
    merge_payload,
)
from repro.util import ConfigError
from repro.verify.cacherules import (
    CacheAuditor,
    audit_cache_file,
    cache_self_check,
    inject_bad_payload,
    wire_responses,
)
from repro.verify.planrules import CACHE_RULES


@pytest.fixture(scope="module")
def small_machine():
    return graviton2_like()


@pytest.fixture(scope="module")
def warmed(small_machine):
    """(cache, payload) with heuristic plans over a few buckets."""
    cache = TuningCache(small_machine, path="")
    tuner = AdaptiveTuner(small_machine, cache=cache)
    for shape, threads in (((8, 8, 8), 1), ((16, 16, 16), 1),
                           ((24, 24, 24), 2)):
        cache.put(tuner.heuristic_plan(*shape, threads=threads))
    return cache, json.loads(cache.export_json())


@pytest.fixture(scope="module")
def auditor(small_machine):
    return CacheAuditor(small_machine)


def mutated(payload, fn):
    copy = json.loads(json.dumps(payload))
    fn(copy)
    return copy


def rules_of(diags):
    return sorted({d.rule for d in diags})


class TestPayloadAudit:
    def test_clean_payload_has_no_findings(self, auditor, warmed):
        _, payload = warmed
        assert auditor.audit_payload(payload) == []

    def test_v501_replay_catches_infeasible_spec(self, auditor, warmed):
        _, payload = warmed
        bad = mutated(payload, lambda p: next(
            iter(p["entries"].values()))["spec"].__setitem__("mr", 64))
        diags = auditor.audit_payload(bad)
        assert "V501-replay-verification" in rules_of(diags)

    def test_v502_forged_fingerprint(self, auditor, warmed):
        _, payload = warmed
        bad = mutated(payload, lambda p: p.__setitem__(
            "fingerprint", "0" * 16))
        diags = auditor.audit_payload(bad, replay=False)
        assert rules_of(diags) == ["V502-fingerprint-consistency"]

    def test_v502_schema_mismatch(self, auditor, warmed):
        _, payload = warmed
        bad = mutated(payload, lambda p: p.__setitem__("schema", 99))
        diags = auditor.audit_payload(bad, replay=False)
        # the schema bump also rotates the fingerprint expectation,
        # but both findings are the same rule
        assert rules_of(diags) == ["V502-fingerprint-consistency"]

    def test_v502_token_key_mismatch(self, auditor, warmed):
        _, payload = warmed

        def relabel(p):
            token, entry = next(iter(p["entries"].items()))
            del p["entries"][token]
            p["entries"]["99x99x99:float32:t1"] = entry

        bad = mutated(payload, relabel)
        diags = auditor.audit_payload(bad, replay=False)
        assert any("carries plan key" in d.message for d in diags)

    def test_v502_off_lattice_shape(self, auditor, warmed):
        _, payload = warmed

        def skew(p):
            token, entry = next(iter(p["entries"].items()))
            entry["key"]["m"] = 67  # 67 > 64 buckets to 80
            del p["entries"][token]
            p["entries"]["67x8x8:float32:t1"] = entry

        bad = mutated(payload, skew)
        diags = auditor.audit_payload(bad, replay=False)
        assert any("bucket lattice" in d.message for d in diags)

    def test_v502_threads_beyond_core_count(
        self, auditor, small_machine, warmed
    ):
        _, payload = warmed
        over = small_machine.n_cores + 1

        def crank(p):
            token, entry = next(iter(p["entries"].items()))
            entry["key"]["threads"] = over
            del p["entries"][token]
            m, n, k = entry["key"]["m"], entry["key"]["n"], entry["key"]["k"]
            p["entries"][f"{m}x{n}x{k}:float32:t{over}"] = entry

        bad = mutated(payload, crank)
        diags = auditor.audit_payload(bad, replay=False)
        assert any("cores" in d.message for d in diags)

    def test_v502_malformed_entry(self, auditor, warmed):
        _, payload = warmed
        bad = mutated(payload, lambda p: p["entries"].__setitem__(
            "bogus", {"not": "a plan"}))
        diags = auditor.audit_payload(bad, replay=False)
        assert any("malformed entry" in d.message for d in diags)

    def test_v503_entry_worse_than_heuristic(self, auditor, warmed):
        _, payload = warmed

        def slow(p):
            entry = next(iter(p["entries"].values()))
            entry["total_cycles"] = entry["heuristic_cycles"] * 2.0

        bad = mutated(payload, slow)
        diags = auditor.audit_payload(bad, replay=False)
        assert rules_of(diags) == ["V503-merge-monotonicity"]


class TestMergeAudit:
    def test_real_merge_is_monotone(self, auditor, small_machine, warmed):
        _, payload = warmed
        dest = TuningCache(small_machine, path="")
        merge_payload(dest, payload)
        merged = json.loads(dest.export_json())
        assert auditor.audit_merge(merged, [payload]) == []

    def test_dropped_entry_flagged(self, auditor, warmed):
        _, payload = warmed
        merged = mutated(payload, lambda p: p["entries"].popitem())
        diags = auditor.audit_merge(merged, [payload])
        assert rules_of(diags) == ["V503-merge-monotonicity"]
        assert any("dropped" in d.message for d in diags)

    def test_regressed_entry_flagged(self, auditor, warmed):
        _, payload = warmed

        def slow(p):
            entry = next(iter(p["entries"].values()))
            entry["total_cycles"] *= 4.0

        merged = mutated(payload, slow)
        diags = auditor.audit_merge(merged, [payload])
        assert any("worse than the input" in d.message for d in diags)


class TestWireAudit:
    def test_synthesized_responses_are_clean(self, auditor, warmed):
        _, payload = warmed
        responses = wire_responses(payload)
        assert len(responses) == len(payload["entries"])
        assert auditor.audit_responses(responses) == []

    def test_v504_missing_plan(self, auditor, warmed):
        _, payload = warmed
        responses = wire_responses(payload)
        responses[0]["plan"] = None
        diags = auditor.audit_responses(responses)
        assert rules_of(diags) == ["V504-response-provenance"]

    def test_v504_unknown_provenance(self, auditor, warmed):
        _, payload = warmed
        responses = wire_responses(payload)
        responses[0]["provenance"] = "oracle"
        diags = auditor.audit_responses(responses)
        assert rules_of(diags) == ["V504-response-provenance"]

    def test_v504_plan_request_token_mismatch(self, auditor, warmed):
        _, payload = warmed
        responses = wire_responses(payload)
        if len(responses) < 2:
            pytest.skip("needs two entries")
        responses[0]["plan"] = responses[1]["plan"]
        diags = auditor.audit_responses(responses)
        assert any("buckets to" in d.message for d in diags)


class TestLiveCacheAudit:
    def test_v505_overshoot_flagged(self, auditor, small_machine, warmed):
        cache, payload = warmed
        live = ShardedTuningCache(small_machine, path="", capacity=8,
                                  shards=2)
        for plan in cache:
            live.put(plan)
        live.capacity = 1  # recreate the pre-1.7 overshoot
        diags = auditor.audit_cache(live, replay=False)
        assert rules_of(diags) == ["V505-capacity-overshoot"]

    def test_bounded_live_cache_is_clean(self, auditor, small_machine,
                                         warmed):
        cache, _ = warmed
        live = ShardedTuningCache(small_machine, path="", capacity=8,
                                  shards=2)
        for plan in cache:
            live.put(plan)
        assert auditor.audit_cache(live, replay=False) == []


class TestEntryPoints:
    def test_self_check_all_rules_fire(self, small_machine):
        results = cache_self_check(small_machine)
        assert [rule for rule, _ in results] == sorted(CACHE_RULES)
        assert all(fired for _, fired in results)

    def test_inject_bad_payload_fires_its_rule(self, auditor,
                                               small_machine):
        rule_id, payload = inject_bad_payload(small_machine)
        diags = auditor.audit_payload(payload, replay=False)
        assert any(d.rule == rule_id for d in diags)

    def test_audit_cache_file_round_trip(self, small_machine, warmed,
                                         tmp_path):
        cache, _ = warmed
        path = str(tmp_path / "cache.json")
        disk = TuningCache(small_machine, path=path)
        for plan in cache:
            disk.put(plan)
        disk.save()
        findings, entries = audit_cache_file(small_machine, path)
        assert findings == [] and entries == 3

    def test_audit_cache_file_unreadable_raises(self, small_machine,
                                                tmp_path):
        with pytest.raises(ConfigError):
            audit_cache_file(small_machine, str(tmp_path / "nope.json"))

    def test_diagnostics_serialize(self, auditor, warmed):
        _, payload = warmed
        bad = mutated(payload, lambda p: p.__setitem__(
            "fingerprint", "0" * 16))
        (diag,) = auditor.audit_payload(bad, source="x.json", replay=False)
        assert diag.where == "x.json"
        assert diag.to_dict()["rule"] == "V502-fingerprint-consistency"
