"""Shared fixtures: one machine model and seeded RNG per session.

The session also arms the pricing engine's verify-before-price gate, so
every plan any test prices is first statically analyzed (V3xx rules) —
golden parity under the gate proves verification never perturbs pricing.
"""

import numpy as np
import pytest

from repro.machine import a64fx_like, phytium2000plus
from repro.plan import ENGINE
from repro.util import make_rng


@pytest.fixture(scope="session", autouse=True)
def _steady_store_sandbox(tmp_path_factory):
    """Keep the persistent steady-state store out of the repo root.

    Anything under test that attaches a store (the lint CLI, the
    benchmark recorder) writes to a session-scoped temp file instead of
    ``.repro_steady_cache.json`` in the working directory.
    """
    import os

    path = tmp_path_factory.mktemp("steady") / "steady_cache.json"
    previous = os.environ.get("REPRO_STEADY_CACHE")
    os.environ["REPRO_STEADY_CACHE"] = str(path)
    yield
    if previous is None:
        os.environ.pop("REPRO_STEADY_CACHE", None)
    else:
        os.environ["REPRO_STEADY_CACHE"] = previous


@pytest.fixture(scope="session", autouse=True)
def _plan_verify_gate():
    """Every plan priced by the suite passes the V3xx analyzer first."""
    previous = ENGINE.verify
    ENGINE.verify = True
    yield
    ENGINE.verify = previous


@pytest.fixture(scope="session")
def machine():
    """The Phytium 2000+ machine model (immutable, session-shared)."""
    return phytium2000plus()


@pytest.fixture(scope="session")
def wide_machine():
    """The wider-SIMD sensitivity machine."""
    return a64fx_like()


@pytest.fixture()
def rng():
    """A fresh deterministic generator per test."""
    return make_rng()


@pytest.fixture(scope="session")
def fp32():
    """Shorthand dtype fixture."""
    return np.float32
