"""Shared fixtures: one machine model and seeded RNG per session."""

import numpy as np
import pytest

from repro.machine import a64fx_like, phytium2000plus
from repro.util import make_rng


@pytest.fixture(scope="session")
def machine():
    """The Phytium 2000+ machine model (immutable, session-shared)."""
    return phytium2000plus()


@pytest.fixture(scope="session")
def wide_machine():
    """The wider-SIMD sensitivity machine."""
    return a64fx_like()


@pytest.fixture()
def rng():
    """A fresh deterministic generator per test."""
    return make_rng()


@pytest.fixture(scope="session")
def fp32():
    """Shorthand dtype fixture."""
    return np.float32
