"""Batch pricing layer: golden parity, LRU bounds, cache invalidation.

The contract under test (docs/PERFORMANCE.md): pricing through the
batch layer — hash-consed subtrees, memoized charge tapes, grid
vectorization — is **bit-for-bit** equal to single-plan ``Engine``
pricing, on the record path and on the replay path, and no cache can
serve a result across a machine or model-configuration change.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.plan import (
    ENGINE,
    BatchPricer,
    BoundedMemo,
    InternPool,
    ShapeGridPricer,
    batch_pricing_cache_info,
    canonical_node,
    context_token,
    pricing_key,
)
from repro.plan.batch import skeleton_census, skeleton_key
from repro.plan.ir import PackOp
from repro.verify.planlint import golden_plan_cases, lower_named


@pytest.fixture(scope="module")
def golden_cases(machine):
    return list(golden_plan_cases(machine))


class TestGoldenParity:
    def test_bit_for_bit_over_golden_grid(self, golden_cases):
        """Record AND replay paths equal Engine pricing, all 708 plans.

        The golden grid covers every driver at 1 thread and the
        multithreaded drivers at 4 and 64 threads; ``as_dict`` equality
        is exact float equality on every bucket.
        """
        assert {t for _, t, _, _ in golden_cases} == {1, 4, 64}
        assert len(golden_cases) == 708
        pricer = BatchPricer()
        plans = [plan for _, _, _, plan in golden_cases]
        single = [ENGINE.price(plan).as_dict() for plan in plans]
        recorded = [pricer.price(plan).as_dict() for plan in plans]
        assert recorded == single
        replayed = [pricer.price(plan).as_dict() for plan in plans]
        assert replayed == single
        info = pricer.cache_info()
        # second pass must run entirely off tapes
        assert info["tapes"]["hits"] >= info["tapes"]["misses"]

    def test_grid_pricer_arrays_match_timings(self, machine):
        shapes = [(8, 8, 8), (24, 16, 8), (33, 65, 129)]
        grid = ShapeGridPricer(machine, lib="openblas").price_grid(shapes)
        assert grid.shapes.shape == (3, 3)
        for i, timing in enumerate(grid.timings):
            assert grid.total_cycles[i] == timing.total_cycles
            assert grid.kernel_cycles[i] == timing.kernel_cycles
            assert grid.executed_flops[i] == timing.executed_flops
        fpc = grid.flops_per_cycle()
        assert np.all(fpc >= 0.0)
        assert np.all(grid.gflops(2.2) == fpc * 2.2)


class TestBoundedMemo:
    def test_lru_bound_and_eviction_order(self):
        memo = BoundedMemo(maxsize=2)
        memo.put("a", 1)
        memo.put("b", 2)
        assert memo.get("a") == 1  # refreshes a; b is now LRU
        memo.put("c", 3)
        assert len(memo) == 2
        assert memo.get("b") is None  # evicted
        assert memo.get("a") == 1
        assert memo.get("c") == 3

    def test_hit_miss_counters(self):
        memo = BoundedMemo(maxsize=4)
        assert memo.get("x") is None
        memo.put("x", 0.0)
        assert memo.get("x") == 0.0
        info = memo.info()
        assert info["hits"] == 1
        assert info["misses"] == 1
        assert info["size"] == 1
        memo.clear()
        assert len(memo) == 0


class TestThreadSafety:
    def test_concurrent_pricing_matches_serial(self, machine):
        """One pricer hammered from many threads stays bit-for-bit.

        This is the serving-layer topology: the background tuning
        thread prices candidate plans through the shared BATCH_PRICER
        while the event loop prices its own micro-batches.  The
        stateful tape recorder is per-thread and the memo/pool LRU
        bookkeeping is locked; a torn tape shows up here as a
        TypeError (``tuple(None)``) or a wrong bucket sum.
        """
        import threading

        from repro.plan import ShapeGridPricer

        shapes = [(m, m + 1, m + 2) for m in range(4, 20)]
        serial = ShapeGridPricer(machine).price_grid(shapes)
        expected = [t.as_dict() for t in serial.timings]

        errors = []
        results = [None] * 8
        barrier = threading.Barrier(8)

        def worker(slot):
            try:
                barrier.wait(timeout=10)
                grid = ShapeGridPricer(machine)
                for _ in range(3):
                    pricing = grid.price_grid(shapes)
                results[slot] = [t.as_dict() for t in pricing.timings]
            except Exception as exc:  # noqa: BLE001 — recorded for assert
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(slot,))
            for slot in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        for got in results:
            assert got == expected


class TestInvalidation:
    def test_machine_change_never_replays_a_stale_tape(
        self, machine, wide_machine
    ):
        """Same shape, different machine: distinct keys, correct results."""
        plan_a = lower_named(machine, "openblas", 1, 24, 16, 8)
        plan_b = lower_named(wide_machine, "openblas", 1, 24, 16, 8)
        assert context_token(plan_a.context) != context_token(plan_b.context)
        pricer = BatchPricer()
        got_a = pricer.price(plan_a).as_dict()
        got_b = pricer.price(plan_b).as_dict()
        assert got_a == ENGINE.price(plan_a).as_dict()
        assert got_b == ENGINE.price(plan_b).as_dict()
        assert got_a != got_b  # a 512-bit machine prices differently

    def test_context_token_covers_model_rebinding(self, machine):
        plan = lower_named(machine, "reference", 1, 8, 8, 8)
        ctx = plan.context
        rebound = dataclasses.replace(ctx, itemsize=8)
        assert context_token(ctx) != context_token(rebound)


class TestInterning:
    def _pack(self, rows, cols):
        return PackOp(
            label="b-panel", bucket="pack_b", rows=rows, cols=cols,
            itemsize=4, contiguous=False, resident="l2",
        )

    def test_identical_structures_share_one_representative(self):
        pool = InternPool()
        rep1, key1 = pool.intern(self._pack(64, 8))
        rep2, key2 = pool.intern(self._pack(64, 8))
        assert rep1 is rep2
        assert key1 == key2
        assert pool.info()["requests"] == 2
        assert pool.unique == 1

    @settings(max_examples=60, deadline=None)
    @given(
        rows=st.integers(min_value=1, max_value=512),
        cols=st.integers(min_value=1, max_value=512),
        other_rows=st.integers(min_value=1, max_value=512),
        other_cols=st.integers(min_value=1, max_value=512),
    )
    def test_interning_never_merges_different_trip_counts(
        self, rows, cols, other_rows, other_cols
    ):
        """Property: plans differing only in loop extents never share a
        canonical key (so they can never share a charge tape), even
        though they share a *skeleton*."""
        a, b = self._pack(rows, cols), self._pack(other_rows, other_cols)
        pool = InternPool()
        rep_a, key_a = pool.intern(a)
        rep_b, key_b = pool.intern(b)
        assert skeleton_key(a) == skeleton_key(b)
        if (rows, cols) == (other_rows, other_cols):
            assert key_a == key_b and rep_a is rep_b
        else:
            assert key_a != key_b and rep_a is not rep_b
            assert pricing_key(a, None) != pricing_key(b, None)

    def test_skeleton_census_over_a_sweep(self, machine):
        plans = [
            lower_named(machine, "blasfeo", 1, s, s, s)
            for s in (8, 16, 24, 32)
        ]
        census = skeleton_census(plans)
        assert census["plans"] == 4
        # every shape is a distinct structure ...
        assert census["structures"] == 4
        # ... but the sweep reuses far fewer plan shapes
        assert census["skeletons"] < census["structures"]


class TestCacheInfo:
    def test_global_info_shape(self, machine):
        info = batch_pricing_cache_info()
        for section in ("tapes", "interning", "primitives", "steady_store"):
            assert section in info
        assert {"hits", "misses", "size", "maxsize"} <= set(
            info["tapes"]
        )

    def test_canonical_node_ignores_meta_identity(self, machine):
        p1 = lower_named(machine, "reference", 1, 5, 3, 2)
        p2 = lower_named(machine, "reference", 1, 5, 3, 2)
        assert canonical_node(p1.root) == canonical_node(p2.root)
