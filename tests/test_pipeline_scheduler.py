"""Unit tests for the out-of-order dataflow scheduler."""

import pytest

from repro.isa import (
    branch_nz,
    fadd,
    fmla,
    ldr_q,
    movi_zero,
    str_q,
    subs_imm,
)
from repro.machine import CoreConfig
from repro.pipeline import OoOScheduler, render_schedule
from repro.util.errors import ScheduleError


@pytest.fixture()
def core():
    return CoreConfig()


@pytest.fixture()
def sched(core):
    return OoOScheduler(core)


class TestBasicScheduling:
    def test_empty_stream_rejected(self, sched):
        with pytest.raises(ScheduleError):
            sched.run([])

    def test_single_instruction(self, sched, core):
        res = sched.run([fmla("v0", "v1", "v2")])
        assert res.total_cycles == core.latencies["fma"]
        assert res.instructions == 1
        assert res.flops == 8

    def test_negative_penalty_rejected(self, sched):
        with pytest.raises(ScheduleError):
            sched.run([fmla("v0", "v1", "v2")], extra_load_cycles=-1)

    def test_unknown_latency_key_rejected(self, sched):
        from repro.isa.instructions import Instruction

        bad = Instruction(text="mystery", port="alu", latency_key="nope")
        with pytest.raises(ScheduleError, match="latency key"):
            sched.run([bad])

    def test_true_dependence_serializes(self, sched, core):
        # load feeds fmla: fmla cannot issue before the load completes
        stream = [ldr_q("v4", "x0"), fmla("v0", "v4", "v2")]
        res = sched.run(stream, record_ops=True)
        load_op, fma_op = res.ops
        assert fma_op.issue_cycle >= load_op.issue_cycle + core.latencies["load"]

    def test_independent_instructions_overlap(self, sched):
        stream = [fmla("v0", "v8", "v9"), ldr_q("v4", "x0")]
        res = sched.run(stream, record_ops=True)
        assert res.ops[1].issue_cycle <= 1.0  # not delayed by the fma

    def test_renaming_removes_waw(self, sched):
        # two writes to v4 with independent readers: second pair must not
        # wait for the first
        stream = [
            ldr_q("v4", "x0"),
            fmla("v0", "v4", "v2"),
            ldr_q("v4", "x1"),
            fmla("v1", "v4", "v2"),
        ]
        res = sched.run(stream, record_ops=True)
        assert res.ops[2].issue_cycle <= res.ops[1].issue_cycle

    def test_post_increment_base_is_fast(self, sched):
        # the pA pointer chain must not serialize at load latency
        stream = [ldr_q("v4", "x0", post_inc=16) for _ in range(8)]
        res = sched.run(stream, record_ops=True)
        # with 2 load ports and next-cycle base writeback the 8 loads issue
        # in ~4-8 cycles, not 8*3
        assert res.ops[-1].issue_cycle < 12


class TestPortContention:
    def test_fma_port_throughput(self, sched):
        # 8 independent FMAs on one pipe: one per cycle
        stream = [fmla(f"v{i}", "v20", "v21") for i in range(8)]
        res = sched.run(stream, record_ops=True)
        issues = sorted(op.issue_cycle for op in res.ops)
        assert issues == [float(i) for i in range(8)]

    def test_two_load_ports(self, sched):
        stream = [ldr_q(f"v{i}", "x0") for i in range(8)]
        res = sched.run(stream, record_ops=True)
        # pairs per cycle
        assert max(op.issue_cycle for op in res.ops) == pytest.approx(3.0)

    def test_later_ready_op_fills_earlier_hole(self, sched):
        # a stalled older fma must not block a ready younger one (true OoO)
        stream = [
            ldr_q("v4", "x0"),
            fmla("v0", "v4", "v2"),  # waits for the load
            fmla("v1", "v8", "v9"),  # ready immediately
        ]
        res = sched.run(stream, record_ops=True)
        assert res.ops[2].issue_cycle < res.ops[1].issue_cycle


class TestAccumulatorChains:
    def test_single_chain_limited_by_latency(self, sched, core):
        # one accumulator: each fmla waits for the previous -> latency-bound
        stream = [fmla("v0", "v8", "v9") for _ in range(10)]
        res = sched.run(stream, record_ops=True)
        lat = core.latencies["fma"]
        gaps = [
            res.ops[i + 1].issue_cycle - res.ops[i].issue_cycle
            for i in range(9)
        ]
        assert all(g == pytest.approx(lat) for g in gaps)

    def test_many_chains_reach_port_throughput(self, sched):
        # 8 chains x 4 rounds: steady state 1 fma/cycle
        stream = []
        for _ in range(4):
            for i in range(8):
                stream.append(fmla(f"v{i}", "v20", "v21"))
        res = sched.run(stream)
        assert res.total_cycles <= 32 + 5


class TestExtraLoadCycles:
    def test_extra_latency_delays_consumer(self, sched, core):
        base = sched.run(
            [ldr_q("v4", "x0"), fmla("v0", "v4", "v2")], record_ops=True
        )
        slow = sched.run(
            [ldr_q("v4", "x0"), fmla("v0", "v4", "v2")],
            extra_load_cycles=10.0,
            record_ops=True,
        )
        assert slow.ops[1].issue_cycle >= base.ops[1].issue_cycle + 10


class TestDispatchAndRob:
    def test_dispatch_width_bounds_start(self, core):
        sched = OoOScheduler(core)
        # 12 independent alu ops, 2 alu ports, dispatch 4/cycle
        stream = [movi_zero(f"v{i}") for i in range(12)]
        res = sched.run(stream, record_ops=True)
        # instruction 8 dispatches at cycle 2 at the earliest
        assert res.ops[8].issue_cycle >= 2.0

    def test_rob_limits_runahead(self):
        tiny_rob = CoreConfig(rob_entries=4)
        sched = OoOScheduler(tiny_rob)
        # a long-latency chain head plus many independents: with a 4-entry
        # ROB the independents cannot run arbitrarily far ahead
        chain = [fmla("v0", "v8", "v9") for _ in range(4)]
        indep = [movi_zero(f"v{i}") for i in range(1, 13)]
        res = sched.run(chain + indep, record_ops=True)
        assert res.ops[-1].issue_cycle >= 10.0

    def test_scheduler_window_constrains_issue(self):
        narrow = CoreConfig(scheduler_window=2)
        wide = CoreConfig(scheduler_window=64)
        stream = [ldr_q("v4", "x0"), fmla("v0", "v4", "v2")] * 8
        t_narrow = OoOScheduler(narrow).run(stream).total_cycles
        t_wide = OoOScheduler(wide).run(stream).total_cycles
        assert t_narrow >= t_wide


class TestResultAccounting:
    def test_port_busy_counts(self, sched):
        stream = [ldr_q("v4", "x0"), fmla("v0", "v4", "v2"), str_q("v0", "x1")]
        res = sched.run(stream)
        assert res.port_busy["load"] == 1
        assert res.port_busy["fma"] == 1
        assert res.port_busy["store"] == 1

    def test_port_utilization(self, sched, core):
        stream = [fmla(f"v{i}", "v20", "v21") for i in range(8)]
        res = sched.run(stream)
        util = res.port_utilization(core)
        assert 0.0 < util["fma"] <= 1.0

    def test_flops_per_cycle(self, sched):
        stream = [fmla(f"v{i}", "v20", "v21") for i in range(8)]
        res = sched.run(stream)
        assert res.flops_per_cycle > 0

    def test_render_schedule_requires_record(self, sched):
        res = sched.run([fmla("v0", "v1", "v2")])
        with pytest.raises(ScheduleError):
            render_schedule(res)

    def test_render_schedule_text(self, sched):
        res = sched.run([fmla("v0", "v1", "v2")], record_ops=True)
        assert "fmla" in render_schedule(res)


class TestCompletionProfile:
    def test_marks_monotone(self, sched):
        body = [
            ldr_q("v4", "x0", post_inc=16),
            fmla("v0", "v4", "v2"),
            subs_imm("x3", "x3", 1),
            branch_nz("x3"),
        ]
        stream = body * 6
        marks = [len(body) * (i + 1) for i in range(6)]
        profile = sched.completion_profile(stream, marks)
        assert len(profile) == 6
        assert all(b >= a for a, b in zip(profile, profile[1:]))

    def test_bad_mark_rejected(self, sched):
        with pytest.raises(ScheduleError):
            sched.completion_profile([fmla("v0", "v1", "v2")], [2])


class TestLoopIdioms:
    def test_loop_control_does_not_bottleneck(self, sched):
        body = []
        for i in range(8):
            body.append(fmla(f"v{i}", "v20", "v21"))
        body.append(subs_imm("x3", "x3", 1))
        body.append(branch_nz("x3"))
        res = sched.run(body * 8)
        # fma-port bound: ~64 cycles, loop control rides along
        assert res.total_cycles < 64 + 16

    def test_fadd_uses_fma_port(self, sched):
        stream = [fadd(f"v{i}", "v20", "v21") for i in range(4)]
        res = sched.run(stream)
        assert res.port_busy["fma"] == 4
