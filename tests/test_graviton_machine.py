"""Tests for the Graviton-class sensitivity machine."""

import numpy as np
import pytest

from repro.blas import make_driver
from repro.machine import graviton2_like, phytium2000plus
from repro.parallel import MultithreadedGemm, ThreadTopology
from repro.util import make_rng, random_matrix


@pytest.fixture(scope="module")
def graviton():
    return graviton2_like()


class TestConfiguration:
    def test_two_fma_pipes_double_the_peak_per_hz(self, graviton, machine):
        per_hz_g = graviton.core.flops_per_cycle(np.float32)
        per_hz_p = machine.core.flops_per_cycle(np.float32)
        assert per_hz_g == 2 * per_hz_p

    def test_private_lru_l2(self, graviton):
        assert graviton.l2.shared_by == 1
        assert graviton.l2.replacement == "lru"

    def test_single_numa_domain(self, graviton):
        topo = ThreadTopology.for_machine(graviton, 64)
        assert topo.panels_used == 1
        assert topo.shared_remote_fraction == 0.0


class TestBehaviour:
    def test_functional_correctness(self, graviton):
        rng = make_rng(200)
        a = random_matrix(rng, 31, 17)
        b = random_matrix(rng, 17, 23)
        for lib in ("openblas", "blis", "blasfeo", "eigen"):
            result = make_driver(lib, graviton).gemm(a, b)
            np.testing.assert_allclose(result.c, a @ b, rtol=1e-4,
                                       atol=1e-5)

    def test_two_pipes_demand_more_chains(self, graviton, machine):
        """The latency constraint doubles: tiles adequate on Phytium
        (1 pipe) can be chain-starved on two pipes."""
        from repro.blas import shared_analyzer, shared_generator
        from repro.kernels import KernelSpec

        gen = shared_generator()
        spec = KernelSpec(4, 4, unroll=4, label="grav")
        kernel = gen.generate(spec)
        eff_p = shared_analyzer(machine).analyze(kernel).flops_per_cycle \
            / machine.core.flops_per_cycle(np.float32)
        eff_g = shared_analyzer(graviton).analyze(kernel).flops_per_cycle \
            / graviton.core.flops_per_cycle(np.float32)
        assert eff_g < eff_p

    def test_blasfeo_advantage_survives(self, graviton):
        effs = {
            lib: make_driver(lib, graviton).cost_gemm(40, 40, 40)
            .efficiency(graviton, np.float32)
            for lib in ("openblas", "blis", "blasfeo", "eigen")
        }
        assert effs["blasfeo"] == max(effs.values())
        assert effs["eigen"] == min(effs.values())

    def test_mt_smm_healthier_but_still_pack_bound(self, graviton, machine):
        """Ten times the per-core bandwidth helps the 64-thread small-M
        case (~35% better efficiency) but does not cure it: the packing
        loop is latency/throughput-bound, not bandwidth-bound — a model
        prediction about where vendor effort should go."""
        tg, _ = MultithreadedGemm(graviton, "blis", threads=64) \
            .cost(16, 2048, 2048)
        tp, _ = MultithreadedGemm(machine, "blis", threads=64) \
            .cost(16, 2048, 2048)
        eff_g = tg.efficiency(graviton, np.float32, 64)
        eff_p = tp.efficiency(machine, np.float32, 64)
        assert eff_g > 1.25 * eff_p
        # pack-B remains the dominant phase on both machines
        assert tg.fraction("pack_b") > 0.5
        assert tp.fraction("pack_b") > 0.5
