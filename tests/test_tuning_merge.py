"""Cache federation: ``merge_payload`` semantics and the CLI round-trip."""

import dataclasses
import json

import pytest

from repro.cli import main
from repro.machine import graviton2_like, phytium2000plus
from repro.tuning import (
    TUNING_SCHEMA_VERSION,
    AdaptiveTuner,
    MergeReport,
    ShardedTuningCache,
    TuningCache,
    merge_cache_files,
    merge_payload,
    plan_key,
    read_cache_payload,
)
from repro.util import ConfigError


@pytest.fixture(scope="module")
def small_machine():
    return graviton2_like()


@pytest.fixture(scope="module")
def base_plan(small_machine):
    tuner = AdaptiveTuner(
        small_machine, cache=TuningCache(small_machine, path="")
    )
    return tuner.heuristic_plan(16, 16, 16)


def plan_for(base_plan, m, n, k, cycles):
    return dataclasses.replace(
        base_plan,
        key=plan_key(m, n, k, base_plan.key.dtype),
        total_cycles=float(cycles),
    )


def payload_with(cache, plans):
    """An exported payload carrying ``plans`` (built via a scratch cache)."""
    scratch = TuningCache(cache.machine, cache.dtype, path="")
    for plan in plans:
        scratch.put(plan)
    return json.loads(scratch.export_json())


class TestMergePayload:
    def test_new_tokens_are_added(self, small_machine, base_plan):
        cache = TuningCache(small_machine, path="")
        payload = payload_with(cache, [plan_for(base_plan, 8, 8, 8, 100.0)])
        report = merge_payload(cache, payload, source="a.json")
        assert (report.examined, report.added) == (1, 1)
        assert cache.get(8, 8, 8) is not None
        assert "a.json: 1 entries" in report.render()

    def test_better_modeled_cost_wins_collisions(
        self, small_machine, base_plan
    ):
        cache = TuningCache(small_machine, path="")
        cache.put(plan_for(base_plan, 8, 8, 8, 200.0))
        better = payload_with(cache, [plan_for(base_plan, 8, 8, 8, 100.0)])
        report = merge_payload(cache, better)
        assert report.improved == 1 and report.added == 0
        assert cache.get(8, 8, 8).total_cycles == 100.0

    def test_worse_entry_never_replaces(self, small_machine, base_plan):
        cache = TuningCache(small_machine, path="")
        cache.put(plan_for(base_plan, 8, 8, 8, 100.0))
        worse = payload_with(cache, [plan_for(base_plan, 8, 8, 8, 300.0)])
        report = merge_payload(cache, worse)
        assert report.kept == 1
        assert cache.get(8, 8, 8).total_cycles == 100.0

    def test_merged_never_worse_than_either_input(
        self, small_machine, base_plan
    ):
        # property over a grid: destination holds odd shapes, payload
        # holds even shapes, both hold shared shapes at different costs
        cache = TuningCache(small_machine, path="")
        mine = {m: 100.0 + m for m in range(2, 33, 2)}
        theirs = {m: 100.0 + (33 - m) for m in range(2, 33)}
        for m, cycles in mine.items():
            cache.put(plan_for(base_plan, m, m, m, cycles))
        payload = payload_with(cache, [
            plan_for(base_plan, m, m, m, cycles)
            for m, cycles in theirs.items()
        ])
        merge_payload(cache, payload)
        for m in range(2, 33):
            best = min(
                c for c in (mine.get(m), theirs.get(m)) if c is not None
            )
            assert cache.get(m, m, m).total_cycles == best

    def test_fingerprint_mismatch_refused_without_force(
        self, small_machine, base_plan
    ):
        cache = TuningCache(small_machine, path="")
        payload = payload_with(cache, [plan_for(base_plan, 8, 8, 8, 100.0)])
        payload["fingerprint"] = "deadbeefdeadbeef"
        with pytest.raises(ConfigError, match="fingerprint mismatch"):
            merge_payload(cache, payload)
        assert len(cache) == 0

        report = merge_payload(cache, payload, force=True)
        assert not report.fingerprint_matched
        assert report.added == 1
        assert "[fingerprint mismatch]" in report.render()

    def test_schema_mismatch_always_refused(self, small_machine, base_plan):
        cache = TuningCache(small_machine, path="")
        payload = payload_with(cache, [plan_for(base_plan, 8, 8, 8, 100.0)])
        payload["schema"] = TUNING_SCHEMA_VERSION + 1
        with pytest.raises(ConfigError, match="schema"):
            merge_payload(cache, payload, force=True)

    def test_corrupt_entries_skipped_not_fatal(
        self, small_machine, base_plan
    ):
        cache = TuningCache(small_machine, path="")
        payload = payload_with(cache, [plan_for(base_plan, 8, 8, 8, 100.0)])
        payload["entries"]["bogus"] = {"not": "a plan"}
        report = merge_payload(cache, payload)
        assert report.corrupt == 1 and report.added == 1

    def test_merge_into_sharded_cache(self, small_machine, base_plan):
        cache = ShardedTuningCache(small_machine, path="", shards=4)
        payload = payload_with(cache, [
            plan_for(base_plan, m, m, m, 100.0 + m) for m in range(1, 9)
        ])
        report = merge_payload(cache, payload)
        assert report.added == 8
        assert len(cache) == 8

    def test_merge_cache_files_reads_and_folds(
        self, small_machine, base_plan, tmp_path
    ):
        cache = TuningCache(small_machine, path="")
        src = TuningCache(small_machine, path=str(tmp_path / "src.json"))
        src.put(plan_for(base_plan, 8, 8, 8, 100.0))
        src.save()
        reports = merge_cache_files(cache, [src.path])
        assert [r.added for r in reports] == [1]

    def test_read_cache_payload_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigError, match="unreadable"):
            read_cache_payload(str(path))
        path.write_text('{"no": "entries"}')
        with pytest.raises(ConfigError, match="not an exported"):
            read_cache_payload(str(path))


class TestMergeCli:
    def test_round_trip_warm_export_clear_merge_query(
        self, tmp_path, capsys
    ):
        cache = str(tmp_path / "cache.json")
        exported = str(tmp_path / "exported.json")
        assert main(["tune", "warm", "--shapes", "4:12:4",
                     "--cache", cache, "--jobs", "1"]) == 0
        assert main(["tune", "export", "--cache", cache,
                     "--output", exported]) == 0
        assert main(["tune", "clear", "--cache", cache]) == 0
        capsys.readouterr()

        assert main(["tune", "merge", exported, "--cache", cache]) == 0
        out = capsys.readouterr().out
        assert "3 added" in out
        assert "3 merged in" in out

        # the merged cache serves the tuned plans as cache hits
        assert main(["tune", "warm", "--shapes", "4:12:4",
                     "--cache", cache, "--jobs", "1"]) == 0
        assert "3 cache hit(s) (100%)" in capsys.readouterr().out

    def test_fingerprint_mismatch_exits_2_without_force(
        self, tmp_path, capsys
    ):
        cache = str(tmp_path / "cache.json")
        exported = str(tmp_path / "exported.json")
        main(["tune", "query", "8", "8", "8", "--cache", cache])
        main(["tune", "export", "--cache", cache, "--output", exported])
        data = json.loads(open(exported).read())
        data["fingerprint"] = "deadbeefdeadbeef"
        with open(exported, "w") as fh:
            json.dump(data, fh)
        capsys.readouterr()

        fresh = str(tmp_path / "fresh.json")
        assert main(["tune", "merge", exported, "--cache", fresh]) == 2
        assert "fingerprint mismatch" in capsys.readouterr().out

        assert main(["tune", "merge", exported, "--cache", fresh,
                     "--force"]) == 0
        assert "[fingerprint mismatch]" in capsys.readouterr().out

    def test_force_merge_schema_guard_and_cache_audit(
        self, tmp_path, capsys
    ):
        # --force waives the fingerprint guard only: a schema-mismatched
        # payload is still refused, and a successful forced merge leaves
        # a file that passes the full `repro audit --cache` pass
        cache = str(tmp_path / "cache.json")
        exported = str(tmp_path / "exported.json")
        assert main(["tune", "warm", "--shapes", "4:12:4",
                     "--cache", cache, "--jobs", "1"]) == 0
        assert main(["tune", "export", "--cache", cache,
                     "--output", exported]) == 0
        assert main(["tune", "clear", "--cache", cache]) == 0
        data = json.loads(open(exported).read())
        data["fingerprint"] = "deadbeefdeadbeef"
        with open(exported, "w") as fh:
            json.dump(data, fh)

        bad_schema = str(tmp_path / "bad_schema.json")
        with open(bad_schema, "w") as fh:
            json.dump(dict(data, schema=TUNING_SCHEMA_VERSION + 1), fh)
        capsys.readouterr()
        assert main(["tune", "merge", bad_schema, "--cache", cache,
                     "--force"]) == 2
        assert "schema" in capsys.readouterr().out

        assert main(["tune", "merge", exported, "--cache", cache,
                     "--force"]) == 0
        capsys.readouterr()

        # the merged file is re-fingerprinted for this machine; every
        # entry replays through the plan verifier and round-trips the
        # serving wire format with zero findings
        assert main(["audit", "--cache", cache]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out and out.startswith("OK")
