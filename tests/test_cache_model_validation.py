"""Cross-validation: the analytic cache model vs the reference simulator.

The analytic :class:`GebpCacheModel` is the one the drivers trust; these
tests replay the access patterns it abstracts through the real
set-associative :class:`CacheSim` and require quantitative agreement on
the quantities that matter (unique line fills) and qualitative agreement
on the effects (reuse, capacity, sharing).
"""

import numpy as np
import pytest

from repro.caches import (
    CacheHierarchy,
    CacheSim,
    GebpCacheModel,
    make_shared_l2,
)


class TestCompulsoryMisses:
    @pytest.mark.parametrize("rows,cols", [(64, 64), (100, 40), (32, 128)])
    def test_sequential_walk_line_count(self, machine, rows, cols):
        sim = CacheSim(machine.l1d)
        nbytes = rows * cols * 4
        misses = sim.access_range(base=0, count=rows * cols, stride=4)
        expected = -(-nbytes // machine.l1d.line_bytes)
        assert misses == expected

    def test_analytic_packing_source_lines_match(self, machine):
        model = GebpCacheModel(machine)
        rows, cols = 64, 64
        phase = model.packing_phase(rows, cols, 4, source_contiguous=True,
                                    source_resident="l2")
        sim = CacheSim(machine.l1d)
        sim_misses = sim.access_range(0, rows * cols, 4)
        # model counts src + dst; src alone must match the simulator
        assert phase.l1_miss_lines / 2 == pytest.approx(sim_misses, rel=0.05)


class TestReuse:
    def test_l1_resident_sliver_reuse(self, machine):
        # a kc x nr B sliver (256 x 4 fp32 = 4 KB) is reused across row
        # tiles with no further misses — the premise of the GEBP analysis
        sim = CacheSim(machine.l1d)
        sliver_bytes = 256 * 4 * 4
        first = sim.access_range(0, sliver_bytes // 4, 4)
        again = sum(
            sim.access_range(0, sliver_bytes // 4, 4) for _ in range(8)
        )
        assert first > 0
        assert again == 0

    def test_oversized_working_set_thrashes(self, machine):
        sim = CacheSim(machine.l1d)
        big = 3 * machine.l1d.size_bytes
        sim.access_range(0, big // 4, 4)
        # second pass still misses (LRU evicted the head)
        misses = sim.access_range(0, big // 4, 4)
        assert misses > 0


class TestSharedL2:
    def test_one_fill_serves_all_sharers(self, machine):
        shared = make_shared_l2(machine.l2)
        cores = [
            CacheHierarchy(machine.l1d, machine.l2, shared_l2=shared, seed=i)
            for i in range(4)
        ]
        cores[0].access(0)
        for other in cores[1:]:
            assert other.access(0) == float(machine.l2.hit_latency)

    def test_contention_evicts_under_random_policy(self, machine):
        shared = make_shared_l2(machine.l2, seed=3)
        cores = [
            CacheHierarchy(machine.l1d, machine.l2, shared_l2=shared, seed=i)
            for i in range(4)
        ]
        # each core streams its own 1 MB region: 4 MB total > 2 MB L2
        region = machine.l2.size_bytes // 2
        for i, core in enumerate(cores):
            base = i * region
            for addr in range(base, base + region, 64):
                core.access(addr)
        # re-touch core 0's region: many lines were evicted
        miss_latencies = [cores[0].access(addr)
                          for addr in range(0, region, 64)]
        dram_hits = sum(1 for lat in miss_latencies if lat >= 150)
        assert dram_hits > 0

    def test_analytic_inflation_direction(self, machine):
        solo = GebpCacheModel(machine, active_l2_sharers=1)
        packed = GebpCacheModel(machine, active_l2_sharers=4)
        p1 = solo.kernel_phase(256, 512, 256, 16, 4, 4, b_resident="mem")
        p4 = packed.kernel_phase(256, 512, 256, 16, 4, 4, b_resident="mem")
        assert p4.stall_cycles > p1.stall_cycles


class TestStridedVsSequential:
    def test_strided_walk_spans_more_lines_per_access(self, machine):
        seq = CacheSim(machine.l1d)
        strided = CacheSim(machine.l1d)
        seq_misses = seq.access_range(0, 256, 4)
        strided_misses = strided.access_range(0, 256, 256)
        assert strided_misses > 4 * seq_misses

    def test_model_charges_strided_walks_more(self, machine):
        model = GebpCacheModel(machine)
        seq = model.packing_phase(200, 200, 4, source_contiguous=True,
                                  source_resident="mem")
        strided = model.packing_phase(200, 200, 4, source_contiguous=False,
                                      source_resident="mem")
        assert strided.stall_cycles > 1.5 * seq.stall_cycles
