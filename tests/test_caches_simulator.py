"""Unit tests for the reference set-associative cache simulator."""

import pytest

from repro.caches import CacheHierarchy, CacheSim, make_shared_l2
from repro.machine import CacheConfig
from repro.util.errors import ConfigError


def small_cache(assoc=2, sets=4, line=64, replacement="lru"):
    return CacheConfig(
        name="toy",
        size_bytes=assoc * sets * line,
        line_bytes=line,
        associativity=assoc,
        replacement=replacement,
    )


class TestBasicBehaviour:
    def test_first_access_misses_second_hits(self):
        sim = CacheSim(small_cache())
        assert sim.access_line(0) is False
        assert sim.access_line(0) is True
        assert sim.stats.misses == 1
        assert sim.stats.hits == 1

    def test_distinct_lines_miss(self):
        sim = CacheSim(small_cache())
        assert sim.access_line(0) is False
        assert sim.access_line(1) is False

    def test_miss_rate(self):
        sim = CacheSim(small_cache())
        sim.access_line(0)
        sim.access_line(0)
        assert sim.stats.miss_rate == pytest.approx(0.5)

    def test_idle_miss_rate_zero(self):
        sim = CacheSim(small_cache())
        assert sim.stats.miss_rate == 0.0

    def test_negative_address_rejected(self):
        sim = CacheSim(small_cache())
        with pytest.raises(ConfigError):
            sim.line_of(-1)

    def test_access_spanning_lines(self):
        sim = CacheSim(small_cache())
        # 8 bytes straddling a 64-byte boundary: two line misses
        assert sim.access(60, 8) == 2

    def test_access_bad_nbytes(self):
        sim = CacheSim(small_cache())
        with pytest.raises(ConfigError):
            sim.access(0, 0)

    def test_flush(self):
        sim = CacheSim(small_cache())
        sim.access_line(0)
        sim.flush()
        assert sim.resident_lines() == 0
        assert sim.access_line(0) is False


class TestLruReplacement:
    def test_lru_evicts_oldest(self):
        sim = CacheSim(small_cache(assoc=2, sets=1, line=64))
        sim.access_line(0)
        sim.access_line(1)
        sim.access_line(0)  # 0 is now MRU
        sim.access_line(2)  # evicts 1
        assert sim.contains_line(0)
        assert not sim.contains_line(1)
        assert sim.contains_line(2)

    def test_working_set_within_capacity_never_evicts(self):
        cfg = small_cache(assoc=4, sets=4)
        sim = CacheSim(cfg)
        lines = list(range(16))
        for line in lines:
            sim.access_line(line)
        for _ in range(3):
            for line in lines:
                assert sim.access_line(line) is True
        assert sim.stats.evictions == 0


class TestRandomReplacement:
    def test_random_policy_evicts_something(self):
        sim = CacheSim(small_cache(assoc=2, sets=1, replacement="random"),
                       seed=1)
        sim.access_line(0)
        sim.access_line(1)
        sim.access_line(2)
        assert sim.stats.evictions == 1
        assert sim.contains_line(2)

    def test_random_policy_is_deterministic_per_seed(self):
        def run(seed):
            sim = CacheSim(
                small_cache(assoc=4, sets=1, replacement="random"), seed=seed
            )
            for line in range(32):
                sim.access_line(line % 7)
            return sim.stats.misses

        assert run(3) == run(3)

    def test_random_worse_than_lru_on_looped_overcapacity(self):
        # classic: loop over assoc+1 lines in one set; LRU thrashes fully,
        # random sometimes keeps a useful line -> strictly fewer misses
        lru = CacheSim(small_cache(assoc=4, sets=1, replacement="lru"))
        rnd = CacheSim(small_cache(assoc=4, sets=1, replacement="random"),
                       seed=7)
        for _ in range(50):
            for line in range(5):
                lru.access_line(line)
                rnd.access_line(line)
        assert lru.stats.misses == 250  # full thrash
        assert rnd.stats.misses < lru.stats.misses


class TestAccessRange:
    def test_sequential_range_compulsory_only(self):
        sim = CacheSim(small_cache(assoc=4, sets=16))
        misses = sim.access_range(base=0, count=64, stride=4, width=4)
        assert misses == 4  # 256 bytes = 4 lines

    def test_strided_range_touches_more_lines(self):
        sim = CacheSim(small_cache(assoc=4, sets=64))
        seq = sim.access_range(base=0, count=16, stride=4)
        sim2 = CacheSim(small_cache(assoc=4, sets=64))
        strided = sim2.access_range(base=0, count=16, stride=256)
        assert strided > seq

    def test_negative_count_rejected(self):
        sim = CacheSim(small_cache())
        with pytest.raises(ConfigError):
            sim.access_range(0, -1, 4)


class TestHierarchy:
    def test_latencies_by_level(self, machine):
        hier = CacheHierarchy(machine.l1d, machine.l2, dram_latency=150)
        first = hier.access(0)
        second = hier.access(0)
        assert first == 150.0  # cold: DRAM
        assert second == float(machine.l1d.hit_latency)

    def test_l2_hit_after_l1_eviction(self, machine):
        hier = CacheHierarchy(machine.l1d, machine.l2, dram_latency=150)
        hier.access(0)
        # walk something larger than L1 but smaller than L2
        for addr in range(0, 2 * machine.l1d.size_bytes, 64):
            hier.access(64 + addr)
        latency = hier.access(0)
        assert latency == float(machine.l2.hit_latency)

    def test_shared_l2_between_hierarchies(self, machine):
        shared = make_shared_l2(machine.l2)
        a = CacheHierarchy(machine.l1d, machine.l2, shared_l2=shared)
        b = CacheHierarchy(machine.l1d, machine.l2, shared_l2=shared)
        a.access(0)
        # core b misses L1 but hits the shared L2 line a brought in
        assert b.access(0) == float(machine.l2.hit_latency)

    def test_miss_rates_dict(self, machine):
        hier = CacheHierarchy(machine.l1d, machine.l2)
        hier.access(0)
        rates = hier.miss_rates()
        assert rates["l1"] == 1.0 and rates["l2"] == 1.0
