"""CSV export of figure/table results."""

import csv
import io

from repro.analysis import FigureResult, FigureSeries, TableResult


class TestFigureCsv:
    def make(self):
        return FigureResult(
            figure_id="f", x_label="M", y_label="eff", xs=[8, 16],
            series=[FigureSeries("a", [0.5, 0.6]),
                    FigureSeries("b", [0.1, 0.2])],
        )

    def test_header_row(self):
        rows = list(csv.reader(io.StringIO(self.make().to_csv())))
        assert rows[0] == ["M", "a", "b"]

    def test_data_rows(self):
        rows = list(csv.reader(io.StringIO(self.make().to_csv())))
        assert rows[1] == ["8", "0.5", "0.1"]
        assert rows[2] == ["16", "0.6", "0.2"]

    def test_round_trips_through_csv_reader(self):
        text = self.make().to_csv()
        rows = list(csv.reader(io.StringIO(text)))
        assert len(rows) == 3

    def test_real_experiment_exports(self, machine):
        from repro.analysis import fig5b

        text = fig5b(machine).to_csv()
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0][0] == "M"
        assert len(rows) == 1 + 20  # header + 20 sweep points


class TestTableCsv:
    def test_export(self):
        t = TableResult("t", headers=["a", "b"], rows=[[1, 2], [3, 4]])
        rows = list(csv.reader(io.StringIO(t.to_csv())))
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]

    def test_table2_exports(self, machine):
        from repro.analysis import table2

        text = table2(machine).to_csv()
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0][0] == "M"
        assert len(rows) == 17
