"""Unit + property tests for library kernel catalogs and tile planning."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import (
    KernelCatalog,
    all_catalogs,
    blasfeo_catalog,
    blis_catalog,
    eigen_catalog,
    openblas_catalog,
    plan_coverage,
    table1_rows,
    tile_plan,
)
from repro.util.errors import KernelDesignError


class TestCatalogs:
    def test_table1_facts(self):
        cats = all_catalogs()
        assert cats["openblas"].main.mr == 16
        assert cats["openblas"].main.unroll == 8
        assert cats["blis"].main.mr == 8 and cats["blis"].main.nr == 12
        assert cats["blis"].main.unroll == 4
        assert cats["blasfeo"].main.mr == 16
        assert cats["eigen"].main.unroll == 1
        assert cats["eigen"].main.style == "compiled"

    def test_edge_policies(self):
        assert openblas_catalog().edge_policy == "pow2_kernels"
        assert blis_catalog().edge_policy == "pad"
        assert blasfeo_catalog().edge_policy == "pad"
        assert eigen_catalog().edge_policy == "exact_scalar"

    def test_bad_policy_rejected(self):
        with pytest.raises(KernelDesignError):
            KernelCatalog(
                library="x",
                main=openblas_catalog().main,
                alternates=(),
                edge_policy="improvise",
            )

    def test_table1_rows_render(self):
        rows = table1_rows()
        assert rows[0][0] == "Layers of assembly"
        assert rows[1] == ["unrolling factor", "8", "4", "4", "1"]
        assert "16x4" in rows[2][1]


class TestTilePlanExactness:
    @pytest.mark.parametrize("lib", ["openblas", "blis", "blasfeo", "eigen"])
    @pytest.mark.parametrize("mc,nc", [
        (16, 4), (16, 12), (75, 60), (80, 80), (11, 7), (1, 1), (5, 200),
    ])
    def test_coverage_exact(self, lib, mc, nc):
        plan = tile_plan(all_catalogs()[lib], mc, nc)
        assert plan_coverage(plan) == mc * nc

    @settings(max_examples=60, deadline=None)
    @given(
        lib=st.sampled_from(["openblas", "blis", "blasfeo", "eigen"]),
        mc=st.integers(min_value=1, max_value=200),
        nc=st.integers(min_value=1, max_value=200),
    )
    def test_coverage_property(self, lib, mc, nc):
        plan = tile_plan(all_catalogs()[lib], mc, nc)
        assert plan_coverage(plan) == mc * nc
        for inv in plan:
            assert inv.padded_rows >= inv.rows
            assert inv.padded_cols >= inv.cols
            assert inv.calls >= 1

    def test_rejects_non_positive(self):
        with pytest.raises(KernelDesignError):
            tile_plan(openblas_catalog(), 0, 4)


class TestEdgePolicyShapes:
    def test_openblas_edges_are_pow2_naive(self):
        plan = tile_plan(openblas_catalog(), 75, 60)
        edge_invs = [inv for inv in plan if inv.is_edge]
        assert edge_invs
        for inv in edge_invs:
            assert inv.spec.style == "naive"
            assert inv.rows & (inv.rows - 1) == 0 or inv.rows == inv.spec.mr

    def test_blis_edges_are_padded(self):
        plan = tile_plan(blis_catalog(), 75, 60)
        edge_invs = [inv for inv in plan if inv.is_edge]
        assert edge_invs
        for inv in edge_invs:
            assert inv.padded_rows % 4 == 0
            assert inv.padded_cols == inv.spec.nr

    def test_blis_n_edge_pads_to_nr(self):
        plan = tile_plan(blis_catalog(), 16, 13)  # N edge of 1
        n_edges = [inv for inv in plan if inv.cols == 1]
        assert n_edges and all(inv.padded_cols == 12 for inv in n_edges)

    def test_eigen_edges_exact_with_scalar_tail(self):
        plan = tile_plan(eigen_catalog(), 75, 60)
        edge_invs = [inv for inv in plan if inv.is_edge]
        assert edge_invs
        for inv in edge_invs:
            assert inv.padded_rows == inv.rows
            assert inv.spec.style == "compiled"

    def test_interior_uses_main_kernel(self):
        for lib, cat in all_catalogs().items():
            plan = tile_plan(cat, cat.mr * 3, cat.nr * 2)
            assert len(plan) == 1
            assert plan[0].spec == cat.main
            assert plan[0].calls == 6

    def test_padding_inflates_executed_work(self):
        cat = blis_catalog()
        plan = tile_plan(cat, 9, 12)  # one row tile + 1-row edge
        executed = sum(
            inv.padded_rows * inv.padded_cols * inv.calls for inv in plan
        )
        assert executed > 9 * 12
