"""Tests for the digitized paper data and trend-agreement statistics."""

import pytest

from repro.analysis import (
    PAPER_SCALARS,
    PAPER_TABLE2,
    spearman_rank_correlation,
    table2,
    table2_side_by_side,
    table2_trend_agreement,
)
from repro.analysis.results import TableResult
from repro.util.errors import ConfigError


class TestDigitizedData:
    def test_table2_grid_complete(self):
        assert sorted(PAPER_TABLE2) == list(range(16, 257, 16))

    def test_table2_rows_are_percent_tuples(self):
        for m, row in PAPER_TABLE2.items():
            assert len(row) == 5
            # shares roughly sum to 100 (paper rounds)
            assert 95 <= row[0] + row[1] + row[2] + row[3] <= 105, m

    def test_paper_headline_values(self):
        assert PAPER_TABLE2[16][2] == 56.9  # PackB at M=16
        assert PAPER_TABLE2[256][0] == 82.2  # Kernel at M=256
        assert PAPER_SCALARS["peak_gflops_fp64"] == 563.2


class TestSpearman:
    def test_perfect_agreement(self):
        assert spearman_rank_correlation([1, 2, 3], [10, 20, 30]) == \
            pytest.approx(1.0)

    def test_perfect_inversion(self):
        assert spearman_rank_correlation([1, 2, 3], [30, 20, 10]) == \
            pytest.approx(-1.0)

    def test_monotone_nonlinear_still_one(self):
        xs = [1, 2, 3, 4, 5]
        ys = [1, 8, 27, 64, 125]
        assert spearman_rank_correlation(xs, ys) == pytest.approx(1.0)

    def test_ties_averaged(self):
        rho = spearman_rank_correlation([1, 2, 2, 3], [1, 2, 2, 3])
        assert rho == pytest.approx(1.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            spearman_rank_correlation([1, 2], [1, 2, 3])

    def test_too_short_rejected(self):
        with pytest.raises(ConfigError):
            spearman_rank_correlation([1, 2], [1, 2])

    def test_constant_rejected(self):
        with pytest.raises(ConfigError):
            spearman_rank_correlation([1, 1, 1], [1, 2, 3])


class TestAgreement:
    @pytest.fixture(scope="class")
    def model_table(self, machine):
        return table2(machine)

    def test_side_by_side_shape(self, model_table):
        rows = table2_side_by_side(model_table)
        assert len(rows) == 16
        assert rows[0][0] == 16
        assert rows[0][1] == 35.5  # paper kernel share at M=16

    def test_side_by_side_rejects_foreign_grid(self):
        bogus = TableResult(
            "t", headers=["M", "Kernel", "PackA", "PackB", "Sync",
                          "Kernel effic"],
            rows=[[17, 1, 1, 1, 1, 1]],
        )
        with pytest.raises(ConfigError):
            table2_side_by_side(bogus)

    def test_dominant_trends_track_the_paper(self, model_table):
        rho = table2_trend_agreement(model_table)
        assert rho["kernel"] > 0.9
        assert rho["pack_b"] > 0.9

    def test_known_deviation_is_visible(self, model_table):
        """The one systematic deviation (flat-high MT kernel efficiency)
        must show up as weak correlation — honesty check: if this starts
        passing at > 0.9 the deviation note in EXPERIMENTS.md is stale."""
        rho = table2_trend_agreement(model_table)
        assert rho["kernel_eff"] < 0.9
