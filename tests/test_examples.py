"""The examples must run end to end (they are part of the public surface)."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name, argv=None, capsys=None):
    old_argv = sys.argv
    sys.argv = [name] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out if capsys else ""


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", ["16"], capsys)
        assert "blasfeo" in out
        assert "% of peak" in out
        assert "reference SMM decision" in out

    def test_quickstart_default_size(self, capsys):
        out = run_example("quickstart.py", [], capsys)
        assert "M = N = K = 32" in out

    def test_dnn_layers(self, capsys):
        out = run_example("dnn_layers.py", [], capsys)
        assert "MLP" in out
        assert "speedup" in out
        assert "LSTM" in out

    def test_block_sparse(self, capsys):
        out = run_example("block_sparse_bcsr.py", [], capsys)
        assert "BCSR SpMM" in out
        assert "32x32" in out

    def test_abft(self, capsys):
        out = run_example("abft_checksum.py", [], capsys)
        assert "located error at (37, 101)" in out
        assert "verifies clean again" in out

    def test_layout_locality(self, capsys):
        out = run_example("layout_locality.py", [], capsys)
        assert "waste factor" in out
        assert "8.0x" in out

    def test_custom_machine(self, capsys):
        out = run_example("custom_machine.py", [], capsys)
        assert "armv9-hypothetical" in out
        assert "functional check on custom machine: OK" in out

    @pytest.mark.slow
    def test_characterization_sweep_quick(self, capsys):
        out = run_example("characterization_sweep.py", ["--quick"], capsys)
        assert "Table I" in out
        assert "Figure 6" in out
        assert "complete in" in out
