"""White-box tests of the Goto driver's internals and edge behaviour."""

import numpy as np
import pytest

from repro.blas import BlockingParams, make_blis, make_eigen, make_openblas
from repro.util import make_rng, random_matrix


class TestLoopNestCoverage:
    def test_multiple_kc_iterations_correct(self, machine):
        # force k > kc so the kk loop runs more than once
        drv = make_openblas(machine, blocking=BlockingParams(mc=64, kc=16,
                                                             nc=64))
        rng = make_rng(20)
        a = random_matrix(rng, 48, 50)
        b = random_matrix(rng, 50, 40)
        np.testing.assert_allclose(drv.gemm(a, b).c, a @ b,
                                   rtol=1e-4, atol=1e-5)

    def test_multiple_mc_and_nc_iterations_correct(self, machine):
        drv = make_blis(machine, blocking=BlockingParams(mc=16, kc=32, nc=24))
        rng = make_rng(21)
        a = random_matrix(rng, 70, 64)
        b = random_matrix(rng, 64, 75)
        np.testing.assert_allclose(drv.gemm(a, b).c, a @ b,
                                   rtol=1e-4, atol=1e-5)

    def test_pack_counts_scale_with_loop_trips(self, machine):
        # pack-A runs once per (ii, kk); halving mc doubles pack-A work
        coarse = make_openblas(machine,
                               blocking=BlockingParams(mc=64, kc=64, nc=256))
        fine = make_openblas(machine,
                             blocking=BlockingParams(mc=32, kc=64, nc=256))
        t_coarse = coarse.cost_gemm(128, 128, 64)
        t_fine = fine.cost_gemm(128, 128, 64)
        # identical element volume, so pack-A cost is nearly equal; but
        # kernel cost of the fine blocking must not be cheaper than coarse
        assert t_fine.pack_a_cycles == pytest.approx(
            t_coarse.pack_a_cycles, rel=0.25
        )

    def test_timing_additivity_over_k(self, machine):
        # doubling K roughly doubles kernel and pack-B time
        drv = make_openblas(machine, blocking=BlockingParams(mc=256, kc=64,
                                                             nc=512))
        t1 = drv.cost_gemm(64, 64, 64)
        t2 = drv.cost_gemm(64, 64, 128)
        assert t2.kernel_cycles == pytest.approx(2 * t1.kernel_cycles,
                                                 rel=0.15)
        assert t2.pack_b_cycles == pytest.approx(2 * t1.pack_b_cycles,
                                                 rel=0.15)


class TestEdgeAccounting:
    def test_executed_equals_useful_on_aligned_shapes(self, machine):
        drv = make_openblas(machine)
        t = drv.cost_gemm(64, 64, 64)  # multiples of 16 and 4
        assert t.executed_flops == pytest.approx(t.useful_flops)

    def test_blis_padding_waste_quantified(self, machine):
        drv = make_blis(machine)
        t = drv.cost_gemm(9, 24, 32)  # 9 rows pad to 12 within 8+4
        # padded rows: 8 + pad(1 -> 4) = 12 rows of work for 9 useful
        assert t.padding_waste == pytest.approx(1 - 9 / 12, rel=0.01)

    def test_openblas_pow2_edges_do_not_pad(self, machine):
        drv = make_openblas(machine)
        t = drv.cost_gemm(11, 4, 32)
        assert t.executed_flops == pytest.approx(t.useful_flops)

    def test_eigen_exact_edges_do_not_pad(self, machine):
        drv = make_eigen(machine)
        t = drv.cost_gemm(13, 5, 16)
        assert t.executed_flops == pytest.approx(t.useful_flops)


class TestResidencyLogic:
    def test_tiny_warm_problem_has_near_zero_stall(self, machine):
        drv = make_openblas(machine)
        t = drv.cost_gemm(16, 16, 16)
        # kernel time should be within 25% of the pure issue-limited time
        from repro.blas.base import KernelCostModel
        from repro.kernels import openblas_catalog

        km = KernelCostModel(machine, np.float32)
        pure, _ = km.gebp_kernel_cycles(openblas_catalog(), 16, 16, 16)
        assert t.kernel_cycles <= pure * 1.25

    def test_l2_scale_problem_pays_restream(self, machine):
        drv = make_openblas(machine)
        per_flop_small = (
            drv.cost_gemm(48, 48, 48).kernel_cycles / (2 * 48 ** 3)
        )
        per_flop_large = (
            drv.cost_gemm(400, 400, 400).kernel_cycles / (2 * 400 ** 3)
        )
        assert per_flop_large > per_flop_small

    def test_info_contains_plan_stats(self, machine):
        drv = make_openblas(machine)
        rng = make_rng(22)
        result = drv.gemm(random_matrix(rng, 20, 20),
                          random_matrix(rng, 20, 20))
        plan = result.info["tile_plan"]
        assert plan["calls"] >= 1
        assert plan["edge_calls"] >= 1  # 20 is not a multiple of 16


class TestEigenModelSpecifics:
    def test_eigen_kernel_capped_near_half(self, machine):
        # no FP contraction: the 12x4 kernel cannot exceed ~50% of peak
        drv = make_eigen(machine)
        t = drv.cost_gemm(48, 48, 48)
        assert t.kernel_efficiency(machine, np.float32) < 0.55

    def test_eigen_packing_walks_mirrored(self, machine):
        ob = make_openblas(machine)
        eig = make_eigen(machine)
        assert ob.config.pack_a_contiguous != eig.config.pack_a_contiguous
        assert ob.config.pack_b_contiguous != eig.config.pack_b_contiguous

    def test_eigen_pack_a_dominates_small_n(self, machine):
        # mirrored walks: Eigen's expensive pack is A (strided for row-major)
        eig = make_eigen(machine)
        t = eig.cost_gemm(100, 4, 100)
        assert t.pack_a_cycles > t.pack_b_cycles
