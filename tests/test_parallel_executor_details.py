"""White-box tests of the multithreaded executor's cost assembly."""

import numpy as np
import pytest

from repro.parallel import MultithreadedGemm, ThreadTopology
from repro.parallel.sync import barrier_cycles


class TestTopologyDerivation:
    @pytest.mark.parametrize("threads,sharers,panels", [
        (1, 1, 1), (2, 2, 1), (4, 4, 1), (8, 4, 1), (9, 4, 2),
        (16, 4, 2), (64, 4, 8),
    ])
    def test_compact_placement(self, machine, threads, sharers, panels):
        topo = ThreadTopology.for_machine(machine, threads)
        assert topo.active_l2_sharers == sharers
        assert topo.panels_used == panels

    def test_bandwidth_share_shrinks_per_thread(self, machine):
        mt4 = MultithreadedGemm(machine, "blis", threads=4)
        mt64 = MultithreadedGemm(machine, "blis", threads=64)
        assert mt64.cache_mt.bandwidth_share < mt4.cache_mt.bandwidth_share


class TestOpenblasScheme:
    def test_idle_threads_reported(self, machine):
        mt = MultithreadedGemm(machine, "openblas", threads=64)
        _, info = mt.cost(16, 512, 512)
        assert info["chunks_nonzero"] == 16
        assert info["max_chunk"] == 1

    def test_critical_path_set_by_largest_chunk(self, machine):
        mt = MultithreadedGemm(machine, "openblas", threads=8)
        # M=9 over 8 threads: one thread has 2 rows, the rest 1 -> the
        # 2-row thread sets the pace; M=8 balances
        t9, _ = mt.cost(9, 512, 512)
        t8, _ = mt.cost(8, 512, 512)
        assert t9.kernel_cycles > t8.kernel_cycles

    def test_pack_b_split_across_all_threads(self, machine):
        t8 = MultithreadedGemm(machine, "openblas", threads=8) \
            .cost(64, 2048, 256)[0]
        t64 = MultithreadedGemm(machine, "openblas", threads=64) \
            .cost(64, 2048, 256)[0]
        # cooperative pack: more threads -> less pack-B time on the
        # critical path (bandwidth floor limits the gain)
        assert t64.pack_b_cycles < t8.pack_b_cycles

    def test_barrier_count_scales_with_kk_iterations(self, machine):
        mt = MultithreadedGemm(machine, "openblas", threads=16)
        sync1 = mt.cost(64, 256, 128)[0].sync_cycles
        sync4 = mt.cost(64, 256, 4 * mt.driver.blocking.kc)[0].sync_cycles
        assert sync4 > sync1


class TestBlisScheme:
    def test_pack_b_amortized_within_group(self, machine):
        mt = MultithreadedGemm(machine, "blis", threads=64)
        timing, info = mt.cost(128, 2048, 256)
        fact = info["factorization"]
        assert fact.pack_b_group > 1
        # pack-B time reflects group cooperation (way below 1-thread cost)
        from repro.blas import make_blis

        st = make_blis(machine).cost_gemm(128, 2048, 256)
        assert timing.pack_b_cycles < st.pack_b_cycles / 2

    def test_sync_uses_group_sized_barriers(self, machine):
        mt = MultithreadedGemm(machine, "blis", threads=64)
        timing, info = mt.cost(16, 2048, 256)
        fact = info["factorization"]
        per_kk = barrier_cycles(fact.pack_b_group, machine.numa)
        # sync per kk iteration is a small multiple of the group barrier
        kks = -(-256 // mt.driver.blocking.kc)
        assert timing.sync_cycles <= 3.5 * per_kk * kks

    def test_eff_peaks_at_intermediate_m(self, machine):
        mt = MultithreadedGemm(machine, "blis", threads=64)
        effs = {
            m: mt.cost(m, 2048, 2048)[0].efficiency(machine, np.float32, 64)
            for m in (16, 128, 256)
        }
        assert effs[128] > effs[16]


class TestEigenScheme:
    def test_grid_info(self, machine):
        mt = MultithreadedGemm(machine, "eigen", threads=16)
        _, info = mt.cost(256, 256, 128)
        assert info["scheme"] == "2d-grid"
        assert info["grid_chunks"] == 16

    def test_single_join_barrier(self, machine):
        mt = MultithreadedGemm(machine, "eigen", threads=64)
        timing, _ = mt.cost(256, 256, 128)
        assert timing.sync_cycles == pytest.approx(
            barrier_cycles(64, machine.numa)
        )

    def test_worst_chunk_sets_critical_path(self, machine):
        mt = MultithreadedGemm(machine, "eigen", threads=4)
        t_even, _ = mt.cost(64, 64, 64)
        t_odd, _ = mt.cost(65, 65, 64)  # uneven chunks + edges
        assert t_odd.total_cycles > t_even.total_cycles


class TestCrossScheme:
    def test_all_schemes_agree_functionally(self, machine):
        from repro.util import make_rng, random_matrix

        rng = make_rng(30)
        a = random_matrix(rng, 40, 24)
        b = random_matrix(rng, 24, 56)
        outs = [
            MultithreadedGemm(machine, lib, threads=8).gemm(a, b).c
            for lib in ("openblas", "blis", "eigen")
        ]
        for out in outs[1:]:
            np.testing.assert_allclose(out, outs[0], rtol=1e-5, atol=1e-6)

    def test_useful_flops_identical_across_schemes(self, machine):
        for lib in ("openblas", "blis", "eigen"):
            mt = MultithreadedGemm(machine, lib, threads=16)
            t, _ = mt.cost(48, 96, 32)
            assert t.useful_flops == 2 * 48 * 96 * 32

    def test_executed_flops_at_least_useful(self, machine):
        for lib in ("openblas", "blis", "eigen"):
            mt = MultithreadedGemm(machine, lib, threads=16)
            t, _ = mt.cost(50, 100, 64)
            assert t.executed_flops >= t.useful_flops * 0.99
