"""Documentation link checker: extraction, resolution, the repo itself."""

from pathlib import Path

from repro.util.doccheck import (
    broken_references,
    check,
    extract_references,
)


class TestExtraction:
    def test_markdown_links_and_backtick_paths(self):
        text = (
            "See [the guide](docs/PERFORMANCE.md#cache) and "
            "`tests/test_plan_batch.py::TestInvalidation`; external "
            "[link](https://example.com) and [anchor](#here) are skipped, "
            "as is the `REPORT.md` a command writes."
        )
        refs = extract_references(text)
        assert "docs/PERFORMANCE.md" in refs
        assert "tests/test_plan_batch.py" in refs
        assert not any(r.startswith("http") or r.startswith("#")
                       for r in refs)
        assert "REPORT.md" not in refs

    def test_plain_prose_yields_nothing(self):
        assert extract_references("run `make bench-record` twice") == []


class TestResolution:
    def test_broken_reference_is_reported(self, tmp_path):
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "GUIDE.md").write_text(
            "see `docs/MISSING.md` and [ok](GUIDE.md)\n"
        )
        broken = broken_references(tmp_path)
        assert broken == [("docs/GUIDE.md", "docs/MISSING.md")]
        assert check(tmp_path) == 1

    def test_module_style_shorthand_resolves_via_src(self, tmp_path):
        docs = tmp_path / "docs"
        docs.mkdir()
        pkg = tmp_path / "src" / "repro" / "verify"
        pkg.mkdir(parents=True)
        (pkg / "races.py").write_text("")
        (docs / "GUIDE.md").write_text("see `verify/races.py`\n")
        assert broken_references(tmp_path) == []


class TestRepository:
    def test_repo_docs_have_no_broken_references(self):
        root = Path(__file__).resolve().parents[1]
        assert broken_references(root) == []
