"""Unit tests for the JIT kernel factory."""

import numpy as np
import pytest

from repro.kernels import JitKernelFactory
from repro.util.errors import KernelDesignError


@pytest.fixture()
def jit(machine):
    return JitKernelFactory(machine.core)


class TestMainSpec:
    def test_main_is_lane_aligned_and_feasible(self, jit):
        main = jit.main_spec
        assert main.mr % 4 == 0
        assert main.nr % 4 == 0
        assert main.style == "pipelined"

    def test_main_is_the_analytic_optimum(self, jit):
        # for 32 x 128-bit registers the CMR optimum under lane alignment
        # is the 8x12 / 12x8 family
        main = jit.main_spec
        assert {main.mr, main.nr} == {8, 12}

    def test_fp64_lanes(self, machine):
        jit64 = JitKernelFactory(machine.core, dtype=np.float64)
        assert jit64.lanes == 2


class TestCodeCache:
    def test_cache_hit_statistics(self, jit):
        jit.spec_for(3, 4)
        jit.spec_for(3, 4)
        jit.spec_for(5, 4)
        assert jit.stats.requests == 3
        assert jit.stats.compiles == 2
        assert jit.stats.hit_rate == pytest.approx(1 / 3)

    def test_same_spec_object_returned(self, jit):
        assert jit.spec_for(3, 4) is jit.spec_for(3, 4)

    def test_kernel_for_generates(self, jit):
        k = jit.kernel_for(3, 4)
        assert k.meta["mr"] == 3
        assert k.meta["mr_padded"] == 4  # row padding to a full vector

    def test_exact_multiple_not_padded(self, jit):
        assert not jit.spec_for(8, 4).pad_rows
        assert jit.spec_for(7, 4).pad_rows

    def test_register_violation_raises(self, jit):
        with pytest.raises(KernelDesignError, match="register"):
            jit.spec_for(32, 32)

    def test_bad_shape_rejected(self, jit):
        with pytest.raises(KernelDesignError):
            jit.spec_for(0, 4)


class TestStridedMainSpec:
    def test_strided_spec_fits_registers(self, jit, machine):
        spec = jit.strided_main_spec()
        # acc + a stage + one register per B element must fit
        acc = (spec.mr // 4) * spec.nr
        assert acc + spec.mr // 4 + spec.nr <= machine.core.vector_registers
        assert spec.b_layout == "strided"

    def test_strided_tile_smaller_than_packed(self, jit):
        packed = jit.main_spec
        strided = jit.strided_main_spec()
        assert strided.mr * strided.nr <= packed.mr * packed.nr

    def test_strided_keeps_latency_constraint(self, jit, machine):
        spec = jit.strided_main_spec()
        chains = (spec.mr // 4) * spec.nr
        assert chains >= machine.core.ports["fma"] * machine.core.latencies["fma"]
