"""Tests for Fig.-11 fused (kernel-integrated) packing."""

import numpy as np
import pytest

from repro.blas import shared_analyzer, shared_generator
from repro.core import ReferenceSmmDriver, fused_pack_cycles, kernel_slot_usage
from repro.kernels import KernelSpec
from repro.util import make_rng, random_matrix
from repro.util.errors import DriverError


@pytest.fixture(scope="module")
def kernel_and_state(machine):
    gen = shared_generator()
    analyzer = shared_analyzer(machine)
    kernel = gen.generate(KernelSpec(8, 12, unroll=4, label="fuse"))
    return kernel, analyzer.analyze(kernel)


class TestSlotUsage:
    def test_fma_bound_kernel_has_spare_load_slots(self, machine,
                                                   kernel_and_state):
        kernel, state = kernel_and_state
        usage = kernel_slot_usage(kernel, state)
        # the 8x12 kernel saturates the FMA pipe...
        assert usage["fma"] == pytest.approx(1.0, rel=0.02)
        # ...but leaves most of the two load ports idle
        assert usage["load"] < 0.5


class TestFusionEstimate:
    def test_zero_elements_free(self, machine, kernel_and_state):
        kernel, state = kernel_and_state
        est = fused_pack_cycles(machine.core, kernel, state, 1000.0, 0, 0.0)
        assert est.fused_extra_cycles == 0.0

    def test_negative_elements_rejected(self, machine, kernel_and_state):
        kernel, state = kernel_and_state
        with pytest.raises(DriverError):
            fused_pack_cycles(machine.core, kernel, state, 1000.0, -1, 0.0)

    def test_fusion_never_worse_than_separate(self, machine,
                                              kernel_and_state):
        kernel, state = kernel_and_state
        for elements in (64, 1024, 65536):
            est = fused_pack_cycles(
                machine.core, kernel, state, 500.0, elements, 100.0
            )
            assert est.fused_extra_cycles <= est.separate_cycles + 1e-9

    def test_small_pack_mostly_hidden(self, machine, kernel_and_state):
        kernel, state = kernel_and_state
        est = fused_pack_cycles(
            machine.core, kernel, state,
            kernel_cycles=10_000.0, pack_elements=1024,
            pack_stall_cycles=50.0,
        )
        assert est.hidden_fraction > 0.5

    def test_oversized_pack_spills_past_the_kernel(self, machine,
                                                   kernel_and_state):
        kernel, state = kernel_and_state
        small = fused_pack_cycles(
            machine.core, kernel, state, 100.0, 4096, 0.0
        )
        large_kernel = fused_pack_cycles(
            machine.core, kernel, state, 100_000.0, 4096, 0.0
        )
        assert small.fused_extra_cycles > large_kernel.fused_extra_cycles


class TestDriverIntegration:
    def test_fused_driver_correct(self, machine):
        rng = make_rng(77)
        a = random_matrix(rng, 24, 24)
        b = random_matrix(rng, 24, 24)
        drv = ReferenceSmmDriver(machine, fused_packing=True,
                                 force_packing=True)
        np.testing.assert_allclose(drv.gemm(a, b).c, a @ b,
                                   rtol=1e-4, atol=1e-5)

    def test_fused_packing_cheaper_than_separate(self, machine):
        plain = ReferenceSmmDriver(machine, force_packing=True)
        fused = ReferenceSmmDriver(machine, force_packing=True,
                                   fused_packing=True)
        for s in (16, 48, 96):
            tp, _ = plain.cost_gemm(s, s, s)
            tf, _ = fused.cost_gemm(s, s, s)
            assert tf.pack_b_cycles < tp.pack_b_cycles, s
            assert tf.total_cycles < tp.total_cycles, s

    def test_fusion_shifts_the_packing_decision(self, machine):
        """Cheaper packing means the adaptive driver packs more often."""
        shapes = [(s, s, 256) for s in (16, 24, 32, 48, 64)]
        plain_packs = sum(
            ReferenceSmmDriver(machine).cost_gemm(*sh)[1].packed_b
            for sh in shapes
        )
        fused_packs = sum(
            ReferenceSmmDriver(machine, fused_packing=True)
            .cost_gemm(*sh)[1].packed_b
            for sh in shapes
        )
        assert fused_packs >= plain_packs

    def test_fused_never_slower_overall(self, machine):
        for s in (8, 23, 64, 100):
            plain, _ = ReferenceSmmDriver(machine).cost_gemm(s, s, s)
            fused, _ = ReferenceSmmDriver(
                machine, fused_packing=True
            ).cost_gemm(s, s, s)
            assert fused.total_cycles <= plain.total_cycles * 1.001, s
