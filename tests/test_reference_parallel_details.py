"""White-box tests for the reference driver's multithreaded cost path."""

import numpy as np
import pytest

from repro.core import ReferenceSmmDriver
from repro.parallel import MultithreadedGemm


class TestPerKcAssembly:
    def test_sync_scales_with_k(self, machine):
        ref = ReferenceSmmDriver(machine, threads=64, force_packing=True)
        t1, _ = ref.cost_gemm(64, 2048, 256)
        t4, _ = ref.cost_gemm(64, 2048, 1024)
        assert t4.sync_cycles > 2 * t1.sync_cycles

    def test_pack_scales_with_k(self, machine):
        ref = ReferenceSmmDriver(machine, threads=64, force_packing=True)
        t1, _ = ref.cost_gemm(64, 2048, 256)
        t4, _ = ref.cost_gemm(64, 2048, 1024)
        assert t4.pack_b_cycles == pytest.approx(4 * t1.pack_b_cycles,
                                                 rel=0.1)

    def test_large_b_streams_from_memory(self, machine):
        """The residency decision must see the *global* B footprint."""
        packed = ReferenceSmmDriver(machine, threads=64, force_packing=True)
        t, _ = packed.cost_gemm(16, 2048, 2048)
        # a 16 MB B cannot be packed for free: the pack phase is material
        assert t.pack_b_cycles > 0.05 * t.total_cycles

    def test_mt_efficiency_in_plausible_band(self, machine):
        ref = ReferenceSmmDriver(machine, threads=64)
        for m in (16, 64, 256):
            t, _ = ref.cost_gemm(m, 2048, 2048)
            eff = t.efficiency(machine, np.float32, 64)
            assert 0.2 < eff < 0.85, (m, eff)

    def test_reference_beats_blis_on_small_m(self, machine):
        ref = ReferenceSmmDriver(machine, threads=64)
        blis = MultithreadedGemm(machine, "blis", threads=64)
        for m in (16, 48, 96):
            e_ref = ref.cost_gemm(m, 2048, 2048)[0].efficiency(
                machine, np.float32, 64)
            e_blis = blis.cost(m, 2048, 2048)[0].efficiency(
                machine, np.float32, 64)
            assert e_ref > e_blis, m

    def test_respects_roofline_at_scale(self, machine):
        from repro.timing import respects_roofline

        ref = ReferenceSmmDriver(machine, threads=64)
        t, _ = ref.cost_gemm(128, 2048, 2048)
        assert respects_roofline(t, machine, 128, 2048, 2048, n_cores=64)

    def test_single_thread_path_unchanged_semantics(self, machine):
        """threads=1 must keep using the single-thread cost path."""
        ref1 = ReferenceSmmDriver(machine, threads=1)
        t, decision = ref1.cost_gemm(32, 32, 32)
        assert decision.factorization is None
        assert t.sync_cycles == 0.0
