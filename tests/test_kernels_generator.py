"""Unit tests for the micro-kernel generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.registers import N_VECTOR_REGISTERS
from repro.kernels import KernelSpec, MicroKernelGenerator, edge_decomposition
from repro.kernels.generator import derive_edge_spec
from repro.util.errors import KernelDesignError


@pytest.fixture(scope="module")
def gen():
    return MicroKernelGenerator()


class TestSpecValidation:
    def test_rejects_bad_style(self):
        with pytest.raises(KernelDesignError):
            KernelSpec(8, 4, style="fancy")

    def test_rejects_bad_layout(self):
        with pytest.raises(KernelDesignError):
            KernelSpec(8, 4, b_layout="zigzag")

    def test_rejects_non_positive_dims(self):
        with pytest.raises(KernelDesignError):
            KernelSpec(0, 4)

    def test_name_encodes_flags(self):
        spec = KernelSpec(8, 4, style="compiled", contraction=False,
                          b_layout="strided", pad_rows=True, label="x")
        assert "nofma" in spec.name
        assert "bstrided" in spec.name
        assert "pad" in spec.name
        assert "8x4" in spec.name


class TestGeneration:
    def test_memoization(self, gen):
        spec = KernelSpec(8, 4, label="memo")
        assert gen.generate(spec) is gen.generate(spec)

    def test_flops_accounting(self, gen):
        # 8x4 fp32 per k-step: 8 fmla x 8 flops = 64 useful flops
        k = gen.generate(KernelSpec(8, 4, unroll=4, label="fl"))
        assert k.flops_per_kstep == 64.0

    def test_register_file_respected(self, gen):
        for spec in (
            KernelSpec(16, 4, unroll=8, label="r1"),
            KernelSpec(8, 12, unroll=4, label="r2"),
            KernelSpec(8, 8, unroll=8, label="r3"),
        ):
            k = gen.generate(spec)
            assert k.vector_registers_used() <= N_VECTOR_REGISTERS

    def test_too_large_tile_raises(self, gen):
        with pytest.raises(KernelDesignError, match="Eq. 4"):
            gen.generate(KernelSpec(16, 12, label="huge"))

    def test_scalar_tail_rows(self, gen):
        # mr=7 without padding: 1 full vector + 3 scalar rows per column
        k = gen.generate(KernelSpec(7, 4, unroll=1, style="naive", label="t"))
        scalar_fmas = sum(
            1 for ins in k.body if "scalar" in ins.tags and "fma" in ins.tags
        )
        assert scalar_fmas == 3 * 4

    def test_pad_rows_removes_scalar_tail(self, gen):
        k = gen.generate(KernelSpec(7, 4, unroll=1, pad_rows=True, label="p"))
        scalar_fmas = sum(
            1 for ins in k.body if "scalar" in ins.tags and "fma" in ins.tags
        )
        assert scalar_fmas == 0
        assert k.meta["mr_padded"] == 8

    def test_unroll_scales_body(self, gen):
        k1 = gen.generate(KernelSpec(8, 4, unroll=1, label="u1"))
        k4 = gen.generate(KernelSpec(8, 4, unroll=4, label="u4"))
        # loop control is constant, the rest scales by 4
        assert len(k4.body) - 2 == 4 * (len(k1.body) - 2)

    def test_naive_uses_ldp_pairs(self, gen):
        k = gen.generate(KernelSpec(8, 4, style="naive", label="ldp"))
        assert any("ldp" in ins.text for ins in k.body)

    def test_compiled_emits_address_arithmetic(self, gen):
        k = gen.generate(KernelSpec(12, 4, unroll=1, style="compiled",
                                    label="addr"))
        assert any("addr" in ins.tags for ins in k.body)

    def test_uncontracted_emits_fmul_fadd(self, gen):
        k = gen.generate(KernelSpec(12, 4, unroll=1, style="compiled",
                                    contraction=False, label="nc"))
        assert any("fmul" in ins.tags for ins in k.body)
        assert any("fadd" in ins.tags for ins in k.body)
        assert not any("fma" in ins.tags and "fmul" not in ins.tags
                       and "fadd" not in ins.tags for ins in k.body)

    def test_strided_b_layout_loads_scalars(self, gen):
        k = gen.generate(KernelSpec(8, 4, b_layout="strided", label="sb"))
        assert any("sload" in ins.tags for ins in k.body)

    def test_epilogue_touches_c(self, gen):
        k = gen.generate(KernelSpec(8, 4, label="epi"))
        assert any(ins.is_store for ins in k.epilogue)
        assert any(ins.is_load for ins in k.epilogue)

    def test_padded_epilogue_scalar_copy_out(self, gen):
        k = gen.generate(KernelSpec(5, 4, pad_rows=True, label="pe"))
        scalar_stores = sum(1 for ins in k.epilogue if "sstore" in ins.tags)
        assert scalar_stores == 1 * 4  # one partial lane row per column

    @settings(max_examples=30, deadline=None)
    @given(
        mr=st.integers(min_value=1, max_value=12),
        nr=st.integers(min_value=1, max_value=8),
        unroll=st.sampled_from([1, 2, 4]),
        style=st.sampled_from(["pipelined", "naive"]),
    )
    def test_generated_kernels_well_formed(self, gen, mr, nr, unroll, style):
        spec = KernelSpec(mr, nr, unroll=unroll, style=style, label="hyp")
        try:
            k = gen.generate(spec)
        except KernelDesignError:
            return  # register overflow is a legal outcome
        assert k.vector_registers_used() <= N_VECTOR_REGISTERS
        assert k.flops_per_kstep == 2.0 * mr * nr
        assert k.body[-1].port == "branch"


class TestEdgeDecomposition:
    def test_paper_example(self):
        # M edge of 11 with 16-wide main kernel: 8 + 2 + 1
        assert edge_decomposition(11, 16) == [8, 2, 1]

    def test_exact_mode(self):
        assert edge_decomposition(11, 16, powers_of_two=False) == [11]

    def test_zero(self):
        assert edge_decomposition(0, 16) == []

    def test_sums_to_extent(self):
        for extent in range(1, 33):
            assert sum(edge_decomposition(extent, 16)) == extent

    def test_parts_are_powers_of_two(self):
        for extent in range(1, 33):
            for part in edge_decomposition(extent, 16):
                assert part & (part - 1) == 0

    def test_negative_extent_rejected(self):
        with pytest.raises(KernelDesignError):
            edge_decomposition(-1, 16)


class TestDeriveEdgeSpec:
    def test_edge_is_naive_and_smaller(self):
        main = KernelSpec(16, 4, unroll=8, label="main")
        edge = derive_edge_spec(main, 2, 4)
        assert edge.style == "naive"
        assert edge.mr == 2
        assert edge.unroll == 4
        assert "edge" in edge.label
