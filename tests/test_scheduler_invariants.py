"""Property-based invariants of the pipeline scheduler.

These pin down the scheduler's contract so future model changes cannot
silently break it: schedules are work-conserving, monotone in stream
length and load penalty, bounded below by every analytic resource bound,
and deterministic.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import branch_nz, fmla, ldr_q, movi_zero, str_q, subs_imm
from repro.kernels import KernelSpec, MicroKernelGenerator
from repro.machine import CoreConfig
from repro.pipeline import OoOScheduler, SteadyStateAnalyzer, bound_analysis

_GEN = MicroKernelGenerator()


def random_stream(rng, n):
    """A random well-formed instruction stream."""
    stream = []
    for _ in range(n):
        kind = rng.integers(0, 4)
        if kind == 0:
            stream.append(ldr_q(f"v{rng.integers(0, 16)}", "x0", post_inc=16))
        elif kind == 1:
            stream.append(
                fmla(f"v{rng.integers(16, 32)}", f"v{rng.integers(0, 16)}",
                     f"v{rng.integers(0, 16)}", lane=int(rng.integers(0, 4)))
            )
        elif kind == 2:
            stream.append(movi_zero(f"v{rng.integers(16, 32)}"))
        else:
            stream.append(str_q(f"v{rng.integers(16, 32)}", "x1"))
    return stream


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(1, 80))
def test_prefix_monotonicity(seed, n):
    """Scheduling a prefix never takes longer than the whole stream."""
    rng = np.random.default_rng(seed)
    stream = random_stream(rng, n)
    sched = OoOScheduler(CoreConfig())
    full = sched.run(stream).total_cycles
    if n > 1:
        prefix = sched.run(stream[: n // 2 + 1]).total_cycles
        assert prefix <= full


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(1, 60),
       penalty=st.floats(0.0, 20.0))
def test_load_penalty_approximately_monotone(seed, n, penalty):
    """Extra load latency (almost) never speeds a schedule up.

    Greedy list scheduling exhibits Graham's anomalies: lengthening an
    operation can occasionally *shorten* the makespan by reshuffling port
    assignments (real out-of-order hardware shows the same effect).  The
    property that must hold is approximate monotonicity with a small
    bounded anomaly.
    """
    rng = np.random.default_rng(seed)
    stream = random_stream(rng, n)
    sched = OoOScheduler(CoreConfig())
    base = sched.run(stream, extra_load_cycles=0.0).total_cycles
    slow = sched.run(stream, extra_load_cycles=penalty).total_cycles
    assert slow >= 0.9 * base


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(4, 60))
def test_determinism(seed, n):
    rng = np.random.default_rng(seed)
    stream = random_stream(rng, n)
    sched = OoOScheduler(CoreConfig())
    a = sched.run(stream, record_ops=True)
    b = sched.run(stream, record_ops=True)
    assert a.total_cycles == b.total_cycles
    assert [op.issue_cycle for op in a.ops] == [op.issue_cycle for op in b.ops]


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(4, 60))
def test_port_capacity_respected(seed, n):
    """No cycle slot ever exceeds its port-class capacity."""
    rng = np.random.default_rng(seed)
    stream = random_stream(rng, n)
    core = CoreConfig()
    res = OoOScheduler(core).run(stream, record_ops=True)
    usage = {}
    for op in res.ops:
        key = (op.port, op.issue_cycle)
        usage[key] = usage.get(key, 0) + 1
    for (port, _), count in usage.items():
        assert count <= core.ports[port]


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(4, 60))
def test_dependences_respected(seed, n):
    """A reader never issues before its producer's completion."""
    rng = np.random.default_rng(seed)
    stream = random_stream(rng, n)
    res = OoOScheduler(CoreConfig()).run(stream, record_ops=True)
    from repro.isa.registers import is_xreg

    last_writer_complete = {}
    last_writer_issue = {}
    for op, ins in zip(res.ops, stream):
        for reg in ins.reads:
            if reg in last_writer_complete:
                # post-inc base writebacks become ready at issue+1
                bound = last_writer_complete[reg]
                if is_xreg(reg) and reg in last_writer_issue:
                    bound = min(bound, last_writer_issue[reg] + 1)
                assert op.issue_cycle >= bound - 1e-9
        for reg in ins.writes:
            if ins.is_load and is_xreg(reg):
                last_writer_issue[reg] = op.issue_cycle
                last_writer_complete[reg] = op.issue_cycle + 1
            else:
                last_writer_complete[reg] = op.complete_cycle
                last_writer_issue.pop(reg, None)


@pytest.mark.parametrize("mr,nr,style", [
    (16, 4, "pipelined"), (8, 12, "pipelined"), (8, 4, "naive"),
    (4, 4, "naive"), (12, 4, "compiled"),
])
def test_steady_state_respects_bounds(machine, mr, nr, style):
    """Measured cycles/iteration >= every analytic lower bound."""
    spec = KernelSpec(mr, nr, unroll=4, style=style, label="inv")
    kernel = _GEN.generate(spec)
    analyzer = SteadyStateAnalyzer(machine.core)
    state = analyzer.analyze(kernel)
    bounds = bound_analysis(kernel, machine.core)
    assert state.cycles_per_iter >= max(bounds.values()) - 1e-6


def test_wider_dispatch_never_slower(machine):
    """A strictly more capable core never yields a slower steady state."""
    from dataclasses import replace

    spec = KernelSpec(8, 8, unroll=4, label="cap")
    kernel = _GEN.generate(spec)
    base = SteadyStateAnalyzer(machine.core).analyze(kernel)
    wide = replace(machine.core, dispatch_width=8)
    faster = SteadyStateAnalyzer(wide).analyze(kernel)
    assert faster.cycles_per_iter <= base.cycles_per_iter + 1e-9


def test_more_fma_ports_speed_fma_bound_kernels(machine):
    from dataclasses import replace

    spec = KernelSpec(16, 4, unroll=4, label="ports")
    kernel = _GEN.generate(spec)
    base = SteadyStateAnalyzer(machine.core).analyze(kernel)
    twin_ports = dict(machine.core.ports)
    twin_ports["fma"] = 2
    dual = replace(machine.core, ports=twin_ports)
    faster = SteadyStateAnalyzer(dual).analyze(kernel)
    assert faster.cycles_per_iter < base.cycles_per_iter


def test_loop_stream_cycles_scale_linearly(machine):
    """k iterations of a body take ~k times the steady-state rate."""
    body = []
    for i in range(8):
        body.append(fmla(f"v{16 + i}", "v0", "v1"))
    body.append(subs_imm("x3", "x3", 1))
    body.append(branch_nz("x3"))
    sched = OoOScheduler(machine.core)
    t32 = sched.run(body * 32).total_cycles
    t64 = sched.run(body * 64).total_cycles
    assert t64 / t32 == pytest.approx(2.0, rel=0.1)
