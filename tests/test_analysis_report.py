"""Tests for the markdown report generator."""

import pytest

from repro.analysis import generate_report


@pytest.fixture(scope="module")
def report(machine):
    return generate_report(machine)


class TestReportStructure:
    def test_all_sections_present(self, report):
        for heading in (
            "# SMM characterization report",
            "## Table I",
            "## Figure 5(a)",
            "## Figure 6",
            "## Figure 7",
            "## Figure 9",
            "## Figure 10",
            "## Table II",
            "## Section IV",
        ):
            assert heading in report, heading

    def test_machine_summary_included(self, report):
        assert "phytium-2000+" in report
        assert "563.2" in report

    def test_every_shape_check_passes(self, report):
        assert "✘" not in report
        assert report.count("✔") >= 10

    def test_markdown_tables_wellformed(self, report):
        for line in report.splitlines():
            if line.startswith("|") and "---" not in line:
                # every markdown table row has matching pipes
                assert line.endswith("|")

    def test_figures_render_as_code_blocks(self, report):
        assert report.count("```") % 2 == 0
        assert report.count("```") >= 10

    def test_edge_family_reported(self, report):
        assert "8x4: 100%" in report
