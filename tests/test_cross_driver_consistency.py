"""Cross-driver consistency: independent models must agree where their
assumptions coincide, and disagree exactly where their designs differ."""

import numpy as np
import pytest

from repro.analysis import fig10, reference_comparison
from repro.blas import make_blasfeo, make_blis, make_openblas
from repro.core import ReferenceSmmDriver


class TestKernelLevelAgreement:
    def test_openblas_and_blasfeo_share_kernel_speed(self, machine):
        """Both model 16x4 pipelined kernels; on an aligned, cache-resident
        shape their *kernel-only* efficiency must agree closely (they
        differ in unroll factor only)."""
        ob = make_openblas(machine).cost_gemm(64, 64, 64)
        bf = make_blasfeo(machine).cost_gemm(64, 64, 64)
        e_ob = ob.kernel_efficiency(machine, np.float32)
        e_bf = bf.kernel_efficiency(machine, np.float32)
        assert e_ob == pytest.approx(e_bf, rel=0.10)

    def test_total_gap_equals_packing(self, machine):
        """On that same shape the *total* gap between OpenBLAS and BLASFEO
        must be explained by packing, nothing else."""
        ob = make_openblas(machine).cost_gemm(64, 64, 64)
        bf = make_blasfeo(machine).cost_gemm(64, 64, 64)
        gap = ob.total_cycles - bf.total_cycles
        assert gap == pytest.approx(
            ob.packing_cycles + (ob.kernel_cycles - bf.kernel_cycles),
            rel=0.05,
        )

    def test_blis_and_reference_share_tile_family(self, machine):
        """BLIS's 8x12 and the JIT's {8x12, 12x8} are the same analytic
        optimum; on aligned shapes their kernel efficiency agrees."""
        blis = make_blis(machine).cost_gemm(96, 96, 96)
        ref, _ = ReferenceSmmDriver(
            machine, force_packing=False
        ).cost_gemm(96, 96, 96)
        assert blis.kernel_efficiency(machine, np.float32) == pytest.approx(
            ref.kernel_efficiency(machine, np.float32), rel=0.12
        )


class TestDesignedDisagreements:
    def test_edge_shapes_separate_the_policies(self, machine):
        """At 75³ the three edge policies must give *different* answers —
        if they agree, the models are not modeling the policies."""
        effs = {
            "openblas": make_openblas(machine).cost_gemm(75, 75, 75)
            .efficiency(machine, np.float32),
            "blis": make_blis(machine).cost_gemm(75, 75, 75)
            .efficiency(machine, np.float32),
            "blasfeo": make_blasfeo(machine).cost_gemm(75, 75, 75)
            .efficiency(machine, np.float32),
        }
        values = sorted(effs.values())
        assert values[1] - values[0] > 0.01
        assert values[2] - values[1] > 0.01

    def test_aligned_shapes_collapse_the_policies(self, machine):
        """At 96³ (a multiple of every tile) edge policies cannot matter;
        the spread must shrink to packing differences only."""
        ob = make_openblas(machine).cost_gemm(96, 96, 96)
        blis = make_blis(machine).cost_gemm(96, 96, 96)
        assert ob.kernel_efficiency(machine, np.float32) == pytest.approx(
            blis.kernel_efficiency(machine, np.float32), rel=0.1
        )


class TestExperimentCrossChecks:
    def test_fig10_reference_dominates_blis_on_smm(self, machine):
        """The reference design targets *small* M; it must dominate BLIS
        there and stay in range as M leaves the SMM regime."""
        figs = fig10(machine, threads=64, include_reference=True)
        fig = figs["small-M"]
        ref = fig.series_by_name("reference").ys
        blis = fig.series_by_name("blis").ys
        for x, r, b in zip(fig.xs, ref, blis):
            if x <= 128:
                assert r >= 0.9 * b, x
            else:
                assert r >= 0.75 * b, x

    def test_reference_comparison_contains_all_series(self, machine):
        fig = reference_comparison(machine)
        assert {s.name for s in fig.series} == {
            "openblas", "blis", "blasfeo", "eigen", "reference"
        }


# ---------------------------------------------------------------------------
# golden plan parity: the ExecutionPlan refactor's acceptance gate
# ---------------------------------------------------------------------------

import json
import pathlib

from repro.blas import make_driver
from repro.parallel import MultithreadedGemm

GOLDEN_PATH = pathlib.Path(__file__).parent / "data" / "golden_timings.json"


@pytest.fixture(scope="module")
def golden():
    """The pre-refactor GemmTiming recordings (tests/record_golden.py)."""
    return json.loads(GOLDEN_PATH.read_text())


def _golden_entries(golden, driver, threads):
    entries = [e for e in golden["entries"]
               if e["driver"] == driver and e["threads"] == threads]
    assert entries, f"no golden entries for {driver}@{threads}"
    return entries


class TestGoldenPlanParity:
    """Every driver's plan-derived GemmTiming must reproduce the timing
    recorded *before* the ExecutionPlan refactor — bit for bit, every
    bucket, on the paper's Fig. 5 / Fig. 10 sweeps plus edge shapes.

    ``as_dict()`` equality is exact float equality: any reordering of the
    engine's accumulation, any dropped or doubled charge, fails here.
    """

    def test_recorded_grid_is_complete(self, golden, machine):
        assert golden["machine"] == machine.name
        assert len(golden["entries"]) >= 700
        drivers = {e["driver"] for e in golden["entries"]}
        assert drivers == {"openblas", "blis", "eigen", "blasfeo",
                           "reference", "reference-fused"}

    @pytest.mark.parametrize("lib", ("openblas", "blis", "eigen", "blasfeo"))
    def test_single_thread_libraries(self, golden, machine, lib):
        driver = make_driver(lib, machine)
        for entry in _golden_entries(golden, lib, threads=1):
            m, n, k = entry["shape"]
            timing = driver.cost_gemm(m, n, k)
            assert timing.as_dict() == entry["timing"], (lib, (m, n, k))

    @pytest.mark.parametrize("fused", (False, True),
                             ids=("plain", "fused-packing"))
    def test_reference_smm(self, golden, machine, fused):
        driver = ReferenceSmmDriver(machine, fused_packing=fused)
        name = "reference-fused" if fused else "reference"
        for entry in _golden_entries(golden, name, threads=1):
            m, n, k = entry["shape"]
            timing, decision = driver.cost_gemm(m, n, k)
            assert timing.as_dict() == entry["timing"], (name, (m, n, k))
            assert bool(decision.packed_b) == entry["packed_b"], (m, n, k)

    @pytest.mark.parametrize("threads", (4, 64))
    @pytest.mark.parametrize("lib", ("openblas", "blis", "eigen"))
    def test_multithreaded_schemes(self, golden, machine, lib, threads):
        mt = MultithreadedGemm(machine, lib, threads=threads)
        for entry in _golden_entries(golden, lib, threads=threads):
            m, n, k = entry["shape"]
            timing, _ = mt.cost(m, n, k)
            assert timing.as_dict() == entry["timing"], \
                (lib, threads, (m, n, k))

    @pytest.mark.parametrize("threads", (4, 64))
    def test_reference_multithreaded(self, golden, machine, threads):
        driver = ReferenceSmmDriver(machine, threads=threads)
        for entry in _golden_entries(golden, "reference", threads=threads):
            m, n, k = entry["shape"]
            timing, decision = driver.cost_gemm(m, n, k)
            assert timing.as_dict() == entry["timing"], (threads, (m, n, k))
            assert bool(decision.packed_b) == entry["packed_b"], (m, n, k)

    def test_traced_pricing_changes_nothing(self, golden, machine):
        """Pricing with a recording sink must not perturb a single bit of
        the result, and the trace's phase events must rebuild it."""
        from repro.plan import RecordingTraceSink
        from repro.timing import timing_from_trace

        entries = _golden_entries(golden, "openblas", threads=1)
        checks = 0
        for entry in entries[::40]:  # a spread across the sweep
            m, n, k = entry["shape"]
            plan = make_driver("openblas", machine).plan_gemm(m, n, k)
            sink = RecordingTraceSink()
            timing = plan.price(sink=sink)
            assert timing.as_dict() == entry["timing"]
            assert timing_from_trace(sink.events).as_dict() == \
                entry["timing"]
            checks += 1
        assert checks >= 3
