"""Tests for the machine-parameter sensitivity tooling.

Beyond API correctness, these tests *prove the mechanisms*: each paper
effect must respond to exactly the hardware parameter the model says
causes it.
"""

import numpy as np
import pytest

from repro.analysis import (
    apply_parameter,
    edge_kernel_metric,
    mutable_parameters,
    smm_efficiency_metric,
    sweep_parameter,
)
from repro.util.errors import ConfigError


class TestApi:
    def test_parameter_catalog(self):
        params = mutable_parameters()
        assert "core.fma_latency" in params
        assert "numa.dram_bytes_per_cycle" in params

    def test_apply_parameter_returns_copy(self, machine):
        varied = apply_parameter(machine, "core.fma_latency", 9)
        assert varied.core.latencies["fma"] == 9
        assert machine.core.latencies["fma"] == 5  # original untouched

    def test_unknown_parameter(self, machine):
        with pytest.raises(ConfigError, match="unknown parameter"):
            apply_parameter(machine, "core.magic", 1)

    def test_empty_values_rejected(self, machine):
        with pytest.raises(ConfigError):
            sweep_parameter(machine, "core.fma_latency", [],
                            edge_kernel_metric())

    def test_figure_structure(self, machine):
        fig = sweep_parameter(machine, "core.fma_latency", [3, 5],
                              edge_kernel_metric(), figure_id="s")
        assert fig.xs == [3, 5]
        assert fig.series[0].name == "edge-4x4"


class TestMechanismProofs:
    def test_chain_starvation_tracks_fma_latency(self, machine):
        """Narrow-tile efficiency = min(chains/latency, 1), the mechanism
        behind the paper's edge-kernel slowness."""
        fig = sweep_parameter(
            machine, "core.fma_latency", [2, 4, 8, 16], edge_kernel_metric()
        )
        ys = fig.series[0].ys
        assert ys[0] == pytest.approx(1.0, rel=0.02)  # 4 chains / lat 2
        assert ys[1] == pytest.approx(1.0, rel=0.02)  # 4 / 4
        assert ys[2] == pytest.approx(0.5, rel=0.05)  # 4 / 8
        assert ys[3] == pytest.approx(0.25, rel=0.05)  # 4 / 16

    def test_smm_efficiency_falls_with_slower_loads(self, machine):
        fig = sweep_parameter(
            machine, "core.load_latency", [3, 30],
            smm_efficiency_metric(size=48),
        )
        blasfeo = fig.series_by_name("blasfeo").ys
        assert blasfeo[1] <= blasfeo[0] + 1e-9

    def test_blasfeo_advantage_is_packing_not_machine(self, machine):
        """BLASFEO's lead over OpenBLAS must survive machine perturbations
        — it comes from skipping packing, not from a lucky constant."""
        for param, value in (
            ("core.fma_latency", 8),
            ("core.dispatch_width", 2),
            ("l1.size_bytes", 16 * 1024),
        ):
            varied = apply_parameter(machine, param, value)
            out = smm_efficiency_metric(size=32)(varied)
            assert out["blasfeo"] > out["openblas"], (param, value)

    def test_barrier_cost_drives_sync_share(self, machine):
        from repro.parallel import MultithreadedGemm

        def sync_share(m):
            mt = MultithreadedGemm(m, "blis", threads=64)
            t, _ = mt.cost(64, 2048, 2048)
            return t.sync_cycles / t.total_cycles

        cheap = apply_parameter(machine, "numa.barrier_stage_cycles", 50)
        pricey = apply_parameter(machine, "numa.barrier_stage_cycles", 2000)
        assert sync_share(pricey) > 3 * sync_share(cheap)

    def test_bandwidth_drives_mt_efficiency(self, machine):
        from repro.parallel import MultithreadedGemm

        def eff(m):
            mt = MultithreadedGemm(m, "blis", threads=64)
            t, _ = mt.cost(64, 2048, 2048)
            return t.efficiency(m, np.float32, 64)

        thin = apply_parameter(machine, "numa.dram_bytes_per_cycle", 2.0)
        fat = apply_parameter(machine, "numa.dram_bytes_per_cycle", 64.0)
        assert eff(fat) > eff(thin)

    def test_tiny_window_finally_exposes_load_placement(self, machine):
        """The Fig. 7 reproduction finding, as a sweep: the naive kernel's
        load placement only binds at very small scheduling windows."""
        from repro.kernels import KernelSpec, MicroKernelGenerator
        from repro.pipeline import SteadyStateAnalyzer

        gen = MicroKernelGenerator()

        def naive_eff(m):
            analyzer = SteadyStateAnalyzer(m.core)
            k = gen.generate(KernelSpec(
                8, 4, unroll=4, style="naive",
                label=f"win{m.core.scheduler_window}"))
            return analyzer.analyze(k).flops_per_cycle / 8.0

        wide = apply_parameter(machine, "core.scheduler_window", 32)
        narrow = apply_parameter(machine, "core.scheduler_window", 4)
        assert naive_eff(wide) == pytest.approx(1.0, rel=0.02)
        assert naive_eff(narrow) < 0.95
