"""The plan-level static analyzer (V3xx rules).

Three layers of contract:

* every golden driver's lowering analyzes clean (representative shapes;
  the full sweep runs under ``repro lint --plans`` in ``make lint``);
* every rule fires on its injected mutant (negative controls);
* the engine's verify-before-price gate rejects broken plans without
  perturbing the timings of legal ones.
"""

import json

import pytest

from repro.blas import make_blasfeo, make_driver
from repro.core import BatchedSmm, ReferenceSmmDriver
from repro.parallel import MultithreadedGemm
from repro.plan import ENGINE, ExecutionPlan, Section
from repro.tuning import AdaptiveTuner
from repro.util.errors import PlanVerificationError
from repro.verify import (
    PLAN_RULES,
    PlanVerifier,
    assert_plan_ok,
    golden_plan_cases,
    plan_rules_table,
    plan_self_check,
    verify_plan,
)
from repro.verify.planlint import inject_bad_plan, lower_named


class TestCleanPlans:
    """Representative lowerings of every driver analyze with no findings."""

    @pytest.mark.parametrize("make_plan", [
        lambda m: make_driver("openblas", m).plan_gemm(48, 48, 48),
        lambda m: make_driver("blis", m).plan_gemm(33, 65, 129),
        lambda m: make_driver("eigen", m).plan_gemm(75, 75, 75),
        lambda m: make_blasfeo(m).plan_gemm(24, 24, 24),
        lambda m: ReferenceSmmDriver(m).plan_gemm(97, 101, 89),
        lambda m: ReferenceSmmDriver(m, fused_packing=True)
        .plan_gemm(40, 100, 100),
        lambda m: ReferenceSmmDriver(m, threads=16).plan_gemm(64, 512, 512),
        lambda m: MultithreadedGemm(m, "openblas", threads=64)
        .plan_gemm(80, 2048, 2048),
        lambda m: MultithreadedGemm(m, "blis", threads=4)
        .plan_gemm(2048, 16, 2048),
        lambda m: MultithreadedGemm(m, "eigen", threads=4)
        .plan_gemm(256, 2048, 2048),
        lambda m: BatchedSmm(m)
        .plan_batch([(8, 8, 8), (16, 16, 16), (5, 3, 2)]),
    ], ids=["openblas", "blis", "eigen", "blasfeo", "reference",
            "reference-fused", "reference-mt", "mt-openblas", "mt-blis",
            "mt-eigen", "batched"])
    def test_no_findings(self, machine, make_plan):
        report = verify_plan(make_plan(machine))
        assert report.ok
        assert report.diagnostics == ()
        assert report.nodes > 0

    def test_golden_cases_narrowed(self, machine):
        cases = list(golden_plan_cases(machine, shape=(24, 16, 8)))
        assert [lib for lib, *_ in cases] == [
            "openblas", "blis", "eigen", "blasfeo",
            "reference", "reference-fused",
        ]
        for lib, threads, shape, plan in cases:
            assert threads == 1 and shape == (24, 16, 8)
            assert verify_plan(plan, label=lib).ok

    def test_lower_named_mt(self, machine):
        plan = lower_named(machine, "blis", 64, 80, 2048, 2048)
        assert isinstance(plan, ExecutionPlan)
        assert verify_plan(plan).ok


class TestMutationSelfCheck:
    def test_every_rule_fires_on_its_mutant(self, machine):
        results = plan_self_check(machine)
        assert sorted(rid for rid, _ in results) == sorted(PLAN_RULES)
        assert all(fired for _, fired in results)

    def test_inject_bad_plan_is_v321(self, machine):
        rule_id, plan = inject_bad_plan(machine)
        assert rule_id == "V321-missing-pack"
        report = verify_plan(plan, label="injected")
        assert not report.ok
        assert any(d.rule == rule_id for d in report.errors)


class TestEngineGate:
    def test_assert_plan_ok_raises_with_report(self, machine):
        _, bad = inject_bad_plan(machine)
        with pytest.raises(PlanVerificationError) as err:
            assert_plan_ok(bad)
        assert "V321-missing-pack" in str(err.value)

    def test_gate_rejects_before_pricing(self, machine):
        _, bad = inject_bad_plan(machine)
        assert ENGINE.verify  # armed session-wide by conftest
        with pytest.raises(PlanVerificationError):
            bad.price()

    def test_gate_does_not_perturb_timings(self, machine):
        plan = make_driver("openblas", machine).plan_gemm(48, 48, 48)
        gated = plan.price()
        previous = ENGINE.verify
        ENGINE.verify = False
        try:
            ungated = plan.price()
        finally:
            ENGINE.verify = previous
        assert gated.as_dict() == ungated.as_dict()

    def test_gate_off_by_default(self, machine):
        from repro.plan.engine import Engine
        assert Engine().verify is False


class TestTunerIntegration:
    def test_tuned_plan_analyzes_clean(self, machine):
        tuner = AdaptiveTuner(machine, cache_path=None)
        plan = tuner.plan_execution(33, 17, 9)
        assert verify_plan(plan).ok

    def test_search_skips_plans_failing_verification(self, machine,
                                                     monkeypatch):
        import repro.tuning.tuner as tuner_mod

        tuner = AdaptiveTuner(machine, cache_path=None)
        heuristic = tuner.heuristic_plan(24, 24, 24)
        # every candidate plan is reported illegal -> heuristic fallback
        monkeypatch.setattr(
            tuner_mod, "verify_plan",
            lambda plan, label=None: verify_plan(
                inject_bad_plan(machine)[1]
            ),
        )
        tuned = tuner.search(24, 24, 24)
        assert tuned.source == "heuristic"
        assert tuned.total_cycles == heuristic.total_cycles


class TestReporting:
    def test_report_to_dict_round_trips(self, machine):
        _, bad = inject_bad_plan(machine)
        report = verify_plan(bad, label="injected")
        dumped = json.loads(json.dumps(report.to_dict()))
        assert dumped["ok"] is False
        assert dumped["driver"] == "injected"
        assert dumped["nodes"] == report.nodes
        rules = [d["rule"] for d in dumped["diagnostics"]]
        assert "V321-missing-pack" in rules

    def test_render_includes_verdict_and_rule(self, machine):
        _, bad = inject_bad_plan(machine)
        text = verify_plan(bad, label="injected").render()
        assert "FAIL" in text and "V321-missing-pack" in text
        clean = make_blasfeo(machine).plan_gemm(8, 8, 8)
        assert "OK" in verify_plan(clean).render()

    def test_diagnostics_sorted_errors_first(self, machine):
        _, bad = inject_bad_plan(machine)
        report = verify_plan(bad)
        keys = [d.sort_key() for d in report.diagnostics]
        assert keys == sorted(keys)

    def test_rules_table_lists_every_rule(self):
        table = plan_rules_table()
        for rule_id in PLAN_RULES:
            assert rule_id in table

    def test_rule_ids_are_stable(self):
        assert sorted(PLAN_RULES) == [
            "V301-write-overlap", "V302-unsynced-pack",
            "V303-barrier-group", "V311-l1-residency",
            "V312-l2-residency", "V313-shared-l2-budget",
            "V321-missing-pack", "V322-dead-pack", "V323-stale-panel",
            "V331-flop-coverage", "V332-batch-partition",
            "V401-oob-access", "V402-pack-overrun",
            "V411-strip-race", "V412-unordered-read",
            "V413-grid-race", "V421-topology-mismatch",
            "V422-class-mismatch", "V423-unbalanced-strips",
        ]
        for rule in PLAN_RULES.values():
            assert rule.severity in ("error", "warning", "info")

    def test_full_catalog_merges_all_rule_families(self):
        from repro.verify import CACHE_RULES, CONCURRENCY_RULES, RULES, \
            RULE_CATALOG_VERSION, full_rule_catalog

        catalog = full_rule_catalog()
        assert set(catalog) == (set(RULES) | set(PLAN_RULES)
                                | set(CACHE_RULES) | set(CONCURRENCY_RULES))
        assert isinstance(RULE_CATALOG_VERSION, int)
        assert RULE_CATALOG_VERSION >= 4
        assert all(r.startswith("C0") for r in CONCURRENCY_RULES)
        assert all(r.startswith("V5") for r in CACHE_RULES)


class TestMemoization:
    def test_fingerprint_stable_across_lowerings(self, machine):
        from repro.verify import plan_fingerprint

        a = make_driver("openblas", machine).plan_gemm(48, 48, 48)
        b = make_driver("openblas", machine).plan_gemm(48, 48, 48)
        assert plan_fingerprint(a) == plan_fingerprint(b)
        c = make_driver("openblas", machine).plan_gemm(48, 48, 64)
        assert plan_fingerprint(a) != plan_fingerprint(c)

    def test_reverification_hits_the_memo(self, machine):
        from repro.verify import verification_cache_info

        plan = make_driver("blis", machine).plan_gemm(33, 65, 129)
        verify_plan(plan)
        before = verification_cache_info()["hits"]
        report = verify_plan(plan)
        assert verification_cache_info()["hits"] == before + 1
        assert report.ok

    def test_mutation_invalidates_the_memo(self, machine):
        from repro.util.errors import PlanVerificationError
        from repro.verify import plan_fingerprint

        plan = ReferenceSmmDriver(machine).plan_with(
            32, 32, 32, packed_b=True
        )
        assert verify_plan(plan).ok
        clean_fp = plan_fingerprint(plan)
        from repro.plan.ir import PackOp

        for _, node in plan.walk():
            if isinstance(node, PackOp):
                node.rows = node.rows * 4
                break
        assert plan_fingerprint(plan) != clean_fp
        report = verify_plan(plan)  # recomputed, not the stale OK
        assert not report.ok
        with pytest.raises(PlanVerificationError):
            assert_plan_ok(plan)

    def test_cache_clear_resets_counters(self, machine):
        from repro.verify import (
            clear_verification_cache,
            verification_cache_info,
        )

        verify_plan(make_driver("openblas", machine).plan_gemm(8, 8, 8))
        clear_verification_cache()
        info = verification_cache_info()
        assert info["size"] == 0 and info["hits"] == 0
        # repopulate so later tests keep their warm-cache behavior
        verify_plan(make_driver("openblas", machine).plan_gemm(8, 8, 8))


class TestTunerProvenance:
    def test_rejections_carry_tuner_provenance(self, machine,
                                               monkeypatch):
        import repro.tuning.tuner as tuner_mod

        tuner = AdaptiveTuner(machine, cache_path=None)
        real_verify = tuner_mod.verify_plan

        def failing_verify(plan, label=None):
            # candidate plans carry the provenance stamp; verifying a
            # broken structure must attribute findings to the tuner
            assert plan.meta.get("provenance") == "tuner:candidate"
            _, bad = inject_bad_plan(machine)
            bad.meta["provenance"] = "tuner:candidate"
            return real_verify(bad)

        monkeypatch.setattr(tuner_mod, "verify_plan", failing_verify)
        tuned = tuner.search(24, 24, 24)
        assert tuned.source == "heuristic"
        assert tuner.last_rejections
        for diag in tuner.last_rejections:
            assert "tuner:candidate" in diag.driver

    def test_clean_search_leaves_no_rejections(self, machine):
        tuner = AdaptiveTuner(machine, cache_path=None)
        tuner.search(24, 24, 24)
        assert tuner.last_rejections == []

    def test_tune_report_counts_rejections(self):
        from repro.tuning.tuner import TuneReport

        report = TuneReport(requested=2, tuned=2, rejected=3)
        assert "3 candidate plan(s) rejected" in report.render()


class TestRobustness:
    def test_unknown_node_kind_is_ignored(self, machine):
        class Rogue:
            kind = "rogue"

        plan = make_blasfeo(machine).plan_gemm(8, 8, 8)
        root = plan.root
        hacked = ExecutionPlan(
            root=Section(label=root.label,
                         children=root.children + (Rogue(),)),
            context=plan.context,
            meta=dict(plan.meta),
        )
        assert verify_plan(hacked).ok  # analyzer skips what it can't read

    def test_contextless_plan_skips_residency(self, machine):
        plan = ReferenceSmmDriver(machine).plan_gemm(33, 17, 9)
        bare = ExecutionPlan(root=plan.root, context=None,
                             meta=dict(plan.meta))
        report = PlanVerifier().verify(bare)
        assert not [d for d in report.diagnostics
                    if d.rule.startswith("V31")]
