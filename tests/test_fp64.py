"""Double-precision coverage: the whole stack must work in fp64.

The paper evaluates fp32; the machine's advertised 563.2 GFLOPS is the
fp64 figure.  These tests pin the lane arithmetic (2 fp64 lanes per
128-bit register), the scaled kernel catalogs, and functional correctness
end to end.
"""

import numpy as np
import pytest

from repro.blas import make_driver
from repro.core import ReferenceSmmDriver
from repro.kernels import JitKernelFactory, all_catalogs
from repro.parallel import MultithreadedGemm
from repro.util import make_rng, random_matrix

LIBS = ["openblas", "blis", "blasfeo", "eigen"]


class TestLaneArithmetic:
    def test_lanes(self, machine):
        assert machine.core.simd_lanes(np.float64) == 2

    def test_peak_is_the_paper_number(self, machine):
        assert machine.peak_gflops(np.float64, 64) == pytest.approx(563.2)

    def test_catalog_tiles_scale_down(self):
        cats32 = all_catalogs(lanes=4)
        cats64 = all_catalogs(lanes=2)
        for lib in cats32:
            assert cats64[lib].main.mr == cats32[lib].main.mr // 2
            assert cats64[lib].main.nr == cats32[lib].main.nr

    def test_jit_main_feasible_fp64(self, machine):
        jit = JitKernelFactory(machine.core, dtype=np.float64)
        main = jit.main_spec
        assert main.mr % 2 == 0
        # the kernel actually generates
        kernel = jit.kernel_for(main.mr, main.nr)
        assert kernel.vector_registers_used() <= 32


class TestFunctionalCorrectness:
    @pytest.mark.parametrize("lib", LIBS)
    def test_matches_numpy(self, machine, lib):
        rng = make_rng(64)
        a = random_matrix(rng, 23, 17, dtype=np.float64)
        b = random_matrix(rng, 17, 29, dtype=np.float64)
        drv = make_driver(lib, machine, dtype=np.float64)
        result = drv.gemm(a, b)
        np.testing.assert_allclose(result.c, a @ b, rtol=1e-12, atol=1e-12)

    def test_reference_matches_numpy(self, machine):
        rng = make_rng(65)
        a = random_matrix(rng, 19, 21, dtype=np.float64)
        b = random_matrix(rng, 21, 13, dtype=np.float64)
        ref = ReferenceSmmDriver(machine, dtype=np.float64)
        np.testing.assert_allclose(ref.gemm(a, b).c, a @ b,
                                   rtol=1e-12, atol=1e-12)

    def test_multithreaded_fp64(self, machine):
        rng = make_rng(66)
        a = random_matrix(rng, 32, 32, dtype=np.float64)
        b = random_matrix(rng, 32, 32, dtype=np.float64)
        mt = MultithreadedGemm(machine, "blis", threads=8, dtype=np.float64)
        np.testing.assert_allclose(mt.gemm(a, b).c, a @ b,
                                   rtol=1e-12, atol=1e-12)


class TestPerformanceShape:
    def test_blasfeo_still_dominates(self, machine):
        effs = {}
        for lib in LIBS:
            drv = make_driver(lib, machine, dtype=np.float64)
            effs[lib] = drv.cost_gemm(40, 40, 40).efficiency(
                machine, np.float64
            )
        assert effs["blasfeo"] > effs["openblas"]
        assert effs["blasfeo"] > effs["blis"]
        assert effs["eigen"] == min(effs.values())

    def test_fp64_kernel_chains_still_bind(self, machine):
        # fp64 halves the lanes: a 2x4 fp64 tile has 4 chains < 5 -> slow
        from repro.blas import shared_analyzer, shared_generator
        from repro.kernels import KernelSpec

        gen = shared_generator()
        analyzer = shared_analyzer(machine)
        k = gen.generate(KernelSpec(2, 4, unroll=4, lanes=2, label="dp"))
        eff = analyzer.analyze(k).flops_per_cycle / \
            machine.core.flops_per_cycle(np.float64)
        assert eff < 0.95

    def test_efficiencies_are_fractions(self, machine):
        for lib in LIBS:
            drv = make_driver(lib, machine, dtype=np.float64)
            eff = drv.cost_gemm(64, 64, 64).efficiency(machine, np.float64)
            assert 0.0 < eff <= 1.0

    def test_driver_rejects_wrong_dtype_operands(self, machine):
        from repro.util.errors import DriverError

        rng = make_rng(67)
        drv = make_driver("openblas", machine, dtype=np.float64)
        a32 = random_matrix(rng, 8, 8, dtype=np.float32)
        with pytest.raises(DriverError):
            drv.gemm(a32, a32)
