"""Unit tests for steady-state kernel analysis."""

import numpy as np
import pytest

from repro.kernels import KernelSpec, MicroKernelGenerator
from repro.pipeline import SteadyStateAnalyzer, bound_analysis
from repro.util.errors import ScheduleError


@pytest.fixture(scope="module")
def gen():
    return MicroKernelGenerator()


@pytest.fixture()
def analyzer(machine):
    return SteadyStateAnalyzer(machine.core)


class TestAnalyzerBasics:
    def test_rejects_tiny_measurement_windows(self, machine):
        with pytest.raises(ScheduleError):
            SteadyStateAnalyzer(machine.core, warmup_iters=0)
        with pytest.raises(ScheduleError):
            SteadyStateAnalyzer(machine.core, measure_iters=2)

    def test_memoizes_by_kernel_identity(self, analyzer, gen):
        k = gen.generate(KernelSpec(8, 4, label="memo"))
        s1 = analyzer.analyze(k)
        s2 = analyzer.analyze(k)
        assert s1 is s2

    def test_distinct_penalties_not_conflated(self, analyzer, gen):
        k = gen.generate(KernelSpec(8, 4, label="pen"))
        s0 = analyzer.analyze(k, 0.0)
        s5 = analyzer.analyze(k, 5.0)
        assert s5.cycles_per_iter >= s0.cycles_per_iter


class TestSteadyStateValues:
    def test_16x4_hits_port_bound(self, analyzer, gen, machine):
        # 16 accumulator chains >= fma latency -> 1 fma/cycle steady state
        k = gen.generate(KernelSpec(16, 4, unroll=8, label="ob"))
        state = analyzer.analyze(k)
        assert state.cycles_per_iter == pytest.approx(8 * 16, rel=0.02)
        assert state.efficiency(machine.core, np.float32) == pytest.approx(
            1.0, rel=0.02
        )

    def test_narrow_tile_is_chain_bound(self, analyzer, gen, machine):
        # 1x4 scalar edge kernel: too few chains to cover the FMA latency
        k = gen.generate(KernelSpec(1, 4, unroll=4, style="naive",
                                    label="edge"))
        state = analyzer.analyze(k)
        assert state.efficiency(machine.core, np.float32) < 0.35

    def test_padded_narrow_tile_wastes_lanes(self, analyzer, gen, machine):
        # 1x4 padded to a full vector: raw throughput is decent but only a
        # quarter of the lanes carry useful data
        k = gen.generate(KernelSpec(1, 4, unroll=4, pad_rows=True,
                                    label="edge-pad"))
        state = analyzer.analyze(k)
        raw = state.efficiency(machine.core, np.float32)
        useful = raw * (1 / 4)
        assert raw > 0.5
        assert useful < 0.25

    def test_uncontracted_kernel_is_half_speed(self, analyzer, gen, machine):
        fused = gen.generate(KernelSpec(12, 4, unroll=1, style="compiled",
                                        contraction=True, label="e1"))
        split = gen.generate(KernelSpec(12, 4, unroll=1, style="compiled",
                                        contraction=False, label="e2"))
        e_fused = analyzer.analyze(fused).efficiency(machine.core, np.float32)
        e_split = analyzer.analyze(split).efficiency(machine.core, np.float32)
        assert e_split == pytest.approx(e_fused / 2, rel=0.05)

    def test_load_penalty_degrades_throughput_eventually(
        self, analyzer, gen, machine
    ):
        k = gen.generate(KernelSpec(8, 4, unroll=1, label="pen2"))
        fast = analyzer.analyze(k, 0.0)
        slow = analyzer.analyze(k, 40.0)
        assert slow.cycles_per_iter > fast.cycles_per_iter


class TestKernelCallCycles:
    def test_composition(self, analyzer, gen):
        k = gen.generate(KernelSpec(8, 4, unroll=4, label="call"))
        state = analyzer.analyze(k)
        cycles = state.kernel_call_cycles(kc=16)
        expected = state.startup_cycles + 4 * state.cycles_per_iter \
            + state.epilogue_cycles
        assert cycles == pytest.approx(expected)

    def test_remainder_charged_a_full_body(self, analyzer, gen):
        k = gen.generate(KernelSpec(8, 4, unroll=4, label="rem"))
        state = analyzer.analyze(k)
        assert state.kernel_call_cycles(17) == state.kernel_call_cycles(20)
        assert state.kernel_call_cycles(16) < state.kernel_call_cycles(17)

    def test_rejects_non_positive_kc(self, analyzer, gen):
        k = gen.generate(KernelSpec(8, 4, label="badkc"))
        state = analyzer.analyze(k)
        with pytest.raises(ScheduleError):
            state.kernel_call_cycles(0)

    def test_flops_per_cycle_positive(self, analyzer, gen):
        k = gen.generate(KernelSpec(8, 8, label="fpc"))
        assert analyzer.analyze(k).flops_per_cycle > 0


class TestBoundAnalysis:
    def test_measured_at_least_max_bound(self, analyzer, gen, machine):
        for spec in (
            KernelSpec(16, 4, unroll=8, label="b1"),
            KernelSpec(8, 12, unroll=4, label="b2"),
            KernelSpec(2, 4, unroll=4, style="naive", label="b3"),
        ):
            k = gen.generate(spec)
            state = analyzer.analyze(k)
            bounds = bound_analysis(k, machine.core)
            assert state.cycles_per_iter >= max(bounds.values()) - 1e-6

    def test_bound_keys(self, gen, machine):
        k = gen.generate(KernelSpec(8, 4, label="b4"))
        bounds = bound_analysis(k, machine.core)
        assert "port:fma" in bounds
        assert "dispatch" in bounds
        assert "fma-chains" in bounds

    def test_chain_bound_dominates_for_narrow_tiles(self, gen, machine):
        k = gen.generate(KernelSpec(1, 4, unroll=4, pad_rows=True, label="b5"))
        bounds = bound_analysis(k, machine.core)
        assert bounds["fma-chains"] >= bounds["port:fma"]
