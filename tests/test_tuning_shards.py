"""Sharded tuning cache: placement, LRU bounds, locking, interop."""

import dataclasses
import threading

import pytest

from repro.machine import graviton2_like
from repro.tuning import (
    AdaptiveTuner,
    ShardedTuningCache,
    TuningCache,
    machine_fingerprint,
    plan_key,
    shard_index,
)


@pytest.fixture(scope="module")
def small_machine():
    return graviton2_like()


@pytest.fixture(scope="module")
def base_plan(small_machine):
    """One cheap heuristic plan to clone entries from."""
    tuner = AdaptiveTuner(
        small_machine, cache=TuningCache(small_machine, path="")
    )
    return tuner.heuristic_plan(24, 24, 24)


def plan_for(base_plan, m, n, k, threads=1, cycles=None):
    """A structurally valid plan re-keyed to another bucket."""
    key = plan_key(m, n, k, base_plan.key.dtype, threads)
    fields = {"key": key}
    if cycles is not None:
        fields["total_cycles"] = float(cycles)
    return dataclasses.replace(base_plan, **fields)


class TestPlacement:
    def test_shard_index_is_crc_stable(self):
        # crc32-based placement: identical across processes and runs,
        # immune to PYTHONHASHSEED
        token = "24x24x24:float32:t1"
        first = shard_index(token, 8)
        assert 0 <= first < 8
        assert all(shard_index(token, 8) == first for _ in range(10))

    def test_shard_index_covers_all_shards(self):
        tokens = [
            plan_key(m, m, m, "float32").token for m in range(1, 65)
        ]
        hit = {shard_index(t, 4) for t in tokens}
        assert hit == {0, 1, 2, 3}

    def test_fingerprint_bit_stable_across_shard_counts(self, small_machine):
        prints = {
            ShardedTuningCache(small_machine, path="", shards=s).fingerprint
            for s in (1, 4, 16)
        }
        prints.add(TuningCache(small_machine, path="").fingerprint)
        prints.add(machine_fingerprint(small_machine))
        assert len(prints) == 1


class TestShardedCache:
    def test_get_put_round_trip(self, small_machine, base_plan):
        cache = ShardedTuningCache(small_machine, path="", shards=4)
        plan = plan_for(base_plan, 24, 24, 24)
        cache.put(plan)
        hit = cache.get(24, 24, 24)
        assert hit is plan
        assert cache.get(999, 999, 999) is None
        stats = cache.stats
        assert stats.hits == 1 and stats.misses == 1

    def test_peek_does_not_touch_stats_or_lru(self, small_machine, base_plan):
        cache = ShardedTuningCache(small_machine, path="", shards=2)
        plan = plan_for(base_plan, 8, 8, 8)
        cache.put(plan)
        assert cache.peek(plan.key.token) is plan
        assert cache.stats.requests == 0

    def test_global_capacity_bound(self, small_machine, base_plan):
        # capacity 8 is a *global* bound: 40 inserts over 4 shards leave
        # exactly 8 resident entries, never 8-per-shard
        cache = ShardedTuningCache(
            small_machine, path="", capacity=8, shards=4
        )
        for m in range(1, 41):
            cache.put(plan_for(base_plan, m, m, m))
        occupancy = cache.per_shard_occupancy()
        assert len(occupancy) == 4
        assert sum(shard["entries"] for shard in occupancy) == 8
        assert len(cache) == 8

    def test_skewed_shards_use_full_capacity(self, small_machine, base_plan):
        # the pre-1.7 per-shard split evicted a hot shard at
        # ceil(8/4) = 2 entries; under the global bound every entry of a
        # skewed workload stays resident until *total* occupancy hits 8
        cache = ShardedTuningCache(
            small_machine, path="", capacity=8, shards=4
        )
        plans = [plan_for(base_plan, m, m, m) for m in range(1, 33)]
        target = cache.shard_of(plans[0].key.token)
        hot = [p for p in plans
               if cache.shard_of(p.key.token) == target][:6]
        assert len(hot) > 2  # enough skew to overflow a per-shard slice
        for plan in hot:
            cache.put(plan)
        assert len(cache) == len(hot)
        for plan in hot:
            assert cache.peek(plan.key.token) is plan

    def test_replacement_does_not_count_against_capacity(
        self, small_machine, base_plan
    ):
        cache = ShardedTuningCache(
            small_machine, path="", capacity=4, shards=2
        )
        for _ in range(5):
            cache.put(plan_for(base_plan, 7, 7, 7))
        assert len(cache) == 1

    def test_clear_resets_the_capacity_counter(
        self, small_machine, base_plan
    ):
        cache = ShardedTuningCache(
            small_machine, path="", capacity=4, shards=2
        )
        for m in range(1, 5):
            cache.put(plan_for(base_plan, m, m, m))
        cache.clear()
        assert len(cache) == 0
        for m in range(5, 9):
            cache.put(plan_for(base_plan, m, m, m))
        assert len(cache) == 4

    def test_lru_evicts_oldest_within_shard(self, small_machine, base_plan):
        cache = ShardedTuningCache(
            small_machine, path="", capacity=2, shards=1
        )
        cache.put(plan_for(base_plan, 1, 1, 1))
        cache.put(plan_for(base_plan, 2, 2, 2))
        assert cache.get(1, 1, 1) is not None  # bump to MRU
        cache.put(plan_for(base_plan, 3, 3, 3))
        assert cache.get(2, 2, 2) is None  # LRU victim
        assert cache.get(1, 1, 1) is not None
        assert cache.get(3, 3, 3) is not None

    def test_save_load_interop_with_single_shard_cache(
        self, small_machine, base_plan, tmp_path
    ):
        path = str(tmp_path / "cache.json")
        sharded = ShardedTuningCache(small_machine, path=path, shards=8)
        for m in (3, 9, 27, 81):
            sharded.put(plan_for(base_plan, m, m, m))
        sharded.save()

        flat = TuningCache(small_machine, path=path)
        assert flat.load() == 4
        assert flat.get(27, 27, 27).key == plan_key(27, 27, 27, "float32")

        # and back: a flat save loads into any shard count
        flat.save()
        for shards in (1, 3, 16):
            again = ShardedTuningCache(
                small_machine, path=path, shards=shards
            )
            assert again.load() == 4
            assert again.get(81, 81, 81) is not None

    def test_export_json_matches_flat_format(
        self, small_machine, base_plan, tmp_path
    ):
        path = str(tmp_path / "cache.json")
        sharded = ShardedTuningCache(small_machine, path=path, shards=4)
        for m in (5, 17, 33):
            sharded.put(plan_for(base_plan, m, m, m))
        sharded.save()
        # both kinds of cache, loaded from the same file, export the
        # same bytes — shard count is a purely in-memory property
        flat = TuningCache(small_machine, path=path)
        reloaded = ShardedTuningCache(small_machine, path=path, shards=16)
        assert flat.export_json() == reloaded.export_json()


class TestConcurrency:
    def test_concurrent_get_put_thread_safety(self, small_machine, base_plan):
        cache = ShardedTuningCache(
            small_machine, path="", capacity=4096, shards=8
        )
        errors = []
        barrier = threading.Barrier(8)

        def worker(offset):
            try:
                barrier.wait(timeout=10)
                for i in range(200):
                    m = 1 + (offset * 200 + i) % 64
                    cache.put(plan_for(base_plan, m, m, m))
                    cache.get(m, m, m)
            except Exception as exc:  # noqa: BLE001 — recorded for assert
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        # every bucket written by some thread is retrievable
        for m in range(1, 65):
            assert cache.get(m, m, m) is not None

    def test_no_global_lock(self, small_machine, base_plan):
        """Holding one shard's lock never blocks another shard's reads."""
        cache = ShardedTuningCache(small_machine, path="", shards=4)
        cache.load()
        plans = [plan_for(base_plan, m, m, m) for m in range(1, 9)]
        for plan in plans:
            cache.put(plan)
        # pick two plans living in different shards
        a = plans[0]
        b = next(
            p for p in plans
            if cache.shard_of(p.key.token) != cache.shard_of(a.key.token)
        )
        got = []
        locked_shard = cache._shards[cache.shard_of(a.key.token)]
        with locked_shard.lock:
            reader = threading.Thread(
                target=lambda: got.append(
                    cache.get(b.key.m, b.key.n, b.key.k)
                )
            )
            reader.start()
            reader.join(timeout=5)
            assert not reader.is_alive(), "cross-shard read blocked"
        assert got == [b]
