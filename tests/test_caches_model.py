"""Unit tests for the analytic GEBP cache model."""

import pytest

from repro.caches import GebpCacheModel, PhaseCacheCosts, lines_of
from repro.util.errors import ConfigError


@pytest.fixture()
def model(machine):
    return GebpCacheModel(machine)


@pytest.fixture()
def mt_model(machine):
    return GebpCacheModel(
        machine, active_l2_sharers=4, numa_remote_fraction=0.5,
        bandwidth_share=1.0,
    )


class TestConstruction:
    def test_rejects_bad_sharers(self, machine):
        with pytest.raises(ConfigError):
            GebpCacheModel(machine, active_l2_sharers=0)
        with pytest.raises(ConfigError):
            GebpCacheModel(machine, active_l2_sharers=5)

    def test_rejects_bad_remote_fraction(self, machine):
        with pytest.raises(ConfigError):
            GebpCacheModel(machine, numa_remote_fraction=1.5)

    def test_rejects_negative_bandwidth(self, machine):
        with pytest.raises(ConfigError):
            GebpCacheModel(machine, bandwidth_share=-1)

    def test_default_bandwidth_is_panel_channel(self, machine, model):
        assert model.bandwidth_share == machine.numa.dram_bytes_per_cycle

    def test_effective_l2_shrinks_with_sharers(self, machine, model, mt_model):
        assert mt_model.effective_l2_bytes == model.effective_l2_bytes / 4

    def test_lines_of(self):
        assert lines_of(128, 64) == 2.0
        with pytest.raises(ConfigError):
            lines_of(-1, 64)


class TestKernelPhase:
    def test_l1_resident_smm_has_no_stall(self, model):
        phase = model.kernel_phase(16, 16, 16, 16, 4, 4,
                                   a_resident="l1", b_resident="l1")
        assert phase.stall_cycles == 0.0
        assert phase.l1_miss_lines == 0.0

    def test_l2_resident_smm_pays_compulsory_fills(self, model):
        phase = model.kernel_phase(16, 16, 16, 16, 4, 4,
                                   a_resident="l2", b_resident="l2")
        assert phase.l1_miss_lines > 0
        assert phase.l2_miss_lines == 0.0

    def test_mem_resident_adds_dram_lines(self, model):
        warm = model.kernel_phase(128, 128, 128, 16, 4, 4)
        cold = model.kernel_phase(128, 128, 128, 16, 4, 4,
                                  a_resident="mem", b_resident="mem")
        assert cold.l2_miss_lines > warm.l2_miss_lines
        assert cold.dram_bytes > 0

    def test_b_sharing_amortizes_dram(self, model):
        solo = model.kernel_phase(64, 512, 256, 16, 4, 4,
                                  b_resident="mem")
        shared = model.kernel_phase(64, 512, 256, 16, 4, 4,
                                    b_resident="mem", b_shared_by=4)
        assert shared.l2_miss_lines == pytest.approx(solo.l2_miss_lines / 4)

    def test_bad_residency_rejected(self, model):
        with pytest.raises(ConfigError):
            model.kernel_phase(8, 8, 8, 8, 4, 4, a_resident="l3")

    def test_bad_sharing_rejected(self, model):
        with pytest.raises(ConfigError):
            model.kernel_phase(8, 8, 8, 8, 4, 4, b_shared_by=0)

    def test_random_l2_inflation_under_contention(self, machine):
        solo = GebpCacheModel(machine, active_l2_sharers=1)
        packed = GebpCacheModel(machine, active_l2_sharers=4)
        p1 = solo.kernel_phase(128, 512, 256, 16, 4, 4, b_resident="mem")
        p4 = packed.kernel_phase(128, 512, 256, 16, 4, 4, b_resident="mem")
        assert p4.l2_miss_lines > p1.l2_miss_lines

    def test_numa_raises_dram_penalty(self, machine):
        local = GebpCacheModel(machine, numa_remote_fraction=0.0)
        remote = GebpCacheModel(machine, numa_remote_fraction=1.0)
        assert remote.dram_fill_penalty > local.dram_fill_penalty

    def test_large_a_restreams_per_column_tile(self, model):
        # an A block larger than L1 is streamed once per column tile
        small = model.kernel_phase(32, 128, 64, 16, 4, 4)
        large = model.kernel_phase(256, 128, 256, 16, 4, 4)
        assert large.l1_miss_lines > small.l1_miss_lines * 4


class TestDramFloor:
    def test_zero_traffic_zero_floor(self, model):
        phase = model.kernel_phase(16, 16, 16, 16, 4, 4,
                                   a_resident="l1", b_resident="l1")
        assert model.dram_floor_cycles(phase) == 0.0

    def test_floor_scales_with_bandwidth_share(self, machine):
        full = GebpCacheModel(machine, bandwidth_share=8.0)
        slim = GebpCacheModel(machine, bandwidth_share=1.0)
        phase = full.kernel_phase(64, 2048, 256, 16, 4, 4, b_resident="mem")
        assert slim.dram_floor_cycles(phase) == pytest.approx(
            8.0 * full.dram_floor_cycles(phase)
        )


class TestPackingPhase:
    def test_strided_pack_stalls_more(self, model):
        seq = model.packing_phase(100, 100, 4, source_contiguous=True,
                                  source_resident="l2")
        strided = model.packing_phase(100, 100, 4, source_contiguous=False,
                                      source_resident="l2")
        assert strided.stall_cycles > seq.stall_cycles

    def test_mem_source_adds_dram(self, model):
        warm = model.packing_phase(100, 100, 4, True, source_resident="l2")
        cold = model.packing_phase(100, 100, 4, True, source_resident="mem")
        assert cold.l2_miss_lines > warm.l2_miss_lines

    def test_bad_residency_rejected(self, model):
        with pytest.raises(ConfigError):
            model.packing_phase(10, 10, 4, True, source_resident="x")


class TestPhaseMerging:
    def test_merged_with_accumulates(self):
        a = PhaseCacheCosts(loads=10, l1_miss_lines=1.0, l2_miss_lines=0.5,
                            extra_load_cycles=0.1, stall_cycles=1.0,
                            dram_bytes=32.0)
        b = PhaseCacheCosts(loads=30, l1_miss_lines=2.0, l2_miss_lines=0.0,
                            extra_load_cycles=0.2, stall_cycles=6.0,
                            dram_bytes=0.0)
        merged = a.merged_with(b)
        assert merged.loads == 40
        assert merged.stall_cycles == 7.0
        assert merged.extra_load_cycles == pytest.approx(7.0 / 40)
        assert merged.dram_bytes == 32.0
