"""Property tests: everything the repo can emit verifies clean.

Satellites: the FP-factory accumulator-read audit, the catalog-wide
zero-error property, and the deliberately-broken negative controls.
"""

import pytest

from repro.isa import KernelSequence, fadd, fmadd_scalar, fmla, fmul
from repro.kernels import (
    JitKernelFactory,
    KernelSpec,
    MicroKernelGenerator,
    all_catalogs,
)
from repro.util import KernelVerificationError
from repro.verify import (
    RULES,
    audit_catalog,
    audit_catalogs,
    catalog_specs,
    self_check,
    verify_kernel,
)


class TestFpFactoryReads:
    """Accumulator-updating ops must read what they write (satellite)."""

    def test_fmla_reads_accumulator(self):
        ins = fmla("v0", "v1", "v2")
        assert "v0" in ins.reads and ins.writes == ("v0",)

    def test_fmadd_scalar_reads_accumulator(self):
        ins = fmadd_scalar("v0", "v1", "v2")
        assert "v0" in ins.reads and ins.writes == ("v0",)

    def test_fmul_fadd_read_both_operands(self):
        assert set(fmul("v0", "v1", "v2").reads) == {"v1", "v2"}
        assert set(fadd("v0", "v1", "v2").reads) == {"v1", "v2"}

    def test_emitted_fma_ops_read_their_destination(self, machine):
        # audit over real kernels: every fma-class body instruction that
        # updates an accumulator carries the RAW edge the scheduler needs
        generator = MicroKernelGenerator(verify=False)
        for catalog in all_catalogs().values():
            for spec in catalog_specs(catalog):
                kernel = generator.generate(spec)
                for ins in kernel.body:
                    if "fma" in ins.tags:
                        for reg in ins.writes:
                            assert reg in ins.reads, (
                                f"{kernel.name}: {ins.text} writes {reg} "
                                "without reading it"
                            )


class TestCatalogProperty:
    """Every catalog kernel (edges included) verifies with zero errors."""

    def test_all_catalogs_verify_clean(self, machine):
        audits = audit_catalogs(machine.core)
        assert set(audits) == {"openblas", "blis", "blasfeo", "eigen"}
        for library, reports in audits.items():
            assert reports, library
            for name, report in reports.items():
                assert report.ok, f"{library}/{name}: {report.render()}"
                assert not report.warnings, f"{library}/{name}"
                assert 0 < report.live_high_water <= 32

    def test_generated_grid_verifies_clean(self, machine):
        generator = MicroKernelGenerator(verify=False)
        for style in ("pipelined", "naive", "compiled"):
            for mr, nr, unroll in ((8, 4, 4), (16, 4, 8), (4, 4, 2),
                                   (5, 3, 2), (3, 4, 1)):
                spec = KernelSpec(mr, nr, unroll=unroll, style=style,
                                  label="prop")
                report = verify_kernel(generator.generate(spec),
                                       machine.core)
                assert report.ok, report.render()

    def test_jit_kernels_verify_clean(self, machine):
        jit = JitKernelFactory(machine.core)
        for spec in (jit.main_spec, jit.spec_for(13, 4),
                     jit.strided_main_spec()):
            report = verify_kernel(jit.generator.generate(spec),
                                   machine.core)
            assert report.ok, report.render()

    def test_catalog_audit_method_delegates(self, machine):
        catalog = all_catalogs()["openblas"]
        reports = catalog.audit(machine.core)
        assert reports == audit_catalog(catalog, machine.core)
        assert catalog.main.name in reports


class TestNegativeControls:
    def test_clobbered_kernel_fails(self, machine):
        # strip the prologue of a real kernel: accumulators arrive undefined
        generator = MicroKernelGenerator(verify=False)
        good = generator.generate(all_catalogs()["openblas"].main)
        bad = KernelSequence(
            name=good.name + "-broken", prologue=(), body=good.body,
            epilogue=good.epilogue, meta=dict(good.meta),
        )
        report = verify_kernel(bad, machine.core)
        assert not report.ok
        assert any(d.rule == "V001-uninit-read" for d in report.errors)

    def test_generator_gate_rejects_nothing_it_emits(self, machine):
        # verify=True is the default: generation itself is the assertion
        generator = MicroKernelGenerator()
        for spec in catalog_specs(all_catalogs()["blis"]):
            generator.generate(spec)

    def test_jit_verify_flag_opt_out(self, machine):
        # both settings must emit identical kernels; the flag only gates
        # the assert_kernel_ok call
        on = JitKernelFactory(machine.core, verify=True).kernel_for(8, 4)
        off = JitKernelFactory(machine.core, verify=False).kernel_for(8, 4)
        assert on.name == off.name
        assert on.body == off.body

    def test_self_check_covers_every_rule(self, machine):
        results = self_check(machine.core)
        assert {rule for rule, _ in results} == set(RULES)
        assert all(fired for _, fired in results), results
