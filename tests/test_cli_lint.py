"""Tests for the ``repro lint`` CLI command (kernel and plan modes)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_lint_defaults(self):
        args = build_parser().parse_args(["lint"])
        assert not args.self_check and not args.inject_bad
        assert not args.plans and not args.json
        assert args.shape == [] and args.lib is None and args.threads is None

    def test_lint_flags(self):
        args = build_parser().parse_args(["lint", "--self-check"])
        assert args.self_check
        args = build_parser().parse_args(["lint", "--inject-bad"])
        assert args.inject_bad

    def test_lint_plan_flags(self):
        args = build_parser().parse_args(
            ["lint", "--plans", "24", "16", "8",
             "--lib", "blis", "--threads", "4", "--json"])
        assert args.plans and args.json
        assert args.shape == [24, 16, 8]
        assert args.lib == "blis" and args.threads == 4

    def test_lint_rejects_unknown_lib(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["lint", "--plans", "--lib", "mkl"])

    def test_lint_list_rules_flag(self):
        args = build_parser().parse_args(["lint", "--list-rules"])
        assert args.list_rules


class TestLintCommand:
    def test_clean_catalog_exits_zero(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "OK:" in out and "0 errors" in out
        # covers all four libraries plus the grid and the JIT
        for origin in ("openblas", "blis", "blasfeo", "eigen",
                       "grid", "jit"):
            assert origin in out
        # static and scheduled cycles are shown side by side
        assert "static lb" in out and "scheduled" in out

    def test_inject_bad_exits_nonzero(self, capsys):
        assert main(["lint", "--inject-bad"]) != 0
        out = capsys.readouterr().out
        assert "V001-uninit-read" in out
        assert "FAIL:" in out

    def test_self_check_exits_zero(self, capsys):
        assert main(["lint", "--self-check"]) == 0
        out = capsys.readouterr().out
        assert "fired" in out and "MISSED" not in out
        for rule in ("V001-uninit-read", "V101-reg-budget",
                     "V201-latency-bound"):
            assert rule in out

    def test_kernel_json_payload(self, capsys):
        assert main(["lint", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["mode"] == "kernels" and payload["ok"]
        assert payload["kernels"] == len(payload["cases"])
        assert payload["bound_violations"] == []
        assert isinstance(payload["rule_catalog_version"], int)


class TestListRulesCommand:
    def test_lists_every_family(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("V001-uninit-read", "V101-reg-budget",
                     "V201-latency-bound", "V301-write-overlap",
                     "V401-oob-access", "V411-strip-race",
                     "V421-topology-mismatch"):
            assert rule in out
        assert "catalog version" in out

    def test_json_payload_matches_catalog(self, capsys):
        from repro.verify import RULE_CATALOG_VERSION, full_rule_catalog

        assert main(["lint", "--list-rules", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["mode"] == "rules"
        assert payload["rule_catalog_version"] == RULE_CATALOG_VERSION
        listed = {r["rule"] for r in payload["rules"]}
        assert listed == set(full_rule_catalog())
        for r in payload["rules"]:
            assert r["severity"] in ("error", "warning", "info")
            assert r["summary"]


class TestPlanLintCommand:
    def test_single_shape_all_drivers_clean(self, capsys):
        assert main(["lint", "--plans", "24", "16", "8"]) == 0
        out = capsys.readouterr().out
        assert "OK: 6 plans priced in" in out
        assert "0 finding(s)" in out
        for lib in ("openblas", "blis", "eigen", "blasfeo",
                    "reference", "reference-fused"):
            assert lib in out

    def test_narrowed_case_clean(self, capsys):
        assert main(["lint", "--plans", "80", "2048", "2048",
                     "--lib", "blis", "--threads", "64"]) == 0
        out = capsys.readouterr().out
        assert "OK: 1 plans priced in" in out
        assert "0 finding(s)" in out

    def test_bad_shape_arity_exits_two(self, capsys):
        assert main(["lint", "--plans", "24", "16"]) == 2
        assert "M N K" in capsys.readouterr().out

    def test_inject_bad_exits_nonzero(self, capsys):
        assert main(["lint", "--plans", "24", "16", "8",
                     "--inject-bad"]) != 0
        out = capsys.readouterr().out
        assert "V321-missing-pack" in out and "FAIL:" in out

    def test_self_check_all_plan_rules_fire(self, capsys):
        assert main(["lint", "--plans", "--self-check"]) == 0
        out = capsys.readouterr().out
        assert "MISSED" not in out
        for rule in ("V301-write-overlap", "V311-l1-residency",
                     "V321-missing-pack", "V331-flop-coverage",
                     "V332-batch-partition", "V401-oob-access",
                     "V402-pack-overrun", "V411-strip-race",
                     "V412-unordered-read", "V413-grid-race",
                     "V421-topology-mismatch"):
            assert rule in out

    def test_plan_json_payload(self, capsys):
        assert main(["lint", "--plans", "5", "3", "2",
                     "--lib", "reference", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["mode"] == "plans" and payload["ok"]
        assert payload["plans"] == 1
        assert isinstance(payload["rule_catalog_version"], int)
        assert set(payload["memo"]) >= {"hits", "misses", "size"}
        case = payload["cases"][0]
        assert case["driver"] == "reference"
        assert case["shape"] == [5, 3, 2]
        assert case["diagnostics"] == [] and case["ok"]

    def test_plan_json_reports_sweep_time_and_batch_caches(self, capsys):
        assert main(["lint", "--plans", "5", "3", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload["sweep_seconds"], float)
        assert payload["sweep_seconds"] > 0.0
        batch = payload["batch"]
        for section in ("tapes", "interning", "primitives", "steady_store"):
            assert section in batch
        assert set(batch["tapes"]) >= {"hits", "misses", "size", "maxsize"}
        assert batch["interning"]["requests"] >= batch["interning"]["unique"]

    def test_plan_text_reports_memo_and_batch(self, capsys):
        assert main(["lint", "--plans", "24", "16", "8"]) == 0
        out = capsys.readouterr().out
        assert "verification memo:" in out
        assert "batch pricing:" in out
        assert "hit rate" in out

    def test_self_check_json_payload(self, capsys):
        assert main(["lint", "--plans", "--self-check", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"]
        assert {r["rule"] for r in payload["results"]} >= {
            "V301-write-overlap", "V321-missing-pack",
        }
        assert all(r["fired"] for r in payload["results"])
