"""Tests for the ``repro lint`` CLI command."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_lint_defaults(self):
        args = build_parser().parse_args(["lint"])
        assert not args.self_check and not args.inject_bad

    def test_lint_flags(self):
        args = build_parser().parse_args(["lint", "--self-check"])
        assert args.self_check
        args = build_parser().parse_args(["lint", "--inject-bad"])
        assert args.inject_bad


class TestLintCommand:
    def test_clean_catalog_exits_zero(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "OK:" in out and "0 errors" in out
        # covers all four libraries plus the grid and the JIT
        for origin in ("openblas", "blis", "blasfeo", "eigen",
                       "grid", "jit"):
            assert origin in out
        # static and scheduled cycles are shown side by side
        assert "static lb" in out and "scheduled" in out

    def test_inject_bad_exits_nonzero(self, capsys):
        assert main(["lint", "--inject-bad"]) != 0
        out = capsys.readouterr().out
        assert "V001-uninit-read" in out
        assert "FAIL:" in out

    def test_self_check_exits_zero(self, capsys):
        assert main(["lint", "--self-check"]) == 0
        out = capsys.readouterr().out
        assert "fired" in out and "MISSED" not in out
        for rule in ("V001-uninit-read", "V101-reg-budget",
                     "V201-latency-bound"):
            assert rule in out
