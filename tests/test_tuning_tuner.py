"""Adaptive-tuner behavior: optimality, the never-slower guarantee,
verification gating, and tuned execution."""

import numpy as np
import pytest

from repro.tuning import AdaptiveTuner, TuningCache, plan_key, tuned_sweep
from repro.util import make_rng

#: the small grid the acceptance criteria quantify over
GRID = [(4, 4, 4), (8, 8, 8), (12, 24, 16), (24, 24, 24),
        (40, 8, 100), (64, 64, 64)]


@pytest.fixture(scope="module")
def tuner(machine):
    """Disk-less tuner shared across the module (search memos are hot)."""
    return AdaptiveTuner(machine, cache=TuningCache(machine, path=""))


def exhaustive_best_cycles(tuner, m, n, k, threads=1):
    """Brute-force the tuner's own candidate space; the modeled optimum."""
    key = plan_key(m, n, k, tuner.dtype, threads)
    driver = tuner.driver(threads)
    best = tuner.heuristic_plan(m, n, k, threads).total_cycles
    for spec, packed_b, fact in tuner._plan_space(key.m, key.n, key.k,
                                                  threads):
        if not tuner._kernel_verified(spec):
            continue
        timing, _ = driver.cost_with(key.m, key.n, key.k, main=spec,
                                     packed_b=packed_b, factorization=fact)
        best = min(best, timing.total_cycles)
    return best


class TestSearchOptimality:
    @pytest.mark.parametrize("shape", GRID)
    def test_matches_exhaustive_search(self, tuner, shape):
        m, n, k = shape
        plan = tuner.search(m, n, k)
        assert plan.total_cycles == pytest.approx(
            exhaustive_best_cycles(tuner, m, n, k)
        )

    def test_matches_exhaustive_search_multithreaded(self, tuner):
        plan = tuner.search(64, 64, 64, threads=4)
        assert plan.total_cycles == pytest.approx(
            exhaustive_best_cycles(tuner, 64, 64, 64, threads=4)
        )


class TestNeverSlower:
    @pytest.mark.parametrize("shape", GRID)
    def test_tuned_plan_at_most_heuristic_cycles(self, tuner, shape):
        m, n, k = shape
        plan = tuner.search(m, n, k)
        heuristic = tuner.heuristic_plan(m, n, k)
        assert plan.total_cycles <= heuristic.total_cycles
        assert plan.speedup_vs_heuristic >= 1.0

    def test_never_slower_multithreaded(self, tuner):
        for threads in (2, 4, 16):
            plan = tuner.search(48, 2048, 48, threads=threads)
            heuristic = tuner.heuristic_plan(48, 2048, 48, threads=threads)
            assert plan.total_cycles <= heuristic.total_cycles

    def test_heuristic_fallback_keeps_guarantee(self, tuner, monkeypatch):
        # with every candidate rejected by the verifier the tuner must
        # return the heuristic plan rather than nothing
        monkeypatch.setattr(tuner, "_kernel_verified", lambda spec: False)
        plan = tuner.search(8, 8, 8)
        assert plan.source == "heuristic"
        assert plan.total_cycles == pytest.approx(plan.heuristic_cycles)


class TestVerificationGate:
    def test_selected_kernel_passes_static_verifier(self, tuner):
        from repro.verify import KernelVerifier

        plan = tuner.search(24, 24, 24)
        assert plan.verified
        kernel = tuner.driver(1).jit.generator.generate(plan.spec)
        assert KernelVerifier(tuner.machine.core).verify(kernel).ok


class TestPlanShape:
    def test_single_thread_has_no_factorization(self, tuner):
        assert tuner.search(8, 8, 8).factorization is None

    def test_multithreaded_factorization_covers_threads(self, tuner):
        plan = tuner.search(64, 64, 64, threads=8)
        assert plan.factorization is not None
        jc, ic, jr, ir = plan.factorization
        assert jc * ic * jr * ir == 8

    def test_keys_are_bucketed(self, tuner):
        plan = tuner.search(24, 100, 100)
        assert (plan.key.m, plan.key.n, plan.key.k) == (24, 112, 112)


class TestCachedTuning:
    def test_tune_hits_cache_second_time(self, machine):
        tuner = AdaptiveTuner(machine, cache=TuningCache(machine, path=""))
        first = tuner.tune(8, 8, 8)
        before = tuner.cache.stats.hits
        second = tuner.tune(8, 8, 8)
        assert tuner.cache.stats.hits == before + 1
        assert second.total_cycles == pytest.approx(first.total_cycles)

    def test_tune_many_reports_hits_and_speedups(self, machine):
        tuner = AdaptiveTuner(machine, cache=TuningCache(machine, path=""))
        shapes = [(4, 4, 4), (8, 8, 8)]
        report = tuner.tune_many(shapes)
        assert (report.requested, report.tuned, report.cache_hits) == (2, 2, 0)
        assert report.mean_speedup >= 1.0

        again = tuner.tune_many(shapes)
        assert again.cache_hits == 2
        assert again.hit_rate == pytest.approx(1.0)

    def test_tuned_sweep_covers_grid(self, tuner):
        rows = tuned_sweep(tuner, GRID)
        assert [shape for shape, _ in rows] == GRID
        assert all(plan.total_cycles > 0 for _, plan in rows)


class TestExecution:
    def test_execute_is_numerically_exact(self, tuner):
        rng = make_rng()
        a = rng.standard_normal((24, 16)).astype(np.float32)
        b = rng.standard_normal((16, 24)).astype(np.float32)
        result = tuner.execute(a, b)
        np.testing.assert_allclose(result.c, a.astype(np.float64)
                                   @ b.astype(np.float64),
                                   rtol=1e-4, atol=1e-5)

    def test_execute_attaches_plan_and_tuned_timing(self, tuner):
        rng = make_rng()
        a = rng.standard_normal((24, 24)).astype(np.float32)
        b = rng.standard_normal((24, 24)).astype(np.float32)
        result = tuner.execute(a, b)
        plan = result.info["tuned_plan"]
        assert plan.key == plan_key(24, 24, 24, tuner.dtype, 1)
        assert result.timing.total_cycles == pytest.approx(
            plan.total_cycles, rel=1e-6
        )
