"""Listing fidelity: the generated kernels read like the paper's assembly.

The paper's Figure 7 prints the OpenBLAS 8x4 micro-kernel; our generated
naive 8x4 must reproduce its idioms (paired scalar B loads, 128-bit A
loads, lane-indexed fmla into distinct accumulators) so that the schedule
analysis is about the *same code shape* the paper discusses.
"""

import re

import pytest

from repro.kernels import KernelSpec, MicroKernelGenerator


@pytest.fixture(scope="module")
def gen():
    return MicroKernelGenerator()


class TestFig7Idioms:
    @pytest.fixture(scope="class")
    def listing(self):
        gen = MicroKernelGenerator()
        kernel = gen.generate(
            KernelSpec(8, 4, unroll=1, style="naive", label="fig7")
        )
        return kernel.listing()

    def test_paired_scalar_b_loads(self, listing):
        # Fig. 7: "ldp s12, s13, [pB], #8"
        assert re.search(r"ldp s\d+, s\d+, \[x\d+\], #8", listing)

    def test_two_ldp_pairs_for_four_b_elements(self, listing):
        assert len(re.findall(r"ldp s", listing)) == 2

    def test_vector_a_loads(self, listing):
        # Fig. 7: "ldr q4, [pA], #16" — two per k-step in the loop body
        body = listing.partition(".loop:")[2].partition("subs")[0]
        assert len(re.findall(r"ldr q\d+, \[x\d+\], #16", body)) == 2

    def test_eight_lane_indexed_fmla(self, listing):
        # Fig. 7: eight "fmla v16.4s, v4.4s, v12.s[0]" style instructions
        fmlas = re.findall(r"fmla v\d+\.4s, v\d+\.4s, v\d+\.s\[0\]", listing)
        assert len(fmlas) == 8

    def test_distinct_accumulators(self, listing):
        accs = set(re.findall(r"fmla (v\d+)\.4s", listing))
        assert len(accs) == 8  # 8x4 fp32 = 8 vector accumulators

    def test_loop_control_present(self, listing):
        assert "subs" in listing
        assert "b.ne .loop" in listing


class TestListingStructure:
    def test_prologue_zeroes_accumulators(self, gen):
        k = gen.generate(KernelSpec(8, 4, unroll=1, label="pro"))
        listing = k.listing()
        head, _, _ = listing.partition(".loop:")
        assert head.count("movi") == 8

    def test_epilogue_updates_c(self, gen):
        k = gen.generate(KernelSpec(8, 4, unroll=1, label="epi2"))
        listing = k.listing()
        _, _, tail = listing.partition(".loop:")
        assert "str q" in tail

    def test_unroll_repeats_kstep(self, gen):
        k1 = gen.generate(KernelSpec(8, 4, unroll=1, style="naive",
                                     label="u1b"))
        k4 = gen.generate(KernelSpec(8, 4, unroll=4, style="naive",
                                     label="u4b"))
        assert k4.listing().count("fmla") == 4 * k1.listing().count("fmla")

    def test_compiled_style_has_address_arithmetic(self, gen):
        k = gen.generate(KernelSpec(12, 4, unroll=1, style="compiled",
                                    label="ca"))
        assert "add x" in k.listing()

    def test_uncontracted_listing_shows_mul_add_pairs(self, gen):
        k = gen.generate(KernelSpec(12, 4, unroll=1, style="compiled",
                                    contraction=False, label="nc2"))
        listing = k.listing()
        assert listing.count("fmul") == 12
        assert listing.count("fadd v") >= 12

    def test_icache_footprint_within_capacity(self, gen, machine):
        # even the most unrolled main kernels fit the 32 KB I-cache
        for spec in (
            KernelSpec(16, 4, unroll=8, label="ic1"),
            KernelSpec(8, 12, unroll=4, label="ic2"),
        ):
            k = gen.generate(spec)
            assert k.encoded_bytes(machine.core.instruction_bytes) \
                < machine.core.icache_bytes // 4
