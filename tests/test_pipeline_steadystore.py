"""Persistent steady-state store: round-trips, invalidation, atomicity."""

import json
import os

import pytest

from repro.kernels import KernelSpec, MicroKernelGenerator
from repro.pipeline import (
    SteadyStateAnalyzer,
    attach_steady_store,
    core_fingerprint,
    store_stats,
)
from repro.pipeline.steadystore import SteadyStateStore


@pytest.fixture(scope="module")
def gen():
    return MicroKernelGenerator()


@pytest.fixture()
def store_path(tmp_path):
    return str(tmp_path / "steady.json")


class TestRoundTrip:
    def test_states_round_trip_bit_exactly(self, machine, gen, store_path):
        analyzer = SteadyStateAnalyzer(machine.core)
        fingerprint = core_fingerprint(analyzer)
        kernel = gen.generate(KernelSpec(8, 4, label="rt"))
        state = analyzer.analyze(kernel)

        store = SteadyStateStore(path=store_path, fingerprint=fingerprint)
        store.put(kernel.name, 0.0, state)
        assert store.save()
        assert not store.save()  # clean store: no rewrite

        reloaded = SteadyStateStore(path=store_path, fingerprint=fingerprint)
        got = reloaded.get(kernel.name, 0.0)
        assert got is not None
        # bit-exact: json floats serialize via repr and repr round-trips
        assert got.cycles_per_iter == state.cycles_per_iter
        assert got.startup_cycles == state.startup_cycles
        assert got.epilogue_cycles == state.epilogue_cycles
        assert got.flops_per_iter == state.flops_per_iter
        assert got.unroll == state.unroll
        assert got.kernel_call_cycles(64) == state.kernel_call_cycles(64)

    def test_primitives_round_trip(self, store_path):
        store = SteadyStateStore(path=store_path, fingerprint="fp")
        key = ("jit_sweep_cost", "ctx-token", (8, 4, 2, True, None, None))
        store.put_primitive(key, (12345.678901234567, 8192.0))
        store.put_primitive(("fused_pack_extra", "ctx", (1, 2, 3)), 0.25)
        assert store.save()
        reloaded = SteadyStateStore(path=store_path, fingerprint="fp")
        assert reloaded.get_primitive(key) == (12345.678901234567, 8192.0)
        assert reloaded.get_primitive(
            ("fused_pack_extra", "ctx", (1, 2, 3))
        ) == 0.25
        assert reloaded.get_primitive(("missing", "", ())) is None
        info = reloaded.info()
        assert info["primitive_hits"] == 2
        assert info["primitive_misses"] == 1


class TestInvalidation:
    def test_fingerprint_mismatch_drops_everything(self, store_path):
        store = SteadyStateStore(path=store_path, fingerprint="old")
        store.put_primitive(("k", "t", ()), 1.0)
        assert store.save()
        other = SteadyStateStore(path=store_path, fingerprint="new")
        assert len(other) == 0
        assert other.get_primitive(("k", "t", ())) is None
        assert other.invalidations == 1
        # the invalidated store rewrites itself on save
        assert other.save()
        again = SteadyStateStore(path=store_path, fingerprint="new")
        assert again.invalidations == 0

    def test_core_fingerprint_covers_analyzer_params(self, machine):
        a = SteadyStateAnalyzer(machine.core)
        b = SteadyStateAnalyzer(machine.core, measure_iters=64)
        assert core_fingerprint(a) != core_fingerprint(b)

    def test_corrupt_file_is_ignored(self, store_path):
        with open(store_path, "w") as fh:
            fh.write("{ not json")
        store = SteadyStateStore(path=store_path, fingerprint="fp")
        assert len(store) == 0


class TestAttachment:
    def test_attach_uses_env_path_and_analyze_persists(
        self, machine, gen, store_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_STEADY_CACHE", store_path)
        analyzer = SteadyStateAnalyzer(machine.core)
        store = attach_steady_store(analyzer)
        assert store is not None and analyzer.store is store
        kernel = gen.generate(KernelSpec(4, 4, label="att"))
        state = analyzer.analyze(kernel)
        assert store.save()

        # a fresh analyzer in a "new process" reads the stored analysis
        cold = SteadyStateAnalyzer(machine.core)
        cold_store = attach_steady_store(cold, path=store_path)
        hits_before = cold_store.hits
        got = cold.analyze(kernel)
        assert cold_store.hits == hits_before + 1
        assert got.cycles_per_iter == state.cycles_per_iter

        stats = store_stats()
        assert stats["stores"] >= 1
        assert stats["entries"] >= 1

    def test_env_zero_disables(self, machine, monkeypatch):
        monkeypatch.setenv("REPRO_STEADY_CACHE", "0")
        analyzer = SteadyStateAnalyzer(machine.core)
        assert attach_steady_store(analyzer) is None
        assert analyzer.store is None

    def test_save_is_atomic_no_partial_files(self, store_path):
        store = SteadyStateStore(path=store_path, fingerprint="fp")
        store.put_primitive(("k", "t", ()), 2.0)
        assert store.save()
        directory = os.path.dirname(store_path)
        assert os.listdir(directory) == [os.path.basename(store_path)]
        # the written file is well-formed json with the fingerprint
        payload = json.loads(open(store_path).read())
        assert payload["fingerprint"] == "fp"
