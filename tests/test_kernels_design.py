"""Unit tests for the micro-kernel design-space models (Eq. 4, Eq. 5)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.kernels import (
    accumulator_chains,
    accumulator_registers,
    best_tile,
    compute_to_memory_ratio,
    enumerate_designs,
    evaluate_tile,
    registers_needed,
    satisfies_latency_constraint,
    satisfies_register_constraint,
    staging_registers,
)
from repro.util.errors import KernelDesignError


class TestRegisterAccounting:
    def test_paper_eq4_instance(self):
        # the paper's Eq. 4: mr*nr/4 <= 30 for 4-lane fp32 with 2 staging
        assert accumulator_registers(16, 4, 4) == 16
        assert accumulator_registers(8, 12, 4) == 24

    def test_partial_vector_rounds_up(self):
        assert accumulator_registers(3, 4, 4) == 4
        assert accumulator_registers(5, 2, 4) == 4

    def test_staging(self):
        assert staging_registers(16, 4, 4) == 5  # 4 A vectors + 1 B vector
        assert staging_registers(16, 4, 4, double_buffer=True) == 10

    def test_registers_needed_totals(self):
        assert registers_needed(16, 4, 4) == 21
        assert registers_needed(8, 12, 4) == 24 + 2 + 3

    def test_constraint_check(self):
        assert satisfies_register_constraint(16, 4, 4)
        assert satisfies_register_constraint(8, 12, 4)
        assert not satisfies_register_constraint(16, 8, 4)  # 32+6 > 32

    def test_rejects_bad_args(self):
        with pytest.raises(KernelDesignError):
            accumulator_registers(0, 4, 4)
        with pytest.raises(KernelDesignError):
            compute_to_memory_ratio(4, 0)


class TestCmr:
    def test_paper_eq5_values(self):
        assert compute_to_memory_ratio(16, 4) == pytest.approx(6.4)
        assert compute_to_memory_ratio(8, 12) == pytest.approx(9.6)
        assert compute_to_memory_ratio(4, 4) == pytest.approx(4.0)

    def test_symmetry(self):
        assert compute_to_memory_ratio(8, 12) == compute_to_memory_ratio(12, 8)

    @given(st.integers(1, 32), st.integers(1, 32))
    def test_monotone_in_each_dim(self, mr, nr):
        base = compute_to_memory_ratio(mr, nr)
        assert compute_to_memory_ratio(mr + 1, nr) > base
        assert compute_to_memory_ratio(mr, nr + 1) > base


class TestLatencyConstraint:
    def test_wide_tile_satisfies(self, machine):
        assert satisfies_latency_constraint(16, 4, 4, machine.core)
        assert accumulator_chains(16, 4, 4) == 16

    def test_narrow_tile_fails(self, machine):
        # 1x4: 4 chains < fma_ports * fma_latency = 5
        assert not satisfies_latency_constraint(1, 4, 4, machine.core)


class TestEnumerationAndBest:
    def test_evaluate_tile_fields(self, machine):
        d = evaluate_tile(8, 12, 4, machine.core)
        assert d.feasible
        assert d.cmr == pytest.approx(9.6)
        assert d.chains == 24

    def test_enumerate_covers_grid(self, machine):
        designs = enumerate_designs(machine.core, np.float32, 8, 8)
        assert len(designs) == 64

    def test_best_tile_is_feasible_and_maximal(self, machine):
        best = best_tile(machine.core, np.float32, max_mr=16, max_nr=16)
        assert best.feasible
        for d in enumerate_designs(machine.core, np.float32, 16, 16):
            if d.feasible:
                assert best.cmr >= d.cmr

    def test_best_tile_with_lane_multiples(self, machine):
        best = best_tile(machine.core, np.float32, prefer_multiple_of=4,
                         nr_multiple_of=4, max_mr=24, max_nr=24)
        assert best.mr % 4 == 0 and best.nr % 4 == 0
        # the analytic optimum under both lane constraints is 8x12 / 12x8
        assert {best.mr, best.nr} == {8, 12}

    def test_best_tile_no_feasible_raises(self, machine):
        with pytest.raises(KernelDesignError):
            best_tile(machine.core, np.float32, max_mr=1, max_nr=1)

    def test_fp64_halves_lanes(self, machine):
        d32 = evaluate_tile(8, 8, machine.core.simd_lanes(np.float32),
                            machine.core)
        d64 = evaluate_tile(8, 8, machine.core.simd_lanes(np.float64),
                            machine.core)
        assert d64.registers > d32.registers
