"""The happens-before race analyzer (V411-V421)."""

import pytest

from repro.machine import graviton2_like
from repro.parallel import MultithreadedGemm
from repro.plan.ir import BarrierOp, CriticalPathOp, ThreadStripsOp
from repro.verify.planlint import _find, _find_section_with
from repro.verify.races import (
    HappensBefore,
    analyze_races,
    grid_tiling,
)


def _shape(plan):
    return tuple(plan.meta["shape"])


class TestHappensBefore:
    def test_private_events_follow_program_order(self):
        hb = HappensBefore()
        w = hb.add("write", 1, "w")
        r = hb.add("read", 1, "r")
        assert hb.ordered(w, r)
        assert not hb.ordered(r, w)

    def test_cooperative_write_needs_barrier(self):
        hb = HappensBefore()
        w = hb.add("write", 4, "w", buffer="pack_b")
        r = hb.add("read", 4, "r", buffer="pack_b")
        assert not hb.ordered(w, r)

    def test_barrier_over_group_orders(self):
        hb = HappensBefore()
        w = hb.add("write", 4, "w", buffer="pack_b")
        hb.add("barrier", 4, "b")
        r = hb.add("read", 4, "r", buffer="pack_b")
        assert hb.ordered(w, r)

    def test_narrow_barrier_does_not_order(self):
        hb = HappensBefore()
        w = hb.add("write", 4, "w", buffer="pack_b")
        hb.add("barrier", 2, "b")  # covers half the packing group
        r = hb.add("read", 4, "r", buffer="pack_b")
        assert not hb.ordered(w, r)

    def test_edges_materialize_orderings(self):
        hb = HappensBefore()
        w = hb.add("write", 2, "w")
        hb.add("barrier", 2, "b")
        r = hb.add("read", 1, "r")
        assert (w.seq, r.seq) in hb.edges()


class TestGridTiling:
    def test_cross_product_has_witness(self):
        chunks = tuple(
            (mi, nj) for mi in (32, 32) for nj in (16, 16, 16, 16)
        )
        mis, njs = grid_tiling(chunks, 64, 64)
        assert sum(mis) == 64 and sum(njs) == 64

    def test_single_chunk(self):
        assert grid_tiling(((64, 64),), 64, 64) == ([64], [64])

    def test_warped_grid_has_no_witness(self):
        chunks = ((37, 32), (32, 32), (32, 32), (32, 32))
        assert grid_tiling(chunks, 64, 64) is None

    def test_zero_chunks_are_tolerated(self):
        chunks = tuple((mi, nj) for mi in (3, 2) for nj in (1, 0))
        assert grid_tiling(chunks, 5, 1) is not None


class TestCleanPlans:
    @pytest.mark.parametrize("lib, threads, shape", [
        ("openblas", 4, (64, 256, 256)),
        ("openblas", 64, (80, 2048, 2048)),
        ("blis", 4, (2048, 16, 2048)),
        ("eigen", 4, (256, 2048, 2048)),
    ])
    def test_mt_lowerings_race_free(self, machine, lib, threads, shape):
        plan = MultithreadedGemm(machine, lib, threads=threads) \
            .plan_gemm(*shape)
        assert analyze_races(plan, lib, threads, shape) == []

    def test_single_l2_cluster_machine(self):
        g = graviton2_like()
        plan = MultithreadedGemm(g, "openblas", threads=64) \
            .plan_gemm(80, 2048, 2048)
        assert analyze_races(plan, "openblas", 64, (80, 2048, 2048)) == []


class TestRaceFindings:
    def mt_plan(self, machine):
        return MultithreadedGemm(
            machine, "openblas", threads=4
        ).plan_gemm(64, 256, 256)

    def test_overlapping_strips_are_v411(self, machine):
        plan = self.mt_plan(machine)
        strips = _find(plan, ThreadStripsOp)
        strips.chunks = (strips.chunks[0] + 7,) + tuple(strips.chunks[1:])
        diags = analyze_races(plan, "t", 4, _shape(plan))
        v411 = [d for d in diags if d.rule == "V411-strip-race"]
        assert len(v411) == 1  # one finding per fan-out
        assert "write-write" in v411[0].message

    def test_missing_barrier_is_v412(self, machine):
        plan = self.mt_plan(machine)
        section = _find_section_with(plan, BarrierOp)
        kept, removed = [], False
        for child in section.children:
            if not removed and isinstance(child, BarrierOp):
                removed = True
                continue
            kept.append(child)
        section.children = tuple(kept)
        diags = analyze_races(plan, "t", 4, _shape(plan))
        assert any(d.rule == "V412-unordered-read" for d in diags)

    def test_warped_grid_is_v413(self, machine):
        plan = MultithreadedGemm(machine, "eigen", threads=4) \
            .plan_gemm(64, 64, 64)
        cp = _find(plan, CriticalPathOp)
        first = cp.chunks[0]
        cp.chunks = ((first[0] + 5, first[1]),) + tuple(cp.chunks[1:])
        diags = analyze_races(plan, "t", 4, _shape(plan))
        assert any(d.rule == "V413-grid-race" for d in diags)

    def test_oversharded_b_is_v421(self, machine):
        plan = self.mt_plan(machine)
        strips = _find(plan, ThreadStripsOp)
        strips.b_shared_by = machine.l2.shared_by * 8
        diags = analyze_races(plan, "t", 4, _shape(plan))
        v421 = [d for d in diags if d.rule == "V421-topology-mismatch"]
        assert v421 and "L2 cluster" in v421[0].message

    def test_more_threads_than_cores_is_v421(self, machine):
        plan = self.mt_plan(machine)
        diags = analyze_races(
            plan, "t", machine.n_cores * 2, _shape(plan)
        )
        assert any(d.rule == "V421-topology-mismatch" for d in diags)

    def test_contextless_plan_skips_topology(self, machine):
        from repro.plan.ir import ExecutionPlan

        plan = self.mt_plan(machine)
        bare = ExecutionPlan(root=plan.root, context=None,
                             meta=dict(plan.meta))
        diags = analyze_races(bare, "t", 4, _shape(plan))
        assert not [d for d in diags if d.rule.startswith("V421")]
