"""The executable claim registry: every paper claim must PASS."""

import pytest

from repro.analysis import all_claims, failed_claims, verify_reproduction


@pytest.fixture(scope="module")
def verdicts(machine):
    return verify_reproduction(machine)


class TestClaimRegistry:
    def test_registry_covers_the_evaluation(self):
        ids = {c.claim_id for c in all_claims()}
        # at least one claim per evaluated artifact
        assert any(i.startswith("fig5") for i in ids)
        assert any(i.startswith("fig6") for i in ids)
        assert any(i.startswith("fig9") for i in ids)
        assert any(i.startswith("fig10") for i in ids)
        assert any(i.startswith("table2") for i in ids)
        assert any(i.startswith("sec4") for i in ids)
        assert len(ids) == len(all_claims())  # unique ids

    def test_every_claim_cites_its_source(self):
        for claim in all_claims():
            assert claim.source.startswith("Sec."), claim.claim_id
            assert claim.statement

    def test_all_claims_pass(self, verdicts):
        failures = failed_claims(verdicts)
        assert failures == {}, failures

    def test_verdict_table_shape(self, verdicts):
        assert verdicts.headers == ["claim", "paper source", "measured",
                                    "verdict"]
        assert len(verdicts.rows) == len(all_claims())
        for row in verdicts.rows:
            assert row[3] in ("PASS", "FAIL")

    def test_measured_strings_carry_numbers(self, verdicts):
        import re

        for row in verdicts.rows:
            assert re.search(r"\d", str(row[2])), row[0]


class TestCliVerify:
    def test_verify_command(self, capsys):
        from repro.cli import main

        assert main(["verify"]) == 0
        out = capsys.readouterr().out
        assert "12/12 claims reproduce" in out
        assert "FAIL" not in out.replace("PASS/FAIL", "")
