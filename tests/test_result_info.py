"""The normalized ``GemmResult.info`` vocabulary (every driver speaks it).

``repro.blas.GEMM_INFO_KEYS`` names the canonical keys — ``library``,
``threads``, ``kernel_shape``, ``packed_b`` — and every driver must emit
all of them, first and in that order, with consistent types.  Driver
extras ride alongside under their documented names.
"""

import re

import pytest

from repro.blas import GEMM_INFO_KEYS, make_driver, result_info
from repro.core import ReferenceSmmDriver
from repro.parallel import MultithreadedGemm
from repro.util import make_rng, random_matrix

KERNEL_SHAPE_RE = re.compile(r"^\d+x\d+$")


def _gemm_result(machine, which):
    rng = make_rng(7)
    a, b = random_matrix(rng, 24, 16), random_matrix(rng, 16, 24)
    if which in ("openblas", "blis", "eigen", "blasfeo"):
        return make_driver(which, machine).gemm(a, b)
    if which == "reference":
        return ReferenceSmmDriver(machine).gemm(a, b)
    if which == "reference-mt":
        return ReferenceSmmDriver(machine, threads=4).gemm(a, b)
    assert which.startswith("mt-")
    return MultithreadedGemm(machine, which[3:], threads=4).gemm(a, b)


ALL_DRIVERS = ("openblas", "blis", "eigen", "blasfeo", "reference",
               "reference-mt", "mt-openblas", "mt-blis", "mt-eigen")


class TestCanonicalVocabulary:
    @pytest.mark.parametrize("which", ALL_DRIVERS)
    def test_every_driver_emits_the_canonical_keys(self, machine, which):
        info = _gemm_result(machine, which).info
        # all present, canonical keys first and in order
        assert tuple(info)[:len(GEMM_INFO_KEYS)] == GEMM_INFO_KEYS
        assert isinstance(info["library"], str) and info["library"]
        assert isinstance(info["threads"], int) and info["threads"] >= 1
        assert KERNEL_SHAPE_RE.match(info["kernel_shape"])
        assert isinstance(info["packed_b"], bool)

    @pytest.mark.parametrize("which", ALL_DRIVERS)
    def test_every_driver_attaches_its_execution_plan(self, machine, which):
        info = _gemm_result(machine, which).info
        plan = info["execution_plan"]
        assert plan.count_ops() >= 1
        assert plan.meta["threads"] == info["threads"]

    def test_threads_reported_faithfully(self, machine):
        assert _gemm_result(machine, "mt-blis").info["threads"] == 4
        assert _gemm_result(machine, "reference-mt").info["threads"] == 4
        assert _gemm_result(machine, "openblas").info["threads"] == 1


class TestResultInfoHelper:
    def test_orders_canonical_keys_first(self):
        info = result_info("lib", 2, "8x12", True, zeta=1, alpha=2)
        assert tuple(info)[:4] == GEMM_INFO_KEYS
        assert info["zeta"] == 1 and info["alpha"] == 2

    def test_extras_cannot_shadow_canonical_values(self):
        info = result_info("lib", 1, "4x4", False)
        assert info["library"] == "lib"
        assert info["packed_b"] is False
