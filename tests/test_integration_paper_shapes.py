"""Integration tests: the paper's headline findings must hold in the model.

Each test pins one qualitative claim from the paper's evaluation; these are
the acceptance criteria of the reproduction (EXPERIMENTS.md cites them).
"""

import numpy as np
import pytest

from repro.analysis import fig5a, fig5b, fig5c, fig5d, fig6, fig9, fig10, table2
from repro.blas import make_blasfeo, make_openblas
from repro.core import ReferenceSmmDriver


@pytest.fixture(scope="module")
def f5a(machine):
    return fig5a(machine)


class TestFig5Claims:
    def test_blasfeo_dominates_small_sizes(self, f5a):
        """Fig. 5: BLASFEO performs significantly better for SMM."""
        blasfeo = f5a.series_by_name("blasfeo").ys
        for other in ("openblas", "blis", "eigen"):
            ys = f5a.series_by_name(other).ys
            # strictly better on at least 90% of the small sizes (< 100)
            wins = sum(1 for b, o in zip(blasfeo[:20], ys[:20]) if b > o)
            assert wins >= 18, other

    def test_blasfeo_near_peak(self, f5a):
        """Paper: BLASFEO reaches ~96% of peak in the best case."""
        assert max(f5a.series_by_name("blasfeo").ys) > 0.90

    def test_eigen_is_worst_and_capped(self, f5a):
        """Paper: Eigen yields bad GEMM performance (best case ~58%)."""
        eigen = f5a.series_by_name("eigen").ys
        assert max(eigen) < 0.60
        for other in ("openblas", "blis", "blasfeo"):
            ys = f5a.series_by_name(other).ys
            wins = sum(1 for e, o in zip(eigen, ys) if e < o)
            assert wins >= 36, other

    def test_performance_fluctuates_with_edge_alignment(self, machine):
        """Paper Sec. III-B: M=N=K=80 beats 75 (OpenBLAS edge cases)."""
        drv = make_openblas(machine)
        eff = {s: drv.cost_gemm(s, s, s).efficiency(machine, np.float32)
               for s in (75, 80)}
        assert eff[80] > eff[75] * 1.05

    def test_small_k_behaves_differently(self, machine):
        """Paper: small-K curves differ from small-M/N — the library gap
        collapses because packing is K-independent."""
        b = fig5b(machine)
        d = fig5d(machine)

        def gap(fig, i):
            ys = [fig.series_by_name(lib).ys[i]
                  for lib in ("openblas", "blis", "eigen")]
            bf = fig.series_by_name("blasfeo").ys[i]
            return bf - min(ys)

        # at the smallest swept value the packing-free advantage is much
        # larger in the M sweep than in the K sweep
        assert gap(b, 0) > 2 * gap(d, 0)


class TestFig6Claims:
    def test_packing_exceeds_half_for_tiny_mn(self, machine):
        """Paper: in the worst cases packing accounts for > 50%."""
        fig = fig6(machine)
        assert max(fig.series_by_name("small-M").ys) > 0.5
        assert max(fig.series_by_name("small-N").ys) > 0.5

    def test_packing_negligible_for_small_k(self, machine):
        """Paper: when K is very small the overhead can be ignored."""
        fig = fig6(machine)
        small_k = fig.series_by_name("small-K").ys
        assert max(small_k) < 0.2

    def test_packing_share_decreases_with_m(self, machine):
        fig = fig6(machine)
        ys = fig.series_by_name("small-M").ys
        assert ys[0] > ys[-1]


class TestFig9Claims:
    def test_kernel_efficiency_band(self, machine):
        """Paper: best ~93.3%, significant dips at edge-heavy sizes."""
        sweeps = fig9(machine)
        m_ys = sweeps["sweep-M"].series[0].ys
        assert max(m_ys) > 0.88
        assert min(m_ys) < 0.80  # fluctuation exists

    def test_sawtooth_on_mr_multiples(self, machine):
        """Multiples of mr=16 run faster than their neighbours."""
        drv = make_openblas(machine)

        def k_eff(m):
            return drv.cost_gemm(m, 100, 100).kernel_efficiency(
                machine, np.float32
            )

        assert k_eff(80) > k_eff(75)
        assert k_eff(64) > k_eff(60)


class TestFig10Claims:
    @pytest.fixture(scope="class")
    def figs(self, machine):
        return fig10(machine, threads=64)

    def test_blis_best_for_small_m(self, figs):
        """Paper: BLIS performs best for small cases with 64 threads."""
        fig = figs["small-M"]
        blis = fig.series_by_name("blis").ys
        for other in ("openblas", "eigen"):
            ys = fig.series_by_name(other).ys
            wins = sum(1 for b, o in zip(blis, ys) if b > o)
            assert wins >= len(ys) - 2, other

    def test_blis_competitive_for_small_n(self, figs):
        """For small N, BLIS beats Eigen everywhere and tracks the best."""
        fig = figs["small-N"]
        blis = fig.series_by_name("blis").ys
        eigen = fig.series_by_name("eigen").ys
        best = [
            max(s.ys[i] for s in fig.series)
            for i in range(len(fig.xs))
        ]
        assert all(b > e for b, e in zip(blis, eigen))
        assert sum(1 for b, m in zip(blis, best) if b >= 0.85 * m) \
            >= len(best) - 2

    def test_blis_peaks_near_60_percent(self, figs):
        """Paper: BLIS the best performer, peaking at around 60%."""
        peak = max(figs["small-M"].series_by_name("blis").ys)
        assert 0.5 < peak < 0.85

    def test_openblas_poor_when_m_small(self, figs):
        """Paper: OpenBLAS has especially poor performance when M small."""
        ob = figs["small-M"].series_by_name("openblas").ys
        blis = figs["small-M"].series_by_name("blis").ys
        assert ob[0] < 0.1
        assert blis[0] > 3 * ob[0]

    def test_all_far_below_peak_at_tiny_dims(self, figs):
        """Paper: with a very small dimension everyone is far below peak."""
        for sweep in ("small-M", "small-N"):
            for s in figs[sweep].series:
                assert s.ys[0] < 0.45


class TestTable2Claims:
    @pytest.fixture(scope="class")
    def t2(self, machine):
        return table2(machine)

    def test_packb_dominates_small_m(self, t2):
        """Paper: main overheads are kernel and PackB; PackB ~57% at M=16."""
        first = t2.rows[0]
        packb = first[3]
        assert packb > 50

    def test_packb_decays_with_m(self, t2):
        packb = t2.column("PackB")
        assert packb[0] > packb[-1]
        assert packb[-1] < 25

    def test_kernel_share_grows_with_m(self, t2):
        kernel = t2.column("Kernel")
        assert kernel[0] < 35
        assert kernel[-1] > 65

    def test_sync_share_small_but_nonzero(self, t2):
        sync = t2.column("Sync")
        assert all(0 <= s < 10 for s in sync)
        assert any(s > 0.3 for s in sync)

    def test_mt_kernel_efficiency_below_single_thread(self, t2, machine):
        """Paper: MT kernel efficiency sits below single-thread kernel
        efficiency on the same shapes (L2 sharing, NUMA, edge inflation)."""
        from repro.blas import make_blis

        st = make_blis(machine)
        for row in t2.rows[4:]:  # skip the tiniest M where both are low
            m = row[0]
            mt_eff = row[5]
            st_eff = 100 * st.cost_gemm(m, 2048, 2048).kernel_efficiency(
                machine, np.float32
            )
            assert mt_eff <= st_eff + 1.0, m


class TestSection4Claims:
    def test_reference_beats_every_library_on_smm_average(self, machine):
        """The Sec. IV design should dominate on the SMM sweep average."""
        ref = ReferenceSmmDriver(machine)
        sizes = range(5, 101, 5)
        ref_avg = np.mean([
            ref.cost_gemm(s, s, s)[0].efficiency(machine, np.float32)
            for s in sizes
        ])
        bf_avg = np.mean([
            make_blasfeo(machine).cost_gemm(s, s, s).efficiency(
                machine, np.float32)
            for s in sizes
        ])
        ob_avg = np.mean([
            make_openblas(machine).cost_gemm(s, s, s).efficiency(
                machine, np.float32)
            for s in sizes
        ])
        assert ref_avg > ob_avg
        assert ref_avg > 0.95 * bf_avg
