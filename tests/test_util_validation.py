"""Unit tests for repro.util.validation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.errors import ConfigError, KernelDesignError
from repro.util.validation import (
    all_distinct,
    ceil_div,
    check_choice,
    check_fraction,
    check_multiple_of,
    check_non_negative_int,
    check_positive_float,
    check_positive_int,
    check_power_of_two,
    require,
    round_up,
)


class TestRequire:
    def test_passes_when_true(self):
        require(True, "never raised")

    def test_raises_config_error_by_default(self):
        with pytest.raises(ConfigError, match="boom"):
            require(False, "boom")

    def test_raises_custom_exception(self):
        with pytest.raises(KernelDesignError):
            require(False, "boom", KernelDesignError)


class TestCheckPositiveInt:
    def test_accepts_positive(self):
        assert check_positive_int(3, "x") == 3

    @pytest.mark.parametrize("bad", [0, -1, -100])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ConfigError, match="must be positive"):
            check_positive_int(bad, "x")

    @pytest.mark.parametrize("bad", [1.5, "3", None])
    def test_rejects_non_int(self, bad):
        with pytest.raises(ConfigError, match="must be an int"):
            check_positive_int(bad, "x")

    def test_rejects_bool(self):
        # bool is an int subclass but means something else
        with pytest.raises(ConfigError):
            check_positive_int(True, "x")


class TestCheckNonNegativeInt:
    def test_accepts_zero(self):
        assert check_non_negative_int(0, "x") == 0

    def test_rejects_negative(self):
        with pytest.raises(ConfigError):
            check_non_negative_int(-1, "x")


class TestCheckPositiveFloat:
    def test_accepts_float_and_int(self):
        assert check_positive_float(2.5, "x") == 2.5
        assert check_positive_float(2, "x") == 2.0

    def test_rejects_zero(self):
        with pytest.raises(ConfigError):
            check_positive_float(0.0, "x")

    def test_rejects_bool(self):
        with pytest.raises(ConfigError):
            check_positive_float(True, "x")


class TestCheckFraction:
    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, ok):
        assert check_fraction(ok, "x") == ok

    @pytest.mark.parametrize("bad", [-0.01, 1.01, 2])
    def test_rejects_outside(self, bad):
        with pytest.raises(ConfigError):
            check_fraction(bad, "x")


class TestCheckPowerOfTwo:
    @pytest.mark.parametrize("ok", [1, 2, 4, 64, 1024])
    def test_accepts_powers(self, ok):
        assert check_power_of_two(ok, "x") == ok

    @pytest.mark.parametrize("bad", [3, 6, 12, 100])
    def test_rejects_non_powers(self, bad):
        with pytest.raises(ConfigError):
            check_power_of_two(bad, "x")


class TestCheckMultipleOf:
    def test_accepts_multiple(self):
        assert check_multiple_of(12, 4, "x") == 12

    def test_rejects_non_multiple(self):
        with pytest.raises(ConfigError):
            check_multiple_of(13, 4, "x")


class TestCheckChoice:
    def test_accepts_member(self):
        assert check_choice("a", ("a", "b"), "x") == "a"

    def test_rejects_non_member(self):
        with pytest.raises(ConfigError, match="must be one of"):
            check_choice("z", ("a", "b"), "x")


class TestCeilDiv:
    @pytest.mark.parametrize(
        "a,b,expected", [(0, 4, 0), (1, 4, 1), (4, 4, 1), (5, 4, 2), (8, 4, 2)]
    )
    def test_values(self, a, b, expected):
        assert ceil_div(a, b) == expected

    def test_rejects_zero_divisor(self):
        with pytest.raises(ValueError):
            ceil_div(4, 0)

    @given(st.integers(min_value=0, max_value=10**6),
           st.integers(min_value=1, max_value=10**4))
    def test_matches_definition(self, a, b):
        q = ceil_div(a, b)
        assert q * b >= a
        assert (q - 1) * b < a or q == 0


class TestRoundUp:
    @given(st.integers(min_value=0, max_value=10**6),
           st.integers(min_value=1, max_value=512))
    def test_round_up_properties(self, value, base):
        r = round_up(value, base)
        assert r >= value
        assert r % base == 0
        assert r - value < base


class TestAllDistinct:
    def test_distinct(self):
        assert all_distinct([1, 2, 3])

    def test_duplicate(self):
        assert not all_distinct([1, 2, 1])

    def test_empty(self):
        assert all_distinct([])
