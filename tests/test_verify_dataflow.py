"""The symbolic interval dataflow analyzer (V401/V402)."""

import pytest

from repro.blas import make_blasfeo, make_driver
from repro.core import ReferenceSmmDriver
from repro.plan.ir import PackOp, ThreadStripsOp
from repro.verify.dataflow import (
    Access,
    Interval,
    analyze_dataflow,
    build_address_model,
    node_accesses,
    strip_row_intervals,
)
from repro.verify.planlint import _find


class TestInterval:
    def test_sized_and_length(self):
        iv = Interval.sized(3, 5)
        assert (iv.lo, iv.hi, iv.length) == (3, 8, 5)
        assert Interval.sized(3, -2).empty

    def test_overlap_and_intersect(self):
        a, b = Interval(0, 8), Interval(6, 12)
        assert a.overlaps(b) and b.overlaps(a)
        assert a.intersect(b) == Interval(6, 8)
        assert not a.overlaps(Interval(8, 12))  # half-open: touching
        assert not a.overlaps(Interval(4, 4))  # empty never overlaps

    def test_within(self):
        outer = Interval(0, 10)
        assert Interval(2, 10).within(outer)
        assert not Interval(2, 11).within(outer)
        assert Interval(5, 5).within(Interval(0, 1))  # empty fits anywhere

    def test_str_is_half_open(self):
        assert str(Interval(0, 8)) == "[0, 8)"


class TestStripRowIntervals:
    def test_legal_chunks_tile_exactly(self):
        ivs = strip_row_intervals(10, (3, 3, 2, 2))
        assert [iv.lo for iv in ivs] == [0, 3, 6, 8]
        assert ivs[-1].hi == 10
        for a, b in zip(ivs, ivs[1:]):
            assert not a.overlaps(b)

    def test_inflated_chunk_overlaps(self):
        ivs = strip_row_intervals(10, (5, 3, 2, 2))
        assert ivs[0].overlaps(ivs[1])


class TestAddressModel:
    def test_operands_allocated_disjoint(self, machine):
        plan = make_driver("openblas", machine).plan_gemm(48, 48, 48)
        model = build_address_model(plan, (48, 48, 48))
        allocs = [model.operands[x].allocation for x in ("A", "B", "C")]
        for i, a in enumerate(allocs):
            assert a.nbytes == 48 * 48 * 4
            for b in allocs[i + 1:]:
                assert a.end <= b.base or b.end <= a.base

    def test_blasfeo_pads_a_to_panels(self, machine):
        plan = make_blasfeo(machine).plan_gemm(10, 8, 8)
        ps = plan.meta["ps"]
        model = build_address_model(plan, (10, 8, 8))
        a = model.operands["A"]
        assert a.rows == 10
        assert a.padded_rows % ps == 0 and a.padded_rows >= 10

    def test_byte_span_is_column_major(self, machine):
        plan = make_driver("openblas", machine).plan_gemm(8, 8, 8)
        model = build_address_model(plan, (8, 8, 8))
        a = model.operands["A"]
        span = a.byte_span(Interval(0, 2), Interval(0, 1))
        assert span.length == 2 * a.itemsize
        full = a.byte_span(Interval(0, 8), Interval(0, 8))
        assert full.length == a.allocation.nbytes

    def test_describe_includes_bytes(self, machine):
        plan = make_driver("openblas", machine).plan_gemm(8, 8, 8)
        model = build_address_model(plan, (8, 8, 8))
        access = Access("A", "read", Interval(0, 8), Interval(0, 8), "p")
        text = model.describe(access)
        assert "A[0, 8)x[0, 8)" in text and "bytes" in text


class TestNodeAccesses:
    def test_gebp_reads_a_b_writes_c(self, machine):
        plan = make_driver("openblas", machine).plan_gemm(48, 48, 48)
        from repro.plan.ir import GebpOp

        gebp = _find(plan, GebpOp)
        accesses = node_accesses(gebp, (48, 48, 48), "p")
        modes = {(a.buffer, a.mode) for a in accesses}
        assert modes == {("A", "read"), ("B", "read"), ("C", "write")}

    def test_thread_strips_carry_offsets(self, machine):
        from repro.parallel import MultithreadedGemm

        plan = MultithreadedGemm(machine, "openblas", threads=4) \
            .plan_gemm(64, 256, 256)
        strips = _find(plan, ThreadStripsOp)
        accesses = node_accesses(strips, (64, 256, 256), "p")
        c_rows = [a.rows for a in accesses if a.buffer == "C"]
        assert c_rows[0].lo == 0 and c_rows[-1].hi == 64
        for a, b in zip(c_rows, c_rows[1:]):
            assert a.hi == b.lo  # contiguous, disjoint


class TestAnalyzer:
    @pytest.mark.parametrize("make_plan, shape", [
        (lambda m: make_driver("openblas", m).plan_gemm(48, 48, 48),
         (48, 48, 48)),
        (lambda m: make_blasfeo(m).plan_gemm(10, 8, 8), (10, 8, 8)),
        (lambda m: ReferenceSmmDriver(m).plan_gemm(97, 101, 89),
         (97, 101, 89)),
    ], ids=["openblas", "blasfeo", "reference"])
    def test_clean_plans_have_no_findings(self, machine, make_plan, shape):
        assert analyze_dataflow(make_plan(machine), "t", shape) == []

    def test_no_shape_skips_analysis(self, machine):
        plan = make_driver("openblas", machine).plan_gemm(8, 8, 8)
        assert analyze_dataflow(plan, "t", None) == []

    def test_inflated_pack_is_v401(self, machine):
        plan = ReferenceSmmDriver(machine).plan_with(
            32, 32, 32, packed_b=True
        )
        pack = _find(plan, PackOp)
        pack.rows = pack.rows * 4
        diags = analyze_dataflow(plan, "t", (32, 32, 32))
        assert any(d.rule == "V401-oob-access" for d in diags)
        msg = next(d for d in diags if d.rule == "V401-oob-access").message
        assert "outside" in msg

    def test_undersized_buffer_is_v402(self, machine):
        plan = ReferenceSmmDriver(machine).plan_with(
            32, 32, 32, packed_b=True
        )
        pack = _find(plan, PackOp)
        pack.padded_elements = (pack.rows * pack.cols) // 2
        diags = analyze_dataflow(plan, "t", (32, 32, 32))
        rules = [d.rule for d in diags]
        assert "V402-pack-overrun" in rules

    def test_overflowing_strip_is_v401(self, machine):
        from repro.parallel import MultithreadedGemm

        plan = MultithreadedGemm(machine, "openblas", threads=4) \
            .plan_gemm(64, 256, 256)
        strips = _find(plan, ThreadStripsOp)
        last = strips.chunks[-1]
        strips.chunks = tuple(strips.chunks[:-1]) + (last + 9,)
        diags = analyze_dataflow(plan, "t", (64, 256, 256))
        assert any(d.rule == "V401-oob-access" and d.message.startswith(
            "write"
        ) for d in diags)
