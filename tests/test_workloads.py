"""Tests for the application workloads: sweeps, DNN, BCSR, ABFT."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ReferenceSmmDriver
from repro.util import make_rng, random_matrix
from repro.util.errors import ConfigError
from repro.workloads import (
    bcsr_spmm,
    checksum_weights,
    correct_single_error,
    encode,
    fig5a_square,
    fig5b_small_m,
    fig5c_small_n,
    fig5d_small_k,
    fig9_kernel_sweeps,
    fig10_mt_sweeps,
    im2col_conv_layers,
    locate_single_error,
    lstm_cell,
    materialize,
    mlp_layers,
    random_bcsr,
    table2_ms,
    verify,
)


class TestSweeps:
    def test_fig5a_grid(self):
        shapes = fig5a_square()
        assert shapes[0] == (5, 5, 5)
        assert shapes[-1] == (200, 200, 200)
        assert len(shapes) == 40

    def test_fig5b_sweeps_m_only(self):
        shapes = fig5b_small_m()
        assert all(n == 100 and k == 100 for _, n, k in shapes)
        assert [m for m, _, _ in shapes] == list(range(2, 41, 2))

    def test_fig5c_and_d(self):
        assert all(m == 100 and k == 100 for m, _, k in fig5c_small_n())
        assert all(m == 100 and n == 100 for m, n, _ in fig5d_small_k())

    def test_fig9_sweeps(self):
        grids = fig9_kernel_sweeps()
        assert set(grids) == {"sweep-M", "sweep-N", "sweep-K"}
        assert all(n == 100 for _, n, _ in grids["sweep-M"])

    def test_fig10_sweeps(self):
        grids = fig10_mt_sweeps()
        assert all(n == 2048 and k == 2048 for _, n, k in grids["small-M"])

    def test_table2_ms(self):
        ms = table2_ms()
        assert ms[0] == 16 and ms[-1] == 256 and len(ms) == 16


class TestDnnLayers:
    def test_mlp_shapes_chain(self):
        layers = mlp_layers(batch=8, widths=(256, 128, 64, 10))
        assert [l.shape for l in layers] == [
            (8, 128, 256), (8, 64, 128), (8, 10, 64)
        ]

    def test_mlp_bad_batch(self):
        with pytest.raises(ConfigError):
            mlp_layers(batch=0)

    def test_lstm_gate_fusion(self):
        layers = lstm_cell(batch=4, hidden=64, inputs=32)
        assert layers[0].shape == (4, 256, 32)
        assert layers[1].shape == (4, 256, 64)

    def test_conv_im2col_shapes(self):
        layers = im2col_conv_layers(image=28, channels=(1, 8), kernel=3)
        (conv0,) = layers
        assert conv0.m == 26 * 26
        assert conv0.n == 8
        assert conv0.k == 9

    def test_conv_too_small_image(self):
        with pytest.raises(ConfigError):
            im2col_conv_layers(image=2, kernel=3)

    def test_flops(self):
        layer = mlp_layers(batch=2, widths=(4, 3))[0]
        assert layer.flops == 2 * 2 * 3 * 4

    def test_materialize_shapes(self, rng):
        layers = mlp_layers(batch=2, widths=(8, 4))
        pairs = materialize(layers, rng)
        a, b = pairs[0]
        assert a.shape == (2, 8) and b.shape == (8, 4)


class TestBcsr:
    def test_round_trip_dense(self, rng):
        m = random_bcsr(rng, 32, 24, br=8, bc=8, density=0.5)
        dense = m.to_dense()
        assert dense.shape == (32, 24)

    def test_density_accounting(self, rng):
        m = random_bcsr(rng, 64, 64, br=8, bc=8, density=1.0)
        assert m.density == pytest.approx(1.0)
        assert m.nnz_blocks == 64

    def test_empty_matrix(self, rng):
        m = random_bcsr(rng, 16, 16, br=8, bc=8, density=0.0)
        assert m.nnz_blocks == 0
        np.testing.assert_array_equal(m.to_dense(), 0)

    def test_indivisible_shape_rejected(self, rng):
        with pytest.raises(ConfigError):
            random_bcsr(rng, 30, 24, br=8, bc=8)

    def test_spmm_matches_dense(self, machine, rng):
        matrix = random_bcsr(rng, 32, 24, br=8, bc=8, density=0.4)
        dense_rhs = random_matrix(rng, 24, 12)
        driver = ReferenceSmmDriver(machine)
        out, timing = bcsr_spmm(matrix, dense_rhs, driver)
        np.testing.assert_allclose(
            out, matrix.to_dense() @ dense_rhs, rtol=1e-4, atol=1e-4
        )
        assert timing is None or timing.total_cycles > 0

    def test_spmm_shape_check(self, machine, rng):
        matrix = random_bcsr(rng, 16, 16, br=8, bc=8, density=1.0)
        with pytest.raises(ConfigError):
            bcsr_spmm(matrix, random_matrix(rng, 8, 4),
                      ReferenceSmmDriver(machine))

    @settings(max_examples=10, deadline=None)
    @given(density=st.floats(min_value=0.1, max_value=1.0))
    def test_spmm_property(self, machine, density):
        rng = make_rng(int(density * 1000))
        matrix = random_bcsr(rng, 16, 16, br=8, bc=8, density=density)
        rhs = random_matrix(rng, 16, 8)
        out, _ = bcsr_spmm(matrix, rhs, ReferenceSmmDriver(machine))
        np.testing.assert_allclose(out, matrix.to_dense() @ rhs,
                                   rtol=1e-4, atol=1e-4)


class TestAbft:
    def test_weights_shape(self):
        w = checksum_weights(10)
        assert w.shape == (2, 10)
        np.testing.assert_array_equal(w[0], 1)
        np.testing.assert_array_equal(w[1], np.arange(1, 11))

    def test_single_checksum(self):
        assert checksum_weights(5, double=False).shape == (1, 5)

    def test_encode_and_verify_clean(self, machine, rng):
        payload = random_matrix(rng, 20, 30)
        enc = encode(payload, ReferenceSmmDriver(machine))
        assert verify(payload, enc)

    def test_detects_corruption(self, machine, rng):
        payload = random_matrix(rng, 20, 30)
        enc = encode(payload, ReferenceSmmDriver(machine))
        payload[7, 13] += 1.0
        assert not verify(payload, enc)

    def test_locates_single_error(self, machine, rng):
        payload = random_matrix(rng, 20, 30)
        enc = encode(payload, ReferenceSmmDriver(machine))
        payload[7, 13] += 2.5
        hit = locate_single_error(payload, enc)
        assert hit is not None
        row, col, delta = hit
        assert (row, col) == (7, 13)
        assert delta == pytest.approx(2.5, abs=1e-2)

    def test_corrects_single_error(self, machine, rng):
        payload = random_matrix(rng, 16, 16)
        clean = payload.copy()
        enc = encode(payload, ReferenceSmmDriver(machine))
        payload[3, 4] -= 1.75
        fixed = correct_single_error(payload, enc)
        np.testing.assert_allclose(fixed, clean, atol=1e-2)

    def test_clean_payload_untouched(self, machine, rng):
        payload = random_matrix(rng, 16, 16)
        enc = encode(payload, ReferenceSmmDriver(machine))
        fixed = correct_single_error(payload, enc)
        np.testing.assert_array_equal(fixed, payload)

    def test_location_requires_double(self, machine, rng):
        payload = random_matrix(rng, 8, 8)
        enc = encode(payload, ReferenceSmmDriver(machine), double=False)
        with pytest.raises(ConfigError):
            locate_single_error(payload, enc)

    def test_encode_timing_is_smm_shaped(self, machine, rng):
        payload = random_matrix(rng, 64, 128)
        enc = encode(payload, ReferenceSmmDriver(machine))
        assert enc.timing.useful_flops == 2 * 2 * 128 * 64


class TestBcsrParallel:
    def test_parallel_spmm_matches_dense(self, machine, rng):
        from repro.core import BatchedSmm
        from repro.workloads import bcsr_spmm_parallel

        matrix = random_bcsr(rng, 64, 64, br=8, bc=8, density=0.3)
        rhs = random_matrix(rng, 64, 8)
        out, timing = bcsr_spmm_parallel(
            matrix, rhs, BatchedSmm(machine), cores=8
        )
        np.testing.assert_allclose(out, matrix.to_dense() @ rhs,
                                   rtol=1e-4, atol=1e-4)
        assert timing.total_cycles > 0

    def test_parallel_faster_than_serial(self, machine, rng):
        from repro.core import BatchedSmm, ReferenceSmmDriver
        from repro.workloads import bcsr_spmm_parallel

        matrix = random_bcsr(rng, 128, 128, br=8, bc=8, density=0.3)
        rhs = random_matrix(rng, 128, 8)
        _, serial = bcsr_spmm(matrix, rhs, ReferenceSmmDriver(machine))
        _, parallel = bcsr_spmm_parallel(
            matrix, rhs, BatchedSmm(machine), cores=16
        )
        assert parallel.total_cycles < serial.total_cycles / 4

    def test_empty_matrix_parallel(self, machine, rng):
        from repro.core import BatchedSmm
        from repro.workloads import bcsr_spmm_parallel

        matrix = random_bcsr(rng, 16, 16, br=8, bc=8, density=0.0)
        rhs = random_matrix(rng, 16, 4)
        out, timing = bcsr_spmm_parallel(
            matrix, rhs, BatchedSmm(machine), cores=4
        )
        np.testing.assert_array_equal(out, 0)
        assert timing is None

    def test_shape_mismatch_rejected(self, machine, rng):
        from repro.core import BatchedSmm
        from repro.workloads import bcsr_spmm_parallel

        matrix = random_bcsr(rng, 16, 16, br=8, bc=8, density=1.0)
        with pytest.raises(ConfigError):
            bcsr_spmm_parallel(matrix, random_matrix(rng, 8, 4),
                               BatchedSmm(machine), cores=4)
