"""Documentation-completeness gates.

Two invariants a production library should enforce mechanically:
every public item carries a docstring, and the committed API reference
matches the code it documents.
"""

import pathlib

from repro.util.apidoc import (
    first_paragraph,
    generate_api_reference,
    iter_public_modules,
    public_members,
    signature_of,
    undocumented_members,
)

DOCS = pathlib.Path(__file__).parent.parent / "docs" / "API.md"


class TestDocstringCoverage:
    def test_every_public_item_documented(self):
        missing = undocumented_members()
        assert missing == [], f"undocumented public items: {missing}"

    def test_module_walk_finds_all_subsystems(self):
        modules = set(iter_public_modules())
        for expected in (
            "repro.machine.config", "repro.isa.instructions",
            "repro.pipeline.scheduler", "repro.caches.model",
            "repro.kernels.generator", "repro.blas.goto",
            "repro.parallel.executor", "repro.core.reference",
            "repro.workloads.bcsr", "repro.analysis.experiments",
            "repro.cli",
        ):
            assert expected in modules, expected


class TestReferenceGeneration:
    def test_generated_reference_matches_committed(self):
        assert DOCS.exists(), "run `python -m repro.util.apidoc`"
        committed = DOCS.read_text().rstrip("\n")
        fresh = generate_api_reference().rstrip("\n")
        assert committed == fresh, (
            "docs/API.md is stale; regenerate with "
            "`python -m repro.util.apidoc`"
        )

    def test_reference_covers_headline_api(self):
        text = DOCS.read_text()
        for symbol in ("ReferenceSmmDriver", "MultithreadedGemm",
                       "phytium2000plus", "GemmTiming", "tile_plan"):
            assert symbol in text, symbol


class TestHelpers:
    def test_first_paragraph_truncates(self):
        def sample():
            """First line.

            Second paragraph not included.
            """

        assert first_paragraph(sample) == "First line."

    def test_first_paragraph_placeholder(self):
        def bare():
            pass

        assert "undocumented" in first_paragraph(bare)

    def test_signature_of_function(self):
        def f(a, b=2):
            """Doc."""

        assert signature_of(f) == "f(a, b=2)"

    def test_public_members_respects_all(self):
        import repro.util as u

        names = [n for n, _ in public_members(u)]
        assert "make_rng" in names
        assert all(not n.startswith("_") for n in names)
