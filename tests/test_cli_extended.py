"""Tests for the report, sensitivity and machines CLI commands."""

import json
import pathlib

import pytest

from repro.cli import main


class TestReportCommand:
    def test_report_to_stdout(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "# SMM characterization report" in out
        assert "Table II" in out

    def test_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "REPORT.md"
        assert main(["report", "--output", str(target)]) == 0
        assert target.exists()
        assert "# SMM characterization report" in target.read_text()
        assert f"wrote {target}" in capsys.readouterr().out


class TestSensitivityCommand:
    def test_sweep_renders_series(self, capsys):
        assert main(["sensitivity", "core.fma_latency", "3", "5", "8"]) == 0
        out = capsys.readouterr().out
        assert "blasfeo" in out
        assert "core.fma_latency" in out

    def test_float_parameter(self, capsys):
        assert main(
            ["sensitivity", "numa.dram_bytes_per_cycle", "4.0", "16.0"]
        ) == 0
        out = capsys.readouterr().out
        assert "openblas" in out

    def test_unknown_parameter_raises(self):
        from repro.util.errors import ConfigError

        with pytest.raises(ConfigError):
            main(["sensitivity", "core.nonsense", "1"])


class TestMachinesCommand:
    def test_text_inventory_lists_all_factories(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        # every registered factory appears with its core-class breakdown
        for name in ("phytium2000plus", "big_little_like", "sve512_like"):
            assert name in out
        assert "big-ooo-armv8" in out
        assert "little-armv8" in out
        assert "GFLOPS" in out

    def test_json_inventory_structure(self, capsys):
        assert main(["machines", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        by_factory = {m["factory"]: m for m in data["machines"]}
        assert "phytium2000plus" in by_factory
        phytium = by_factory["phytium2000plus"]
        assert phytium["cores"] == 64
        assert phytium["heterogeneous"] is False
        assert len(phytium["classes"]) == 1

        bl = by_factory["big_little_like"]
        assert bl["heterogeneous"] is True
        assert [c["cores"] for c in bl["classes"]] == [4, 4]
        big, little = bl["classes"]
        assert big["peak_gflops_f32"] > little["peak_gflops_f32"]
        # machine peak is the sum over classes
        assert bl["peak_gflops_f32"] == pytest.approx(
            big["peak_gflops_f32"] + little["peak_gflops_f32"]
        )

        sve = by_factory["sve512_like"]
        widths = {c["vector_bits"] for c in sve["classes"]}
        assert 512 in widths

    def test_json_reports_simd_lanes(self, capsys):
        assert main(["machines", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        for mach in data["machines"]:
            for cls in mach["classes"]:
                assert cls["simd_lanes_f32"] == cls["vector_bits"] // 32


class TestMakefileTargetsExist:
    def test_makefile_covers_workflow(self):
        text = pathlib.Path("Makefile").read_text()
        for target in ("test:", "bench:", "docs:", "report:"):
            assert target in text
