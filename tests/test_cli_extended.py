"""Tests for the report and sensitivity CLI commands."""

import pathlib

import pytest

from repro.cli import main


class TestReportCommand:
    def test_report_to_stdout(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "# SMM characterization report" in out
        assert "Table II" in out

    def test_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "REPORT.md"
        assert main(["report", "--output", str(target)]) == 0
        assert target.exists()
        assert "# SMM characterization report" in target.read_text()
        assert f"wrote {target}" in capsys.readouterr().out


class TestSensitivityCommand:
    def test_sweep_renders_series(self, capsys):
        assert main(["sensitivity", "core.fma_latency", "3", "5", "8"]) == 0
        out = capsys.readouterr().out
        assert "blasfeo" in out
        assert "core.fma_latency" in out

    def test_float_parameter(self, capsys):
        assert main(
            ["sensitivity", "numa.dram_bytes_per_cycle", "4.0", "16.0"]
        ) == 0
        out = capsys.readouterr().out
        assert "openblas" in out

    def test_unknown_parameter_raises(self):
        from repro.util.errors import ConfigError

        with pytest.raises(ConfigError):
            main(["sensitivity", "core.nonsense", "1"])


class TestMakefileTargetsExist:
    def test_makefile_covers_workflow(self):
        text = pathlib.Path("Makefile").read_text()
        for target in ("test:", "bench:", "docs:", "report:"):
            assert target in text
