"""Unit tests for the ISA layer: registers, instructions, sequences."""

import pytest

from repro.isa import (
    KernelSequence,
    RegisterAllocator,
    branch_nz,
    concat_bodies,
    dup,
    fadd,
    fmadd_scalar,
    fmla,
    fmul,
    is_vreg,
    is_xreg,
    ldp_s,
    ldr_q,
    ldr_s,
    movi_zero,
    reg_index,
    str_q,
    str_s,
    subs_imm,
    total_flops,
    total_mem_bytes,
    vreg,
    xreg,
)
from repro.util.errors import IsaError, RegisterAllocationError


class TestRegisters:
    def test_vreg_names(self):
        assert vreg(0) == "v0"
        assert vreg(31) == "v31"

    def test_vreg_out_of_range(self):
        with pytest.raises(IsaError):
            vreg(32)
        with pytest.raises(IsaError):
            vreg(-1)

    def test_xreg_range(self):
        assert xreg(30) == "x30"
        with pytest.raises(IsaError):
            xreg(31)

    def test_predicates(self):
        assert is_vreg("v3") and not is_vreg("x3")
        assert is_xreg("x3") and not is_xreg("v3")

    def test_reg_index(self):
        assert reg_index("v17") == 17

    def test_reg_index_malformed(self):
        with pytest.raises(IsaError):
            reg_index("v")


class TestRegisterAllocator:
    def test_allocates_lowest_first(self):
        alloc = RegisterAllocator()
        assert alloc.alloc_v(2) == ["v0", "v1"]
        assert alloc.live_vector_count == 2

    def test_exhaustion_raises(self):
        alloc = RegisterAllocator()
        alloc.alloc_v(32)
        with pytest.raises(RegisterAllocationError):
            alloc.alloc_v(1)

    def test_free_and_reuse(self):
        alloc = RegisterAllocator()
        regs = alloc.alloc_v(2)
        alloc.free(regs[0])
        assert alloc.alloc_v(1) == [regs[0]]

    def test_free_unallocated_raises(self):
        alloc = RegisterAllocator()
        with pytest.raises(IsaError):
            alloc.free("v5")

    def test_scalar_pool(self):
        alloc = RegisterAllocator()
        assert alloc.alloc_x(1) == ["x0"]
        with pytest.raises(RegisterAllocationError):
            alloc.alloc_x(31)


class TestInstructionFactories:
    def test_ldr_q_post_increment_writes_base(self):
        ins = ldr_q("v4", "x0", post_inc=16)
        assert ins.port == "load"
        assert "x0" in ins.writes and "v4" in ins.writes
        assert ins.mem_bytes == 16

    def test_ldr_q_plain_offset(self):
        ins = ldr_q("v4", "x0", offset=32)
        assert ins.writes == ("v4",)

    def test_ldr_q_offset_and_post_inc_conflict(self):
        with pytest.raises(IsaError):
            ldr_q("v4", "x0", offset=32, post_inc=16)

    def test_ldp_s_pair(self):
        ins = ldp_s("v12", "v13", "x1")
        assert set(["v12", "v13", "x1"]) == set(ins.writes)
        assert ins.mem_bytes == 8

    def test_ldp_s_same_dst_rejected(self):
        with pytest.raises(IsaError):
            ldp_s("v12", "v12", "x1")

    def test_fmla_accumulator_is_read_and_written(self):
        ins = fmla("v16", "v4", "v12", lane=0)
        assert "v16" in ins.reads and "v16" in ins.writes
        assert ins.flops == 8  # 4 lanes x 2 ops

    def test_fmla_lane_text(self):
        ins = fmla("v16", "v4", "v12", lane=2)
        assert ".s[2]" in ins.text

    def test_fmadd_scalar_flops(self):
        assert fmadd_scalar("v1", "v2", "v3").flops == 2

    def test_fmul_fadd(self):
        assert fmul("v1", "v2", "v3").flops == 4
        assert fadd("v1", "v2", "v3").flops == 4
        assert fadd("v1", "v2", "v3").latency_key == "fadd"

    def test_dup_is_alu(self):
        assert dup("v1", "v2").port == "alu"

    def test_stores_read_their_source(self):
        s = str_q("v4", "x2", offset=16)
        assert "v4" in s.reads and not s.writes
        assert str_s("v4", "x2").mem_bytes == 4

    def test_loop_control(self):
        assert subs_imm("x3", "x3", 1).port == "alu"
        assert branch_nz("x3").port == "branch"

    def test_wrong_register_kind_rejected(self):
        with pytest.raises(IsaError):
            ldr_q("x0", "x1")
        with pytest.raises(IsaError):
            fmla("x1", "v2", "v3")
        with pytest.raises(IsaError):
            ldr_s("v1", "v2")

    def test_totals(self):
        seq = [fmla("v1", "v2", "v3"), ldr_q("v4", "x0"), str_q("v1", "x1")]
        assert total_flops(seq) == 8
        assert total_mem_bytes(seq) == 32


def _tiny_kernel(unroll=1):
    body = []
    for _ in range(unroll):
        body.append(ldr_q("v4", "x0", post_inc=16))
        body.append(fmla("v16", "v4", "v12", lane=0))
    body.append(subs_imm("x3", "x3", 1))
    body.append(branch_nz("x3"))
    return KernelSequence(
        name="tiny",
        prologue=(movi_zero("v16"),),
        body=tuple(body),
        epilogue=(str_q("v16", "x2"),),
        meta={"mr": 4, "nr": 1, "unroll": unroll},
    )


class TestKernelSequence:
    def test_empty_body_rejected(self):
        with pytest.raises(IsaError):
            KernelSequence("bad", (), (), (), {})

    def test_non_instruction_rejected(self):
        with pytest.raises(IsaError):
            KernelSequence("bad", (), ("nop",), (), {})

    def test_meta_accessors(self):
        k = _tiny_kernel(unroll=2)
        assert k.mr == 4 and k.nr == 1 and k.unroll == 2

    def test_body_flops(self):
        k = _tiny_kernel(unroll=3)
        assert k.body_flops == 3 * 8
        assert k.flops_per_kstep == 8.0

    def test_port_histogram(self):
        k = _tiny_kernel()
        hist = k.port_histogram()
        assert hist["load"] == 1 and hist["fma"] == 1
        assert hist["alu"] == 1 and hist["branch"] == 1

    def test_instruction_count_and_bytes(self):
        k = _tiny_kernel()
        assert k.instruction_count() == 1 + 4 + 1
        assert k.encoded_bytes() == 4 * k.instruction_count()

    def test_listing_contains_loop_label(self):
        text = _tiny_kernel().listing()
        assert ".loop:" in text
        assert "fmla" in text

    def test_registers_used(self):
        k = _tiny_kernel()
        regs = k.registers_used()
        assert "v16" in regs and "x0" in regs
        assert k.vector_registers_used() == 3  # v4, v12, v16

    def test_concat_bodies(self):
        merged = concat_bodies("merged", [_tiny_kernel(), _tiny_kernel()])
        assert merged.instruction_count() == 2 * _tiny_kernel().instruction_count()

    def test_concat_empty_rejected(self):
        with pytest.raises(IsaError):
            concat_bodies("x", [])
