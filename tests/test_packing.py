"""Unit + property tests for packing routines and their cost model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blas.base import make_cache_model
from repro.packing import (
    PackingCostModel,
    a_sliver,
    b_sliver,
    pack_a,
    pack_b,
    pack_loop_kernel,
    unpack_a,
    unpack_b,
)
from repro.util import make_rng, random_matrix
from repro.util.errors import LayoutError


class TestPackA:
    def test_round_trip(self, rng):
        block = random_matrix(rng, 13, 9)
        packed = pack_a(block, mr=8)
        np.testing.assert_array_equal(unpack_a(packed), block)

    def test_padding_zeroed(self, rng):
        packed = pack_a(random_matrix(rng, 13, 9), mr=8)
        assert packed.padded_rows == 16
        np.testing.assert_array_equal(packed.data[13:, :], 0)

    def test_element_moves_count_padding(self, rng):
        packed = pack_a(random_matrix(rng, 13, 9), mr=8)
        assert packed.element_moves == 16 * 9

    def test_sliver_views(self, rng):
        block = random_matrix(rng, 16, 4)
        packed = pack_a(block, mr=8)
        np.testing.assert_array_equal(a_sliver(packed, 0), block[:8, :])
        np.testing.assert_array_equal(a_sliver(packed, 1), block[8:, :])

    def test_sliver_out_of_range(self, rng):
        packed = pack_a(random_matrix(rng, 16, 4), mr=8)
        with pytest.raises(LayoutError):
            a_sliver(packed, 2)

    def test_rejects_non_2d(self):
        with pytest.raises(LayoutError):
            pack_a(np.zeros(4, dtype=np.float32), mr=8)


class TestPackB:
    def test_round_trip(self, rng):
        panel = random_matrix(rng, 9, 13)
        packed = pack_b(panel, nr=4)
        np.testing.assert_array_equal(unpack_b(packed), panel)

    def test_padding(self, rng):
        packed = pack_b(random_matrix(rng, 9, 13), nr=4)
        assert packed.padded_cols == 16
        np.testing.assert_array_equal(packed.data[:, 13:], 0)

    def test_sliver(self, rng):
        panel = random_matrix(rng, 9, 8)
        packed = pack_b(panel, nr=4)
        np.testing.assert_array_equal(b_sliver(packed, 1), panel[:, 4:8])

    def test_sliver_out_of_range(self, rng):
        packed = pack_b(random_matrix(rng, 9, 8), nr=4)
        with pytest.raises(LayoutError):
            b_sliver(packed, 2)

    @settings(max_examples=40, deadline=None)
    @given(
        rows=st.integers(min_value=1, max_value=50),
        cols=st.integers(min_value=1, max_value=50),
        mr=st.sampled_from([4, 8, 16]),
        nr=st.sampled_from([4, 8, 12]),
    )
    def test_gemm_from_packed_equals_numpy(self, rows, cols, mr, nr):
        # the packed padded product, trimmed, must equal the dense product
        rng = make_rng(rows * 977 + cols)
        a = random_matrix(rng, rows, 17)
        b = random_matrix(rng, 17, cols)
        pa = pack_a(a, mr)
        pb = pack_b(b, nr)
        c_pad = pa.data @ pb.data
        np.testing.assert_allclose(
            c_pad[:rows, :cols], a @ b, rtol=1e-5, atol=1e-5
        )


class TestPackLoopKernel:
    def test_contiguous_moves_more_per_iter(self):
        seq = pack_loop_kernel(True, lanes=4, unroll=4)
        assert seq.meta["elements"] == 16

    def test_strided_has_scalar_gathers(self):
        seq = pack_loop_kernel(False, lanes=4, unroll=2)
        assert any("sload" in ins.tags for ins in seq.body)

    def test_contiguous_is_vector_loads(self):
        seq = pack_loop_kernel(True, lanes=4, unroll=2)
        assert all("sload" not in ins.tags for ins in seq.body)


class TestPackingCostModel:
    @pytest.fixture()
    def cost(self, machine):
        return PackingCostModel(machine.core, make_cache_model(machine))

    def test_zero_extent_is_free(self, cost):
        cycles, moves = cost.pack_cycles(0, 10, 4, True)
        assert cycles == 0.0 and moves == 0

    def test_strided_costs_more(self, cost):
        seq, _ = cost.pack_cycles(100, 100, 4, source_contiguous=True,
                                  source_resident="l2")
        strided, _ = cost.pack_cycles(100, 100, 4, source_contiguous=False,
                                      source_resident="l2")
        assert strided > seq

    def test_cost_scales_with_elements(self, cost):
        small, _ = cost.pack_cycles(50, 50, 4, True, source_resident="l2")
        large, _ = cost.pack_cycles(100, 100, 4, True, source_resident="l2")
        assert large > 3 * small

    def test_padded_elements_override(self, cost):
        plain, moves_plain = cost.pack_cycles(10, 10, 4, True,
                                              source_resident="l2")
        padded, moves_padded = cost.pack_cycles(
            10, 10, 4, True, source_resident="l2", padded_elements=200
        )
        assert moves_plain == 100 and moves_padded == 200
        assert padded > plain

    def test_cold_source_costs_more(self, cost):
        warm, _ = cost.pack_cycles(100, 100, 4, True, source_resident="l2")
        cold, _ = cost.pack_cycles(100, 100, 4, True, source_resident="mem")
        assert cold > warm

    def test_cache_model_override(self, cost, machine):
        contended = make_cache_model(machine, active_l2_sharers=4,
                                     numa_remote_fraction=0.8,
                                     bandwidth_share=1.0)
        base, _ = cost.pack_cycles(200, 200, 4, False, source_resident="mem")
        worse, _ = cost.pack_cycles(200, 200, 4, False, source_resident="mem",
                                    cache_model=contended)
        assert worse > base
