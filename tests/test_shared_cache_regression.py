"""Regression tests for the shared-cache aliasing bug.

The steady-state analyzer and the analyzer registry were originally keyed
by ``id()`` of kernel/core objects; after garbage collection a new object
could reuse the address and silently inherit a *different* configuration's
cached results (discovered as cross-test pollution between the a64fx
sensitivity machine and the Phytium baseline).  These tests pin the
value-based keying that fixed it.
"""

import gc

import numpy as np

from repro.blas import shared_analyzer, shared_generator
from repro.kernels import JitKernelFactory, KernelSpec, MicroKernelGenerator
from repro.machine import a64fx_like, phytium2000plus
from repro.pipeline import SteadyStateAnalyzer


class TestAnalyzerRegistry:
    def test_equal_cores_share_one_analyzer(self):
        m1 = phytium2000plus()
        m2 = phytium2000plus()
        assert m1.core is not m2.core
        assert shared_analyzer(m1) is shared_analyzer(m2)

    def test_different_cores_get_different_analyzers(self):
        assert shared_analyzer(phytium2000plus()) is not \
            shared_analyzer(a64fx_like())

    def test_survives_gc_of_machines(self):
        wide = a64fx_like()
        wide_analyzer = shared_analyzer(wide)
        del wide
        gc.collect()
        base = phytium2000plus()
        assert shared_analyzer(base) is not wide_analyzer


class TestSteadyStateKeying:
    def test_same_name_across_generators_reuses_analysis(self, machine):
        analyzer = SteadyStateAnalyzer(machine.core)
        spec = KernelSpec(8, 4, unroll=2, label="keyed")
        k1 = MicroKernelGenerator().generate(spec)
        k2 = MicroKernelGenerator().generate(spec)
        assert k1 is not k2
        assert k1.name == k2.name
        s1 = analyzer.analyze(k1)
        s2 = analyzer.analyze(k2)
        assert s1 is s2  # value-keyed memoization

    def test_gc_cannot_alias_distinct_kernels(self, machine):
        analyzer = SteadyStateAnalyzer(machine.core)
        gen = MicroKernelGenerator()
        slow = gen.generate(KernelSpec(1, 4, unroll=2, style="naive",
                                       label="alias-slow"))
        slow_state = analyzer.analyze(slow)
        del gen, slow
        gc.collect()
        fast = MicroKernelGenerator().generate(
            KernelSpec(16, 4, unroll=2, label="alias-fast")
        )
        fast_state = analyzer.analyze(fast)
        assert fast_state.cycles_per_iter != slow_state.cycles_per_iter

    def test_lane_count_is_part_of_the_key(self, machine):
        # two specs identical except for lanes must not collide
        analyzer = SteadyStateAnalyzer(machine.core)
        gen = shared_generator()
        k4 = gen.generate(KernelSpec(8, 4, unroll=2, lanes=4, label="lk"))
        k2 = gen.generate(KernelSpec(8, 4, unroll=2, lanes=2, label="lk"))
        assert k4.name != k2.name
        s4 = analyzer.analyze(k4)
        s2 = analyzer.analyze(k2)
        # same math, but the 2-lane variant needs twice the fmla ops
        assert s2.cycles_per_iter > s4.cycles_per_iter


class TestCrossMachineIsolation:
    def test_same_experiment_on_both_machines_stays_consistent(self):
        """Run the a64fx machine, then verify Phytium numbers unchanged."""
        from repro.blas import make_blasfeo

        base = phytium2000plus()
        before = make_blasfeo(base).cost_gemm(40, 40, 40).total_cycles

        wide = a64fx_like()
        make_blasfeo(wide).cost_gemm(40, 40, 40)
        del wide
        gc.collect()

        after = make_blasfeo(phytium2000plus()).cost_gemm(
            40, 40, 40
        ).total_cycles
        assert after == before

    def test_jit_factories_are_machine_specific(self):
        jit_base = JitKernelFactory(phytium2000plus().core)
        jit_wide = JitKernelFactory(a64fx_like().core)
        assert jit_base.lanes == 4
        assert jit_wide.lanes == 16
        assert jit_base.main_spec.name != jit_wide.main_spec.name

    def test_efficiencies_differ_between_machines(self):
        from repro.blas import make_openblas

        base = phytium2000plus()
        wide = a64fx_like()
        e_base = make_openblas(base).cost_gemm(64, 64, 64).efficiency(
            base, np.float32
        )
        e_wide = make_openblas(wide).cost_gemm(64, 64, 64).efficiency(
            wide, np.float32
        )
        assert e_base != e_wide


class TestAnalyzerLruBound:
    """The shared-analyzer registry is a bounded LRU with statistics."""

    @staticmethod
    def _variant_machines(count):
        """Machines whose cores differ only in frequency (distinct keys)."""
        import dataclasses
        from types import SimpleNamespace

        base = phytium2000plus().core
        return [
            SimpleNamespace(core=dataclasses.replace(
                base, freq_hz=base.freq_hz + 1000.0 * (i + 1)
            ))
            for i in range(count)
        ]

    def test_cache_info_reports_the_contract(self):
        from repro.blas import ANALYZER_CACHE_MAX, shared_analyzer_cache_info

        info = shared_analyzer_cache_info()
        assert set(info) == {"entries", "maxsize", "hits", "misses",
                             "evictions"}
        assert info["maxsize"] == ANALYZER_CACHE_MAX
        assert 0 <= info["entries"] <= info["maxsize"]

    def test_entry_count_stays_bounded_under_sweeps(self):
        from repro.blas import shared_analyzer_cache_info

        for machine in self._variant_machines(12):
            shared_analyzer(machine)
        info = shared_analyzer_cache_info()
        assert info["entries"] <= info["maxsize"]
        assert info["evictions"] >= 4  # 12 variants through an 8-slot LRU

    def test_hits_and_misses_are_counted(self):
        from repro.blas import shared_analyzer_cache_info

        machine = self._variant_machines(1)[0]
        before = shared_analyzer_cache_info()
        first = shared_analyzer(machine)
        second = shared_analyzer(machine)
        after = shared_analyzer_cache_info()
        assert first is second
        assert after["hits"] >= before["hits"] + 1
        assert after["misses"] >= before["misses"]

    def test_lru_keeps_the_hot_entry(self):
        base = phytium2000plus()
        hot = shared_analyzer(base)
        for machine in self._variant_machines(7):
            shared_analyzer(machine)
            # re-touching the hot entry keeps it most-recently-used
            assert shared_analyzer(base) is hot
