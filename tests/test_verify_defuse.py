"""Unit tests for the static verifier: def-use, budget and diagnostics."""

import pytest

from repro.isa import (
    KernelSequence,
    branch_nz,
    dup,
    fmla,
    ldr_q,
    movi_zero,
    str_q,
    subs_imm,
)
from repro.isa.instructions import Instruction
from repro.util import KernelVerificationError
from repro.verify import (
    RULES,
    KernelVerifier,
    analyze_defuse,
    assert_kernel_ok,
    make_diagnostic,
    rules_table,
    verify_kernel,
)


def looped(name, prologue, body, epilogue=(), meta=None):
    """A minimal kernel with standard loop control appended to the body."""
    return KernelSequence(
        name=name,
        prologue=tuple(prologue),
        body=tuple(body) + (subs_imm("x3", "x3", 1), branch_nz("x3")),
        epilogue=tuple(epilogue),
        meta=meta or {},
    )


def good_kernel():
    """A well-formed 1-accumulator rank-1 update kernel."""
    return looped(
        "good",
        [movi_zero("v0")],
        [ldr_q("v1", "x0", post_inc=16),
         ldr_q("v2", "x1", post_inc=16),
         fmla("v0", "v1", "v2")],
        epilogue=[str_q("v0", "x2")],
    )


class TestUninitRead:
    def test_clean_kernel_has_no_errors(self):
        result = analyze_defuse(good_kernel())
        assert not [d for d in result.diagnostics if d.severity == "error"]

    def test_read_before_write_fires_v001(self):
        k = looped("bad", [movi_zero("v1"), movi_zero("v2")],
                   [fmla("v0", "v1", "v2")])
        result = analyze_defuse(k)
        rules = [d.rule for d in result.diagnostics]
        assert "V001-uninit-read" in rules

    def test_stripped_prologue_fires_v001(self):
        g = good_kernel()
        k = KernelSequence(name="stripped", prologue=(), body=g.body,
                           epilogue=g.epilogue, meta=dict(g.meta))
        result = analyze_defuse(k)
        assert any(d.rule == "V001-uninit-read" and d.register == "v0"
                   for d in result.diagnostics)

    def test_each_register_reported_once_despite_doubled_body(self):
        k = looped("bad", [movi_zero("v1"), movi_zero("v2")],
                   [fmla("v0", "v1", "v2")])
        result = analyze_defuse(k)
        v001 = [d for d in result.diagnostics
                if d.rule == "V001-uninit-read"]
        assert len(v001) == 1

    def test_xregs_are_abi_live_in(self):
        # pointers/counters arrive live-in; reading them is not a leak
        result = analyze_defuse(good_kernel())
        assert not any(d.register.startswith("x")
                       for d in result.diagnostics
                       if d.rule == "V001-uninit-read")


class TestAccumulatorClobber:
    def test_clobber_fires_v002(self):
        k = looped(
            "clobber",
            [movi_zero("v0"), movi_zero("v1"), movi_zero("v2")],
            [fmla("v0", "v1", "v2"), movi_zero("v0")],
        )
        result = analyze_defuse(k)
        assert any(d.rule == "V002-acc-clobber" and d.register == "v0"
                   for d in result.diagnostics)

    def test_dup_temporary_is_not_an_accumulator(self):
        # v3 is rebuilt by dup each iteration: legitimate overwrite
        k = looped(
            "dup-temp",
            [movi_zero("v0"), movi_zero("v1"), movi_zero("v2")],
            [dup("v3", "v2"), fmla("v0", "v1", "v3")],
            epilogue=[str_q("v0", "x2")],
        )
        result = analyze_defuse(k)
        assert "v3" not in result.accumulators
        assert not any(d.rule == "V002-acc-clobber"
                       for d in result.diagnostics)

    def test_accumulators_detected(self):
        result = analyze_defuse(good_kernel())
        assert result.accumulators == ("v0",)


class TestDeadWrite:
    def test_unconsumed_load_fires_v003(self):
        k = looped(
            "dead",
            [movi_zero("v0"), movi_zero("v1"), movi_zero("v2")],
            [ldr_q("v9", "x0"), fmla("v0", "v1", "v2")],
            epilogue=[str_q("v0", "x2")],
        )
        result = analyze_defuse(k)
        assert any(d.rule == "V003-dead-write" and d.register == "v9"
                   for d in result.diagnostics)

    def test_v003_is_advisory(self):
        assert RULES["V003-dead-write"].severity == "info"

    def test_stored_result_is_consumed(self):
        result = analyze_defuse(good_kernel())
        assert not any(d.rule == "V003-dead-write" and d.register == "v0"
                       for d in result.diagnostics)


class TestLiveness:
    def test_high_water_mark(self):
        # at the fmla, v0 v1 v2 are simultaneously live
        result = analyze_defuse(good_kernel())
        assert result.live_high_water == 3

    def test_register_budget_v101(self, machine):
        report = KernelVerifier(machine.core, n_registers=2).verify(
            good_kernel()
        )
        assert any(d.rule == "V101-reg-budget" for d in report.diagnostics)
        assert not report.ok

    def test_shape_pressure_v102(self, machine):
        k = looped(
            "pressure",
            [movi_zero("v0"), movi_zero("v1"), movi_zero("v2")],
            [fmla("v0", "v1", "v2")],
            epilogue=[str_q("v0", "x2")],
            meta={"mr": 32, "nr": 32, "lanes": 4},
        )
        report = KernelVerifier(machine.core).verify(k)
        assert any(d.rule == "V102-reg-pressure"
                   for d in report.diagnostics)


class TestVerifierAndReport:
    def test_unknown_latency_key_v202(self, machine):
        k = looped(
            "mystery",
            [movi_zero("v0"), movi_zero("v1"), movi_zero("v2")],
            [fmla("v0", "v1", "v2"),
             Instruction(text="mystery v0", port="alu",
                         latency_key="mystery", reads=("v0",),
                         writes=("v0",))],
            epilogue=[str_q("v0", "x2")],
        )
        report = KernelVerifier(machine.core).verify(k)
        assert any(d.rule == "V202-unknown-latency"
                   for d in report.diagnostics)
        assert report.bounds is None  # bounds need valid latency keys

    def test_structural_only_without_core(self):
        report = verify_kernel(good_kernel())
        assert report.ok
        assert report.bounds is None

    def test_bounds_attached_with_core(self, machine):
        report = verify_kernel(good_kernel(), machine.core)
        assert report.bounds is not None
        assert report.bounds.cycles_lower_bound > 0

    def test_assert_kernel_ok_passes_good(self, machine):
        assert assert_kernel_ok(good_kernel(), machine.core).ok

    def test_assert_kernel_ok_raises_on_bad(self, machine):
        g = good_kernel()
        bad = KernelSequence(name="bad", prologue=(), body=g.body,
                             epilogue=g.epilogue, meta=dict(g.meta))
        with pytest.raises(KernelVerificationError) as err:
            assert_kernel_ok(bad, machine.core)
        assert "V001-uninit-read" in str(err.value)

    def test_report_render_and_dict(self, machine):
        g = good_kernel()
        bad = KernelSequence(name="bad", prologue=(), body=g.body,
                             epilogue=g.epilogue, meta=dict(g.meta))
        report = verify_kernel(bad, machine.core)
        text = report.render()
        assert "FAIL" in text and "V001-uninit-read" in text
        d = report.to_dict()
        assert d["ok"] is False
        assert any(item["rule"] == "V001-uninit-read"
                   for item in d["diagnostics"])

    def test_diagnostics_sorted_by_severity(self, machine):
        g = good_kernel()
        bad = KernelSequence(name="bad", prologue=(),
                             body=(ldr_q("v9", "x0"),) + g.body,
                             epilogue=g.epilogue, meta=dict(g.meta))
        report = verify_kernel(bad, machine.core)
        sev_rank = {"error": 0, "warning": 1, "info": 2}
        ranks = [sev_rank[d.severity] for d in report.diagnostics]
        assert ranks == sorted(ranks)

    def test_make_diagnostic_uses_registry_severity(self):
        d = make_diagnostic("V001-uninit-read", "msg", "k")
        assert d.severity == "error"
        d = make_diagnostic("V201-latency-bound", "msg", "k")
        assert d.severity == "info"

    def test_rules_table_lists_all_rules(self):
        text = rules_table()
        for rule_id in RULES:
            assert rule_id in text
