"""Unit tests for the analytic timing models and the breakdown type."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.timing import (
    GemmTiming,
    arithmetic_intensity,
    fma_width,
    gemm_flops,
    load_width,
    num_fma,
    num_load,
    p2c,
    p2c_derived,
)
from repro.util.errors import ConfigError


class TestPaperEquations:
    def test_load_width_matches_paper(self, machine):
        # 16-byte vector registers, fp32: Load_width = 4
        assert load_width(machine.core, np.float32) == 4

    def test_fma_width_matches_paper(self, machine):
        # FMA_width = 2 * 16/sizeof(float) = 8
        assert fma_width(machine.core, np.float32) == 8

    def test_num_load_counts_both_operands(self):
        # (M*K + K*N) / Load_width
        assert num_load(10, 20, 30, 4) == (10 * 30 + 30 * 20) / 4

    def test_num_fma(self):
        assert num_fma(10, 20, 30, 8) == 2 * 10 * 20 * 30 / 8

    def test_p2c_paper_form(self):
        assert p2c(10, 10) == pytest.approx(20 / 200)

    def test_p2c_decreases_with_m_and_n(self):
        assert p2c(4, 100) > p2c(8, 100) > p2c(16, 100)
        assert p2c(100, 4) > p2c(100, 8)

    def test_p2c_k_independent(self):
        # the central claim of Sec. III-A
        assert p2c_derived(16, 100, 2) == pytest.approx(
            p2c_derived(16, 100, 200)
        )

    @given(st.integers(2, 300), st.integers(2, 300), st.integers(2, 300))
    def test_p2c_derived_positive_and_k_free(self, m, n, k):
        v1 = p2c_derived(m, n, k)
        v2 = p2c_derived(m, n, k + 17)
        assert v1 > 0
        assert v1 == pytest.approx(v2)

    def test_gemm_flops(self):
        assert gemm_flops(3, 4, 5) == 120

    def test_arithmetic_intensity_grows_with_size(self):
        assert arithmetic_intensity(100, 100, 100) > arithmetic_intensity(
            10, 10, 10
        )

    def test_rejects_bad_dims(self):
        with pytest.raises(ConfigError):
            gemm_flops(0, 4, 5)
        with pytest.raises(ConfigError):
            p2c(-1, 4)


class TestGemmTiming:
    def make(self, **kw):
        defaults = dict(
            kernel_cycles=800.0,
            pack_a_cycles=50.0,
            pack_b_cycles=150.0,
            sync_cycles=0.0,
            useful_flops=8000,
            executed_flops=8800.0,
        )
        defaults.update(kw)
        return GemmTiming(**defaults)

    def test_total(self):
        assert self.make().total_cycles == 1000.0

    def test_rejects_negative(self):
        with pytest.raises(ConfigError):
            GemmTiming(kernel_cycles=-1)

    def test_fractions(self):
        t = self.make()
        assert t.fraction("kernel") == pytest.approx(0.8)
        assert t.fraction("pack_b") == pytest.approx(0.15)
        assert t.packing_cycles == 200.0

    def test_breakdown_percent_sums_to_100(self):
        bp = self.make().breakdown_percent()
        assert sum(bp.values()) == pytest.approx(100.0)

    def test_empty_breakdown(self):
        bp = GemmTiming().breakdown_percent()
        assert all(v == 0.0 for v in bp.values())

    def test_gflops_and_efficiency(self, machine):
        t = self.make(kernel_cycles=1000.0, pack_a_cycles=0.0,
                      pack_b_cycles=0.0, useful_flops=8000)
        # 8000 flops in 1000 cycles = 8 flops/cycle = fp32 peak
        assert t.efficiency(machine, np.float32, 1) == pytest.approx(1.0)

    def test_kernel_efficiency_excludes_packing(self, machine):
        t = self.make(kernel_cycles=1000.0, pack_a_cycles=0.0,
                      pack_b_cycles=9000.0, useful_flops=8000)
        assert t.kernel_efficiency(machine, np.float32) == pytest.approx(1.0)
        assert t.efficiency(machine, np.float32) == pytest.approx(0.1)

    def test_padding_waste(self):
        t = self.make(useful_flops=80, executed_flops=100.0)
        assert t.padding_waste == pytest.approx(0.2)

    def test_padding_waste_clamped(self):
        t = self.make(useful_flops=100, executed_flops=0.0)
        assert t.padding_waste == 0.0

    def test_merged_with(self):
        a = self.make()
        b = self.make(kernel_cycles=200.0)
        merged = a.merged_with(b)
        assert merged.kernel_cycles == 1000.0
        assert merged.useful_flops == 16000
        assert merged.total_cycles == a.total_cycles + b.total_cycles

    def test_merged_extra_dicts(self):
        a = self.make(extra={"x": 1.0})
        b = self.make(extra={"x": 2.0, "y": 3.0})
        merged = a.merged_with(b)
        assert merged.extra == {"x": 3.0, "y": 3.0}

    def test_seconds(self, machine):
        t = self.make(kernel_cycles=machine.core.freq_hz, pack_a_cycles=0.0,
                      pack_b_cycles=0.0)
        assert t.seconds(machine) == pytest.approx(1.0)
