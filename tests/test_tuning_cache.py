"""Tuning-cache persistence: round-trips, bucketing, invalidation, LRU."""

import json

import numpy as np
import pytest

from repro.machine import graviton2_like
from repro.tuning import (
    TUNING_SCHEMA_VERSION,
    AdaptiveTuner,
    TuningCache,
    bucket_dim,
    bucket_shape,
    machine_fingerprint,
    plan_key,
)


@pytest.fixture(scope="module")
def tuner(machine):
    """One disk-less tuner for plan construction (module-shared)."""
    return AdaptiveTuner(machine, cache=TuningCache(machine, path=""))


@pytest.fixture()
def cache_path(tmp_path):
    return str(tmp_path / "tuning.json")


class TestBucketing:
    def test_small_shapes_exact(self):
        for x in (1, 7, 24, 64):
            assert bucket_dim(x) == x

    def test_mid_shapes_round_to_16(self):
        assert bucket_dim(65) == 80
        assert bucket_dim(100) == 112
        assert bucket_dim(256) == 256

    def test_large_shapes_round_to_64(self):
        assert bucket_dim(257) == 320
        assert bucket_dim(2048) == 2048

    def test_bucket_shape_componentwise(self):
        assert bucket_shape(24, 100, 300) == (24, 112, 320)

    def test_plan_key_token_includes_threads_and_dtype(self):
        key = plan_key(24, 100, 100, np.float32, threads=4)
        assert key.token == "24x112x112:float32:t4"

    def test_rejects_nonpositive(self):
        from repro.util import ReproError

        with pytest.raises(ReproError):
            bucket_dim(0)


class TestFingerprint:
    def test_stable_for_same_config(self, machine):
        assert machine_fingerprint(machine) == machine_fingerprint(machine)

    def test_differs_across_machines(self, machine):
        assert (machine_fingerprint(machine)
                != machine_fingerprint(graviton2_like()))

    def test_differs_across_dtypes(self, machine):
        assert (machine_fingerprint(machine, np.float32)
                != machine_fingerprint(machine, np.float64))


class TestRoundTrip:
    def test_save_then_reload_hits(self, machine, tuner, cache_path):
        plan = tuner.search(8, 8, 8)
        cache = TuningCache(machine, path=cache_path)
        cache.put(plan)
        assert cache.dirty
        cache.save()
        assert not cache.dirty

        fresh = TuningCache(machine, path=cache_path)
        assert len(fresh) == 1
        hit = fresh.get(8, 8, 8)
        assert hit is not None
        assert hit.source == "cache"
        assert hit.key == plan.key
        assert hit.kernel_shape == plan.kernel_shape
        assert hit.total_cycles == pytest.approx(plan.total_cycles)
        assert fresh.stats.hits == 1

    def test_bucketed_lookup_shares_entries(self, machine, tuner, cache_path):
        plan = tuner.search(24, 100, 100)
        cache = TuningCache(machine, path=cache_path)
        cache.put(plan)
        # 100 and 112 land in the same 16-multiple bucket
        assert cache.get(24, 112, 112) is not None
        assert cache.get(24, 100, 100) is not None
        assert cache.get(24, 64, 64) is None

    def test_memory_only_cache_never_touches_disk(self, machine, tuner):
        cache = TuningCache(machine, path="")
        cache.put(tuner.search(8, 8, 8))
        assert cache.save() == ""
        assert len(cache) == 1


class TestInvalidation:
    def test_machine_change_discards_file(self, machine, tuner, cache_path):
        cache = TuningCache(machine, path=cache_path)
        cache.put(tuner.search(8, 8, 8))
        cache.save()

        other = TuningCache(graviton2_like(), path=cache_path)
        assert len(other) == 0
        assert other.stats.invalidations == 1

    def test_dtype_change_discards_file(self, machine, tuner, cache_path):
        cache = TuningCache(machine, path=cache_path)
        cache.put(tuner.search(8, 8, 8))
        cache.save()

        other = TuningCache(machine, np.float64, path=cache_path)
        assert len(other) == 0
        assert other.stats.invalidations == 1

    def test_schema_bump_discards_file(self, machine, tuner, cache_path):
        cache = TuningCache(machine, path=cache_path)
        cache.put(tuner.search(8, 8, 8))
        cache.save()
        with open(cache_path) as fh:
            data = json.load(fh)
        data["schema"] = TUNING_SCHEMA_VERSION + 1
        with open(cache_path, "w") as fh:
            json.dump(data, fh)

        fresh = TuningCache(machine, path=cache_path)
        assert len(fresh) == 0
        assert fresh.stats.invalidations == 1

    def test_corrupt_file_discarded_not_fatal(self, machine, cache_path):
        with open(cache_path, "w") as fh:
            fh.write("{not json")
        cache = TuningCache(machine, path=cache_path)
        assert len(cache) == 0
        assert cache.stats.invalidations == 1

    def test_corrupt_entry_skipped_others_kept(self, machine, tuner,
                                               cache_path):
        cache = TuningCache(machine, path=cache_path)
        cache.put(tuner.search(8, 8, 8))
        cache.put(tuner.search(12, 12, 12))
        cache.save()
        with open(cache_path) as fh:
            data = json.load(fh)
        first = sorted(data["entries"])[0]
        del data["entries"][first]["spec"]
        with open(cache_path, "w") as fh:
            json.dump(data, fh)

        fresh = TuningCache(machine, path=cache_path)
        assert len(fresh) == 1

    def test_clear_removes_file(self, machine, tuner, cache_path):
        import os

        cache = TuningCache(machine, path=cache_path)
        cache.put(tuner.search(8, 8, 8))
        cache.save()
        assert os.path.exists(cache_path)
        cache.clear()
        assert not os.path.exists(cache_path)
        assert len(cache) == 0


class TestLru:
    def test_capacity_evicts_oldest(self, machine, tuner):
        cache = TuningCache(machine, path="", capacity=2)
        p1 = tuner.search(4, 4, 4)
        p2 = tuner.search(8, 8, 8)
        p3 = tuner.search(12, 12, 12)
        cache.put(p1)
        cache.put(p2)
        cache.get(4, 4, 4)  # touch p1 so p2 is now oldest
        cache.put(p3)
        assert len(cache) == 2
        assert cache.get(8, 8, 8) is None
        assert cache.get(4, 4, 4) is not None
        assert cache.get(12, 12, 12) is not None

    def test_stats_track_hits_and_misses(self, machine, tuner):
        cache = TuningCache(machine, path="")
        cache.put(tuner.search(8, 8, 8))
        cache.get(8, 8, 8)
        cache.get(9, 9, 9)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_summary_and_export(self, machine, tuner):
        cache = TuningCache(machine, path="")
        cache.put(tuner.search(8, 8, 8))
        summary = cache.summary()
        assert summary["entries"] == 1
        assert summary["fingerprint"] == cache.fingerprint
        exported = json.loads(cache.export_json())
        assert exported["schema"] == TUNING_SCHEMA_VERSION
        assert len(exported["entries"]) == 1
