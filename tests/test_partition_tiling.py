"""Thread partitions exactly tile the iteration space (dynamic oracle).

The V411 static race check declares two strips racy iff their row
intervals overlap under the canonical placement
(:func:`repro.parallel.strip_spans`).  These tests are the dynamic
oracle that check is validated against: for every golden Fig. 5 /
Fig. 10 shape at 1/4/64 threads, the per-thread chunks of every
partitioning scheme must cover each point of the M (or M x N) iteration
space exactly once — no gap, no overlap.
"""

import pytest

from repro.parallel import (
    blis_factorization,
    grid_partition,
    openblas_partition,
    split_even,
    strip_spans,
)
from repro.workloads import sweeps

THREAD_COUNTS = (1, 4, 64)


def golden_shapes():
    shapes = list(sweeps.golden_single_thread_grid())
    shapes.extend(sweeps.golden_mt_grid())
    seen, out = set(), []
    for s in shapes:
        if s not in seen:
            seen.add(s)
            out.append(s)
    return out


GOLDEN_SHAPES = golden_shapes()


def assert_exact_1d_tiling(extent, chunks):
    """Strip spans partition [0, extent): each point covered once."""
    spans = strip_spans(extent, chunks)
    assert len(spans) == len(chunks)
    coverage = [0] * extent
    for start, end in spans:
        assert 0 <= start <= end <= extent
        for row in range(start, end):
            coverage[row] += 1
    assert all(c == 1 for c in coverage), (
        f"gap/overlap in strips of extent {extent}: {spans}"
    )


class TestSplitEvenStrips:
    """split_even chunks tile [0, M) exactly under strip_spans."""

    @pytest.mark.parametrize("threads", THREAD_COUNTS)
    @pytest.mark.parametrize("shape", GOLDEN_SHAPES,
                             ids=lambda s: "x".join(map(str, s)))
    def test_exact_m_tiling(self, shape, threads):
        m = shape[0]
        assert_exact_1d_tiling(m, split_even(m, threads))

    @pytest.mark.parametrize("threads", THREAD_COUNTS)
    @pytest.mark.parametrize("shape", GOLDEN_SHAPES,
                             ids=lambda s: "x".join(map(str, s)))
    def test_conservation(self, shape, threads):
        m = shape[0]
        chunks = split_even(m, threads)
        assert sum(chunks) == m
        assert all(c >= 0 for c in chunks)
        assert max(chunks) - min(chunks) <= 1  # balanced

    def test_inflated_chunk_overlaps_successor(self):
        # the V411 mutation signature: +7 on chunk 0 overlaps strip 1
        chunks = split_even(64, 4)
        spans = strip_spans(64, (chunks[0] + 7,) + tuple(chunks[1:]))
        assert spans[0][1] > spans[1][0]

    def test_deflated_chunk_leaves_gap(self):
        chunks = split_even(64, 4)
        spans = strip_spans(64, (chunks[0] - 3,) + tuple(chunks[1:]))
        assert spans[0][1] < spans[1][0]


class TestOpenblasPartition:
    """The 1-D-over-M scheme conserves the full M x N output."""

    @pytest.mark.parametrize("threads", THREAD_COUNTS)
    @pytest.mark.parametrize("shape", GOLDEN_SHAPES,
                             ids=lambda s: "x".join(map(str, s)))
    def test_chunks_tile_output(self, shape, threads):
        m, n, _ = shape
        chunks = openblas_partition(m, n, threads)
        assert len(chunks) == threads
        assert all(nj == n for _, nj in chunks)
        assert_exact_1d_tiling(m, [mi for mi, _ in chunks])


class TestGridPartition:
    """The 2-D grid scheme covers each C element exactly once."""

    @pytest.mark.parametrize("threads", THREAD_COUNTS)
    @pytest.mark.parametrize("shape", GOLDEN_SHAPES,
                             ids=lambda s: "x".join(map(str, s)))
    def test_grid_covers_output_exactly(self, shape, threads):
        m, n, _ = shape
        chunks = grid_partition(m, n, threads)
        assert len(chunks) == threads
        # a grid is a cross product: recover the axis chunk lists and
        # require both to tile their extent exactly
        area = sum(mi * nj for mi, nj in chunks)
        assert area == m * n
        njs = [nj for _, nj in chunks]
        period = next(
            p for p in range(1, threads + 1)
            if threads % p == 0
            and all(njs[i] == njs[i % p] for i in range(threads))
            and all(
                len({chunks[b * p + i][0] for i in range(p)}) == 1
                for b in range(threads // p)
            )
            and sum(chunks[b * p][0] for b in range(threads // p)) == m
            and sum(njs[:p]) == n
        )
        assert_exact_1d_tiling(n, njs[:period])
        assert_exact_1d_tiling(
            m, [chunks[b * period][0] for b in range(threads // period)]
        )


class TestBlisFactorization:
    """The rule-based factorization never loses or duplicates threads."""

    @pytest.mark.parametrize("threads", THREAD_COUNTS)
    @pytest.mark.parametrize("shape", GOLDEN_SHAPES,
                             ids=lambda s: "x".join(map(str, s)))
    def test_thread_product_and_m_tiling(self, shape, threads):
        m, n, _ = shape
        fact = blis_factorization(m, n, threads, mr=8, nr=4)
        assert fact.threads == threads
        # the ic-way M split must itself tile [0, M) exactly
        assert_exact_1d_tiling(m, split_even(m, fact.ic))
