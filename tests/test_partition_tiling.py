"""Thread partitions exactly tile the iteration space (dynamic oracle).

The V411 static race check declares two strips racy iff their row
intervals overlap under the canonical placement
(:func:`repro.parallel.strip_spans`).  These tests are the dynamic
oracle that check is validated against: for every golden Fig. 5 /
Fig. 10 shape at 1/4/64 threads, the per-thread chunks of every
partitioning scheme must cover each point of the M (or M x N) iteration
space exactly once — no gap, no overlap.
"""

import pytest

from repro.parallel import (
    blis_factorization,
    core_class_weights,
    grid_partition,
    openblas_partition,
    split_even,
    strip_spans,
    weighted_spans,
    weighted_split,
)
from repro.workloads import sweeps

THREAD_COUNTS = (1, 4, 64)


def golden_shapes():
    shapes = list(sweeps.golden_single_thread_grid())
    shapes.extend(sweeps.golden_mt_grid())
    seen, out = set(), []
    for s in shapes:
        if s not in seen:
            seen.add(s)
            out.append(s)
    return out


GOLDEN_SHAPES = golden_shapes()


def assert_exact_1d_tiling(extent, chunks):
    """Strip spans partition [0, extent): each point covered once."""
    spans = strip_spans(extent, chunks)
    assert len(spans) == len(chunks)
    coverage = [0] * extent
    for start, end in spans:
        assert 0 <= start <= end <= extent
        for row in range(start, end):
            coverage[row] += 1
    assert all(c == 1 for c in coverage), (
        f"gap/overlap in strips of extent {extent}: {spans}"
    )


class TestSplitEvenStrips:
    """split_even chunks tile [0, M) exactly under strip_spans."""

    @pytest.mark.parametrize("threads", THREAD_COUNTS)
    @pytest.mark.parametrize("shape", GOLDEN_SHAPES,
                             ids=lambda s: "x".join(map(str, s)))
    def test_exact_m_tiling(self, shape, threads):
        m = shape[0]
        assert_exact_1d_tiling(m, split_even(m, threads))

    @pytest.mark.parametrize("threads", THREAD_COUNTS)
    @pytest.mark.parametrize("shape", GOLDEN_SHAPES,
                             ids=lambda s: "x".join(map(str, s)))
    def test_conservation(self, shape, threads):
        m = shape[0]
        chunks = split_even(m, threads)
        assert sum(chunks) == m
        assert all(c >= 0 for c in chunks)
        assert max(chunks) - min(chunks) <= 1  # balanced

    def test_inflated_chunk_overlaps_successor(self):
        # the V411 mutation signature: +7 on chunk 0 overlaps strip 1
        chunks = split_even(64, 4)
        spans = strip_spans(64, (chunks[0] + 7,) + tuple(chunks[1:]))
        assert spans[0][1] > spans[1][0]

    def test_deflated_chunk_leaves_gap(self):
        chunks = split_even(64, 4)
        spans = strip_spans(64, (chunks[0] - 3,) + tuple(chunks[1:]))
        assert spans[0][1] < spans[1][0]


class TestWeightedSpans:
    """Throughput-weighted strips tile [0, M) exactly like even ones."""

    # big/little-style asymmetries plus a lopsided and a zero-weight mix
    WEIGHT_PROFILES = {
        "big-little": lambda t: [2.0 if i < t // 2 else 1.0
                                 for i in range(t)],
        "lopsided": lambda t: [float(3 * i + 1) for i in range(t)],
        "one-dead": lambda t: [0.0 if (i == 1 and t > 1) else 1.0
                               for i in range(t)],
    }

    @pytest.mark.parametrize("profile", sorted(WEIGHT_PROFILES))
    @pytest.mark.parametrize("granule", (1, 8))
    @pytest.mark.parametrize("threads", THREAD_COUNTS)
    @pytest.mark.parametrize("shape", GOLDEN_SHAPES,
                             ids=lambda s: "x".join(map(str, s)))
    def test_exact_m_tiling(self, shape, threads, granule, profile):
        m = shape[0]
        weights = self.WEIGHT_PROFILES[profile](threads)
        chunks = weighted_split(m, weights, granule=granule)
        assert len(chunks) == threads
        assert sum(chunks) == m
        assert all(c >= 0 for c in chunks)
        # weighted strips place cumulatively (nominal = actual chunks):
        # each row of [0, m) is covered exactly once
        spans = weighted_spans(m, weights, granule=granule)
        coverage = [0] * m
        for start, end in spans:
            assert 0 <= start <= end <= m
            for row in range(start, end):
                coverage[row] += 1
        assert all(c == 1 for c in coverage)

    @pytest.mark.parametrize("profile", sorted(WEIGHT_PROFILES))
    @pytest.mark.parametrize("threads", THREAD_COUNTS)
    @pytest.mark.parametrize("shape", GOLDEN_SHAPES,
                             ids=lambda s: "x".join(map(str, s)))
    def test_spans_non_overlapping(self, shape, threads, profile):
        m = shape[0]
        weights = self.WEIGHT_PROFILES[profile](threads)
        spans = weighted_spans(m, weights)
        prev_end = 0
        for start, end in spans:
            assert start == prev_end
            assert end >= start
            prev_end = end
        assert prev_end == m

    @pytest.mark.parametrize("granule", (1, 4, 8))
    @pytest.mark.parametrize("threads", THREAD_COUNTS)
    @pytest.mark.parametrize("shape", GOLDEN_SHAPES,
                             ids=lambda s: "x".join(map(str, s)))
    def test_equal_weights_degenerate_to_even(self, shape, threads,
                                              granule):
        """Uniform weights reproduce the balanced split bit-for-bit."""
        m = shape[0]
        chunks = weighted_split(m, [1.0] * threads, granule=granule)
        if granule == 1:
            assert chunks == split_even(m, threads)
            assert weighted_spans(m, [1.0] * threads) == strip_spans(
                m, split_even(m, threads)
            )
        else:
            # granular even split: same unit counts as split_even over
            # the granule-rounded extent
            units = -(-m // granule)
            expect = [c * granule for c in split_even(units, threads)]
            excess = sum(expect) - m
            for i in reversed(range(len(expect))):
                if expect[i] > 0:
                    expect[i] -= excess
                    break
            assert chunks == expect

    @pytest.mark.parametrize("granule", (1, 8))
    def test_heavier_weight_never_smaller_strip(self, granule):
        for m in (7, 64, 129, 512):
            chunks = weighted_split(m, [3.0, 1.0], granule=granule)
            assert chunks[0] >= chunks[1]

    def test_zero_weight_gets_zero_rows(self):
        assert weighted_split(96, [1.0, 0.0, 1.0]) == [48, 0, 48]

    def test_granule_alignment_interior_strips(self):
        """All strips except the last nonzero one are granule-aligned."""
        chunks = weighted_split(100, [2.0, 2.0, 1.0, 1.0], granule=8)
        assert sum(chunks) == 100
        last_nonzero = max(i for i, c in enumerate(chunks) if c)
        for i, c in enumerate(chunks):
            if i != last_nonzero:
                assert c % 8 == 0

    def test_core_class_weights_homogeneous_uniform(self, machine):
        weights = core_class_weights(machine, 8)
        assert len(weights) == 8
        assert all(w == weights[0] for w in weights)

    def test_core_class_weights_big_little_ratio(self):
        from repro.machine import big_little_like

        mach = big_little_like()
        weights = core_class_weights(mach, mach.n_cores)
        big, little = weights[0], weights[-1]
        assert big > little  # big class strictly faster
        # weight = vector_bits x fma ports x freq: (2 x 2.6) / (1 x 1.8)
        assert big / little == pytest.approx((2 * 2.6) / (1 * 1.8))


class TestOpenblasPartition:
    """The 1-D-over-M scheme conserves the full M x N output."""

    @pytest.mark.parametrize("threads", THREAD_COUNTS)
    @pytest.mark.parametrize("shape", GOLDEN_SHAPES,
                             ids=lambda s: "x".join(map(str, s)))
    def test_chunks_tile_output(self, shape, threads):
        m, n, _ = shape
        chunks = openblas_partition(m, n, threads)
        assert len(chunks) == threads
        assert all(nj == n for _, nj in chunks)
        assert_exact_1d_tiling(m, [mi for mi, _ in chunks])


class TestGridPartition:
    """The 2-D grid scheme covers each C element exactly once."""

    @pytest.mark.parametrize("threads", THREAD_COUNTS)
    @pytest.mark.parametrize("shape", GOLDEN_SHAPES,
                             ids=lambda s: "x".join(map(str, s)))
    def test_grid_covers_output_exactly(self, shape, threads):
        m, n, _ = shape
        chunks = grid_partition(m, n, threads)
        assert len(chunks) == threads
        # a grid is a cross product: recover the axis chunk lists and
        # require both to tile their extent exactly
        area = sum(mi * nj for mi, nj in chunks)
        assert area == m * n
        njs = [nj for _, nj in chunks]
        period = next(
            p for p in range(1, threads + 1)
            if threads % p == 0
            and all(njs[i] == njs[i % p] for i in range(threads))
            and all(
                len({chunks[b * p + i][0] for i in range(p)}) == 1
                for b in range(threads // p)
            )
            and sum(chunks[b * p][0] for b in range(threads // p)) == m
            and sum(njs[:p]) == n
        )
        assert_exact_1d_tiling(n, njs[:period])
        assert_exact_1d_tiling(
            m, [chunks[b * period][0] for b in range(threads // period)]
        )


class TestBlisFactorization:
    """The rule-based factorization never loses or duplicates threads."""

    @pytest.mark.parametrize("threads", THREAD_COUNTS)
    @pytest.mark.parametrize("shape", GOLDEN_SHAPES,
                             ids=lambda s: "x".join(map(str, s)))
    def test_thread_product_and_m_tiling(self, shape, threads):
        m, n, _ = shape
        fact = blis_factorization(m, n, threads, mr=8, nr=4)
        assert fact.threads == threads
        # the ic-way M split must itself tile [0, M) exactly
        assert_exact_1d_tiling(m, split_even(m, fact.ic))
