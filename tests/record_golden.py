"""Record golden GemmTiming values for the plan-engine parity suite.

Run from the repo root::

    PYTHONPATH=src python tests/record_golden.py

Writes ``tests/data/golden_timings.json``: the exact per-phase cycle
breakdown of every driver on the paper's Fig. 5 / Fig. 10 shape sweeps
(plus edge/remainder shapes).  The committed file was recorded *before*
the ExecutionPlan refactor, so ``tests/test_cross_driver_consistency.py``
can assert that plan-derived timings reproduce the hand-rolled
accounting bit-for-bit.  Re-run only to extend the grid, never to paper
over a parity break.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.blas import make_blasfeo, make_blis, make_eigen, make_openblas
from repro.core import ReferenceSmmDriver
from repro.machine import phytium2000plus
from repro.parallel import MultithreadedGemm
from repro.workloads import sweeps

DATA_PATH = pathlib.Path(__file__).parent / "data" / "golden_timings.json"

# the golden grid is defined once in repro.workloads.sweeps so the plan
# lint sweep (``repro lint --plans``) audits exactly the recorded shapes
MT_THREADS = sweeps.GOLDEN_MT_THREADS
single_thread_grid = sweeps.golden_single_thread_grid
mt_grid = sweeps.golden_mt_grid


def record(machine=None) -> dict:
    """Compute the full golden set; returns the JSON-ready dict."""
    machine = machine or phytium2000plus()
    entries = []

    st_drivers = {
        "openblas": make_openblas(machine),
        "blis": make_blis(machine),
        "eigen": make_eigen(machine),
        "blasfeo": make_blasfeo(machine),
    }
    st_shapes = single_thread_grid()
    for name, drv in st_drivers.items():
        for (m, n, k) in st_shapes:
            timing = drv.cost_gemm(m, n, k)
            entries.append({
                "driver": name, "threads": 1, "shape": [m, n, k],
                "timing": timing.as_dict(),
            })

    reference = ReferenceSmmDriver(machine)
    fused = ReferenceSmmDriver(machine, fused_packing=True)
    for name, drv in (("reference", reference), ("reference-fused", fused)):
        for (m, n, k) in st_shapes:
            timing, decision = drv.cost_gemm(m, n, k)
            entries.append({
                "driver": name, "threads": 1, "shape": [m, n, k],
                "timing": timing.as_dict(),
                "packed_b": bool(decision.packed_b),
            })

    for threads in MT_THREADS:
        for lib in ("openblas", "blis", "eigen"):
            mt = MultithreadedGemm(machine, lib, threads=threads)
            for (m, n, k) in mt_grid():
                timing, _ = mt.cost(m, n, k)
                entries.append({
                    "driver": lib, "threads": threads, "shape": [m, n, k],
                    "timing": timing.as_dict(),
                })
        ref_mt = ReferenceSmmDriver(machine, threads=threads)
        for (m, n, k) in mt_grid():
            timing, decision = ref_mt.cost_gemm(m, n, k)
            entries.append({
                "driver": "reference", "threads": threads,
                "shape": [m, n, k],
                "timing": timing.as_dict(),
                "packed_b": bool(decision.packed_b),
            })

    return {
        "machine": machine.name,
        "dtype": str(np.dtype(np.float32)),
        "entries": entries,
    }


def main() -> None:
    data = record()
    DATA_PATH.parent.mkdir(parents=True, exist_ok=True)
    DATA_PATH.write_text(json.dumps(data, indent=1) + "\n")
    print(f"wrote {len(data['entries'])} golden entries to {DATA_PATH}")


if __name__ == "__main__":
    main()
