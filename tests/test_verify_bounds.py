"""Static cycle lower bounds, cross-checked against the scheduler.

The load-bearing property: every static bound is a relaxation of the
out-of-order scheduler, so ``cycles_lower_bound`` must never exceed
``SteadyStateAnalyzer.cycles_per_iter`` for any kernel the repo can emit.
"""

import pytest

from repro.isa import (
    KernelSequence,
    branch_nz,
    fmla,
    ldr_q,
    movi_zero,
    str_q,
    subs_imm,
)
from repro.kernels import (
    JitKernelFactory,
    KernelSpec,
    MicroKernelGenerator,
    all_catalogs,
)
from repro.pipeline import SteadyStateAnalyzer
from repro.verify import catalog_specs, critical_path_rate, static_bounds


def looped(name, prologue, body, epilogue=()):
    return KernelSequence(
        name=name,
        prologue=tuple(prologue),
        body=tuple(body) + (subs_imm("x3", "x3", 1), branch_nz("x3")),
        epilogue=tuple(epilogue),
        meta={},
    )


def all_emittable_specs(core):
    """Catalog + style-grid + JIT specs, the lint coverage set."""
    specs = []
    for catalog in all_catalogs().values():
        specs.extend(catalog_specs(catalog))
    for style in ("pipelined", "naive", "compiled"):
        for mr, nr, unroll in ((8, 4, 4), (16, 4, 8), (12, 4, 1),
                               (4, 4, 2), (5, 3, 2), (3, 4, 1)):
            specs.append(KernelSpec(mr, nr, unroll=unroll, style=style,
                                    label="xcheck"))
    jit = JitKernelFactory(core)
    specs.append(jit.main_spec)
    specs.append(jit.spec_for(13, 4))
    specs.append(jit.strided_main_spec())
    return specs


class TestCriticalPath:
    def test_serial_fmla_chain(self, machine):
        # 4 dependent fmla on one accumulator: 4 * fma latency
        k = looped(
            "chain",
            [movi_zero("v0"), movi_zero("v1"), movi_zero("v2")],
            [fmla("v0", "v1", "v2") for _ in range(4)],
            epilogue=[str_q("v0", "x2")],
        )
        expected = 4 * machine.core.latencies["fma"]
        assert critical_path_rate(k, machine.core) == expected

    def test_independent_chains_do_not_sum(self, machine):
        # two independent accumulators: each chain is 1 fmla long
        k = looped(
            "indep",
            [movi_zero(f"v{i}") for i in range(4)],
            [fmla("v0", "v2", "v3"), fmla("v1", "v2", "v3")],
            epilogue=[str_q("v0", "x2"), str_q("v1", "x2")],
        )
        assert (critical_path_rate(k, machine.core)
                == machine.core.latencies["fma"])

    def test_post_increment_address_chain_counts_one_cycle(self, machine):
        # the x0 post-increment chain: 2 writebacks * 1 cycle, not 2 * load
        # latency — matches the scheduler's early base-register writeback
        k = looped(
            "addr",
            [movi_zero("v0"), movi_zero("v2")],
            [ldr_q("v1", "x0", post_inc=16),
             ldr_q("v3", "x0", post_inc=16),
             fmla("v0", "v1", "v2"),
             fmla("v0", "v3", "v2")],
            epilogue=[str_q("v0", "x2")],
        )
        rate = critical_path_rate(k, machine.core)
        assert rate == 2 * machine.core.latencies["fma"]  # acc chain wins
        # and the address chain alone is 2.0, far below 2 * load latency

    def test_renamed_register_breaks_chain(self, machine):
        # movi in the body renames v0 away: the fmla chain contributes
        # nothing and only the 1-cycle subs counter chain remains
        k = looped(
            "renamed",
            [movi_zero("v1"), movi_zero("v2")],
            [movi_zero("v0"), fmla("v0", "v1", "v2")],
            epilogue=[str_q("v0", "x2")],
        )
        assert critical_path_rate(k, machine.core) == 1.0


class TestStaticBounds:
    def test_port_and_dispatch_bounds(self, machine):
        k = looped(
            "ports",
            [movi_zero("v0"), movi_zero("v1"), movi_zero("v2")],
            [fmla("v0", "v1", "v2") for _ in range(8)],
            epilogue=[str_q("v0", "x2")],
        )
        b = static_bounds(k, machine.core)
        assert b.port_bounds["fma"] == 8 / machine.core.ports["fma"]
        # 8 fmla + subs + branch
        assert b.dispatch_bound == 10 / machine.core.dispatch_width
        assert b.cycles_lower_bound >= b.throughput_bound

    def test_latency_limited_flag(self, machine):
        # a single long chain is latency-limited; 8 independent ones are not
        serial = looped(
            "serial",
            [movi_zero("v0"), movi_zero("v1"), movi_zero("v2")],
            [fmla("v0", "v1", "v2") for _ in range(4)],
            epilogue=[str_q("v0", "x2")],
        )
        assert static_bounds(serial, machine.core).latency_limited
        wide = looped(
            "wide",
            [movi_zero(f"v{i}") for i in range(10)],
            [fmla(f"v{i}", "v8", "v9") for i in range(8)],
            epilogue=[str_q(f"v{i}", "x2") for i in range(8)],
        )
        assert not static_bounds(wide, machine.core).latency_limited

    def test_to_dict(self, machine):
        b = static_bounds(looped(
            "d", [movi_zero("v0"), movi_zero("v1"), movi_zero("v2")],
            [fmla("v0", "v1", "v2")], epilogue=[str_q("v0", "x2")],
        ), machine.core)
        d = b.to_dict()
        assert d["lower-bound"] == b.cycles_lower_bound
        assert "port:fma" in d and "dispatch" in d and "critical-path" in d


class TestSchedulerCrossCheck:
    """Satellite: static bound <= scheduled cycles, for every kernel."""

    def test_bound_never_exceeds_scheduler(self, machine):
        generator = MicroKernelGenerator(verify=False)
        analyzer = SteadyStateAnalyzer(machine.core)
        seen = set()
        checked = 0
        for spec in all_emittable_specs(machine.core):
            kernel = generator.generate(spec)
            if kernel.name in seen:
                continue
            seen.add(kernel.name)
            bounds = static_bounds(kernel, machine.core)
            scheduled = analyzer.analyze(kernel).cycles_per_iter
            assert bounds.cycles_lower_bound <= scheduled + 1e-6, (
                f"{kernel.name}: static bound {bounds.cycles_lower_bound} "
                f"exceeds scheduled {scheduled}"
            )
            checked += 1
        assert checked > 40  # catalogs + grid + jit, deduplicated

    def test_bound_is_tight_for_fma_bound_main_kernels(self, machine):
        # the OpenBLAS main kernel saturates the FMA unit: the port bound
        # is exact, which pins the scheduler model against drift
        generator = MicroKernelGenerator(verify=False)
        analyzer = SteadyStateAnalyzer(machine.core)
        catalog = all_catalogs()["openblas"]
        kernel = generator.generate(catalog.main)
        bounds = static_bounds(kernel, machine.core)
        scheduled = analyzer.analyze(kernel).cycles_per_iter
        assert bounds.cycles_lower_bound == pytest.approx(scheduled)

    def test_edge_kernels_flag_latency_limited(self, machine):
        # the paper's Fig. 7 signature: 1-accumulator naive edge kernels
        # are bound by the fma chain, not by any unit
        generator = MicroKernelGenerator(verify=False)
        spec = KernelSpec(1, 1, unroll=4, style="naive", label="edge")
        bounds = static_bounds(generator.generate(spec), machine.core)
        assert bounds.latency_limited
