"""End-to-end tests of the ``repro tune`` CLI subcommands."""

import json
import os

import pytest

from repro.cli import build_parser, main


@pytest.fixture()
def cache_path(tmp_path):
    return str(tmp_path / "tuning.json")


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tune"])

    def test_warm_defaults(self):
        args = build_parser().parse_args(["tune", "warm"])
        assert args.tune_command == "warm"
        assert args.shapes == "4:64"
        assert args.machine == "phytium2000plus"
        assert args.threads == 1

    def test_query_takes_shape(self):
        args = build_parser().parse_args(["tune", "query", "8", "16", "24"])
        assert (args.m, args.n, args.k) == (8, 16, 24)

    def test_rejects_unknown_machine(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["tune", "warm", "--machine", "x86_like"]
            )


class TestWarm:
    def test_populates_cache_then_full_hits(self, cache_path, capsys):
        assert main(["tune", "warm", "--shapes", "4:12:4",
                     "--cache", cache_path, "--jobs", "1"]) == 0
        out = capsys.readouterr().out
        assert "3 shape(s): 0 cache hit(s)" in out
        assert "3 tuned" in out
        assert os.path.exists(cache_path)

        assert main(["tune", "warm", "--shapes", "4:12:4",
                     "--cache", cache_path, "--jobs", "1"]) == 0
        out = capsys.readouterr().out
        assert "3 cache hit(s) (100%)" in out
        assert "0 tuned" in out

    def test_bad_shape_range_exits_2(self, cache_path, capsys):
        assert main(["tune", "warm", "--shapes", "banana",
                     "--cache", cache_path]) == 2
        assert "error" in capsys.readouterr().out


class TestQuery:
    def test_renders_plan(self, cache_path, capsys):
        assert main(["tune", "query", "8", "8", "8",
                     "--cache", cache_path]) == 0
        out = capsys.readouterr().out
        assert "plan 8x8x8:float32:t1" in out
        assert "packed B" in out
        assert "vs heuristic" in out
        assert "verified      : yes" in out

    def test_query_is_persisted(self, cache_path, capsys):
        main(["tune", "query", "8", "8", "8", "--cache", cache_path])
        capsys.readouterr()
        with open(cache_path) as fh:
            data = json.load(fh)
        assert "8x8x8:float32:t1" in data["entries"]

    def test_multithreaded_query_shows_factorization(self, cache_path,
                                                     capsys):
        assert main(["tune", "query", "64", "64", "64", "--threads", "4",
                     "--cache", cache_path]) == 0
        assert "factorization" in capsys.readouterr().out


class TestSweep:
    def test_sweep_table(self, cache_path, capsys):
        assert main(["tune", "sweep", "--shapes", "8:16:8",
                     "--cache", cache_path]) == 0
        out = capsys.readouterr().out
        assert "tuned sweep" in out
        assert "8x8x8" in out and "16x16x16" in out
        assert "GFLOPS" in out and "vs fixed" in out


class TestExportClear:
    def test_export_stdout_and_file(self, cache_path, tmp_path, capsys):
        main(["tune", "query", "8", "8", "8", "--cache", cache_path])
        capsys.readouterr()

        assert main(["tune", "export", "--cache", cache_path]) == 0
        data = json.loads(capsys.readouterr().out)
        assert len(data["entries"]) == 1

        target = str(tmp_path / "dump.json")
        assert main(["tune", "export", "--cache", cache_path,
                     "--output", target]) == 0
        assert json.load(open(target))["entries"]

    def test_clear_deletes_cache(self, cache_path, capsys):
        main(["tune", "query", "8", "8", "8", "--cache", cache_path])
        capsys.readouterr()
        assert os.path.exists(cache_path)
        assert main(["tune", "clear", "--cache", cache_path]) == 0
        assert "cleared" in capsys.readouterr().out
        assert not os.path.exists(cache_path)
