# Convenience targets for the SMM reproduction.

PYTHON ?= python

.PHONY: install test lint lint-plans-negative audit bench bench-smoke bench-record serve-smoke examples docs docs-check report verify check all clean

# one fast representative per benchmarks/test_fig*.py (the CI smoke set);
# --benchmark-disable runs each figure pipeline once instead of timing it
BENCH_SMOKE = \
	benchmarks/test_fig5_single_thread.py::test_fig5b_small_m \
	benchmarks/test_fig6_packing_overhead.py::test_fig6_packing_overhead \
	benchmarks/test_fig7_microkernel_schedule.py::test_fig7_schedule_analysis \
	benchmarks/test_fig8_edge_packing.py::test_fig8_edge_packing \
	benchmarks/test_fig9_kernel_efficiency.py::test_fig9_kernel_efficiency \
	benchmarks/test_fig10_multithread.py::test_fig10_multithread \
	benchmarks/test_het_partition.py::test_weighted_beats_even_on_big_little

install:
	pip install -e .

test: lint
	$(PYTHON) -m pytest tests/

lint:
	$(PYTHON) -m repro lint
	$(PYTHON) -m repro lint --self-check
	$(PYTHON) -m repro lint --plans
	$(PYTHON) -m repro.util.apidoc --check

# plan-rule mutation controls: every V3xx/V4xx rule must fire on its
# injected violation, and a deliberately broken plan must fail the lint
# (nonzero)
lint-plans-negative:
	$(PYTHON) -m repro lint --plans --self-check
	! $(PYTHON) -m repro lint --plans 24 16 8 --inject-bad

# repro audit: the C0xx concurrency lint over the package's own source
# must be clean, all nine C0xx/V5xx negative controls must fire, and the
# seeded-bug injection must fail the audit (nonzero)
audit:
	$(PYTHON) -m repro audit
	$(PYTHON) -m repro audit --self-check
	! $(PYTHON) -m repro audit --inject-bad

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# perf trajectory: lint-sweep wall-clock, batch cold/warm sweep
# throughput, plans-priced-per-second, the big.LITTLE weighted-vs-even
# speedup envelope, and the planning-service warm/cold serving numbers,
# written to BENCH_<rev>.json at the repo root
bench-record:
	$(PYTHON) -m repro.util.benchrecord

bench-smoke:
	$(PYTHON) -m pytest $(BENCH_SMOKE) --benchmark-disable -q

# planning-service smoke: in-process server, mixed hot/cold batch,
# provenance and hit-rate assertions, bit-identical served plans, cold
# latency budget, background tuning drain, clean shutdown
serve-smoke:
	$(PYTHON) -m repro serve --self-test

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/dnn_layers.py
	$(PYTHON) examples/block_sparse_bcsr.py
	$(PYTHON) examples/abft_checksum.py
	$(PYTHON) examples/custom_machine.py
	$(PYTHON) examples/layout_locality.py

docs:
	$(PYTHON) -m repro.util.apidoc

# documentation gates: the committed API reference must match a fresh
# render, and every repo-relative reference in the guides must resolve
docs-check:
	$(PYTHON) -m repro.util.apidoc --check
	$(PYTHON) -m repro.util.doccheck

report:
	$(PYTHON) -m repro report --output REPORT.md

verify:
	$(PYTHON) -m repro verify

# the CI-style gate: full tier-1 tests (which run lint first), the
# plan-rule mutation controls, the source/cache audit, the documentation
# gates, one smoke pass through every figure benchmark, and the
# planning-service smoke
check: test lint-plans-negative audit docs-check bench-smoke serve-smoke

all: install check docs report

clean:
	rm -rf benchmarks/out .pytest_cache .hypothesis
	rm -f .repro_steady_cache.json
	find . -name __pycache__ -type d -exec rm -rf {} +
