# Convenience targets for the SMM reproduction.

PYTHON ?= python

.PHONY: install test lint bench examples docs report verify check all clean

install:
	pip install -e .

test: lint
	$(PYTHON) -m pytest tests/

lint:
	$(PYTHON) -m repro lint
	$(PYTHON) -m repro lint --self-check
	$(PYTHON) -m repro.util.apidoc --check

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/dnn_layers.py
	$(PYTHON) examples/block_sparse_bcsr.py
	$(PYTHON) examples/abft_checksum.py
	$(PYTHON) examples/custom_machine.py
	$(PYTHON) examples/layout_locality.py

docs:
	$(PYTHON) -m repro.util.apidoc

report:
	$(PYTHON) -m repro report --output REPORT.md

verify:
	$(PYTHON) -m repro verify

check: test bench

all: install check docs report

clean:
	rm -rf benchmarks/out .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
