"""DNN-layer GEMM workloads (the paper's first SMM motivation).

Deep networks lower most of their compute to GEMMs whose shapes are small
when batch sizes are small (inference) or when layers are narrow.  This
module provides realistic layer-shape generators:

* an MLP tower (batch x features chains);
* a small-batch LSTM cell (the 4 gates fused into one tall-skinny GEMM);
* im2col-lowered convolution layers of a compact CNN.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..util.errors import ConfigError
from ..util.rng import random_matrix

Shape = Tuple[int, int, int]


@dataclass(frozen=True)
class LayerGemm:
    """One layer's GEMM: C(m x n) = A(m x k) @ B(k x n)."""

    name: str
    m: int
    n: int
    k: int

    @property
    def shape(self) -> Shape:
        """The (m, n, k) triple."""
        return (self.m, self.n, self.k)

    @property
    def flops(self) -> int:
        """Useful flops."""
        return 2 * self.m * self.n * self.k


def mlp_layers(batch: int = 8, widths: Tuple[int, ...] = (256, 128, 64, 10)) -> List[LayerGemm]:
    """GEMMs of an MLP forward pass: (batch x in) @ (in x out)."""
    if batch < 1:
        raise ConfigError(f"batch must be >= 1, got {batch}")
    layers = []
    ins = widths[:-1]
    outs = widths[1:]
    for i, (fin, fout) in enumerate(zip(ins, outs)):
        layers.append(LayerGemm(name=f"fc{i}", m=batch, n=fout, k=fin))
    return layers


def lstm_cell(batch: int = 4, hidden: int = 64, inputs: int = 64) -> List[LayerGemm]:
    """The two fused-gate GEMMs of one LSTM step (4*hidden outputs)."""
    if min(batch, hidden, inputs) < 1:
        raise ConfigError("batch/hidden/inputs must be >= 1")
    return [
        LayerGemm(name="lstm-x", m=batch, n=4 * hidden, k=inputs),
        LayerGemm(name="lstm-h", m=batch, n=4 * hidden, k=hidden),
    ]


def im2col_conv_layers(
    image: int = 28,
    channels: Tuple[int, ...] = (1, 8, 16),
    kernel: int = 3,
) -> List[LayerGemm]:
    """Convolutions lowered to GEMM: M=out_pixels, N=out_ch, K=k*k*in_ch."""
    if image < kernel:
        raise ConfigError(f"image {image} smaller than kernel {kernel}")
    layers = []
    size = image
    for i, (cin, cout) in enumerate(zip(channels[:-1], channels[1:])):
        out = size - kernel + 1
        layers.append(
            LayerGemm(
                name=f"conv{i}",
                m=out * out,
                n=cout,
                k=kernel * kernel * cin,
            )
        )
        size = out
    return layers


def attention_head_layers(
    seq: int = 64,
    model_dim: int = 128,
    heads: int = 8,
) -> List[LayerGemm]:
    """GEMMs of one multi-head self-attention pass, per head.

    Per head with head_dim = model_dim/heads: the QK^T score GEMM
    (seq x seq x head_dim) and the score-times-V GEMM
    (seq x head_dim x seq) — small, square-ish SMMs repeated ``heads``
    times, plus the three input projections and the output projection.
    """
    if model_dim % heads:
        raise ConfigError(
            f"model_dim {model_dim} not divisible by heads {heads}"
        )
    head_dim = model_dim // heads
    layers = [
        LayerGemm(name="proj-q", m=seq, n=model_dim, k=model_dim),
        LayerGemm(name="proj-k", m=seq, n=model_dim, k=model_dim),
        LayerGemm(name="proj-v", m=seq, n=model_dim, k=model_dim),
    ]
    for h in range(heads):
        layers.append(LayerGemm(name=f"scores-h{h}", m=seq, n=seq,
                                k=head_dim))
        layers.append(LayerGemm(name=f"context-h{h}", m=seq, n=head_dim,
                                k=seq))
    layers.append(LayerGemm(name="proj-out", m=seq, n=model_dim,
                            k=model_dim))
    return layers


def materialize(
    layers: List[LayerGemm],
    rng: np.random.Generator,
    dtype=np.float32,
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Random (A, B) operand pairs for each layer."""
    return [
        (random_matrix(rng, layer.m, layer.k, dtype),
         random_matrix(rng, layer.k, layer.n, dtype))
        for layer in layers
    ]


def tuned_layer_costs(layers: List[LayerGemm], tuner, threads: int = 1):
    """Cost each layer's GEMM under the adaptive tuner's chosen plan.

    ``tuner`` is a :class:`repro.tuning.AdaptiveTuner` (duck-typed to keep
    this module import-light); returns ``(layer, plan)`` pairs.  This is
    the tuner-backed path DNN sweeps use instead of one fixed kernel and
    packing policy for every layer shape.
    """
    return [
        (layer, tuner.tune(layer.m, layer.n, layer.k, threads=threads))
        for layer in layers
    ]
