"""The paper's experimental grids (Sec. III, experimental settings).

Each function returns the exact (M, N, K) points of one figure:

* Fig. 5(a): square matrices 5..200 step 5 (inputs bounded by L2);
* Fig. 5(b)/(c)/(d): one dimension swept 2..40 step 2, the others 100;
* Fig. 9: kernel-only sweeps with one dimension fixed at 100;
* Fig. 10 / Table II: multithreaded irregular shapes with one small
  dimension (the paper does not print N and K; we use 2048, large enough
  that packed panels live in memory, per its Table II pack-B shares).
"""

from __future__ import annotations

from typing import List, Tuple

Shape = Tuple[int, int, int]

#: the large extent used for multithreaded irregular shapes
MT_LARGE = 2048

#: remainder-heavy shapes that stress every edge policy (golden grid)
EDGE_SHAPES: Tuple[Shape, ...] = (
    (2, 2, 2),
    (5, 3, 2),
    (7, 11, 13),
    (13, 4, 7),
    (33, 65, 129),
    (75, 75, 75),
    (97, 101, 89),
)

#: one point per Fig. 10 regime (small / mid / large small-dimension)
GOLDEN_MT_POINTS: Tuple[int, ...] = (16, 80, 256)

#: the thread counts the golden multithreaded grid is recorded at
GOLDEN_MT_THREADS: Tuple[int, ...] = (4, 64)


def fig5a_square(step: int = 5, stop: int = 200) -> List[Shape]:
    """M = N = K in {step, 2*step, ..., stop}."""
    return [(s, s, s) for s in range(step, stop + 1, step)]


def fig5b_small_m(step: int = 2, stop: int = 40, fixed: int = 100) -> List[Shape]:
    """M in {2..40}, N = K = 100."""
    return [(m, fixed, fixed) for m in range(step, stop + 1, step)]


def fig5c_small_n(step: int = 2, stop: int = 40, fixed: int = 100) -> List[Shape]:
    """N in {2..40}, M = K = 100."""
    return [(fixed, n, fixed) for n in range(step, stop + 1, step)]


def fig5d_small_k(step: int = 2, stop: int = 40, fixed: int = 100) -> List[Shape]:
    """K in {2..40}, M = N = 100."""
    return [(fixed, fixed, k) for k in range(step, stop + 1, step)]


def fig6_packing_sweeps() -> dict:
    """The three sweeps whose packing share Fig. 6 reports."""
    return {
        "small-M": fig5b_small_m(),
        "small-N": fig5c_small_n(),
        "small-K": fig5d_small_k(),
    }


def fig9_kernel_sweeps(step: int = 5, stop: int = 200, fixed: int = 100) -> dict:
    """Kernel-efficiency sweeps: fix one dimension at 100, sweep the others."""
    return {
        "sweep-M": [(m, fixed, fixed) for m in range(step, stop + 1, step)],
        "sweep-N": [(fixed, n, fixed) for n in range(step, stop + 1, step)],
        "sweep-K": [(fixed, fixed, k) for k in range(step, stop + 1, step)],
    }


def fig10_mt_sweeps(step: int = 16, stop: int = 256) -> dict:
    """Multithreaded irregular shapes: one small dimension, others large."""
    return {
        "small-M": [(m, MT_LARGE, MT_LARGE) for m in range(step, stop + 1, step)],
        "small-N": [(MT_LARGE, n, MT_LARGE) for n in range(step, stop + 1, step)],
        "small-K": [(MT_LARGE, MT_LARGE, k) for k in range(step, stop + 1, step)],
    }


def golden_single_thread_grid() -> List[Shape]:
    """The golden single-thread grid: Fig. 5 sweeps plus the edge shapes.

    The exact shape set ``tests/record_golden.py`` records and the plan
    analyzer (``repro lint --plans``) sweeps — kept here so the two can
    never drift apart.
    """
    shapes: List[Shape] = []
    shapes.extend(fig5a_square())
    shapes.extend(fig5b_small_m())
    shapes.extend(fig5c_small_n())
    shapes.extend(fig5d_small_k())
    shapes.extend(EDGE_SHAPES)
    seen, out = set(), []
    for s in shapes:
        if s not in seen:
            seen.add(s)
            out.append(s)
    return out


def golden_mt_grid() -> List[Shape]:
    """The golden Fig. 10 subset: every sweep at three small-dim points."""
    shapes: List[Shape] = []
    for p in GOLDEN_MT_POINTS:
        shapes.append((p, MT_LARGE, MT_LARGE))
        shapes.append((MT_LARGE, p, MT_LARGE))
        shapes.append((MT_LARGE, MT_LARGE, p))
    return shapes


def serve_query_grid(max_threads: int = 4) -> List[Tuple[Shape, int]]:
    """The golden serving workload: ((m, n, k), threads) query points.

    The Fig. 5 single-thread grid plus the Fig. 10 multithreaded subset
    (clamped to ``max_threads``) — the shape traffic the planning
    service's throughput metric (``serve_sweep`` in ``BENCH_<rev>.json``)
    and the ``repro serve --self-test`` smoke replay.
    """
    queries: List[Tuple[Shape, int]] = [
        (shape, 1) for shape in golden_single_thread_grid()
    ]
    threads = max(1, max_threads)
    queries.extend((shape, threads) for shape in golden_mt_grid())
    return queries


def table2_ms(step: int = 16, stop: int = 256) -> List[int]:
    """Table II's M column: 16..256 step 16."""
    return list(range(step, stop + 1, step))


def parse_shape_range(spec: str) -> List[Shape]:
    """Parse a ``lo:hi[:step]`` range into square SMM shapes.

    The ``repro tune --shapes`` grammar: ``"4:64"`` means every square
    shape M = N = K from 4 to 64 inclusive; ``"4:64:4"`` strides by 4.
    """
    parts = spec.split(":")
    if len(parts) not in (2, 3):
        raise ValueError(
            f"shape range must be 'lo:hi' or 'lo:hi:step', got {spec!r}"
        )
    try:
        numbers = [int(p) for p in parts]
    except ValueError:
        raise ValueError(f"non-integer shape range {spec!r}") from None
    lo, hi = numbers[0], numbers[1]
    step = numbers[2] if len(numbers) == 3 else 1
    if lo < 1 or hi < lo or step < 1:
        raise ValueError(f"invalid shape range {spec!r}")
    return [(s, s, s) for s in range(lo, hi + 1, step)]


def priced_grid(machine, shapes: List[Shape], lib: str = "reference",
                threads: int = 1):
    """Price one shape grid in a single batch call.

    Thin sugar over :class:`repro.plan.ShapeGridPricer` so workload and
    benchmark sweeps get vectorized per-phase cycle arrays (and the
    memoized charge tapes behind them) without touching drivers
    directly::

        grid = priced_grid(machine, fig5a_square())
        eff = grid.efficiency(peak_flops_per_cycle)

    Deferred import: this module stays a dependency-free shape catalog
    for everything that only needs the grids.
    """
    from ..plan import ShapeGridPricer

    return ShapeGridPricer(machine, lib=lib, threads=threads).price_grid(shapes)


def tuned_sweep_shapes(kind: str = "square") -> List[Shape]:
    """The shape grid a tuner-backed sweep covers for one paper figure.

    ``square`` is the Fig. 5(a) grid, ``M``/``N``/``K`` the Fig. 9 kernel
    sweeps — these feed :func:`repro.tuning.tuned_sweep` so workload
    sweeps consult the adaptive tuner instead of a fixed heuristic.
    """
    grids = {
        "square": fig5a_square(),
        "M": fig9_kernel_sweeps()["sweep-M"],
        "N": fig9_kernel_sweeps()["sweep-N"],
        "K": fig9_kernel_sweeps()["sweep-K"],
    }
    if kind not in grids:
        raise ValueError(f"unknown sweep kind {kind!r}; known: {sorted(grids)}")
    return grids[kind]
