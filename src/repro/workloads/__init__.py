"""Workloads: the paper's sweeps plus the applications motivating SMM."""

from .abft import (
    ChecksumEncoding,
    checksum_weights,
    correct_single_error,
    encode,
    locate_single_error,
    verify,
)
from .bcsr import BcsrMatrix, bcsr_spmm, bcsr_spmm_parallel, random_bcsr
from .dnn import (
    LayerGemm,
    attention_head_layers,
    im2col_conv_layers,
    lstm_cell,
    materialize,
    mlp_layers,
    tuned_layer_costs,
)
from .sweeps import (
    MT_LARGE,
    fig5a_square,
    fig5b_small_m,
    fig5c_small_n,
    fig5d_small_k,
    fig6_packing_sweeps,
    fig9_kernel_sweeps,
    fig10_mt_sweeps,
    parse_shape_range,
    table2_ms,
    tuned_sweep_shapes,
)

__all__ = [
    "fig5a_square",
    "fig5b_small_m",
    "fig5c_small_n",
    "fig5d_small_k",
    "fig6_packing_sweeps",
    "fig9_kernel_sweeps",
    "fig10_mt_sweeps",
    "table2_ms",
    "parse_shape_range",
    "tuned_sweep_shapes",
    "MT_LARGE",
    "LayerGemm",
    "mlp_layers",
    "attention_head_layers",
    "lstm_cell",
    "im2col_conv_layers",
    "materialize",
    "tuned_layer_costs",
    "BcsrMatrix",
    "random_bcsr",
    "bcsr_spmm",
    "bcsr_spmm_parallel",
    "ChecksumEncoding",
    "checksum_weights",
    "encode",
    "verify",
    "locate_single_error",
    "correct_single_error",
]
