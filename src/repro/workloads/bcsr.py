"""Block Compressed Sparse Row (BCSR) workload (paper motivation #2).

Block-sparse matrix formats turn sparse matrix x dense matrix products
into streams of small dense GEMMs — one per stored block — which is why
fast SMM matters to them (LIBXSMM's original use case).  This module
implements a minimal but real BCSR container plus the SpMM that consumes
an SMM driver, testable against the dense product.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..util.errors import ConfigError
from ..util.validation import check_fraction, check_positive_int


@dataclass
class BcsrMatrix:
    """A (rows x cols) matrix stored as dense (br x bc) blocks.

    CSR-of-blocks indexing: ``indptr[i]:indptr[i+1]`` slices the block
    columns (``indices``) and payloads (``blocks``) of block-row ``i``.
    """

    rows: int
    cols: int
    br: int
    bc: int
    indptr: np.ndarray
    indices: np.ndarray
    blocks: np.ndarray  # (nnz_blocks, br, bc)

    def __post_init__(self) -> None:
        check_positive_int(self.br, "br", ConfigError)
        check_positive_int(self.bc, "bc", ConfigError)
        if self.rows % self.br or self.cols % self.bc:
            raise ConfigError(
                f"matrix {self.rows}x{self.cols} not divisible into "
                f"{self.br}x{self.bc} blocks"
            )
        n_block_rows = self.rows // self.br
        if len(self.indptr) != n_block_rows + 1:
            raise ConfigError(
                f"indptr has {len(self.indptr)} entries, expected "
                f"{n_block_rows + 1}"
            )
        if self.blocks.shape[1:] != (self.br, self.bc):
            raise ConfigError(
                f"blocks shaped {self.blocks.shape[1:]}, expected "
                f"({self.br}, {self.bc})"
            )

    @property
    def n_block_rows(self) -> int:
        """Number of block rows."""
        return self.rows // self.br

    @property
    def nnz_blocks(self) -> int:
        """Stored blocks."""
        return int(self.blocks.shape[0])

    @property
    def density(self) -> float:
        """Fraction of blocks stored."""
        total = self.n_block_rows * (self.cols // self.bc)
        return self.nnz_blocks / total if total else 0.0

    def to_dense(self) -> np.ndarray:
        """Expand to a dense array (for verification)."""
        dense = np.zeros((self.rows, self.cols), dtype=self.blocks.dtype)
        for i in range(self.n_block_rows):
            for idx in range(self.indptr[i], self.indptr[i + 1]):
                j = self.indices[idx]
                dense[
                    i * self.br : (i + 1) * self.br,
                    j * self.bc : (j + 1) * self.bc,
                ] = self.blocks[idx]
        return dense


def random_bcsr(
    rng: np.random.Generator,
    rows: int,
    cols: int,
    br: int = 8,
    bc: int = 8,
    density: float = 0.2,
    dtype=np.float32,
) -> BcsrMatrix:
    """A random block-sparse matrix with the given block density."""
    check_fraction(density, "density")
    if rows % br or cols % bc:
        raise ConfigError(
            f"shape {rows}x{cols} not divisible by blocks {br}x{bc}"
        )
    n_brows, n_bcols = rows // br, cols // bc
    indptr = [0]
    indices: List[int] = []
    payloads: List[np.ndarray] = []
    for _ in range(n_brows):
        mask = rng.random(n_bcols) < density
        cols_here = np.nonzero(mask)[0]
        for j in cols_here:
            indices.append(int(j))
            payloads.append(
                rng.uniform(-1, 1, size=(br, bc)).astype(dtype)
            )
        indptr.append(len(indices))
    blocks = (
        np.stack(payloads)
        if payloads
        else np.zeros((0, br, bc), dtype=dtype)
    )
    return BcsrMatrix(
        rows=rows, cols=cols, br=br, bc=bc,
        indptr=np.asarray(indptr, dtype=np.int64),
        indices=np.asarray(indices, dtype=np.int64),
        blocks=blocks,
    )


def bcsr_spmm_parallel(
    matrix: BcsrMatrix,
    dense: np.ndarray,
    batch,
    cores: int,
) -> Tuple[np.ndarray, object]:
    """Y = BCSR @ dense with the block GEMMs distributed across cores.

    Uses :meth:`repro.core.BatchedSmm.run_across_cores`: every stored
    block's multiplication is an independent small GEMM, so batch-level
    parallelism applies directly (block-rows writing disjoint output rows
    need no synchronization beyond the final join).
    """
    if dense.shape[0] != matrix.cols:
        raise ConfigError(
            f"dense operand has {dense.shape[0]} rows, expected {matrix.cols}"
        )
    pairs = []
    placements = []
    for i in range(matrix.n_block_rows):
        for idx in range(matrix.indptr[i], matrix.indptr[i + 1]):
            j = matrix.indices[idx]
            rhs = np.asarray(
                dense[j * matrix.bc : (j + 1) * matrix.bc, :], order="F"
            )
            pairs.append((np.asarray(matrix.blocks[idx], order="F"), rhs))
            placements.append(i)
    out = np.zeros((matrix.rows, dense.shape[1]), dtype=dense.dtype,
                   order="F")
    if not pairs:
        return out, None
    result = batch.run_across_cores(pairs, cores=cores)
    for i, product in zip(placements, result.outputs):
        out[i * matrix.br : (i + 1) * matrix.br, :] += product
    return out, result.timing


def bcsr_spmm(
    matrix: BcsrMatrix,
    dense: np.ndarray,
    smm_driver,
) -> Tuple[np.ndarray, object]:
    """Y = BCSR @ dense via one SMM per stored block.

    Returns (Y, merged GemmTiming).  ``smm_driver`` is any driver with the
    ``gemm(a, b, c=..., beta=...)`` protocol (typically
    :class:`~repro.core.ReferenceSmmDriver`).
    """
    if dense.shape[0] != matrix.cols:
        raise ConfigError(
            f"dense operand has {dense.shape[0]} rows, expected {matrix.cols}"
        )
    n = dense.shape[1]
    out = np.zeros((matrix.rows, n), dtype=dense.dtype, order="F")
    total = None
    for i in range(matrix.n_block_rows):
        row_slice = slice(i * matrix.br, (i + 1) * matrix.br)
        for idx in range(matrix.indptr[i], matrix.indptr[i + 1]):
            j = matrix.indices[idx]
            rhs = np.asarray(
                dense[j * matrix.bc : (j + 1) * matrix.bc, :], order="F"
            )
            result = smm_driver.gemm(
                np.asarray(matrix.blocks[idx], order="F"), rhs
            )
            out[row_slice, :] += result.c
            total = (
                result.timing if total is None
                else total.merged_with(result.timing)
            )
    return out, total
