"""Algorithm-Based Fault Tolerance checksum GEMMs (paper motivation #3).

ABFT encodes checksums by multiplying with a tall-and-skinny weight
matrix: a (c x M) checksum weight times an (M x N) payload yields a
(c x N) checksum block, with c of just 1 or 2 — an extreme SMM shape
(M << N, M << K in the paper's terminology).  This module implements
single- and double-checksum encoding, verification, and single-error
location/correction on top of an SMM driver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..util.errors import ConfigError


@dataclass(frozen=True)
class ChecksumEncoding:
    """Checksum rows for a payload matrix."""

    checksums: np.ndarray  # (c x N)
    weights: np.ndarray  # (c x M)
    timing: object  # GemmTiming of the encode GEMM


def checksum_weights(m: int, dtype=np.float32, double: bool = True) -> np.ndarray:
    """The classic ABFT weights: all-ones row, plus the 1..M ramp row."""
    if m < 1:
        raise ConfigError(f"m must be >= 1, got {m}")
    ones = np.ones((1, m), dtype=dtype)
    if not double:
        return np.asarray(ones, order="F")
    ramp = np.arange(1, m + 1, dtype=dtype).reshape(1, m)
    return np.asarray(np.vstack([ones, ramp]), order="F")


def encode(payload: np.ndarray, smm_driver, double: bool = True) -> ChecksumEncoding:
    """Compute checksum rows W @ payload with an SMM driver.

    The GEMM shape is (c x N x M) with c in {1, 2} — the tall-and-skinny
    case the paper's Sec. I cites from TSM2.
    """
    if payload.ndim != 2:
        raise ConfigError(f"payload must be 2-D, got ndim={payload.ndim}")
    weights = checksum_weights(payload.shape[0], payload.dtype, double)
    result = smm_driver.gemm(weights, np.asarray(payload, order="F"))
    return ChecksumEncoding(
        checksums=result.c, weights=weights, timing=result.timing
    )


def verify(
    payload: np.ndarray,
    encoding: ChecksumEncoding,
    atol: float = 1e-3,
) -> bool:
    """True when the payload still matches its checksums."""
    fresh = encoding.weights @ payload
    return bool(np.allclose(fresh, encoding.checksums, atol=atol))


def locate_single_error(
    payload: np.ndarray,
    encoding: ChecksumEncoding,
    atol: float = 1e-3,
) -> Optional[Tuple[int, int, float]]:
    """Locate one corrupted element using the double checksum.

    Returns (row, col, delta) or None when the checksums verify.  Requires
    the two-row encoding (ones + ramp): the ones-row gives the column and
    the magnitude, the ramp/ones ratio gives the row index.
    """
    if encoding.weights.shape[0] != 2:
        raise ConfigError("single-error location needs the double checksum")
    fresh = encoding.weights @ payload
    residual = fresh - encoding.checksums
    col_hits = np.nonzero(np.abs(residual[0]) > atol)[0]
    if col_hits.size == 0:
        return None
    col = int(col_hits[0])
    delta = float(residual[0, col])
    row_float = residual[1, col] / delta
    row = int(round(row_float)) - 1
    if not 0 <= row < payload.shape[0]:
        raise ConfigError(
            f"inconsistent residuals: implied row {row_float!r} out of range"
        )
    return row, col, delta


def correct_single_error(
    payload: np.ndarray,
    encoding: ChecksumEncoding,
    atol: float = 1e-3,
) -> np.ndarray:
    """Return a corrected copy of ``payload`` (identity when clean)."""
    hit = locate_single_error(payload, encoding, atol)
    fixed = payload.copy()
    if hit is not None:
        row, col, delta = hit
        fixed[row, col] -= delta
    return fixed
