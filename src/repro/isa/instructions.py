"""Instruction definitions for the modeled ARMv8/NEON subset.

Each :class:`Instruction` records exactly what the pipeline scheduler needs:

* ``port``       — which functional-unit class it occupies for one cycle;
* ``latency_key``— index into :attr:`CoreConfig.latencies` for result latency;
* ``reads`` / ``writes`` — architectural registers, for dependence edges
  (the scheduler renames, so only true RAW dependences matter);
* ``flops`` / ``mem_bytes`` — accounting for efficiency metrics.

Factory helpers mirror the A64 mnemonics the paper's Figure 7 lists
(``ldp``, ``ldr``, ``fmla`` ...) so that re-created library kernels read like
the original assembly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

from ..machine.config import PORT_CLASSES
from ..util.errors import IsaError
from .registers import is_vreg, is_xreg


@dataclass(frozen=True)
class Instruction:
    """One machine instruction in a kernel body."""

    text: str
    port: str
    latency_key: str
    reads: Tuple[str, ...] = ()
    writes: Tuple[str, ...] = ()
    flops: int = 0
    mem_bytes: int = 0
    tags: Tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.port not in PORT_CLASSES:
            raise IsaError(
                f"{self.text!r}: port {self.port!r} not in {PORT_CLASSES}"
            )
        for reg in self.reads + self.writes:
            if not (is_vreg(reg) or is_xreg(reg)):
                raise IsaError(f"{self.text!r}: malformed register {reg!r}")
        if self.flops < 0 or self.mem_bytes < 0:
            raise IsaError(f"{self.text!r}: negative flops/mem_bytes")

    @property
    def is_load(self) -> bool:
        """True for instructions that read memory."""
        return self.port == "load"

    @property
    def is_store(self) -> bool:
        """True for instructions that write memory."""
        return self.port == "store"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.text


# ---------------------------------------------------------------------------
# memory instructions
# ---------------------------------------------------------------------------


def ldr_q(dst: str, base: str, offset: int = 0, post_inc: int = 0) -> Instruction:
    """128-bit vector load: ``ldr q<dst>, [x<base>], #imm``.

    Post-increment addressing writes the base register back, creating the
    address-chain dependence real kernels carry.  ``offset`` and
    ``post_inc`` are mutually exclusive addressing modes (A64 has no
    offset-plus-writeback form for this encoding), so passing both is
    rejected rather than silently dropping the offset.
    """
    _require_v(dst, "ldr_q dst")
    _require_x(base, "ldr_q base")
    if offset and post_inc:
        raise IsaError(
            f"ldr_q {dst}: offset ({offset}) and post_inc ({post_inc}) are "
            "mutually exclusive addressing modes"
        )
    if post_inc:
        text = f"ldr q{dst[1:]}, [{base}], #{post_inc}"
    elif offset:
        text = f"ldr q{dst[1:]}, [{base}, #{offset}]"
    else:
        text = f"ldr q{dst[1:]}, [{base}]"
    writes = (dst, base) if post_inc else (dst,)
    return Instruction(
        text=text,
        port="load",
        latency_key="load",
        reads=(base,),
        writes=writes,
        mem_bytes=16,
        tags=("vload",),
    )


def ldr_s(dst: str, base: str, offset: int = 0) -> Instruction:
    """32-bit scalar FP load into lane 0 of a vector register."""
    _require_v(dst, "ldr_s dst")
    _require_x(base, "ldr_s base")
    return Instruction(
        text=f"ldr s{dst[1:]}, [{base}, #{offset}]",
        port="load",
        latency_key="load",
        reads=(base,),
        writes=(dst,),
        mem_bytes=4,
        tags=("sload",),
    )


def ldp_s(dst1: str, dst2: str, base: str, post_inc: int = 8) -> Instruction:
    """Paired 32-bit FP load: ``ldp s<d1>, s<d2>, [x<base>], #8``.

    This is the B-sliver load idiom of the OpenBLAS 8x4 micro-kernel the
    paper reproduces in Figure 7.
    """
    _require_v(dst1, "ldp_s dst1")
    _require_v(dst2, "ldp_s dst2")
    _require_x(base, "ldp_s base")
    if dst1 == dst2:
        raise IsaError("ldp_s destinations must differ")
    return Instruction(
        text=f"ldp s{dst1[1:]}, s{dst2[1:]}, [{base}], #{post_inc}",
        port="load",
        latency_key="load",
        reads=(base,),
        writes=(dst1, dst2, base),
        mem_bytes=8,
        tags=("sload", "pair"),
    )


def str_q(src: str, base: str, offset: int = 0) -> Instruction:
    """128-bit vector store."""
    _require_v(src, "str_q src")
    _require_x(base, "str_q base")
    return Instruction(
        text=f"str q{src[1:]}, [{base}, #{offset}]",
        port="store",
        latency_key="store",
        reads=(src, base),
        writes=(),
        mem_bytes=16,
        tags=("vstore",),
    )


def str_s(src: str, base: str, offset: int = 0) -> Instruction:
    """32-bit scalar FP store."""
    _require_v(src, "str_s src")
    _require_x(base, "str_s base")
    return Instruction(
        text=f"str s{src[1:]}, [{base}, #{offset}]",
        port="store",
        latency_key="store",
        reads=(src, base),
        writes=(),
        mem_bytes=4,
        tags=("sstore",),
    )


# ---------------------------------------------------------------------------
# arithmetic instructions
# ---------------------------------------------------------------------------


def fmla(acc: str, a: str, b: str, lane: int = -1, lanes: int = 4) -> Instruction:
    """Vector fused multiply-add ``fmla acc, a, b[.s[lane]]``.

    The accumulator is both read and written, producing the loop-carried
    dependence chain whose length (relative to FMA latency) determines
    steady-state throughput — the mechanism behind the paper's edge-kernel
    inefficiency analysis.
    """
    _require_v(acc, "fmla acc")
    _require_v(a, "fmla a")
    _require_v(b, "fmla b")
    lane_txt = f".s[{lane}]" if lane >= 0 else f".{lanes}s"
    return Instruction(
        text=f"fmla {acc}.{lanes}s, {a}.{lanes}s, {b}{lane_txt}",
        port="fma",
        latency_key="fma",
        reads=(acc, a, b),
        writes=(acc,),
        flops=2 * lanes,
        tags=("fma",),
    )


def fmadd_scalar(acc: str, a: str, b: str) -> Instruction:
    """Scalar fused multiply-add (1 lane); the edge-of-edge fallback."""
    _require_v(acc, "fmadd acc")
    _require_v(a, "fmadd a")
    _require_v(b, "fmadd b")
    return Instruction(
        text=f"fmadd s{acc[1:]}, s{a[1:]}, s{b[1:]}, s{acc[1:]}",
        port="fma",
        latency_key="fma",
        reads=(acc, a, b),
        writes=(acc,),
        flops=2,
        tags=("fma", "scalar"),
    )


def fmul(dst: str, a: str, b: str, lanes: int = 4) -> Instruction:
    """Vector multiply (used for the final ``alpha * TEMP_C`` scaling)."""
    _require_v(dst, "fmul dst")
    _require_v(a, "fmul a")
    _require_v(b, "fmul b")
    return Instruction(
        text=f"fmul {dst}.{lanes}s, {a}.{lanes}s, {b}.{lanes}s",
        port="fma",
        latency_key="fmul",
        reads=(a, b),
        writes=(dst,),
        flops=lanes,
        tags=("fmul",),
    )


def fadd(dst: str, a: str, b: str, lanes: int = 4) -> Instruction:
    """Vector add."""
    _require_v(dst, "fadd dst")
    _require_v(a, "fadd a")
    _require_v(b, "fadd b")
    return Instruction(
        text=f"fadd {dst}.{lanes}s, {a}.{lanes}s, {b}.{lanes}s",
        port="fma",
        latency_key="fadd",
        reads=(a, b),
        writes=(dst,),
        flops=lanes,
        tags=("fadd",),
    )


def dup(dst: str, src: str, lane: int = 0, lanes: int = 4) -> Instruction:
    """Broadcast one lane of ``src`` across ``dst`` (B-element splat)."""
    _require_v(dst, "dup dst")
    _require_v(src, "dup src")
    return Instruction(
        text=f"dup {dst}.{lanes}s, {src}.s[{lane}]",
        port="alu",
        latency_key="dup",
        reads=(src,),
        writes=(dst,),
        tags=("dup",),
    )


def movi_zero(dst: str, lanes: int = 4) -> Instruction:
    """Zero a vector register (accumulator init)."""
    _require_v(dst, "movi dst")
    return Instruction(
        text=f"movi {dst}.{lanes}s, #0",
        port="alu",
        latency_key="alu",
        reads=(),
        writes=(dst,),
        tags=("movi",),
    )


# ---------------------------------------------------------------------------
# integer / control instructions
# ---------------------------------------------------------------------------


def add_imm(dst: str, src: str, imm: int) -> Instruction:
    """Integer add-immediate (address arithmetic)."""
    _require_x(dst, "add dst")
    _require_x(src, "add src")
    return Instruction(
        text=f"add {dst}, {src}, #{imm}",
        port="alu",
        latency_key="alu",
        reads=(src,),
        writes=(dst,),
        tags=("addr",),
    )


def subs_imm(dst: str, src: str, imm: int) -> Instruction:
    """Subtract-and-set-flags (loop counter decrement)."""
    _require_x(dst, "subs dst")
    _require_x(src, "subs src")
    return Instruction(
        text=f"subs {dst}, {src}, #{imm}",
        port="alu",
        latency_key="alu",
        reads=(src,),
        writes=(dst,),
        tags=("loopctl",),
    )


def branch_nz(counter: str, label: str = "loop") -> Instruction:
    """Conditional branch on the loop counter (predicted taken)."""
    _require_x(counter, "branch counter")
    return Instruction(
        text=f"b.ne .{label}",
        port="branch",
        latency_key="branch",
        reads=(counter,),
        writes=(),
        tags=("loopctl",),
    )


def _require_v(reg: str, what: str) -> None:
    if not is_vreg(reg):
        raise IsaError(f"{what} must be a vector register, got {reg!r}")


def _require_x(reg: str, what: str) -> None:
    if not is_xreg(reg):
        raise IsaError(f"{what} must be a scalar register, got {reg!r}")


def total_flops(instructions: Sequence[Instruction]) -> int:
    """Sum of flop contributions over ``instructions``."""
    return sum(ins.flops for ins in instructions)


def total_mem_bytes(instructions: Sequence[Instruction]) -> int:
    """Sum of bytes moved to/from memory over ``instructions``."""
    return sum(ins.mem_bytes for ins in instructions)
