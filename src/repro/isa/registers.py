"""Architectural register names for the modeled ARMv8 NEON subset.

Registers are represented as interned strings (``"v12"``, ``"x3"``) because
the pipeline model only needs identity for dependence tracking; a richer
class would buy nothing.  This module provides constructors that validate
indices against the architectural limits and an allocator used by kernel
builders.
"""

from __future__ import annotations

from typing import List, Set

from ..util.errors import IsaError, RegisterAllocationError

N_VECTOR_REGISTERS = 32
N_SCALAR_REGISTERS = 31  # x0..x30 (x31 is sp/zr)


def vreg(index: int) -> str:
    """The SIMD/FP register ``v<index>``."""
    if not 0 <= index < N_VECTOR_REGISTERS:
        raise IsaError(f"vector register index {index} out of range [0, 32)")
    return f"v{index}"


def xreg(index: int) -> str:
    """The general-purpose register ``x<index>``."""
    if not 0 <= index < N_SCALAR_REGISTERS:
        raise IsaError(f"scalar register index {index} out of range [0, 31)")
    return f"x{index}"


def is_vreg(name: str) -> bool:
    """True when ``name`` denotes a SIMD/FP register."""
    return name.startswith("v")


def is_xreg(name: str) -> bool:
    """True when ``name`` denotes a general-purpose register."""
    return name.startswith("x")


def reg_index(name: str) -> int:
    """The numeric index of a register name."""
    try:
        return int(name[1:])
    except (ValueError, IndexError) as exc:
        raise IsaError(f"malformed register name {name!r}") from exc


class RegisterAllocator:
    """Hands out architectural registers and enforces the file size.

    Kernel generators allocate one block of accumulators plus staging
    registers for A and B slivers; exceeding 32 vector registers is exactly
    the constraint of the paper's Eq. 4, so the allocator raises
    :class:`RegisterAllocationError` rather than silently spilling.
    """

    def __init__(self) -> None:
        self._free_v: List[int] = list(range(N_VECTOR_REGISTERS))
        self._free_x: List[int] = list(range(N_SCALAR_REGISTERS))
        self._live: Set[str] = set()

    @property
    def live_vector_count(self) -> int:
        """Number of currently allocated vector registers."""
        return sum(1 for r in self._live if is_vreg(r))

    def alloc_v(self, count: int = 1) -> List[str]:
        """Allocate ``count`` vector registers (lowest indices first)."""
        if count > len(self._free_v):
            raise RegisterAllocationError(
                f"need {count} vector registers but only {len(self._free_v)} "
                f"of {N_VECTOR_REGISTERS} are free"
            )
        out = [vreg(self._free_v.pop(0)) for _ in range(count)]
        self._live.update(out)
        return out

    def alloc_x(self, count: int = 1) -> List[str]:
        """Allocate ``count`` scalar registers."""
        if count > len(self._free_x):
            raise RegisterAllocationError(
                f"need {count} scalar registers but only {len(self._free_x)} "
                f"of {N_SCALAR_REGISTERS} are free"
            )
        out = [xreg(self._free_x.pop(0)) for _ in range(count)]
        self._live.update(out)
        return out

    def free(self, *names: str) -> None:
        """Return registers to the pool."""
        for name in names:
            if name not in self._live:
                raise IsaError(f"register {name!r} is not currently allocated")
            self._live.discard(name)
            idx = reg_index(name)
            if is_vreg(name):
                self._free_v.append(idx)
                self._free_v.sort()
            else:
                self._free_x.append(idx)
                self._free_x.sort()
