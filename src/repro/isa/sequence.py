"""Kernel bodies as structured instruction sequences.

A :class:`KernelSequence` is the unit the pipeline scheduler consumes: a
*prologue* (accumulator zeroing, first loads), a *loop body* iterated
``kc``-many times at run time, and an *epilogue* (C update: load, scale,
store).  Keeping the three parts separate lets the steady-state analyzer
measure asymptotic cycles-per-iteration of the body alone, exactly like the
paper's kernel-efficiency experiments which exclude packing and boundary
work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple

from ..util.errors import IsaError
from .instructions import Instruction, total_flops, total_mem_bytes


@dataclass(frozen=True)
class KernelSequence:
    """A micro-kernel: prologue, iterated loop body, epilogue."""

    name: str
    prologue: Tuple[Instruction, ...]
    body: Tuple[Instruction, ...]
    epilogue: Tuple[Instruction, ...]
    #: metadata: tile shape etc., free-form but conventionally includes
    #: 'mr', 'nr', 'unroll', 'lanes'
    meta: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.body:
            raise IsaError(f"kernel {self.name!r} has an empty loop body")
        for part_name, part in (
            ("prologue", self.prologue),
            ("body", self.body),
            ("epilogue", self.epilogue),
        ):
            for ins in part:
                if not isinstance(ins, Instruction):
                    raise IsaError(
                        f"kernel {self.name!r} {part_name} contains a "
                        f"non-instruction: {ins!r}"
                    )

    # -- static accounting ---------------------------------------------------

    @property
    def unroll(self) -> int:
        """k-steps folded into one loop-body iteration."""
        return int(self.meta.get("unroll", 1))

    @property
    def mr(self) -> int:
        """Tile rows."""
        return int(self.meta["mr"])

    @property
    def nr(self) -> int:
        """Tile columns."""
        return int(self.meta["nr"])

    @property
    def body_flops(self) -> int:
        """Useful flops per loop-body iteration."""
        return total_flops(self.body)

    @property
    def body_mem_bytes(self) -> int:
        """Bytes moved per loop-body iteration."""
        return total_mem_bytes(self.body)

    @property
    def flops_per_kstep(self) -> float:
        """Useful flops per single k iteration (body flops / unroll)."""
        return self.body_flops / self.unroll

    def port_histogram(self) -> Dict[str, int]:
        """Loop-body instruction count per port class."""
        hist: Dict[str, int] = {}
        for ins in self.body:
            hist[ins.port] = hist.get(ins.port, 0) + 1
        return hist

    def instruction_count(self) -> int:
        """Total static instruction count (all three parts)."""
        return len(self.prologue) + len(self.body) + len(self.epilogue)

    def encoded_bytes(self, instruction_bytes: int = 4) -> int:
        """Approximate i-footprint (A64 instructions are fixed width)."""
        return self.instruction_count() * instruction_bytes

    def all_instructions(self) -> Iterator[Instruction]:
        """Prologue, body, epilogue in program order (body once)."""
        yield from self.prologue
        yield from self.body
        yield from self.epilogue

    def listing(self) -> str:
        """An assembly-style listing, as in the paper's Figure 7."""
        lines: List[str] = [f"// kernel {self.name} meta={self.meta}"]
        for ins in self.prologue:
            lines.append(f"    {ins.text}")
        lines.append(".loop:")
        for ins in self.body:
            lines.append(f"    {ins.text}")
        for ins in self.epilogue:
            lines.append(f"    {ins.text}")
        return "\n".join(lines)

    def registers_used(self) -> Tuple[str, ...]:
        """Sorted distinct architectural registers touched by the kernel."""
        regs = set()
        for ins in self.all_instructions():
            regs.update(ins.reads)
            regs.update(ins.writes)
        return tuple(sorted(regs))

    def vector_registers_used(self) -> int:
        """Distinct vector registers touched (Eq. 4 accounting)."""
        return sum(1 for r in self.registers_used() if r.startswith("v"))


def concat_bodies(name: str, kernels: Sequence[KernelSequence]) -> KernelSequence:
    """Fuse several kernels' bodies into one (used by schedule experiments)."""
    if not kernels:
        raise IsaError("concat_bodies needs at least one kernel")
    prologue: List[Instruction] = []
    body: List[Instruction] = []
    epilogue: List[Instruction] = []
    for k in kernels:
        prologue.extend(k.prologue)
        body.extend(k.body)
        epilogue.extend(k.epilogue)
    meta = dict(kernels[0].meta)
    return KernelSequence(
        name=name,
        prologue=tuple(prologue),
        body=tuple(body),
        epilogue=tuple(epilogue),
        meta=meta,
    )
