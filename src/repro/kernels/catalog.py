"""Library kernel catalogs and edge-case tile planning (paper Table I).

Each of the four libraries ships a characteristic set of micro-kernels and
an edge-case policy:

=============  =================  ========  ======================  =========
library        assembly layers    unroll    mr x nr                 edges
=============  =================  ========  ======================  =========
OpenBLAS       layers 4-7         8         16x4 (also 8x8, 4x4)    power-of-2
                                                                    edge kernels
BLIS           layers 6-7         4         8x12                    zero padding
BLASFEO        layers 6-7         4         16x4 (also 8x8)         zero padding
Eigen          none (C++)         1         12x4                    scalar tail
=============  =================  ========  ======================  =========

:func:`tile_plan` turns an ``(mc, nc)`` macro-tile into micro-kernel
invocations under the library's edge policy; the GEMM drivers multiply each
invocation by its k-extent and the steady-state model to cost a GEBP call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..util.errors import KernelDesignError
from ..util.validation import ceil_div, check_choice, check_positive_int
from .generator import KernelSpec, edge_decomposition

EDGE_POLICIES = ("pow2_kernels", "pad", "exact_scalar")


@dataclass(frozen=True)
class KernelCatalog:
    """One library's kernel inventory and edge policy."""

    library: str
    main: KernelSpec
    #: alternates the library could pick (documentation/Table-I fidelity)
    alternates: Tuple[KernelSpec, ...]
    edge_policy: str
    #: Table I narrative fields
    assembly_layers: str = ""

    def __post_init__(self) -> None:
        check_choice(self.edge_policy, EDGE_POLICIES, "edge_policy", KernelDesignError)

    @property
    def mr(self) -> int:
        """Preferred tile rows."""
        return self.main.mr

    @property
    def nr(self) -> int:
        """Preferred tile columns."""
        return self.main.nr

    def audit(self, core=None):
        """Statically verify every kernel this catalog can emit.

        Generates the main kernel, the Table-I alternates and the edge
        kernels of this library's edge policy, runs each through the
        static verifier and returns ``{kernel_name: VerificationReport}``.
        Pass a :class:`~repro.machine.config.CoreConfig` to additionally
        compute static cycle bounds against that core model.
        """
        # imported lazily: repro.verify audits through this module
        from ..verify import audit_catalog

        return audit_catalog(self, core=core)


def _scaled_mr(base_mr: int, lanes: int) -> int:
    """Tile height scaled from the 4-lane fp32 NEON baseline.

    The paper's Table I tiles are fp32 NEON kernels; libraries scale mr
    with the vector length — down for fp64 (2 lanes), up for wider SIMD —
    keeping the same number of vector rows per tile.
    """
    return max((base_mr * lanes) // 4, lanes)


def openblas_catalog(lanes: int = 4) -> KernelCatalog:
    """OpenBLAS ARMv8: 16x4 unroll-8 assembly main kernel, power-of-two
    naive edge kernels (the Fig. 7 code)."""
    return KernelCatalog(
        library="openblas",
        main=KernelSpec(_scaled_mr(16, lanes), 4, unroll=8, lanes=lanes,
                        style="pipelined", label="openblas"),
        alternates=(
            KernelSpec(_scaled_mr(8, lanes), 8, unroll=8, lanes=lanes,
                       style="pipelined", label="openblas"),
            KernelSpec(_scaled_mr(4, lanes), 4, unroll=8, lanes=lanes,
                       style="pipelined", label="openblas"),
        ),
        edge_policy="pow2_kernels",
        assembly_layers="Layer 4-7",
    )


def blis_catalog(lanes: int = 4) -> KernelCatalog:
    """BLIS ARMv8: a single 8x12 unroll-4 micro-kernel; edges are packed
    with zero padding and run through the same kernel."""
    return KernelCatalog(
        library="blis",
        main=KernelSpec(_scaled_mr(8, lanes), 12, unroll=4, lanes=lanes,
                        style="pipelined", label="blis"),
        alternates=(),
        edge_policy="pad",
        assembly_layers="Layer 6-7",
    )


def blasfeo_catalog(lanes: int = 4) -> KernelCatalog:
    """BLASFEO: 16x4/8x8 unroll-4 kernels over panel-major operands; edges
    are padded to the panel size ps."""
    return KernelCatalog(
        library="blasfeo",
        main=KernelSpec(_scaled_mr(16, lanes), 4, unroll=4, lanes=lanes,
                        style="pipelined", label="blasfeo"),
        alternates=(
            KernelSpec(_scaled_mr(8, lanes), 8, unroll=4, lanes=lanes,
                       style="pipelined", label="blasfeo"),
        ),
        edge_policy="pad",
        assembly_layers="Layer 6-7",
    )


def eigen_catalog(lanes: int = 4) -> KernelCatalog:
    """Eigen: compiler-generated 12x4 GEBP (no assembly, unroll 1, no FP
    contraction under strict semantics); edge tiles fall back to scalar
    tail rows in the same compiled style."""
    return KernelCatalog(
        library="eigen",
        main=KernelSpec(_scaled_mr(12, lanes), 4, unroll=1, lanes=lanes,
                        style="compiled", contraction=False, label="eigen"),
        alternates=(),
        edge_policy="exact_scalar",
        assembly_layers="none",
    )


def all_catalogs(lanes: int = 4) -> Dict[str, KernelCatalog]:
    """All four library catalogs keyed by library name."""
    cats = (
        openblas_catalog(lanes),
        blis_catalog(lanes),
        blasfeo_catalog(lanes),
        eigen_catalog(lanes),
    )
    return {c.library: c for c in cats}


@dataclass(frozen=True)
class TileInvocation:
    """One micro-kernel call shape within a macro-tile plan.

    ``rows``/``cols`` are the *useful* extents; ``padded_rows``/
    ``padded_cols`` the computed extents (>= useful under padding).
    ``calls`` is how many identical invocations the plan contains.
    """

    spec: KernelSpec
    rows: int
    cols: int
    padded_rows: int
    padded_cols: int
    calls: int
    #: set by the planner: this invocation covers an edge region
    edge: bool = False

    @property
    def useful_flops_per_k(self) -> int:
        """Useful flops per k-step across all calls."""
        return 2 * self.rows * self.cols * self.calls

    @property
    def is_edge(self) -> bool:
        """True when this invocation covers an edge region."""
        return self.edge or (
            self.padded_rows != self.rows or self.padded_cols != self.cols
        )


def _edge_specs_rows(
    catalog: KernelCatalog, rem_m: int, nr: int
) -> List[Tuple[KernelSpec, int, int]]:
    """(spec, rows, padded_rows) pieces covering an M-edge of rem_m."""
    main = catalog.main
    if catalog.edge_policy == "pad":
        return [(
            main if rem_m == main.mr else
            KernelSpec(rem_m, nr, unroll=main.unroll, lanes=main.lanes,
                       style=main.style, contraction=main.contraction,
                       pad_rows=True, label=main.label + "-pad"),
            rem_m,
            ceil_div(rem_m, main.lanes) * main.lanes,
        )]
    if catalog.edge_policy == "exact_scalar":
        # scalar tail rows need one register per (row, column); when that
        # cannot fit (wide-SIMD machines) the compiler would emit masked
        # vector code, modeled as a padded tile
        tail_rows = rem_m % main.lanes
        tail_regs = (
            (rem_m // main.lanes) * nr + tail_rows * nr + tail_rows + nr
        )
        must_pad = tail_rows > 0 and tail_regs > 30
        return [(
            KernelSpec(rem_m, nr, unroll=main.unroll, lanes=main.lanes,
                       style=main.style, contraction=main.contraction,
                       pad_rows=must_pad,
                       label=main.label + "-edge"),
            rem_m,
            ceil_div(rem_m, main.lanes) * main.lanes if must_pad else rem_m,
        )]
    # pow2_kernels: decompose into power-of-two naive edge kernels.  When
    # the all-scalar-row variant of a part cannot fit the register file
    # (wide-SIMD machines), the library would use masked/predicated vectors
    # instead — modeled as a padded vector kernel.
    pieces = []
    for part in edge_decomposition(rem_m, catalog.mr, powers_of_two=True):
        # register demand of the all-scalar-row variant: one accumulator
        # per (row, column) plus row and column staging
        scalar_variant_regs = part * nr + part + nr
        must_pad = part < main.lanes and scalar_variant_regs > 30
        pieces.append((
            KernelSpec(part, nr, unroll=max(1, main.unroll // 2),
                       lanes=main.lanes, style="naive",
                       pad_rows=must_pad,
                       label=main.label + "-edge"),
            part,
            ceil_div(part, main.lanes) * main.lanes if must_pad else part,
        ))
    return pieces


def _edge_cols(catalog: KernelCatalog, rem_n: int) -> List[Tuple[int, int]]:
    """(cols, padded_cols) pieces covering an N-edge of rem_n."""
    if rem_n == 0:
        return []
    if catalog.edge_policy == "pad":
        return [(rem_n, catalog.nr)]
    if catalog.edge_policy == "exact_scalar":
        return [(rem_n, rem_n)]
    # pow2_kernels: N edges use narrow kernels of power-of-two widths
    return [
        (part, part)
        for part in edge_decomposition(rem_n, catalog.nr, powers_of_two=True)
    ]


def tile_plan(catalog: KernelCatalog, mc: int, nc: int) -> List[TileInvocation]:
    """Micro-kernel invocations covering an (mc x nc) macro-tile.

    The plan is exact: summing ``rows*cols*calls`` over the plan equals
    ``mc*nc`` (verified by property tests), while padded extents model the
    wasted work of the library's edge policy.
    """
    check_positive_int(mc, "mc", KernelDesignError)
    check_positive_int(nc, "nc", KernelDesignError)
    main = catalog.main
    full_m, rem_m = divmod(mc, main.mr)
    full_n, rem_n = divmod(nc, main.nr)

    plan: List[TileInvocation] = []

    def add(spec: KernelSpec, rows: int, prow: int, cols: int, pcol: int,
            calls: int, edge: bool) -> None:
        if calls <= 0:
            return
        if spec.nr != pcol:
            spec = KernelSpec(
                spec.mr, pcol, unroll=spec.unroll, lanes=spec.lanes,
                style=spec.style, contraction=spec.contraction,
                pad_rows=spec.pad_rows, b_layout=spec.b_layout,
                label=spec.label,
            )
        plan.append(TileInvocation(
            spec=spec, rows=rows, cols=cols,
            padded_rows=prow, padded_cols=pcol, calls=calls, edge=edge,
        ))

    # full interior tiles
    add(main, main.mr, main.mr, main.nr, main.nr, full_m * full_n, False)

    # M-edge strip (bottom), full-width columns
    if rem_m:
        for spec, rows, prow in _edge_specs_rows(catalog, rem_m, main.nr):
            add(spec, rows, prow, main.nr, main.nr, full_n, True)

    # N-edge strip (right), full-height rows
    if rem_n:
        for cols, pcol in _edge_cols(catalog, rem_n):
            if catalog.edge_policy == "pow2_kernels":
                spec = KernelSpec(
                    main.mr, cols, unroll=max(1, main.unroll // 2),
                    lanes=main.lanes, style="naive",
                    label=main.label + "-edge",
                )
                add(spec, main.mr, main.mr, cols, pcol, full_m, True)
            else:
                add(main, main.mr, main.mr, cols, pcol, full_m, True)

    # corner (both edges)
    if rem_m and rem_n:
        for spec, rows, prow in _edge_specs_rows(catalog, rem_m, main.nr):
            for cols, pcol in _edge_cols(catalog, rem_n):
                add(spec, rows, prow, cols, pcol, 1, True)

    return plan


def plan_coverage(plan: Sequence[TileInvocation]) -> int:
    """Total useful elements covered by ``plan`` (= mc*nc when exact)."""
    return sum(inv.rows * inv.cols * inv.calls for inv in plan)


def table1_rows() -> List[List[str]]:
    """The paper's Table I as renderable rows."""
    cats = all_catalogs()
    order = ("openblas", "blis", "blasfeo", "eigen")
    headers_to_specs = {
        name: ([cats[name].main] + list(cats[name].alternates))
        for name in order
    }
    rows = [
        ["Layers of assembly"] + [cats[n].assembly_layers for n in order],
        ["unrolling factor"] + [str(cats[n].main.unroll) for n in order],
        ["mr x nr"] + [
            ",".join(f"{s.mr}x{s.nr}" for s in headers_to_specs[n])
            for n in order
        ],
    ]
    return rows
