"""Micro-kernel generator: emits instruction sequences for mr x nr tiles.

The generator covers the three code-quality regimes the paper contrasts:

* ``pipelined`` — hand-optimized assembly quality (OpenBLAS/BLIS/BLASFEO
  main kernels): vector loads for both slivers, lane-indexed ``fmla``,
  double-buffered staging registers when the file has room;
* ``naive`` — the *edge* micro-kernel quality the paper dissects in Fig. 7:
  paired scalar loads for B, loads bunched immediately before their uses,
  scalar fallback rows for tile heights below the SIMD width;
* ``compiled`` — compiler-generated quality (Eigen): explicit address
  arithmetic per load, broadcast via ``dup``, optional *uncontracted*
  multiply-add (separate ``fmul`` + ``fadd``), unroll 1.

Emitted kernels are plain :class:`~repro.isa.KernelSequence` objects; their
performance characteristics (accumulator-chain counts, port pressure,
dispatch overhead) come out of the pipeline scheduler — nothing here assigns
cycle costs by hand.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Tuple

from ..isa.instructions import (
    Instruction,
    add_imm,
    branch_nz,
    dup,
    fadd,
    fmadd_scalar,
    fmla,
    fmul,
    ldp_s,
    ldr_q,
    ldr_s,
    movi_zero,
    str_q,
    str_s,
    subs_imm,
)
from ..isa.registers import N_VECTOR_REGISTERS, vreg, xreg
from ..isa.sequence import KernelSequence
from ..util.errors import KernelDesignError
from ..util.validation import ceil_div, check_choice, check_positive_int

STYLES = ("pipelined", "naive", "compiled")
B_LAYOUTS = ("packed", "strided")


@dataclass(frozen=True)
class KernelSpec:
    """Everything that determines a generated micro-kernel."""

    mr: int
    nr: int
    unroll: int = 4
    lanes: int = 4
    style: str = "pipelined"
    #: True: fused multiply-add; False: separate fmul+fadd (no contraction)
    contraction: bool = True
    #: 'packed' B sliver (contiguous) or 'strided' (unpacked edge, Fig. 8)
    b_layout: str = "packed"
    #: True: round mr up to full SIMD vectors and compute the zero-padded
    #: lanes (the BLIS/BLASFEO edge strategy); False: scalar tail rows
    #: (the OpenBLAS edge-kernel strategy)
    pad_rows: bool = False
    label: str = ""

    def __post_init__(self) -> None:
        check_positive_int(self.mr, "mr", KernelDesignError)
        check_positive_int(self.nr, "nr", KernelDesignError)
        check_positive_int(self.unroll, "unroll", KernelDesignError)
        check_positive_int(self.lanes, "lanes", KernelDesignError)
        check_choice(self.style, STYLES, "style", KernelDesignError)
        check_choice(self.b_layout, B_LAYOUTS, "b_layout", KernelDesignError)

    @property
    def name(self) -> str:
        """Stable human-readable identifier."""
        base = self.label or "ukr"
        flags = []
        if not self.contraction:
            flags.append("nofma")
        if self.b_layout == "strided":
            flags.append("bstrided")
        if self.pad_rows:
            flags.append("pad")
        flag_txt = ("-" + "-".join(flags)) if flags else ""
        return (
            f"{base}-{self.mr}x{self.nr}-u{self.unroll}-l{self.lanes}"
            f"-{self.style}{flag_txt}"
        )


class _RegisterBudget:
    """Simple linear vector-register assignment for one kernel."""

    def __init__(self) -> None:
        self.next = 0

    def take(self, count: int, what: str) -> List[str]:
        if self.next + count > N_VECTOR_REGISTERS:
            raise KernelDesignError(
                f"kernel needs {self.next + count} vector registers for "
                f"{what}; only {N_VECTOR_REGISTERS} exist (Eq. 4 violated)"
            )
        regs = [vreg(i) for i in range(self.next, self.next + count)]
        self.next += count
        return regs


# scalar (x) register conventions used by all generated kernels
_PA, _PB, _PC, _KCNT, _TMP0, _TMP1 = (
    xreg(0),
    xreg(1),
    xreg(2),
    xreg(3),
    xreg(4),
    xreg(5),
)


class MicroKernelGenerator:
    """Generates, verifies and memoizes micro-kernels.

    Memoization matters twice over: GEMM drivers request the same kernel for
    every tile of every call, and the steady-state analyzer caches by object
    identity.

    Every freshly built kernel is run through the static verifier
    (:mod:`repro.verify`) before it enters the cache: an uninitialized
    accumulator or a register-budget violation raises
    :class:`~repro.util.errors.KernelVerificationError` instead of flowing
    into the scheduler as a silently wrong cycle count.  Pass
    ``verify=False`` to opt out (e.g. when auditing deliberately broken
    kernels).
    """

    def __init__(self, verify: bool = True) -> None:
        self._cache: Dict[KernelSpec, KernelSequence] = {}
        self.verify = verify

    def generate(self, spec: KernelSpec) -> KernelSequence:
        """The kernel for ``spec`` (cached, verified on first build)."""
        hit = self._cache.get(spec)
        if hit is None:
            hit = _build_kernel(spec)
            if self.verify:
                from ..verify import assert_kernel_ok

                assert_kernel_ok(hit)
            self._cache[spec] = hit
        return hit

    def __len__(self) -> int:
        return len(self._cache)


def _build_kernel(spec: KernelSpec) -> KernelSequence:
    lanes = spec.lanes
    if spec.pad_rows:
        # padded edge strategy: compute ceil(mr/lanes) full vectors; the
        # zero lanes do wasted (but counted-by-hardware) work
        full_rows = ceil_div(spec.mr, lanes)
        rem_rows = 0
    else:
        full_rows = spec.mr // lanes  # full vectors per A sliver
        rem_rows = spec.mr % lanes  # scalar tail rows
    budget = _RegisterBudget()

    # Accumulators: one vector per (row-vector, column) plus one scalar acc
    # per (tail-row, column).
    acc_vec = [
        budget.take(spec.nr, f"row-vector {i} accumulators")
        for i in range(full_rows)
    ]
    acc_scalar = [
        budget.take(spec.nr, f"tail-row {r} accumulators")
        for r in range(rem_rows)
    ]

    # Staging registers.  Double-buffer in pipelined style when there is room.
    a_vec_count = full_rows
    a_sca_count = rem_rows
    if spec.b_layout == "packed":
        b_count = ceil_div(spec.nr, lanes) if spec.style != "naive" else spec.nr
    else:
        b_count = spec.nr
    want_double = spec.style == "pipelined"
    copies = 2 if want_double else 1
    need = (a_vec_count + a_sca_count + b_count) * copies
    if budget.next + need > N_VECTOR_REGISTERS:
        copies = 1
        need = a_vec_count + a_sca_count + b_count
    a_vec_regs = [budget.take(a_vec_count, "A stage") for _ in range(copies)]
    a_sca_regs = [budget.take(a_sca_count, "A tail stage") for _ in range(copies)]
    b_regs = [budget.take(b_count, "B stage") for _ in range(copies)]
    tmp_regs = (
        budget.take(min(2, N_VECTOR_REGISTERS - budget.next), "fmul temps")
        if not spec.contraction
        else []
    )
    if not spec.contraction and not tmp_regs:
        raise KernelDesignError(
            f"{spec.name}: no registers left for uncontracted temporaries"
        )

    prologue: List[Instruction] = []
    for regs in acc_vec:
        prologue.extend(movi_zero(r, lanes) for r in regs)
    for regs in acc_scalar:
        prologue.extend(movi_zero(r, 1) for r in regs)

    body: List[Instruction] = []
    for step in range(spec.unroll):
        buf = step % copies
        body.extend(
            _emit_kstep(
                spec,
                lanes,
                acc_vec,
                acc_scalar,
                a_vec_regs[buf],
                a_sca_regs[buf],
                b_regs[buf],
                tmp_regs,
            )
        )
    body.append(subs_imm(_KCNT, _KCNT, 1))
    body.append(branch_nz(_KCNT))

    epilogue = _emit_epilogue(spec, lanes, acc_vec, acc_scalar)

    return KernelSequence(
        name=spec.name,
        prologue=tuple(prologue),
        body=tuple(body),
        epilogue=tuple(epilogue),
        meta={
            "mr": spec.mr,
            "nr": spec.nr,
            "mr_padded": full_rows * lanes + rem_rows,
            "unroll": spec.unroll,
            "lanes": lanes,
            "chains": len(acc_vec) * spec.nr + len(acc_scalar) * spec.nr,
        },
    )


def _emit_kstep(
    spec: KernelSpec,
    lanes: int,
    acc_vec: List[List[str]],
    acc_scalar: List[List[str]],
    a_vec: List[str],
    a_sca: List[str],
    b_regs: List[str],
    tmp_regs: List[str],
) -> List[Instruction]:
    out: List[Instruction] = []
    vec_bytes = 4 * lanes

    # ---- B sliver loads ----
    if spec.b_layout == "strided":
        # unpacked edge: one scalar load per element behind its own address
        # computation (paper Fig. 8, the "without packing" case)
        for j, reg in enumerate(b_regs):
            out.append(add_imm(_TMP0, _PB, 4 * j))
            out.append(ldr_s(reg, _TMP0))
    elif spec.style == "naive":
        # Fig. 7 idiom: ldp pairs of scalars
        for j in range(0, len(b_regs) - 1, 2):
            out.append(ldp_s(b_regs[j], b_regs[j + 1], _PB))
        if len(b_regs) % 2:
            out.append(ldr_s(b_regs[-1], _PB))
    else:
        for j, reg in enumerate(b_regs):
            if spec.style == "compiled":
                out.append(add_imm(_TMP0, _PB, vec_bytes * j))
                out.append(ldr_q(reg, _TMP0))
            else:
                out.append(ldr_q(reg, _PB, post_inc=vec_bytes))

    # ---- A sliver loads ----
    for i, reg in enumerate(a_vec):
        if spec.style == "compiled":
            out.append(add_imm(_TMP1, _PA, vec_bytes * i))
            out.append(ldr_q(reg, _TMP1))
        else:
            out.append(ldr_q(reg, _PA, post_inc=vec_bytes))
    for r, reg in enumerate(a_sca):
        out.append(ldr_s(reg, _PA, offset=4 * (len(a_vec) * lanes + r)))

    # ---- multiply-accumulate ----
    def b_operand(j: int) -> Tuple[str, int]:
        """Register and lane index holding B element j."""
        if spec.b_layout == "packed" and spec.style not in ("naive",):
            return b_regs[j // lanes], j % lanes
        return b_regs[j], 0

    for j in range(spec.nr):
        breg, lane = b_operand(j)
        for i, areg in enumerate(a_vec):
            acc = acc_vec[i][j]
            if spec.contraction:
                out.append(fmla(acc, areg, breg, lane=lane, lanes=lanes))
            else:
                tmp = tmp_regs[(i + j) % len(tmp_regs)]
                bcast = b_regs[j // lanes] if spec.b_layout == "packed" else breg
                out.append(dup(tmp, bcast, lane=lane, lanes=lanes))
                out.append(fmul(tmp, areg, tmp, lanes=lanes))
                out.append(fadd(acc, acc, tmp, lanes=lanes))
        for r, areg in enumerate(a_sca):
            out.append(fmadd_scalar(acc_scalar[r][j], areg, breg))
    return out


def _emit_epilogue(
    spec: KernelSpec,
    lanes: int,
    acc_vec: List[List[str]],
    acc_scalar: List[List[str]],
) -> List[Instruction]:
    """C-tile update: load, accumulate, store (alpha folded into the adds)."""
    out: List[Instruction] = []
    vec_bytes = 4 * lanes
    # one scratch vector register is re-used for the C traffic; renaming in
    # the scheduler keeps the loads independent
    c_tmp = vreg(N_VECTOR_REGISTERS - 1)
    # with pad_rows, the last vector row may carry invalid lanes that must
    # be copied out element-wise (the masked copy-out of a padded tile)
    partial_lanes = spec.mr % lanes if (spec.pad_rows and spec.mr % lanes) else 0
    offset = 0
    for j in range(spec.nr):
        for i in range(len(acc_vec)):
            is_partial = partial_lanes and i == len(acc_vec) - 1
            if is_partial:
                for lane in range(partial_lanes):
                    out.append(ldr_s(c_tmp, _PC, offset=offset))
                    out.append(fmadd_scalar(c_tmp, acc_vec[i][j], acc_vec[i][j]))
                    out.append(str_s(c_tmp, _PC, offset=offset))
                    offset += 4
            else:
                out.append(ldr_q(c_tmp, _PC, offset=offset))
                out.append(fadd(c_tmp, c_tmp, acc_vec[i][j], lanes=lanes))
                out.append(str_q(c_tmp, _PC, offset=offset))
                offset += vec_bytes
        for r in range(len(acc_scalar)):
            out.append(ldr_s(c_tmp, _PC, offset=offset))
            out.append(fmadd_scalar(c_tmp, acc_scalar[r][j], acc_scalar[r][j]))
            out.append(str_s(c_tmp, _PC, offset=offset))
            offset += 4
    return out


def edge_decomposition(extent: int, tile: int, powers_of_two: bool = True) -> List[int]:
    """Decompose an edge ``extent`` into sub-kernel heights.

    OpenBLAS handles an M-edge of, say, 11 with its 8x·, 2x·, 1x· kernels;
    this helper returns that decomposition (``[8, 2, 1]``).  With
    ``powers_of_two=False`` the extent is returned whole (JIT-style exact
    edge kernels).
    """
    check_positive_int(tile, "tile", KernelDesignError)
    if extent < 0:
        raise KernelDesignError(f"extent must be >= 0, got {extent}")
    if extent == 0:
        return []
    if not powers_of_two:
        return [extent]
    parts: List[int] = []
    remaining = extent
    size = 1
    while size * 2 <= min(tile, remaining):
        size *= 2
    while remaining:
        while size > remaining:
            size //= 2
        parts.append(size)
        remaining -= size
    return parts


def derive_edge_spec(spec: KernelSpec, mr: int, nr: int) -> KernelSpec:
    """An edge variant of ``spec`` with a smaller tile, naive style.

    Library edge kernels are the low-effort corners of the code base (the
    paper's Fig. 7 complaint); modeling them as ``naive`` captures that.
    """
    return replace(
        spec,
        mr=mr,
        nr=nr,
        style="naive",
        unroll=max(1, spec.unroll // 2),
        label=(spec.label + "-edge") if spec.label else "edge",
    )
