"""JIT-style adaptive kernel generation (paper Sec. IV, third feature).

LIBXSMM-style small-GEMM libraries generate a bespoke kernel per input
shape at run time.  :class:`JitKernelFactory` models that: given a machine
and dtype it picks the best feasible main tile from the analytic design
space (Eq. 4 + Eq. 5 + the latency constraint), and materializes exact-shape
*optimized* edge kernels on demand — properly scheduled vector code with
row padding, instead of the naive scalar edge kernels the paper criticizes
in OpenBLAS (Fig. 7) or whole-tile padding in BLIS.

The factory memoizes by shape, mirroring a JIT code cache; the kernel-cache
hit statistics are part of the adaptive-codegen ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..machine.config import CoreConfig
from ..util.errors import KernelDesignError
from ..util.validation import check_positive_int
from .design import best_tile, evaluate_tile
from .generator import KernelSpec, MicroKernelGenerator


@dataclass
class JitStats:
    """Code-cache statistics of a JIT factory."""

    requests: int = 0
    compiles: int = 0

    @property
    def hit_rate(self) -> float:
        """Cache hits per request."""
        if self.requests == 0:
            return 0.0
        return 1.0 - self.compiles / self.requests


class JitKernelFactory:
    """Generates optimal main and exact-shape edge kernels on demand."""

    def __init__(
        self,
        core: CoreConfig,
        dtype=np.float32,
        unroll: int = 4,
        max_mr: int = 0,
        max_nr: int = 0,
        verify: bool = True,
    ) -> None:
        check_positive_int(unroll, "unroll", KernelDesignError)
        self.core = core
        self.dtype = np.dtype(dtype)
        self.lanes = core.simd_lanes(dtype)
        self.unroll = unroll
        # default search bounds scale with the vector length so wide-SIMD
        # machines still have a feasible lane-aligned design space
        max_mr = max_mr or max(24, 6 * self.lanes)
        max_nr = max_nr or max(24, 6 * self.lanes)
        # every JIT-emitted kernel is statically verified like a
        # generator kernel; verify=False opts the whole code cache out
        self._gen = MicroKernelGenerator(verify=verify)
        self._spec_cache: Dict[Tuple[int, int], KernelSpec] = {}
        self.stats = JitStats()
        # mr must be a multiple of the vector length (full A vectors); nr
        # only needs word alignment — B is broadcast lane-by-lane, and on
        # wide-SIMD machines requiring nr % lanes == 0 would leave no
        # feasible tile inside 32 registers
        self._main = best_tile(
            core, dtype, max_mr=max_mr, max_nr=max_nr,
            prefer_multiple_of=self.lanes,
            nr_multiple_of=min(self.lanes, 4),
        )

    @property
    def main_spec(self) -> KernelSpec:
        """The analytically best feasible main tile for this machine."""
        return self.spec_for(self._main.mr, self._main.nr)

    def spec_for(self, mr: int, nr: int) -> KernelSpec:
        """The spec the JIT would emit for an (mr x nr) tile request."""
        check_positive_int(mr, "mr", KernelDesignError)
        check_positive_int(nr, "nr", KernelDesignError)
        self.stats.requests += 1
        key = (mr, nr)
        spec = self._spec_cache.get(key)
        if spec is None:
            self.stats.compiles += 1
            design = evaluate_tile(mr, nr, self.lanes, self.core)
            if not design.register_ok:
                raise KernelDesignError(
                    f"JIT tile {mr}x{nr} violates the register constraint "
                    f"(needs {design.registers} > "
                    f"{self.core.vector_registers} registers)"
                )
            spec = KernelSpec(
                mr,
                nr,
                unroll=self.unroll,
                lanes=self.lanes,
                style="pipelined",
                pad_rows=(mr % self.lanes != 0),
                label="jit",
            )
            self._spec_cache[key] = spec
        return spec

    def kernel_for(self, mr: int, nr: int):
        """The generated :class:`KernelSequence` for an (mr x nr) tile."""
        return self._gen.generate(self.spec_for(mr, nr))

    def main_candidates(self, packed_b: bool = True) -> list:
        """Main-tile specs worth pricing for one plan, best first.

        Both orientations of the analytically best tile (when the flipped
        one fits the register file) — the driver and the adaptive tuner
        price each and keep the cheaper plan.  With ``packed_b=False`` the
        candidates are strided-B kernels under the tighter register
        constraint of unpacked operands.
        """
        from dataclasses import replace

        main = self.main_spec if packed_b else self.strided_main_spec()
        candidates = [main]
        if main.mr != main.nr:
            flipped = replace(
                main, mr=main.nr, nr=main.mr,
                pad_rows=(main.nr % self.lanes != 0),
            )
            design = evaluate_tile(flipped.mr, flipped.nr, self.lanes,
                                   self.core)
            if design.register_ok:
                candidates.append(flipped)
        return candidates

    def strided_main_spec(self) -> KernelSpec:
        """Best main tile for *unpacked* B (strided scalar B loads).

        A strided kernel stages every B element in its own register, so the
        register constraint tightens: ``acc + a_stage + nr <= 32``.  The
        packing-optional driver pays this smaller tile (worse CMR) when it
        skips packing — one side of the Sec. IV trade-off.
        """
        lanes = self.lanes
        best = None
        for mr in range(lanes, 4 * lanes + 1, lanes):
            a_stage = mr // lanes
            for nr in range(1, 33):
                regs = (mr // lanes) * nr + a_stage + nr
                if regs > self.core.vector_registers:
                    break
                chains = (mr // lanes) * nr
                if chains < self.core.ports["fma"] * self.core.latencies["fma"]:
                    continue
                cmr = 2.0 * mr * nr / (mr + nr)
                key = (cmr, -regs)
                if best is None or key > best[0]:
                    best = (key, mr, nr)
        if best is None:
            raise KernelDesignError("no feasible strided tile")
        _, mr, nr = best
        return KernelSpec(
            mr, nr, unroll=self.unroll, lanes=lanes, style="pipelined",
            b_layout="strided", label="jit-nopack",
        )

    @property
    def generator(self) -> MicroKernelGenerator:
        """The underlying (shared) kernel generator."""
        return self._gen
