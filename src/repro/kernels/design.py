"""Micro-kernel design-space models (paper Sec. III-C, Eq. 4 and Eq. 5).

A GEBP micro-kernel computes an ``mr x nr`` tile of C by rank-1 updates.
Two analytic constraints govern the choice of ``(mr, nr)``:

* **register constraint (Eq. 4)** — the accumulator tile plus staging
  registers for A and B slivers must fit the 32-entry vector file::

      ceil(mr/lanes) * nr + staging <= 32

  The paper writes this as ``mr*nr/4 <= 32 - 2`` for 4-lane fp32 with one
  staging register each for A and B; :func:`registers_needed` generalizes
  to arbitrary lane counts and double buffering.

* **compute-to-memory ratio (Eq. 5)** — ``CMR = 2*mr*nr / (mr + nr)``;
  larger CMR means more flops amortize each loaded element, hence more
  latency-hiding headroom.

Additionally, the *latency constraint* (implicit in the paper's RAW-distance
discussion) requires enough independent accumulator chains to saturate the
FMA pipes: ``chains >= fma_ports * fma_latency``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..machine.config import CoreConfig
from ..util.errors import KernelDesignError
from ..util.validation import ceil_div, check_positive_int


def accumulator_registers(mr: int, nr: int, lanes: int) -> int:
    """Vector registers holding the mr x nr accumulator tile."""
    check_positive_int(mr, "mr", KernelDesignError)
    check_positive_int(nr, "nr", KernelDesignError)
    check_positive_int(lanes, "lanes", KernelDesignError)
    return ceil_div(mr, lanes) * nr


def staging_registers(mr: int, nr: int, lanes: int, double_buffer: bool = False) -> int:
    """Registers staging the A and B slivers for one k-step."""
    per_step = ceil_div(mr, lanes) + ceil_div(nr, lanes)
    return per_step * (2 if double_buffer else 1)


def registers_needed(
    mr: int, nr: int, lanes: int, double_buffer: bool = False
) -> int:
    """Total vector registers a straightforward mr x nr kernel needs."""
    return accumulator_registers(mr, nr, lanes) + staging_registers(
        mr, nr, lanes, double_buffer
    )


def satisfies_register_constraint(
    mr: int,
    nr: int,
    lanes: int,
    n_registers: int = 32,
    double_buffer: bool = False,
) -> bool:
    """Paper Eq. 4 (generalized): does the tile fit the register file?"""
    return registers_needed(mr, nr, lanes, double_buffer) <= n_registers


def compute_to_memory_ratio(mr: int, nr: int) -> float:
    """Paper Eq. 5: flops per loaded element of a rank-1 update step."""
    check_positive_int(mr, "mr", KernelDesignError)
    check_positive_int(nr, "nr", KernelDesignError)
    return 2.0 * mr * nr / (mr + nr)


def accumulator_chains(mr: int, nr: int, lanes: int) -> int:
    """Independent loop-carried FMA chains of the tile (= accumulator regs)."""
    return accumulator_registers(mr, nr, lanes)


def satisfies_latency_constraint(
    mr: int, nr: int, lanes: int, core: CoreConfig
) -> bool:
    """Enough chains to keep every FMA pipe busy despite its latency."""
    needed = core.ports["fma"] * core.latencies["fma"]
    return accumulator_chains(mr, nr, lanes) >= needed


@dataclass(frozen=True)
class TileDesign:
    """One point of the (mr, nr) design space with its analytic figures."""

    mr: int
    nr: int
    lanes: int
    registers: int
    cmr: float
    chains: int
    register_ok: bool
    latency_ok: bool

    @property
    def feasible(self) -> bool:
        """Meets both Eq. 4 and the latency constraint."""
        return self.register_ok and self.latency_ok


def evaluate_tile(mr: int, nr: int, lanes: int, core: CoreConfig) -> TileDesign:
    """Analytic evaluation of one candidate tile."""
    return TileDesign(
        mr=mr,
        nr=nr,
        lanes=lanes,
        registers=registers_needed(mr, nr, lanes),
        cmr=compute_to_memory_ratio(mr, nr),
        chains=accumulator_chains(mr, nr, lanes),
        register_ok=satisfies_register_constraint(
            mr, nr, lanes, core.vector_registers
        ),
        latency_ok=satisfies_latency_constraint(mr, nr, lanes, core),
    )


def enumerate_designs(
    core: CoreConfig,
    dtype,
    max_mr: int = 32,
    max_nr: int = 32,
    mr_step: int = 1,
    nr_step: int = 1,
) -> List[TileDesign]:
    """All tile designs up to (max_mr, max_nr), feasible or not."""
    lanes = core.simd_lanes(dtype)
    designs = []
    for mr in range(mr_step, max_mr + 1, mr_step):
        for nr in range(nr_step, max_nr + 1, nr_step):
            designs.append(evaluate_tile(mr, nr, lanes, core))
    return designs


def candidate_tiles(
    core: CoreConfig,
    dtype,
    limit: int = 4,
    max_mr: int = 32,
    max_nr: int = 32,
) -> List[TileDesign]:
    """The ``limit`` best feasible lane-aligned tiles, by descending CMR.

    The adaptive tuner's tile search space: unlike :func:`best_tile` (one
    winner), this keeps the CMR frontier so shapes that do not divide by
    the single best tile can be matched against close runners-up (e.g.
    8x12 vs 12x8 vs 8x8 vs 16x4 on a 128-bit NEON core).  Duplicate
    aspect-ratio mirrors are retained — edge waste differs between them.
    """
    check_positive_int(limit, "limit", KernelDesignError)
    lanes = core.simd_lanes(dtype)
    feasible = [
        d
        for d in enumerate_designs(core, dtype, max_mr, max_nr)
        if d.feasible and d.mr % lanes == 0 and d.nr % min(lanes, 4) == 0
    ]
    feasible.sort(key=lambda d: (-d.cmr, d.registers, -d.mr))
    return feasible[:limit]


def class_tile_candidates(
    machine,
    dtype,
    limit: int = 4,
    max_mr: int = 32,
    max_nr: int = 32,
) -> List[Tuple[int, TileDesign]]:
    """Per-core-class CMR frontiers, merged: ``(class_index, design)``.

    Every core class of the machine enumerates its own frontier under
    its own SIMD width and register file — a 512-bit SVE class proposes
    16-lane f32 tiles a NEON class never would — and the union feeds one
    tile search.  A duplicate (mr, nr) keeps its first (lowest class
    index) owner.  Homogeneous machines yield exactly
    :func:`candidate_tiles` of the base core, tagged class 0.
    """
    merged: List[Tuple[int, TileDesign]] = []
    seen = set()
    for idx, cls in enumerate(machine.classes):
        for design in candidate_tiles(cls.core, dtype, limit=limit,
                                      max_mr=max_mr, max_nr=max_nr):
            if (design.mr, design.nr) in seen:
                continue
            seen.add((design.mr, design.nr))
            merged.append((idx, design))
    return merged


def best_tile(
    core: CoreConfig,
    dtype,
    max_mr: int = 32,
    max_nr: int = 32,
    prefer_multiple_of: int = 0,
    nr_multiple_of: int = 0,
) -> TileDesign:
    """The feasible tile maximizing CMR (ties: fewer registers, larger mr).

    ``prefer_multiple_of`` restricts mr (and ``nr_multiple_of`` restricts
    nr) to multiples of the SIMD width so both sliver loads stay aligned
    full vectors.
    """
    lanes = core.simd_lanes(dtype)
    base = prefer_multiple_of or 1
    nbase = nr_multiple_of or 1
    candidates = [
        d
        for d in enumerate_designs(core, dtype, max_mr, max_nr)
        if d.feasible and d.mr % base == 0 and d.nr % nbase == 0
    ]
    if not candidates:
        raise KernelDesignError(
            f"no feasible tile for lanes={lanes} within "
            f"({max_mr}, {max_nr}); relax the bounds"
        )
    return max(candidates, key=lambda d: (d.cmr, -d.registers, d.mr))
