"""Static verification: kernels, plans, source and caches.

Four rule families share one catalog (``repro lint --list-rules``,
:data:`~repro.verify.planrules.RULE_CATALOG_VERSION`):

* **V0xx-V2xx kernels** — the kernel analyses run over the same
  :class:`~repro.isa.KernelSequence` IR the pipeline scheduler consumes,
  so every kernel the generator or JIT emits is machine-checked *before*
  it can reach a timing model.
* **V3xx-V4xx plans** — :mod:`repro.verify.planlint` walks lowered
  :class:`~repro.plan.ir.ExecutionPlan` trees and checks concurrency,
  cache-residency, dataflow and FMA-conservation invariants (V3xx), then
  hands the tree to the symbolic dataflow analyzer
  (:mod:`repro.verify.dataflow`, V401-V402 memory safety) and the
  happens-before race analyzer (:mod:`repro.verify.races`, V411-V421)
  without pricing anything.
* **V5xx caches & wire** — :mod:`repro.verify.cacherules` audits tuning
  cache payloads (replay through the plan verifier, fingerprint/schema
  consistency, merge monotonicity), serving responses and live cache
  capacity for ``repro audit --cache``.
* **C0xx concurrency discipline** — :mod:`repro.verify.concurrency`
  lints this package's own source for the races that bit the serving
  stack: unguarded mutation of lock-guarded state, unpicklable process
  pool submissions, eager asyncio primitives and awaits under a lock.

``python -m repro lint`` runs the kernel catalog audit, ``repro lint
--plans`` the golden plan sweep and ``repro audit`` both source and
cache heads; each mode's ``--self-check`` proves the rules still fire on
known-bad inputs, and ``--inject-bad`` proves the exit code bites.
"""

from .bounds import StaticBounds, critical_path_rate, static_bounds
from .dataflow import (
    Access,
    DataflowAnalyzer,
    Interval,
    OperandModel,
    PlanAddressModel,
    analyze_dataflow,
    build_address_model,
    strip_row_intervals,
)
from .defuse import DefUseResult, analyze_defuse
from .diagnostics import (
    RULES,
    SEVERITIES,
    Diagnostic,
    Rule,
    VerificationReport,
    make_diagnostic,
    rules_table,
)
from .planlint import (
    PlanVerifier,
    assert_plan_ok,
    clear_verification_cache,
    golden_plan_cases,
    plan_fingerprint,
    plan_self_check,
    shared_driver,
    verification_cache_info,
    verify_plan,
)
from .planrules import (
    CACHE_RULES,
    CONCURRENCY_RULES,
    PLAN_RULES,
    RULE_CATALOG_VERSION,
    PlanDiagnostic,
    PlanLintReport,
    full_rule_catalog,
    make_plan_diagnostic,
    plan_rules_table,
)
from .races import (
    HappensBefore,
    HbEvent,
    RaceAnalyzer,
    analyze_races,
    grid_tiling,
)
from .verifier import (
    KernelVerifier,
    assert_kernel_ok,
    audit_catalog,
    audit_catalogs,
    catalog_specs,
    self_check,
    verify_kernel,
)

# source/cache heads last: concurrency reads only the stdlib, and
# cacherules defers its tuning/serving imports into its functions (both
# of those packages import repro.verify at module scope)
from .cacherules import (  # noqa: E402  (see comment above)
    CacheAuditor,
    CacheDiagnostic,
    audit_cache_file,
    cache_rules_table,
    cache_self_check,
    inject_bad_payload,
    make_cache_diagnostic,
    wire_responses,
)
from .concurrency import (  # noqa: E402
    SourceDiagnostic,
    concurrency_rules_table,
    concurrency_self_check,
    inject_bad_source,
    lint_file,
    lint_source,
    lint_tree,
    make_source_diagnostic,
)

__all__ = [
    "Diagnostic",
    "Rule",
    "RULES",
    "SEVERITIES",
    "VerificationReport",
    "make_diagnostic",
    "rules_table",
    "DefUseResult",
    "analyze_defuse",
    "StaticBounds",
    "static_bounds",
    "critical_path_rate",
    "KernelVerifier",
    "verify_kernel",
    "assert_kernel_ok",
    "audit_catalog",
    "audit_catalogs",
    "catalog_specs",
    "self_check",
    "PLAN_RULES",
    "CACHE_RULES",
    "CONCURRENCY_RULES",
    "RULE_CATALOG_VERSION",
    "full_rule_catalog",
    "PlanDiagnostic",
    "PlanLintReport",
    "make_plan_diagnostic",
    "plan_rules_table",
    "PlanVerifier",
    "verify_plan",
    "assert_plan_ok",
    "plan_self_check",
    "plan_fingerprint",
    "verification_cache_info",
    "clear_verification_cache",
    "golden_plan_cases",
    "shared_driver",
    "Interval",
    "Access",
    "OperandModel",
    "PlanAddressModel",
    "DataflowAnalyzer",
    "analyze_dataflow",
    "build_address_model",
    "strip_row_intervals",
    "HbEvent",
    "HappensBefore",
    "RaceAnalyzer",
    "analyze_races",
    "grid_tiling",
    "CacheAuditor",
    "CacheDiagnostic",
    "make_cache_diagnostic",
    "audit_cache_file",
    "wire_responses",
    "cache_self_check",
    "inject_bad_payload",
    "cache_rules_table",
    "SourceDiagnostic",
    "make_source_diagnostic",
    "lint_source",
    "lint_file",
    "lint_tree",
    "concurrency_self_check",
    "inject_bad_source",
    "concurrency_rules_table",
]
