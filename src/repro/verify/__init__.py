"""Static verification: kernels (V0xx-V2xx) and execution plans (V3xx).

The kernel analyses run over the same :class:`~repro.isa.KernelSequence`
IR the pipeline scheduler consumes, so every kernel the generator or JIT
emits is machine-checked *before* it can reach a timing model.  The plan
analyses (:mod:`repro.verify.planlint`) walk lowered
:class:`~repro.plan.ir.ExecutionPlan` trees and check concurrency,
cache-residency, dataflow and FMA-conservation invariants without
pricing anything.  ``python -m repro lint`` runs the full catalog audit
and ``repro lint --plans`` the golden plan sweep; each mode's
``--self-check`` proves the rules still fire on known-bad inputs.
"""

from .bounds import StaticBounds, critical_path_rate, static_bounds
from .defuse import DefUseResult, analyze_defuse
from .diagnostics import (
    RULES,
    SEVERITIES,
    Diagnostic,
    Rule,
    VerificationReport,
    make_diagnostic,
    rules_table,
)
from .planlint import (
    PlanVerifier,
    assert_plan_ok,
    golden_plan_cases,
    plan_self_check,
    verify_plan,
)
from .planrules import (
    PLAN_RULES,
    PlanDiagnostic,
    PlanLintReport,
    make_plan_diagnostic,
    plan_rules_table,
)
from .verifier import (
    KernelVerifier,
    assert_kernel_ok,
    audit_catalog,
    audit_catalogs,
    catalog_specs,
    self_check,
    verify_kernel,
)

__all__ = [
    "Diagnostic",
    "Rule",
    "RULES",
    "SEVERITIES",
    "VerificationReport",
    "make_diagnostic",
    "rules_table",
    "DefUseResult",
    "analyze_defuse",
    "StaticBounds",
    "static_bounds",
    "critical_path_rate",
    "KernelVerifier",
    "verify_kernel",
    "assert_kernel_ok",
    "audit_catalog",
    "audit_catalogs",
    "catalog_specs",
    "self_check",
    "PLAN_RULES",
    "PlanDiagnostic",
    "PlanLintReport",
    "make_plan_diagnostic",
    "plan_rules_table",
    "PlanVerifier",
    "verify_plan",
    "assert_plan_ok",
    "plan_self_check",
    "golden_plan_cases",
]
