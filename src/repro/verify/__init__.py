"""Static verification: kernels (V0xx-V2xx) and plans (V3xx-V4xx).

The kernel analyses run over the same :class:`~repro.isa.KernelSequence`
IR the pipeline scheduler consumes, so every kernel the generator or JIT
emits is machine-checked *before* it can reach a timing model.  The plan
analyses (:mod:`repro.verify.planlint`) walk lowered
:class:`~repro.plan.ir.ExecutionPlan` trees and check concurrency,
cache-residency, dataflow and FMA-conservation invariants (V3xx), then
hand the tree to the symbolic dataflow analyzer
(:mod:`repro.verify.dataflow`, V401-V402 memory safety) and the
happens-before race analyzer (:mod:`repro.verify.races`, V411-V421)
without pricing anything.  ``python -m repro lint`` runs the full
catalog audit, ``repro lint --plans`` the golden plan sweep and
``repro lint --list-rules`` the combined rule catalog; each mode's
``--self-check`` proves the rules still fire on known-bad inputs.
"""

from .bounds import StaticBounds, critical_path_rate, static_bounds
from .dataflow import (
    Access,
    DataflowAnalyzer,
    Interval,
    OperandModel,
    PlanAddressModel,
    analyze_dataflow,
    build_address_model,
    strip_row_intervals,
)
from .defuse import DefUseResult, analyze_defuse
from .diagnostics import (
    RULES,
    SEVERITIES,
    Diagnostic,
    Rule,
    VerificationReport,
    make_diagnostic,
    rules_table,
)
from .planlint import (
    PlanVerifier,
    assert_plan_ok,
    clear_verification_cache,
    golden_plan_cases,
    plan_fingerprint,
    plan_self_check,
    shared_driver,
    verification_cache_info,
    verify_plan,
)
from .planrules import (
    PLAN_RULES,
    RULE_CATALOG_VERSION,
    PlanDiagnostic,
    PlanLintReport,
    full_rule_catalog,
    make_plan_diagnostic,
    plan_rules_table,
)
from .races import (
    HappensBefore,
    HbEvent,
    RaceAnalyzer,
    analyze_races,
    grid_tiling,
)
from .verifier import (
    KernelVerifier,
    assert_kernel_ok,
    audit_catalog,
    audit_catalogs,
    catalog_specs,
    self_check,
    verify_kernel,
)

__all__ = [
    "Diagnostic",
    "Rule",
    "RULES",
    "SEVERITIES",
    "VerificationReport",
    "make_diagnostic",
    "rules_table",
    "DefUseResult",
    "analyze_defuse",
    "StaticBounds",
    "static_bounds",
    "critical_path_rate",
    "KernelVerifier",
    "verify_kernel",
    "assert_kernel_ok",
    "audit_catalog",
    "audit_catalogs",
    "catalog_specs",
    "self_check",
    "PLAN_RULES",
    "RULE_CATALOG_VERSION",
    "full_rule_catalog",
    "PlanDiagnostic",
    "PlanLintReport",
    "make_plan_diagnostic",
    "plan_rules_table",
    "PlanVerifier",
    "verify_plan",
    "assert_plan_ok",
    "plan_self_check",
    "plan_fingerprint",
    "verification_cache_info",
    "clear_verification_cache",
    "golden_plan_cases",
    "shared_driver",
    "Interval",
    "Access",
    "OperandModel",
    "PlanAddressModel",
    "DataflowAnalyzer",
    "analyze_dataflow",
    "build_address_model",
    "strip_row_intervals",
    "HbEvent",
    "HappensBefore",
    "RaceAnalyzer",
    "analyze_races",
    "grid_tiling",
]
