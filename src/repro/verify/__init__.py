"""Static kernel verifier: def-use/liveness, Eq. 4 budget, cycle bounds.

The analyses run over the same :class:`~repro.isa.KernelSequence` IR the
pipeline scheduler consumes, so every kernel the generator or JIT emits is
machine-checked *before* it can reach a timing model.  ``python -m repro
lint`` runs the full catalog audit; ``repro lint --self-check`` proves the
rules still fire on known-bad kernels.
"""

from .bounds import StaticBounds, critical_path_rate, static_bounds
from .defuse import DefUseResult, analyze_defuse
from .diagnostics import (
    RULES,
    SEVERITIES,
    Diagnostic,
    Rule,
    VerificationReport,
    make_diagnostic,
    rules_table,
)
from .verifier import (
    KernelVerifier,
    assert_kernel_ok,
    audit_catalog,
    audit_catalogs,
    catalog_specs,
    self_check,
    verify_kernel,
)

__all__ = [
    "Diagnostic",
    "Rule",
    "RULES",
    "SEVERITIES",
    "VerificationReport",
    "make_diagnostic",
    "rules_table",
    "DefUseResult",
    "analyze_defuse",
    "StaticBounds",
    "static_bounds",
    "critical_path_rate",
    "KernelVerifier",
    "verify_kernel",
    "assert_kernel_ok",
    "audit_catalog",
    "audit_catalogs",
    "catalog_specs",
    "self_check",
]
