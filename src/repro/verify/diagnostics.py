"""Diagnostics engine for the static kernel verifier.

Every finding the analysis passes produce is a :class:`Diagnostic` carrying
a stable rule ID (``V001-uninit-read`` ...), a severity, and the program
point it anchors to.  Rule IDs are versioned API: tests, CI greps and the
``repro lint`` output all key on them, so they must never be renumbered.
The full rule inventory lives in :data:`RULES` and is rendered into the
documentation by :func:`rules_table`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..util.tables import format_table

#: Severities in decreasing order of gravity; ``error`` fails verification,
#: ``warning`` flags spill/pressure risk, ``info`` is advisory.
SEVERITIES: Tuple[str, ...] = ("error", "warning", "info")

#: Kernel parts in program order (used to sort diagnostics stably).
PART_ORDER: Tuple[str, ...] = ("prologue", "body", "epilogue")


@dataclass(frozen=True)
class Rule:
    """One verification rule: stable ID, fixed severity, short summary."""

    rule_id: str
    severity: str
    summary: str


#: The rule inventory, keyed by stable rule ID.
RULES: Dict[str, Rule] = {
    r.rule_id: r
    for r in (
        Rule("V001-uninit-read", "error",
             "vector register read before any write"),
        Rule("V002-acc-clobber", "error",
             "loop-carried accumulator overwritten without being read"),
        Rule("V003-dead-write", "info",
             "value written to a vector register is never consumed"),
        Rule("V101-reg-budget", "error",
             "live vector-register high-water mark exceeds the register "
             "file (Eq. 4)"),
        Rule("V102-reg-pressure", "warning",
             "analytic Eq. 4 demand of the tile shape exceeds the register "
             "file"),
        Rule("V201-latency-bound", "info",
             "dependence-chain bound exceeds every throughput bound "
             "(the Fig. 7 edge-kernel signature)"),
        Rule("V202-unknown-latency", "error",
             "instruction latency key missing from the core model"),
    )
}


@dataclass(frozen=True)
class Diagnostic:
    """One verifier finding, anchored to a kernel program point."""

    rule: str
    severity: str
    message: str
    kernel: str
    part: str = ""
    index: int = -1
    register: str = ""

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict rendering for machine consumption (JSON-friendly)."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "kernel": self.kernel,
            "part": self.part,
            "index": self.index,
            "register": self.register,
        }

    def sort_key(self) -> Tuple[int, str, int, int, str]:
        """Stable ordering: severity, rule, program point, register."""
        sev = SEVERITIES.index(self.severity) if self.severity in SEVERITIES else 99
        part = PART_ORDER.index(self.part) if self.part in PART_ORDER else 99
        return (sev, self.rule, part, self.index, self.register)


def make_diagnostic(
    rule_id: str,
    message: str,
    kernel: str,
    part: str = "",
    index: int = -1,
    register: str = "",
) -> Diagnostic:
    """Build a :class:`Diagnostic` for ``rule_id``, severity from the registry."""
    rule = RULES[rule_id]
    return Diagnostic(
        rule=rule.rule_id,
        severity=rule.severity,
        message=message,
        kernel=kernel,
        part=part,
        index=index,
        register=register,
    )


@dataclass(frozen=True)
class VerificationReport:
    """All findings of one kernel's verification, plus summary metrics."""

    kernel_name: str
    diagnostics: Tuple[Diagnostic, ...]
    #: maximum simultaneously-live vector registers (liveness pass)
    live_high_water: int = 0
    #: static cycle bounds (present when a core model was supplied)
    bounds: Optional["StaticBounds"] = None  # noqa: F821 - see bounds.py

    def by_severity(self, severity: str) -> Tuple[Diagnostic, ...]:
        """All diagnostics of the given severity."""
        return tuple(d for d in self.diagnostics if d.severity == severity)

    @property
    def errors(self) -> Tuple[Diagnostic, ...]:
        """Error-severity findings (any present fails verification)."""
        return self.by_severity("error")

    @property
    def warnings(self) -> Tuple[Diagnostic, ...]:
        """Warning-severity findings."""
        return self.by_severity("warning")

    @property
    def infos(self) -> Tuple[Diagnostic, ...]:
        """Advisory findings."""
        return self.by_severity("info")

    @property
    def ok(self) -> bool:
        """True when the kernel has no error-severity findings."""
        return not self.errors

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict rendering (diagnostics as dicts, bounds summarized)."""
        out: Dict[str, object] = {
            "kernel": self.kernel_name,
            "ok": self.ok,
            "live_high_water": self.live_high_water,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }
        if self.bounds is not None:
            out["cycles_lower_bound"] = self.bounds.cycles_lower_bound
        return out

    def render(self) -> str:
        """Human-readable report: verdict line plus a diagnostics table."""
        verdict = "OK" if self.ok else "FAIL"
        head = (
            f"verify {self.kernel_name}: {verdict} "
            f"({len(self.errors)} errors, {len(self.warnings)} warnings, "
            f"{len(self.infos)} infos; live HWM {self.live_high_water} vregs)"
        )
        if not self.diagnostics:
            return head
        rows = [
            [d.rule, d.severity, d.part or "-",
             d.index if d.index >= 0 else "-", d.register or "-", d.message]
            for d in self.diagnostics
        ]
        table = format_table(
            ["rule", "severity", "part", "idx", "register", "message"], rows
        )
        return f"{head}\n{table}"


def rules_table() -> str:
    """The rule inventory rendered as a text table (for docs and ``lint``)."""
    rows = [[r.rule_id, r.severity, r.summary]
            for r in sorted(RULES.values(), key=lambda r: r.rule_id)]
    return format_table(["rule", "severity", "summary"], rows,
                        title="kernel verifier rules")
