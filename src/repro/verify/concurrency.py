"""Static concurrency-discipline lint over the serving stack (C0xx).

Both PR 9 review fixes were concurrency/serialization bugs a static
pass could have caught before they shipped: a bound method pickled into
a :class:`~concurrent.futures.ProcessPoolExecutor` (dragging the sharded
cache's locks into the job), and an :class:`asyncio.Queue` constructed
before the serving loop existed (Python 3.9 binds ``get_event_loop()``
at construction).  This module is that pass — an AST lint over
:mod:`repro` itself, run by ``repro audit`` and gated in ``make audit``:

* **C001** — a class holding a ``threading.Lock``/``RLock`` attribute
  mutates a lock-guarded shared attribute outside a ``with self.<lock>``
  block.  An attribute counts as *guarded* when some method mutates it
  under the lock; ``__init__`` (single-threaded construction) is exempt.
* **C002** — a bound method, lambda or nested function is submitted to
  an executor that is unambiguously a ``ProcessPoolExecutor`` (a local
  name bound to one, or a ``self`` attribute only ever assigned one).
  Executor attributes that may also hold a thread pool are not flagged —
  the thread path pickles nothing.
* **C003** — an asyncio primitive (``Queue``, ``Event``, ...) is
  constructed in ``__init__``, class or module scope, i.e. eagerly,
  before any event loop can be running.  Lazy construction inside the
  loop (the PR 9 fix pattern) is clean.
* **C004** — ``await`` while lexically holding a threading lock.

Every rule ships a seeded-bug fixture under ``verify/fixtures/`` as its
mutation negative control (:func:`concurrency_self_check`), mirroring
:func:`repro.verify.planlint.plan_self_check`; the fixture directory is
excluded from the tree scan.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..util.tables import format_table
from .diagnostics import SEVERITIES
from .planrules import CONCURRENCY_RULES

#: call leaf names treated as threading-lock factories when assigned to
#: a ``self`` attribute (``asyncio.Lock`` is excluded — it is awaited,
#: not held across threads)
_LOCK_FACTORIES = ("Lock", "RLock")

#: asyncio primitives that bind the running loop at construction on 3.9
_ASYNC_PRIMITIVES = ("Queue", "PriorityQueue", "LifoQueue", "Event",
                     "Condition", "Lock", "Semaphore", "BoundedSemaphore")

#: method names that mutate their receiver in place (C001 tracks
#: ``self.attr.<mutator>(...)`` as a mutation of ``attr``)
_MUTATORS = ("append", "extend", "insert", "add", "discard", "remove",
             "pop", "popitem", "clear", "update", "setdefault",
             "move_to_end", "appendleft", "popleft")

#: directory of seeded-bug fixture files (excluded from the tree scan)
FIXTURE_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "fixtures")

#: fixture file per rule — the mutation negative controls
FIXTURES: Dict[str, str] = {
    "C001-unguarded-mutation": "_c001_unguarded_mutation.py",
    "C002-unpicklable-submission": "_c002_bound_method_pool.py",
    "C003-eager-asyncio-primitive": "_c003_eager_asyncio_queue.py",
    "C004-await-holding-lock": "_c004_await_holding_lock.py",
}


@dataclass(frozen=True)
class SourceDiagnostic:
    """One concurrency-lint finding, anchored to a source location."""

    rule: str
    severity: str
    message: str
    file: str
    line: int
    symbol: str

    @property
    def where(self) -> str:
        """``file:line`` anchor for tables and logs."""
        return f"{self.file}:{self.line}"

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict rendering for machine consumption (JSON-friendly)."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "file": self.file,
            "line": self.line,
            "symbol": self.symbol,
        }

    def sort_key(self) -> Tuple:
        """Stable ordering: severity, file, line, rule."""
        sev = (SEVERITIES.index(self.severity)
               if self.severity in SEVERITIES else 99)
        return (sev, self.file, self.line, self.rule)


def make_source_diagnostic(
    rule_id: str, message: str, file: str, line: int, symbol: str
) -> SourceDiagnostic:
    """Build a :class:`SourceDiagnostic`; severity comes from the registry."""
    rule = CONCURRENCY_RULES[rule_id]
    return SourceDiagnostic(
        rule=rule.rule_id, severity=rule.severity, message=message,
        file=file, line=line, symbol=symbol,
    )


# ---------------------------------------------------------------------------
# small AST helpers
# ---------------------------------------------------------------------------


def _call_leaf(func: ast.expr) -> str:
    """Leaf name of a call target (``threading.Lock`` -> ``Lock``)."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _call_module(func: ast.expr) -> str:
    """Qualifying name of a call target (``asyncio.Queue`` -> ``asyncio``)."""
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        return func.value.id
    return ""


def _self_attr(node: ast.expr) -> Optional[str]:
    """``attr`` for a plain ``self.attr`` expression, else None."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def _self_attr_base(node: ast.expr) -> Optional[str]:
    """First-level ``self`` attribute under a chain.

    ``self.a``, ``self.a.b``, ``self.a[k]`` and ``self.a.b[k]`` all
    resolve to ``"a"`` — the shared object whose mutation a lock guards.
    """
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        attr = _self_attr(node)
        if attr is not None:
            return attr
        node = node.value
    return None


def _is_lock_call(node: ast.expr) -> bool:
    return (isinstance(node, ast.Call)
            and _call_leaf(node.func) in _LOCK_FACTORIES
            and _call_module(node.func) != "asyncio")


def _is_pool_call(node: ast.expr) -> bool:
    return (isinstance(node, ast.Call)
            and _call_leaf(node.func) == "ProcessPoolExecutor")


def _statement_lists(stmt: ast.stmt):
    """Every nested statement list of a compound statement."""
    for _, value in ast.iter_fields(stmt):
        if isinstance(value, list) and value:
            if isinstance(value[0], ast.stmt):
                yield value
            elif isinstance(value[0], ast.excepthandler):
                for handler in value:
                    yield handler.body


def _immediate_exprs(stmt: ast.stmt):
    """The statement's own expressions (headers, targets, values) —
    everything except nested statements."""
    for _, value in ast.iter_fields(stmt):
        if isinstance(value, ast.expr):
            yield value
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, ast.expr):
                    yield item
                elif isinstance(item, ast.withitem):
                    yield item.context_expr


# ---------------------------------------------------------------------------
# per-class analysis
# ---------------------------------------------------------------------------


class _ClassLint:
    """C001/C002/C004 analysis of one class definition."""

    def __init__(self, cls: ast.ClassDef, filename: str) -> None:
        self.cls = cls
        self.filename = filename
        self.lock_attrs: Set[str] = set()
        #: attr -> evidence kinds seen across all assignments
        self.attr_evidence: Dict[str, Set[str]] = {}
        #: (attr, method, line) mutations under / outside a lock
        self.guarded: List[Tuple[str, str, int]] = []
        self.unguarded: List[Tuple[str, str, int]] = []
        self.diagnostics: List[SourceDiagnostic] = []

    # -- pass 1: attribute inventory -----------------------------------

    def _methods(self):
        for node in self.cls.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    def inventory(self) -> None:
        """Collect lock attributes and executor-attribute evidence."""
        for method in self._methods():
            for node in ast.walk(method):
                if isinstance(node, (ast.Assign, ast.AnnAssign)):
                    targets = (node.targets
                               if isinstance(node, ast.Assign)
                               else [node.target])
                    value = node.value
                    if value is None:
                        continue
                    for target in targets:
                        attr = _self_attr(target)
                        if attr is None:
                            continue
                        if _is_lock_call(value):
                            self.lock_attrs.add(attr)
                        kind = "pool" if _is_pool_call(value) else "other"
                        self.attr_evidence.setdefault(attr, set()).add(kind)

    @property
    def pool_only_attrs(self) -> Set[str]:
        """``self`` attributes only ever assigned a ProcessPoolExecutor."""
        return {attr for attr, kinds in self.attr_evidence.items()
                if kinds == {"pool"}}

    # -- pass 2: discipline walk ---------------------------------------

    def analyze(self) -> List[SourceDiagnostic]:
        """Run both passes; returns this class's diagnostics."""
        self.inventory()
        for method in self._methods():
            pools = self._local_pools(method)
            nested = self._nested_functions(method)
            self._walk(method.body, method, frozenset(), pools, nested)
        guarded_attrs = {attr for attr, _, _ in self.guarded}
        for attr, method, line in self.unguarded:
            if attr in guarded_attrs and attr not in self.lock_attrs:
                self.diagnostics.append(make_source_diagnostic(
                    "C001-unguarded-mutation",
                    f"{self.cls.name}.{attr} is mutated under a lock "
                    f"elsewhere but written here without one",
                    self.filename, line, f"{self.cls.name}.{method}",
                ))
        return self.diagnostics

    def _local_pools(self, method) -> Set[str]:
        """Local names bound to a ProcessPoolExecutor inside ``method``."""
        pools: Set[str] = set()
        for node in ast.walk(method):
            if isinstance(node, ast.Assign) and _is_pool_call(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        pools.add(target.id)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if (_is_pool_call(item.context_expr)
                            and isinstance(item.optional_vars, ast.Name)):
                        pools.add(item.optional_vars.id)
        return pools

    def _nested_functions(self, method) -> Set[str]:
        """Names of functions defined *inside* ``method`` (closures)."""
        nested: Set[str] = set()
        for node in ast.walk(method):
            if node is method:
                continue
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested.add(node.name)
        return nested

    def _walk(self, stmts, method, held, pools, nested) -> None:
        is_async = isinstance(method, ast.AsyncFunctionDef)
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # a nested function's body does not run under the lock
                self._walk(stmt.body, method, frozenset(), pools, nested)
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                acquired = set()
                for item in stmt.items:
                    attr = _self_attr(item.context_expr)
                    if attr is not None and attr in self.lock_attrs:
                        acquired.add(attr)
                self._scan_exprs(stmt, method, held, pools, nested,
                                 is_async)
                self._walk(stmt.body, method, held | acquired, pools,
                           nested)
                continue
            self._record_mutations(stmt, method, held)
            self._scan_exprs(stmt, method, held, pools, nested, is_async)
            for body in _statement_lists(stmt):
                self._walk(body, method, held, pools, nested)

    def _record_mutations(self, stmt, method, held) -> None:
        attrs: List[Tuple[str, int]] = []
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (stmt.targets if isinstance(stmt, ast.Assign)
                       else [stmt.target])
            if isinstance(stmt, ast.AnnAssign) and stmt.value is None:
                targets = []
            for target in targets:
                attr = _self_attr_base(target)
                if attr is not None:
                    attrs.append((attr, stmt.lineno))
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                attr = _self_attr_base(target)
                if attr is not None:
                    attrs.append((attr, stmt.lineno))
        for attr, line in attrs:
            self._classify(attr, method, line, held)

    def _scan_exprs(self, stmt, method, held, pools, nested,
                    is_async) -> None:
        for expr in _immediate_exprs(stmt):
            for node in ast.walk(expr):
                if isinstance(node, ast.Call):
                    self._check_mutator(node, method, held)
                    self._check_submission(node, method, pools, nested)
                    self._check_async_primitive(node, method)
                elif isinstance(node, ast.Await) and held and is_async:
                    self.diagnostics.append(make_source_diagnostic(
                        "C004-await-holding-lock",
                        f"await inside `with self.{sorted(held)[0]}` — "
                        f"the lock is held across the suspension",
                        self.filename, node.lineno,
                        f"{self.cls.name}.{method.name}",
                    ))

    def _check_mutator(self, call: ast.Call, method, held) -> None:
        func = call.func
        if not isinstance(func, ast.Attribute) or func.attr not in _MUTATORS:
            return
        attr = _self_attr_base(func.value)
        if attr is not None:
            self._classify(attr, method, call.lineno, held)

    def _classify(self, attr, method, line, held) -> None:
        if held:
            self.guarded.append((attr, method.name, line))
        elif method.name != "__init__":
            self.unguarded.append((attr, method.name, line))

    def _check_submission(self, call: ast.Call, method, pools,
                          nested) -> None:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr in ("submit", "map"):
            executor, payload_idx = func.value, 0
        elif func.attr == "run_in_executor" and len(call.args) >= 2:
            executor, payload_idx = call.args[0], 1
        else:
            return
        if not self._is_pool(executor, pools):
            return
        if len(call.args) <= payload_idx:
            return
        payload = call.args[payload_idx]
        kind = ""
        if _self_attr(payload) is not None:
            kind = f"bound method self.{payload.attr}"
        elif isinstance(payload, ast.Lambda):
            kind = "lambda"
        elif isinstance(payload, ast.Name) and payload.id in nested:
            kind = f"nested function {payload.id}"
        if kind:
            self.diagnostics.append(make_source_diagnostic(
                "C002-unpicklable-submission",
                f"{kind} submitted to a ProcessPoolExecutor "
                f"(use a module-level worker function)",
                self.filename, call.lineno,
                f"{self.cls.name}.{method.name}",
            ))

    def _is_pool(self, executor: ast.expr, pools: Set[str]) -> bool:
        if isinstance(executor, ast.Name):
            return executor.id in pools
        attr = _self_attr(executor)
        return attr is not None and attr in self.pool_only_attrs

    def _check_async_primitive(self, call: ast.Call, method) -> None:
        if method.name != "__init__":
            return
        if isinstance(method, ast.AsyncFunctionDef):
            return
        if (_call_module(call.func) == "asyncio"
                and _call_leaf(call.func) in _ASYNC_PRIMITIVES):
            self.diagnostics.append(make_source_diagnostic(
                "C003-eager-asyncio-primitive",
                f"asyncio.{_call_leaf(call.func)}() constructed in "
                f"__init__ — build it lazily inside the running loop",
                self.filename, call.lineno,
                f"{self.cls.name}.{method.name}",
            ))


# ---------------------------------------------------------------------------
# module / tree scan
# ---------------------------------------------------------------------------


def lint_source(source: str, filename: str = "<string>") -> List[SourceDiagnostic]:
    """Lint one module's source text; returns sorted diagnostics."""
    tree = ast.parse(source, filename=filename)
    diagnostics: List[SourceDiagnostic] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            diagnostics.extend(_ClassLint(node, filename).analyze())
    diagnostics.extend(_module_scope_primitives(tree, filename))
    return sorted(diagnostics, key=lambda d: d.sort_key())


def _module_scope_primitives(tree: ast.Module,
                             filename: str) -> List[SourceDiagnostic]:
    """C003 at module and class-body scope (eager global primitives)."""
    out: List[SourceDiagnostic] = []

    def scan(stmts, symbol):
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(stmt, ast.ClassDef):
                scan(stmt.body, stmt.name)
                continue
            for expr in _immediate_exprs(stmt):
                for node in ast.walk(expr):
                    if (isinstance(node, ast.Call)
                            and _call_module(node.func) == "asyncio"
                            and _call_leaf(node.func) in _ASYNC_PRIMITIVES):
                        out.append(make_source_diagnostic(
                            "C003-eager-asyncio-primitive",
                            f"asyncio.{_call_leaf(node.func)}() "
                            f"constructed at {symbol} scope — no loop "
                            f"is running yet",
                            filename, node.lineno, symbol,
                        ))
            for body in _statement_lists(stmt):
                scan(body, symbol)

    scan(tree.body, "module")
    return out


def lint_file(path: str) -> List[SourceDiagnostic]:
    """Lint one Python file."""
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    return lint_source(source, filename=path)


def package_root() -> str:
    """The installed :mod:`repro` package directory (the scan root)."""
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def iter_source_files(root: Optional[str] = None):
    """Every ``.py`` file under ``root`` except the seeded fixtures."""
    root = root or package_root()
    # NB: topdown walk, pruned in place — sorting the walk itself would
    # consume it before the prune could take effect
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(
            d for d in dirnames
            if d != "__pycache__"
            and os.path.join(dirpath, d) != FIXTURE_DIR
        )
        for name in sorted(filenames):
            if name.endswith(".py"):
                yield os.path.join(dirpath, name)


def lint_tree(root: Optional[str] = None) -> Tuple[int, List[SourceDiagnostic]]:
    """Lint every source file of the package.

    Returns ``(files_scanned, diagnostics)`` with file paths rendered
    relative to the scan root (stable across checkouts).
    """
    root = root or package_root()
    files = 0
    diagnostics: List[SourceDiagnostic] = []
    for path in iter_source_files(root):
        files += 1
        rel = os.path.relpath(path, root)
        for diag in lint_file(path):
            diagnostics.append(SourceDiagnostic(
                rule=diag.rule, severity=diag.severity,
                message=diag.message, file=rel, line=diag.line,
                symbol=diag.symbol,
            ))
    return files, sorted(diagnostics, key=lambda d: d.sort_key())


# ---------------------------------------------------------------------------
# negative controls
# ---------------------------------------------------------------------------


def fixture_path(rule_id: str) -> str:
    """Path of the seeded-bug fixture for one C0xx rule."""
    return os.path.join(FIXTURE_DIR, FIXTURES[rule_id])


def concurrency_self_check() -> List[Tuple[str, bool]]:
    """Mutation negative controls: every C0xx rule must fire on its
    seeded-bug fixture.  Returns ``(rule_id, fired)`` pairs, the same
    contract as :func:`repro.verify.planlint.plan_self_check`."""
    results = []
    for rule_id in sorted(CONCURRENCY_RULES):
        diags = lint_file(fixture_path(rule_id))
        results.append((rule_id, any(d.rule == rule_id for d in diags)))
    return results


def inject_bad_source() -> Tuple[str, str]:
    """(rule_id, path) of a known-bad file for ``audit --inject-bad``.

    The C002 fixture reproduces the exact PR 9 regression: a bound
    method submitted to the background tuning process pool.
    """
    rule_id = "C002-unpicklable-submission"
    return rule_id, fixture_path(rule_id)


def concurrency_rules_table() -> str:
    """The C0xx rule inventory as a text table (docs and ``audit``)."""
    rows = [[r.rule_id, r.severity, r.summary]
            for r in sorted(CONCURRENCY_RULES.values(),
                            key=lambda r: r.rule_id)]
    return format_table(["rule", "severity", "summary"], rows,
                        title="concurrency lint rules")
