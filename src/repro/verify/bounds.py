"""Static cycle lower bounds for kernel loop bodies.

Everything here is computed from ``reads``/``writes``/``port`` alone — no
scheduling.  Three families of bounds, each a provable relaxation of the
out-of-order scheduler in :mod:`repro.pipeline.scheduler`:

* **port pressure** — ``count(port) / ports[port]``: each instruction
  occupies one issue slot of its class for one cycle, so a body with `n`
  instructions on a class served by `p` units needs at least ``n/p``
  cycles per iteration;
* **dispatch** — ``len(body) / dispatch_width``: the in-order front end
  paces every instruction regardless of dataflow;
* **critical path** — the longest loop-carried dependence chain: a
  register that every writer also reads forms an unbroken value chain
  from one iteration into the next, and the sum of its writers' result
  latencies bounds the iteration period from below.  This covers the two
  chain species rank-1-update kernels carry — ``fmla`` accumulator chains
  (FMA latency each) and post-incremented address chains (one
  address-generation cycle each).

The scheduler honors every constraint these bounds relax plus several more
(ROB, finite window, port conflicts, integer issue slots), so for any
kernel::

    max(bounds) <= SteadyStateAnalyzer.cycles_per_iter

— the invariant the cross-check tests and ``repro lint`` enforce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Set

from ..isa.registers import is_xreg
from ..isa.sequence import KernelSequence
from ..machine.config import CoreConfig
from ..util.errors import ScheduleError

__all__ = ["StaticBounds", "static_bounds", "critical_path_rate"]


@dataclass(frozen=True)
class StaticBounds:
    """Per-resource lower bounds on body cycles/iteration, from IR alone."""

    kernel_name: str
    port_bounds: Dict[str, float]
    dispatch_bound: float
    critical_path_bound: float

    @property
    def throughput_bound(self) -> float:
        """Best bound ignoring latency: max of port and dispatch bounds."""
        worst_port = max(self.port_bounds.values(), default=0.0)
        return max(worst_port, self.dispatch_bound)

    @property
    def cycles_lower_bound(self) -> float:
        """The binding static bound: max over all families."""
        return max(self.throughput_bound, self.critical_path_bound)

    @property
    def latency_limited(self) -> bool:
        """True when the dependence chains, not any unit, set the floor.

        This is the paper's Fig. 7 edge-kernel pathology: too few
        independent accumulator chains to cover the FMA latency.
        """
        return self.critical_path_bound > self.throughput_bound + 1e-9

    def to_dict(self) -> Dict[str, float]:
        """Flat dict rendering (port bounds prefixed ``port:``)."""
        out: Dict[str, float] = {
            f"port:{p}": b for p, b in self.port_bounds.items()
        }
        out["dispatch"] = self.dispatch_bound
        out["critical-path"] = self.critical_path_bound
        out["lower-bound"] = self.cycles_lower_bound
        return out


def critical_path_rate(kernel: KernelSequence, core: CoreConfig) -> float:
    """Cycles/iteration forced by loop-carried single-register chains.

    For each register ``r`` written in the body: if *every* body write of
    ``r`` also reads ``r`` (an unbroken read-modify-write chain), the value
    of ``r`` flows through all of those instructions once per iteration and
    back across the loop edge, so the iteration period is at least the sum
    of their result latencies.  A write that does not read ``r`` renames
    the chain away (the scheduler models perfect renaming) and contributes
    no cycle.  A load's base-register post-increment writeback counts one
    cycle (address generation), matching the scheduler; all other writes
    count their full result latency.

    The returned value is the maximum such chain over all registers — the
    critical path of the loop-carried dependence graph restricted to
    single-register cycles, which are the only cycles the kernel generator
    (and the library kernels it models) ever emits.
    """
    latencies = core.latencies
    chain: Dict[str, float] = {}
    broken: Set[str] = set()
    for ins in kernel.body:
        lat = latencies.get(ins.latency_key)
        if lat is None:
            raise ScheduleError(
                f"{ins.text!r}: unknown latency key {ins.latency_key!r}"
            )
        for reg in ins.writes:
            if reg not in ins.reads:
                broken.add(reg)
                continue
            if ins.is_load and is_xreg(reg):
                step = 1.0  # post-increment address-generation writeback
            else:
                step = float(lat)
            chain[reg] = chain.get(reg, 0.0) + step
    rates = [length for reg, length in chain.items() if reg not in broken]
    return max(rates, default=0.0)


def static_bounds(kernel: KernelSequence, core: CoreConfig) -> StaticBounds:
    """All static lower bounds for ``kernel``'s body on ``core``."""
    port_bounds = {
        port: count / core.ports[port]
        for port, count in kernel.port_histogram().items()
    }
    return StaticBounds(
        kernel_name=kernel.name,
        port_bounds=port_bounds,
        dispatch_bound=len(kernel.body) / core.dispatch_width,
        critical_path_bound=critical_path_rate(kernel, core),
    )
