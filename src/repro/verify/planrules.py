"""Rule inventory and diagnostics for the plan-level static analyzer.

The V3xx rules check :class:`~repro.plan.ir.ExecutionPlan` trees — the
level where the paper's structural claims live (Goto residency, Eq. 1-3
packing accounting, Fig. 7-9 edge coverage, Table II synchronization) —
without pricing anything.  They complement the V0xx/V1xx/V2xx kernel
rules in :mod:`repro.verify.diagnostics`: a kernel rule fires on one
:class:`~repro.isa.KernelSequence`, a plan rule fires on the op tree a
driver lowering produced.

Like the kernel rules, plan rule IDs are versioned API (tests, CI greps
and ``repro lint --plans`` output key on them) and must never be
renumbered.  Every rule has a mutation self-test
(:func:`repro.verify.planlint.plan_self_check`) proving it still fires
on an injected violation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..util.tables import format_table
from .diagnostics import SEVERITIES, Rule

#: The plan-analysis rule inventory, keyed by stable rule ID.
PLAN_RULES: Dict[str, Rule] = {
    r.rule_id: r
    for r in (
        # -- concurrency (V301-V303) ---------------------------------
        Rule("V301-write-overlap", "error",
             "per-thread write tiles overlap (a C element is owned by "
             "two threads)"),
        Rule("V302-unsynced-pack", "error",
             "cooperatively packed panel consumed without an "
             "intervening barrier over the packing group"),
        Rule("V303-barrier-group", "error",
             "barrier group inconsistent with the plan's thread count "
             "(a thread would sit in two groups, or none)"),
        # -- cache residency (V311-V313) -----------------------------
        Rule("V311-l1-residency", "error",
             "working set claimed L1-resident exceeds the L1 residency "
             "budget"),
        Rule("V312-l2-residency", "error",
             "operand panel claimed L2-resident exceeds the physical "
             "L2 capacity"),
        Rule("V313-shared-l2-budget", "warning",
             "cooperatively packed panel exceeds the cluster's entire "
             "shared L2 (the 4-core budget)"),
        # -- lifetime / dataflow (V321-V323) --------------------------
        Rule("V321-missing-pack", "error",
             "kernel consumes a packed panel no dominating pack "
             "produced"),
        Rule("V322-dead-pack", "warning",
             "packed panel is never consumed before it dies (wasted "
             "pack cycles)"),
        Rule("V323-stale-panel", "error",
             "kernel reads beyond the live packed panel (stale or "
             "overwritten kc-step buffer)"),
        # -- conservation (V331-V332) --------------------------------
        Rule("V331-flop-coverage", "error",
             "plan tiles do not cover exactly M*N*K FMAs (missing edge "
             "tiles or overlapping work)"),
        Rule("V332-batch-partition", "error",
             "merge plan does not partition the batch (sub-plan shapes "
             "disagree with the batch metadata)"),
        # -- symbolic dataflow (V401-V402) -----------------------------
        Rule("V401-oob-access", "error",
             "symbolic read/write set escapes the operand's address-"
             "space extent (no legal placement keeps it in bounds)"),
        Rule("V402-pack-overrun", "error",
             "packed panel writes more elements than its declared "
             "buffer capacity (pack buffer overrun)"),
        # -- happens-before races (V411-V413) --------------------------
        Rule("V411-strip-race", "error",
             "two concurrent thread strips write overlapping C rows "
             "(write-write race inside one fan-out)"),
        Rule("V412-unordered-read", "error",
             "cooperatively packed panel read with no happens-before "
             "edge from the pack (missing barrier over the group)"),
        Rule("V413-grid-race", "error",
             "2-D grid chunks admit no disjoint row x column "
             "decomposition (concurrent sub-GEMMs share C tiles)"),
        # -- machine-topology consistency (V421-V423) ------------------
        Rule("V421-topology-mismatch", "error",
             "sharing-group claim inconsistent with the machine's "
             "core/L2-cluster topology"),
        Rule("V422-class-mismatch", "error",
             "per-strip core-class tags inconsistent with the machine's "
             "core classes (wrong count, unknown class index, or a tag "
             "disagreeing with compact thread placement)"),
        Rule("V423-unbalanced-strips", "error",
             "heterogeneous strip chunks match neither the balanced nor "
             "the throughput-weighted partition (some core class is "
             "over- or under-subscribed)"),
    )
}

#: The concurrency-discipline rule inventory (``repro audit``, C0xx).
#: These fire on *source code* (AST scans of :mod:`repro` itself), not on
#: kernels or plans; see :mod:`repro.verify.concurrency`.
CONCURRENCY_RULES: Dict[str, Rule] = {
    r.rule_id: r
    for r in (
        Rule("C001-unguarded-mutation", "error",
             "lock-guarded shared attribute mutated outside a "
             "``with self.<lock>`` block (racy read-modify-write)"),
        Rule("C002-unpicklable-submission", "error",
             "bound method, lambda or nested function submitted to a "
             "ProcessPoolExecutor (pickling drags instance state — "
             "locks, executors — into the worker, or fails outright)"),
        Rule("C003-eager-asyncio-primitive", "error",
             "asyncio primitive (Queue/Event/...) constructed in "
             "__init__, class or module scope — on Python 3.9 it binds "
             "get_event_loop() at construction, before the serving "
             "loop exists"),
        Rule("C004-await-holding-lock", "error",
             "``await`` while holding a threading lock (the lock is "
             "held across a suspension point, stalling every other "
             "thread for the duration of the awaited task)"),
    )
}

#: The cache & wire integrity rule inventory (``repro audit``, V5xx).
#: These fire on persisted tuning-cache payloads and serving responses;
#: see :mod:`repro.verify.cacherules`.
CACHE_RULES: Dict[str, Rule] = {
    r.rule_id: r
    for r in (
        Rule("V501-replay-verification", "error",
             "cached plan does not re-lower cleanly through the full "
             "plan verifier (stale, corrupt or foreign entry)"),
        Rule("V502-fingerprint-consistency", "error",
             "cache schema/fingerprint/key inconsistent with the "
             "current machine, dtype and code catalogs"),
        Rule("V503-merge-monotonicity", "error",
             "modeled cost regression: an entry is worse than its "
             "heuristic baseline, or a merged cache is worse than an "
             "input held for the same key"),
        Rule("V504-response-provenance", "error",
             "served PlanResponse violates the wire schema (unknown "
             "provenance, missing plan, or plan/request token "
             "mismatch)"),
        Rule("V505-capacity-overshoot", "warning",
             "live cache residency exceeds its configured global "
             "capacity bound (the pre-1.7 per-shard LRU overshoot)"),
    )
}

#: Bumped whenever the combined kernel+plan+audit rule inventory changes
#: shape (new family, renamed field); surfaced as ``rule_catalog_version``
#: in ``repro lint --json`` / ``repro audit --json`` so downstream
#: consumers can detect drift.  4 = the C0xx + V5xx audit families.
RULE_CATALOG_VERSION = 4


def full_rule_catalog() -> Dict[str, Rule]:
    """Kernel rules (V0xx-V2xx), plan rules (V3xx-V4xx), cache/wire
    rules (V5xx) and concurrency rules (C0xx) in one registry."""
    from .diagnostics import RULES as KERNEL_RULES

    catalog: Dict[str, Rule] = {}
    catalog.update(KERNEL_RULES)
    catalog.update(PLAN_RULES)
    catalog.update(CACHE_RULES)
    catalog.update(CONCURRENCY_RULES)
    return catalog


@dataclass(frozen=True)
class PlanDiagnostic:
    """One plan-analyzer finding, anchored to a node path in the tree.

    ``path`` is the slash-joined chain of ``kind[label]`` segments from
    the plan root to the offending node (sub-plans are entered through
    their owning ``critical_path``/``merge`` node), so a finding can be
    located in a ``repro trace`` dump of the same plan.
    """

    rule: str
    severity: str
    message: str
    driver: str
    path: str

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict rendering for machine consumption (JSON-friendly)."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "driver": self.driver,
            "path": self.path,
        }

    def sort_key(self) -> Tuple[int, str, str]:
        """Stable ordering: severity, rule, node path."""
        sev = (SEVERITIES.index(self.severity)
               if self.severity in SEVERITIES else 99)
        return (sev, self.rule, self.path)


def make_plan_diagnostic(
    rule_id: str, message: str, driver: str, path: str
) -> PlanDiagnostic:
    """Build a :class:`PlanDiagnostic`; severity comes from the registry."""
    rule = PLAN_RULES[rule_id]
    return PlanDiagnostic(
        rule=rule.rule_id,
        severity=rule.severity,
        message=message,
        driver=driver,
        path=path,
    )


@dataclass(frozen=True)
class PlanLintReport:
    """All findings of one plan's static analysis, plus identity."""

    driver: str
    shape: Tuple
    threads: int
    diagnostics: Tuple[PlanDiagnostic, ...]
    nodes: int = 0

    def by_severity(self, severity: str) -> Tuple[PlanDiagnostic, ...]:
        """All diagnostics of the given severity."""
        return tuple(d for d in self.diagnostics if d.severity == severity)

    @property
    def errors(self) -> Tuple[PlanDiagnostic, ...]:
        """Error-severity findings (any present fails verification)."""
        return self.by_severity("error")

    @property
    def warnings(self) -> Tuple[PlanDiagnostic, ...]:
        """Warning-severity findings."""
        return self.by_severity("warning")

    @property
    def infos(self) -> Tuple[PlanDiagnostic, ...]:
        """Advisory findings."""
        return self.by_severity("info")

    @property
    def ok(self) -> bool:
        """True when the plan has no error-severity findings."""
        return not self.errors

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict rendering (diagnostics as dicts)."""
        return {
            "driver": self.driver,
            "shape": list(self.shape),
            "threads": self.threads,
            "nodes": self.nodes,
            "ok": self.ok,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def render(self) -> str:
        """Human-readable report: verdict line plus a diagnostics table."""
        verdict = "OK" if self.ok else "FAIL"
        shape = "x".join(str(s) for s in self.shape) if self.shape else "-"
        head = (
            f"planlint {self.driver} {shape} "
            f"({self.threads} thread(s), {self.nodes} nodes): {verdict} "
            f"({len(self.errors)} errors, {len(self.warnings)} warnings, "
            f"{len(self.infos)} infos)"
        )
        if not self.diagnostics:
            return head
        rows = [
            [d.rule, d.severity, d.path, d.message]
            for d in self.diagnostics
        ]
        table = format_table(["rule", "severity", "path", "message"], rows)
        return f"{head}\n{table}"


def plan_rules_table() -> str:
    """The plan-rule inventory as a text table (for docs and ``lint``)."""
    rows = [[r.rule_id, r.severity, r.summary]
            for r in sorted(PLAN_RULES.values(), key=lambda r: r.rule_id)]
    return format_table(["rule", "severity", "summary"], rows,
                        title="plan analyzer rules")
