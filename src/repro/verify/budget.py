"""Register-budget pass: the paper's Eq. 4 as a machine-checked invariant.

Two views of the same constraint:

* **measured** — the liveness pass's high-water mark of simultaneously
  live vector registers must fit the architectural file.  Exceeding it is
  an outright error (``V101-reg-budget``): the kernel as emitted cannot
  exist without spills, which the instruction stream does not contain.
* **analytic** — Eq. 4 evaluated on the kernel's declared tile shape
  (``meta['mr']``/``meta['nr']``/``meta['lanes']``):
  ``ceil(mr/lanes)*nr + staging <= file``.  When the analytic demand
  exceeds the file but the emitted code squeaked through (shared staging,
  folded temporaries), the kernel is one scheduling decision away from
  spilling — flagged ``V102-reg-pressure`` as a warning.
"""

from __future__ import annotations

from typing import List

from ..isa.sequence import KernelSequence
from .defuse import DefUseResult
from .diagnostics import Diagnostic, make_diagnostic

__all__ = ["budget_diagnostics"]


def budget_diagnostics(
    kernel: KernelSequence,
    defuse: DefUseResult,
    n_registers: int,
) -> List[Diagnostic]:
    """Eq. 4 checks for one kernel against a file of ``n_registers``."""
    # imported here: repro.kernels imports the generator, which verifies
    # through this package, so a module-level import would be circular
    from ..kernels.design import registers_needed

    out: List[Diagnostic] = []
    if defuse.live_high_water > n_registers:
        out.append(make_diagnostic(
            "V101-reg-budget",
            f"{defuse.live_high_water} vector registers live at once but "
            f"the file holds {n_registers} (Eq. 4 violated)",
            kernel.name,
        ))
    meta = kernel.meta
    if all(k in meta for k in ("mr", "nr", "lanes")):
        demand = registers_needed(
            int(meta["mr"]), int(meta["nr"]), int(meta["lanes"])
        )
        if demand > n_registers:
            out.append(make_diagnostic(
                "V102-reg-pressure",
                f"Eq. 4 demand of a {meta['mr']}x{meta['nr']} tile at "
                f"{meta['lanes']} lanes is {demand} registers; the file "
                f"holds {n_registers}",
                kernel.name,
            ))
    return out
