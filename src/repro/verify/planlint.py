"""Static analysis of ExecutionPlan trees: the V3xx plan lints.

The :class:`PlanVerifier` walks a lowered
:class:`~repro.plan.ir.ExecutionPlan` *without pricing it* and checks the
structural invariants every legal lowering satisfies:

* **concurrency** (V301-V303) — per-thread write tiles partition C,
  cooperatively packed panels are barrier-separated from their
  consumers, and every barrier group tiles the plan's thread count;
* **cache residency** (V311-V313) — each residency claim a node carries
  (``a_resident`` / ``b_resident`` / pack ``resident``) is consistent
  with the machine model's capacity budgets, and cooperative packed
  panels fit the cluster's shared L2;
* **lifetime/dataflow** (V321-V323) — every packed-panel consumer is
  dominated by a live pack of a compatible shape, and no pack dies
  unconsumed;
* **conservation** (V331-V332) — the plan's tiles cover M*N*K FMA
  products (exactly for exact lowerings, at least once for
  representative ones), and merge plans partition their batch.

The residency budgets deliberately mirror the *loosest* predicate any
lowering uses when making the corresponding claim, so a clean driver can
never be flagged: an ``l1`` claim implies the Goto tiny-GEBP working-set
test (<= 0.75 of L1d); an ``l2`` claim always implies a footprint within
0.75 of the *physical* L2 (per-core predicates use the effective —
sharing-divided — capacity, which is stricter); a cooperative pack is
bounded by the whole cluster-shared L2.

Entry points: :func:`verify_plan` (report), :func:`assert_plan_ok`
(raises :class:`~repro.util.errors.PlanVerificationError`, the engine's
verify-before-price gate), :func:`plan_self_check` (mutation negative
controls — every rule must fire on its injected violation) and
:func:`golden_plan_cases` (the ``repro lint --plans`` sweep).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..plan.fingerprint import (
    BoundedMemo,
    canonical_plan_body,
    context_machine_token,
    plan_fingerprint,
    verification_key,
)
from ..plan.ir import (
    BarrierOp,
    CriticalPathOp,
    ExecutionPlan,
    FusedPackOp,
    GebpOp,
    JitSweepOp,
    MergeOp,
    PackOp,
    Section,
    ThreadStripsOp,
)
from ..timing.models import gemm_flops
from ..util.errors import PlanVerificationError
from .dataflow import analyze_dataflow
from .planrules import PlanDiagnostic, PlanLintReport, make_plan_diagnostic
from .races import analyze_races

#: residency budgets as fractions of capacity (see module docstring)
L1_CLAIM_FRACTION = 0.75
L2_CLAIM_FRACTION = 0.75

#: the six drivers the golden verification sweep lowers
GOLDEN_DRIVERS: Tuple[str, ...] = (
    "openblas", "blis", "eigen", "blasfeo", "reference", "reference-fused",
)

#: drivers with a multithreaded lowering (reference-fused and blasfeo
#: are single-thread designs)
GOLDEN_MT_DRIVERS: Tuple[str, ...] = (
    "openblas", "blis", "eigen", "reference",
)


def _node_path(parent: str, node: Any) -> str:
    kind = getattr(node, "kind", node.__class__.__name__)
    label = getattr(node, "label", "")
    seg = f"{kind}[{label}]" if label else str(kind)
    return f"{parent}/{seg}" if parent else seg


@dataclass
class _Panel:
    """One live packed panel inside a section scope."""

    path: str
    rows: int
    cols: int
    share: int
    synced: bool
    consumed: bool = False


@dataclass
class _WalkState:
    """Per-plan verification context threaded through the walk."""

    driver: str
    threads: int
    mnk: Optional[Tuple[int, int, int]]
    ctx: Any
    diags: List[PlanDiagnostic]

    def diag(self, rule_id: str, message: str, path: str) -> None:
        self.diags.append(
            make_plan_diagnostic(rule_id, message, self.driver, path)
        )


def _count_nodes(node: Any) -> int:
    """Node count including critical-path/merge sub-plan trees."""
    total = 1
    for child in getattr(node, "children", ()):
        total += _count_nodes(child)
    subplans = getattr(node, "subplans", None)
    if isinstance(subplans, dict):
        subplans = tuple(subplans.values())
    for sub in subplans or ():
        total += _count_nodes(sub.root)
    return total


def _gemm_shape(meta: Dict[str, Any]) -> Optional[Tuple[int, int, int]]:
    shape = meta.get("shape")
    if (isinstance(shape, (tuple, list)) and len(shape) == 3
            and all(isinstance(s, int) and s > 0 for s in shape)):
        return tuple(shape)
    return None


# ---------------------------------------------------------------------------
# verification memoization (plan fingerprints)
# ---------------------------------------------------------------------------
#
# The analysis is a pure function of (plan structure, metadata, machine),
# so results are memoized on a canonical structural key — built by
# :mod:`repro.plan.fingerprint`, the module the batch pricing layer keys
# its caches off too, so both layers agree on what "the same plan"
# means.  The key is recomputed on every call from the *current* field
# values — mutating a node in place (the mutation self-checks do)
# changes the key, never returns a stale verdict.
# :func:`~repro.plan.fingerprint.plan_fingerprint` (re-exported here)
# exposes the same identity as a stable hex digest.

# backwards-compatible aliases (pre-split internal names)
_canonical_plan_body = canonical_plan_body
_machine_token = context_machine_token
_memo_key = verification_key

_VERIFY_MEMO = BoundedMemo(maxsize=4096)


def verification_cache_info() -> Dict[str, int]:
    """Hit/miss/size counters of the verification memo (for ``lint``)."""
    return _VERIFY_MEMO.info()


def clear_verification_cache() -> None:
    """Drop all memoized verification results and reset the counters."""
    _VERIFY_MEMO.clear()


class PlanVerifier:
    """Static analyzer for ExecutionPlan trees (rules V301-V332)."""

    def verify(self, plan: ExecutionPlan,
               label: Optional[str] = None) -> PlanLintReport:
        """Analyze one plan; returns the full report (never raises).

        Results are memoized on the plan's structural fingerprint (see
        :func:`plan_fingerprint`): re-verifying an identical structure
        on the same machine — the engine gate does, for every pricing
        of the same plan — is a dictionary lookup.  The key is rebuilt
        from current field values each call, so in-place mutation is
        always observed.
        """
        key = _memo_key(plan, label)
        cached = _VERIFY_MEMO.get(key)
        if cached is not None:
            return cached
        report = self._analyze(plan, label)
        _VERIFY_MEMO.put(key, report)
        return report

    def _analyze(self, plan: ExecutionPlan,
                 label: Optional[str]) -> PlanLintReport:
        meta = plan.meta if isinstance(plan.meta, dict) else {}
        driver = str(label if label is not None
                     else meta.get("driver", "plan"))
        provenance = meta.get("provenance")
        if (label is None and isinstance(provenance, str)
                and provenance.startswith("tuner:")):
            # attribute tuner-generated candidates in every diagnostic
            driver = f"{driver}[{provenance}]"
        threads = meta.get("threads", 1)
        threads = threads if isinstance(threads, int) and threads > 0 else 1
        shape = meta.get("shape", ())
        if not isinstance(shape, (tuple, list)):
            shape = ()

        diags: List[PlanDiagnostic] = []
        root = plan.root
        if isinstance(root, MergeOp):
            self._verify_merge(plan, root, driver, diags)
        else:
            st = _WalkState(
                driver=driver, threads=threads,
                mnk=_gemm_shape(meta), ctx=plan.context, diags=diags,
            )
            self._scope((root,), "", st)
            self._check_coverage(plan, root, st)
            diags.extend(analyze_dataflow(plan, driver, st.mnk))
            diags.extend(analyze_races(plan, driver, st.threads, st.mnk))

        return PlanLintReport(
            driver=driver,
            shape=tuple(shape),
            threads=threads,
            diagnostics=tuple(sorted(diags, key=lambda d: d.sort_key())),
            nodes=_count_nodes(root),
        )

    # -- section scopes (dataflow state machine) ------------------------

    def _scope(self, children, parent_path: str, st: _WalkState) -> None:
        """Verify one section scope: packs live per-section, in order."""
        live: Dict[str, _Panel] = {}
        for child in children:
            path = _node_path(parent_path, child)
            if isinstance(child, Section):
                self._scope(getattr(child, "children", ()), path, st)
            elif isinstance(child, PackOp):
                self._pack(child, path, live, st)
            elif isinstance(child, FusedPackOp):
                self._fused_pack(child, path, live, st)
            elif isinstance(child, BarrierOp):
                self._barrier(child, path, live, st)
            elif isinstance(child, GebpOp):
                self._gebp(child, path, live, st)
            elif isinstance(child, JitSweepOp):
                self._jit_sweep(child, path, live, st)
            elif isinstance(child, ThreadStripsOp):
                self._thread_strips(child, path, live, st)
            elif isinstance(child, CriticalPathOp):
                self._critical_path(child, path, st)
            # unknown node kinds are structural no-ops for the analyzer;
            # the pricing engine still rejects them
        for panel in live.values():
            if not panel.consumed:
                st.diag(
                    "V322-dead-pack",
                    "packed panel reaches the end of its section "
                    "without a consumer",
                    panel.path,
                )

    def _produce(self, live: Dict[str, _Panel], bucket: str,
                 panel: _Panel, st: _WalkState) -> None:
        prev = live.get(bucket)
        if prev is not None and not prev.consumed:
            st.diag(
                "V322-dead-pack",
                f"{bucket} panel overwritten before any consumer read it",
                prev.path,
            )
        live[bucket] = panel

    def _consume(self, live: Dict[str, _Panel], bucket: str,
                 need_rows: int, need_cols: int, path: str,
                 st: _WalkState) -> None:
        panel = live.get(bucket)
        if panel is None:
            st.diag(
                "V321-missing-pack",
                f"consumes a packed {bucket} panel but no dominating "
                "pack produced one in this scope",
                path,
            )
            return
        if not panel.synced:
            st.diag(
                "V302-unsynced-pack",
                f"reads the cooperatively packed {bucket} panel "
                f"(share {panel.share}) with no barrier over the "
                "packing group since the pack",
                path,
            )
            panel.synced = True  # report each missing barrier once
        if need_rows > panel.rows or need_cols > panel.cols:
            st.diag(
                "V323-stale-panel",
                f"reads {need_rows}x{need_cols} from the live {bucket} "
                f"panel of {panel.rows}x{panel.cols} (stale or "
                "overwritten kc-step buffer)",
                path,
            )
        panel.consumed = True

    # -- node handlers ---------------------------------------------------

    def _pack(self, node: PackOp, path: str,
              live: Dict[str, _Panel], st: _WalkState) -> None:
        self._pack_residency(node, path, st)
        if node.bucket not in ("pack_a", "pack_b"):
            return  # format conversions ('other') feed packing-free kernels
        share = node.share if node.share and node.share > 1 else 1
        self._produce(live, node.bucket, _Panel(
            path=path, rows=node.rows, cols=node.cols,
            share=share, synced=share <= 1,
        ), st)

    def _fused_pack(self, node: FusedPackOp, path: str,
                    live: Dict[str, _Panel], st: _WalkState) -> None:
        # fused pack-B produces the same k x n panel, hidden in kernel slack
        self._produce(live, "pack_b", _Panel(
            path=path, rows=node.k, cols=node.n, share=1, synced=True,
        ), st)

    def _barrier(self, node: BarrierOp, path: str,
                 live: Dict[str, _Panel], st: _WalkState) -> None:
        group = node.group
        if group < 1 or group > st.threads or st.threads % group != 0:
            st.diag(
                "V303-barrier-group",
                f"barrier group {group} does not tile the plan's "
                f"{st.threads} thread(s)",
                path,
            )
            return
        for panel in live.values():
            if not panel.synced and group >= panel.share:
                panel.synced = True

    def _gebp(self, node: GebpOp, path: str,
              live: Dict[str, _Panel], st: _WalkState) -> None:
        self._gebp_residency(node, path, st)
        if node.packing_free:
            return  # BLASFEO-style: kernels run off the source layout
        self._consume(live, "pack_a", node.mc, node.kc, path, st)
        self._consume(live, "pack_b", node.kc, node.nc, path, st)

    def _jit_sweep(self, node: JitSweepOp, path: str,
                   live: Dict[str, _Panel], st: _WalkState) -> None:
        self._jit_residency(node, path, st)
        if node.packed_b:
            self._consume(live, "pack_b", node.k, node.n, path, st)

    def _thread_strips(self, node: ThreadStripsOp, path: str,
                       live: Dict[str, _Panel], st: _WalkState) -> None:
        negative = [c for c in node.chunks if c < 0]
        if negative:
            st.diag(
                "V301-write-overlap",
                f"negative per-thread M-chunk(s) {negative}",
                path,
            )
        if not node.executed_factors and st.mnk is not None:
            m = st.mnk[0]
            total = sum(node.chunks)
            if total > m:
                st.diag(
                    "V301-write-overlap",
                    f"per-thread M-strips sum to {total} over an M "
                    f"extent of {m} (two threads own the same C rows)",
                    path,
                )
        self._strip_class_residency(node, path, st)
        self._consume(live, "pack_b", node.kcb, node.ncb, path, st)

    def _critical_path(self, node: CriticalPathOp, path: str,
                       st: _WalkState) -> None:
        bad = [c for c in node.chunks if c[0] < 0 or c[1] < 0]
        if bad:
            st.diag(
                "V301-write-overlap",
                f"negative grid chunk(s) {bad}",
                path,
            )
        if st.mnk is not None:
            m, n, _ = st.mnk
            area = sum(max(mi, 0) * max(nj, 0) for (mi, nj) in node.chunks)
            if area > m * n:
                st.diag(
                    "V301-write-overlap",
                    f"grid chunks cover {area} C elements over an "
                    f"{m}x{n} output (overlapping write tiles)",
                    path,
                )
        # each distinct sub-plan is a full plan with its own context
        for key in sorted(set(node.chunks)):
            sub = node.subplans.get(key)
            if sub is None:
                continue
            report = self.verify(sub, label=st.driver)
            for d in report.diagnostics:
                st.diags.append(dataclasses.replace(
                    d, path=f"{path}/{d.path}",
                ))

    # -- residency claims (V311-V313) ------------------------------------

    def _caches(self, st: _WalkState):
        """(l1d_bytes, l2_bytes) from the plan's machine, or None."""
        machine = getattr(st.ctx, "machine", None)
        if machine is None:
            return None
        return machine.l1d.size_bytes, machine.l2.size_bytes

    def _pack_residency(self, node: PackOp, path: str,
                        st: _WalkState) -> None:
        caps = self._caches(st)
        if caps is None:
            return
        l1, l2 = caps
        panel_bytes = node.rows * node.cols * node.itemsize
        if node.resident == "l1" and panel_bytes > L1_CLAIM_FRACTION * l1:
            st.diag(
                "V311-l1-residency",
                f"pack source claimed L1-resident but the panel alone is "
                f"{panel_bytes} B (> {L1_CLAIM_FRACTION:.0%} of "
                f"{l1} B L1d)",
                path,
            )
        elif node.resident == "l2" and panel_bytes > L2_CLAIM_FRACTION * l2:
            st.diag(
                "V312-l2-residency",
                f"pack source claimed L2-resident but the panel alone is "
                f"{panel_bytes} B (> {L2_CLAIM_FRACTION:.0%} of "
                f"{l2} B L2)",
                path,
            )
        if node.share is not None and node.share > 1:
            padded = node.padded_elements or (node.rows * node.cols)
            shared_bytes = padded * node.itemsize
            if shared_bytes > l2:
                st.diag(
                    "V313-shared-l2-budget",
                    f"cooperatively packed panel of {shared_bytes} B "
                    f"(share {node.share}) exceeds the entire "
                    f"{l2} B cluster-shared L2",
                    path,
                )

    def _strip_class_residency(self, node: ThreadStripsOp, path: str,
                               st: _WalkState) -> None:
        """V31x for class-tagged strips: claims hold on the strip's OWN caches.

        Untagged (homogeneous) strips carry no per-strip residency
        semantics, so the legacy behavior — no check — is preserved
        bit-for-bit.  A heterogeneous lowering claims residency with
        the weakest predicate over every class it schedules on (see
        ``_lower_mt_openblas``), so a clean plan still cannot be
        flagged; a strip whose class's private caches cannot hold the
        claimed working set is checked against *that* class's L1/L2,
        not the base core's.
        """
        if not node.core_classes:
            return
        machine = getattr(st.ctx, "machine", None)
        classes = getattr(machine, "classes", None)
        if machine is None or not classes:
            return
        if len(node.core_classes) != len(node.chunks):
            return  # malformed tagging is V422's finding, not V31x
        seen = set()
        for chunk, tag in zip(node.chunks, node.core_classes):
            if chunk <= 0 or (chunk, tag) in seen:
                continue
            seen.add((chunk, tag))
            if not isinstance(tag, int) or not 0 <= tag < len(classes):
                continue  # unknown class indices are V422's finding
            l1 = machine.class_l1d(tag).size_bytes
            l2 = machine.class_l2(tag).size_bytes
            name = classes[tag].name
            if node.source_resident == "l1":
                ws = (chunk * node.kcb + node.kcb * node.ncb
                      + chunk * node.ncb) * node.itemsize
                if ws > L1_CLAIM_FRACTION * l1:
                    st.diag(
                        "V311-l1-residency",
                        f"strip claimed L1-resident on class {name!r} "
                        f"with a working set of {ws} B "
                        f"(> {L1_CLAIM_FRACTION:.0%} of its {l1} B L1d)",
                        path,
                    )
            elif node.source_resident == "l2":
                a_bytes = chunk * node.kcb * node.itemsize
                if a_bytes > L2_CLAIM_FRACTION * l2:
                    st.diag(
                        "V312-l2-residency",
                        f"strip's unpacked A slice of {a_bytes} B "
                        f"claimed L2-resident on class {name!r} "
                        f"(> {L2_CLAIM_FRACTION:.0%} of its {l2} B L2)",
                        path,
                    )

    def _gebp_residency(self, node: GebpOp, path: str,
                        st: _WalkState) -> None:
        caps = self._caches(st)
        if caps is None:
            return
        l1, l2 = caps
        if "l1" in (node.a_resident, node.b_resident):
            ws = (node.mc * node.kc + node.kc * node.nc
                  + node.mc * node.nc) * node.itemsize
            if ws > L1_CLAIM_FRACTION * l1:
                st.diag(
                    "V311-l1-residency",
                    f"GEBP tile claimed L1-resident with a working set "
                    f"of {ws} B (> {L1_CLAIM_FRACTION:.0%} of {l1} B "
                    "L1d)",
                    path,
                )
        if node.a_resident == "l2":
            a_bytes = node.mc * node.kc * node.itemsize
            if a_bytes > L2_CLAIM_FRACTION * l2:
                st.diag(
                    "V312-l2-residency",
                    f"A block claimed L2-resident at {a_bytes} B "
                    f"(> {L2_CLAIM_FRACTION:.0%} of {l2} B L2)",
                    path,
                )
        if node.b_resident == "l2":
            b_bytes = node.kc * node.nc * node.itemsize
            if b_bytes > L2_CLAIM_FRACTION * l2:
                st.diag(
                    "V312-l2-residency",
                    f"B panel claimed L2-resident at {b_bytes} B "
                    f"(> {L2_CLAIM_FRACTION:.0%} of {l2} B L2)",
                    path,
                )

    def _jit_residency(self, node: JitSweepOp, path: str,
                       st: _WalkState) -> None:
        caps = self._caches(st)
        if caps is None:
            return
        l1, l2 = caps
        if "l1" in (node.a_resident, node.b_resident):
            ws = (node.m * node.k + node.k * node.n
                  + node.m * node.n) * node.itemsize
            if ws > L1_CLAIM_FRACTION * l1:
                st.diag(
                    "V311-l1-residency",
                    f"JIT sweep claimed L1-resident with a working set "
                    f"of {ws} B (> {L1_CLAIM_FRACTION:.0%} of {l1} B "
                    "L1d)",
                    path,
                )
        if node.a_resident == "l2":
            a_bytes = node.m * node.k * node.itemsize
            if a_bytes > L2_CLAIM_FRACTION * l2:
                st.diag(
                    "V312-l2-residency",
                    f"A slice claimed L2-resident at {a_bytes} B "
                    f"(> {L2_CLAIM_FRACTION:.0%} of {l2} B L2)",
                    path,
                )
        if node.b_resident == "l2":
            b_bytes = node.k * node.n * node.itemsize
            if b_bytes > L2_CLAIM_FRACTION * l2:
                st.diag(
                    "V312-l2-residency",
                    f"B slice claimed L2-resident at {b_bytes} B "
                    f"(> {L2_CLAIM_FRACTION:.0%} of {l2} B L2)",
                    path,
                )

    # -- conservation (V331-V332) ----------------------------------------

    def _check_coverage(self, plan: ExecutionPlan, root,
                        st: _WalkState) -> None:
        if st.mnk is None:
            return
        m, n, k = st.mnk
        target = m * n * k
        root_path = _node_path("", root)
        covered, exact = self._covered(root, root_path, st)
        if exact and covered != target:
            what = ("missing edge tiles" if covered < target
                    else "overlapping tiles")
            st.diag(
                "V331-flop-coverage",
                f"plan tiles cover {covered} of {target} M*N*K "
                f"products ({what})",
                root_path,
            )
        elif not exact and covered < target:
            st.diag(
                "V331-flop-coverage",
                f"representative tiles cover only {covered} of "
                f"{target} M*N*K products (under-replicated "
                "factorization)",
                root_path,
            )
        useful = plan.meta.get("useful_flops")
        expected = gemm_flops(m, n, k)
        if useful is not None and useful != expected:
            st.diag(
                "V331-flop-coverage",
                f"meta useful_flops {useful} disagrees with "
                f"{expected} for {m}x{n}x{k}",
                root_path,
            )

    def _covered(self, node, path: str,
                 st: _WalkState) -> Tuple[int, bool]:
        """(covered M*N*K products, exact?) for one subtree.

        Exact subtrees enumerate every tile they execute; representative
        ones (``executed_factors``) replicate one thread's tile by the
        factorization, where ceil-padding legitimately over-covers.
        """
        if isinstance(node, Section):
            total, exact = 0, True
            for child in getattr(node, "children", ()):
                got, sub_exact = self._covered(
                    child, _node_path(path, child), st
                )
                total += got
                exact = exact and sub_exact
            return total, exact
        if isinstance(node, GebpOp):
            value = node.mc * node.nc * node.kc
            for f in node.executed_factors:
                value *= f
            return value, not node.executed_factors
        if isinstance(node, JitSweepOp):
            value = node.m * node.n * node.k
            for f in node.executed_factors:
                value *= f
            return value, not node.executed_factors
        if isinstance(node, ThreadStripsOp):
            value = sum(max(c, 0) for c in node.chunks) * node.ncb * node.kcb
            for f in node.executed_factors:
                value *= f
            return value, not node.executed_factors
        if isinstance(node, CriticalPathOp):
            total = 0
            for (mi, nj) in node.chunks:
                if mi <= 0 or nj <= 0:
                    continue
                sub = node.subplans.get((mi, nj))
                if sub is None:
                    st.diag(
                        "V331-flop-coverage",
                        f"nonzero grid chunk {mi}x{nj} has no sub-plan "
                        "(uncovered C tile)",
                        path,
                    )
                    continue
                sub_shape = _gemm_shape(sub.meta) or (mi, nj, 0)
                total += sub_shape[0] * sub_shape[1] * sub_shape[2]
            return total, True
        return 0, True

    # -- merge plans (V332) ----------------------------------------------

    def _verify_merge(self, plan: ExecutionPlan, root: MergeOp,
                      driver: str, diags: List[PlanDiagnostic]) -> None:
        meta = plan.meta
        root_path = _node_path("", root)
        subplans = root.subplans
        st = _WalkState(driver=driver, threads=1, mnk=None,
                        ctx=None, diags=diags)

        batch = meta.get("batch")
        if batch is not None and batch != len(subplans):
            st.diag(
                "V332-batch-partition",
                f"meta batch {batch} disagrees with {len(subplans)} "
                "sub-plan(s)",
                root_path,
            )
        shapes = meta.get("shape")
        if isinstance(shapes, (tuple, list)):
            if len(shapes) != len(subplans):
                st.diag(
                    "V332-batch-partition",
                    f"meta lists {len(shapes)} problem shape(s) for "
                    f"{len(subplans)} sub-plan(s)",
                    root_path,
                )
            else:
                for i, (sub, shape) in enumerate(zip(subplans, shapes)):
                    sub_shape = sub.meta.get("shape")
                    if (isinstance(shape, (tuple, list))
                            and isinstance(sub_shape, (tuple, list))
                            and tuple(sub_shape) != tuple(shape)):
                        st.diag(
                            "V332-batch-partition",
                            f"sub-plan {i} lowers "
                            f"{'x'.join(str(s) for s in sub_shape)} but "
                            "the batch metadata lists "
                            f"{'x'.join(str(s) for s in shape)}",
                            f"{root_path}/sub[{i}]",
                        )
        # every batch member is a full plan: recurse the whole analysis
        for i, sub in enumerate(subplans):
            report = self.verify(sub, label=driver)
            for d in report.diagnostics:
                diags.append(dataclasses.replace(
                    d, path=f"{root_path}/sub[{i}]/{d.path}",
                ))


#: the process-wide default verifier (stateless; safe to share)
PLAN_VERIFIER = PlanVerifier()


def verify_plan(plan: ExecutionPlan,
                label: Optional[str] = None) -> PlanLintReport:
    """Statically analyze one plan with the default verifier."""
    return PLAN_VERIFIER.verify(plan, label=label)


def assert_plan_ok(plan: ExecutionPlan) -> PlanLintReport:
    """Verify a plan, raising on any error-severity finding.

    The engine's verify-before-price gate: a plan that fails the static
    analysis never reaches the pricing models.
    """
    report = verify_plan(plan)
    if not report.ok:
        raise PlanVerificationError(report.render())
    return report


# ---------------------------------------------------------------------------
# mutation self-test (negative controls)
# ---------------------------------------------------------------------------


def _find(plan: ExecutionPlan, node_type):
    """First node of ``node_type`` in the plan tree (depth-first)."""
    for _, node in plan.walk():
        if isinstance(node, node_type):
            return node
    raise AssertionError(
        f"self-check plan has no {node_type.__name__} node"
    )


def _find_section_with(plan: ExecutionPlan, node_type):
    """First Section whose direct children include a ``node_type``."""
    for _, node in plan.walk():
        if isinstance(node, Section) and any(
            isinstance(c, node_type) for c in node.children
        ):
            return node
    raise AssertionError(
        f"self-check plan has no section containing "
        f"{node_type.__name__}"
    )


def _mutant_plans(machine) -> Iterator[Tuple[str, ExecutionPlan]]:
    """(rule_id, plan) pairs, each plan injected with one violation.

    Every mutant starts from a *real* lowered plan (so the surrounding
    structure is legal) and flips exactly the invariant its rule checks.
    Mutations may trip secondary rules too; the self-check only requires
    that the targeted rule fires.
    """
    from ..blas import make_blasfeo, make_openblas
    from ..core import BatchedSmm, ReferenceSmmDriver
    from ..parallel import MultithreadedGemm

    def mt_plan():
        return MultithreadedGemm(
            machine, "openblas", threads=4
        ).plan_gemm(64, 256, 256)

    def ref_packed_plan():
        return ReferenceSmmDriver(machine).plan_with(
            32, 32, 32, packed_b=True
        )

    # V301: inflate one per-thread M-chunk so the strips overlap in C
    plan = mt_plan()
    strips = _find(plan, ThreadStripsOp)
    strips.chunks = (strips.chunks[0] + 7,) + tuple(strips.chunks[1:])
    yield "V301-write-overlap", plan

    # V302: drop the post-pack barrier before the cooperative sweep
    plan = mt_plan()
    section = _find_section_with(plan, BarrierOp)
    kept = []
    removed = False
    for child in section.children:
        if not removed and isinstance(child, BarrierOp):
            removed = True  # the pack-b barrier is the first one
            continue
        kept.append(child)
    section.children = tuple(kept)
    yield "V302-unsynced-pack", plan

    # V303: a barrier group that does not divide the thread count
    plan = mt_plan()
    _find(plan, BarrierOp).group = 3  # threads=4, 4 % 3 != 0
    yield "V303-barrier-group", plan

    # V311: keep the 'l1' claim while blowing up the kernel tile
    plan = make_blasfeo(machine).plan_gemm(8, 8, 8)
    gebp = _find(plan, GebpOp)
    gebp.mc = gebp.nc = gebp.kc = 512
    yield "V311-l1-residency", plan

    # V312: an 'l2'-claimed A block far beyond the physical L2
    plan = make_openblas(machine).plan_gemm(48, 48, 48)
    gebp = _find(plan, GebpOp)
    gebp.mc = gebp.kc = 4096
    yield "V312-l2-residency", plan

    # V313: a cooperative pack bigger than the whole shared L2
    plan = mt_plan()
    pack = _find(plan, PackOp)
    pack.padded_elements = 2 * machine.l2.size_bytes // pack.itemsize
    yield "V313-shared-l2-budget", plan

    # V321: packed kernel sweep with its producing pack deleted
    plan = ref_packed_plan()
    plan.root.children = tuple(
        c for c in plan.root.children if not isinstance(c, PackOp)
    )
    yield "V321-missing-pack", plan

    # V322: pack left dead by flipping the consumer to unpacked
    plan = ref_packed_plan()
    _find(plan, JitSweepOp).packed_b = False
    yield "V322-dead-pack", plan

    # V323: shrink the packed panel under its consumer's K extent
    plan = ref_packed_plan()
    pack = _find(plan, PackOp)
    pack.rows = pack.rows // 2
    yield "V323-stale-panel", plan

    # V331: delete one GEBP tile (an uncovered hole in C)
    plan = make_openblas(machine).plan_gemm(48, 48, 48)
    section = _find_section_with(plan, GebpOp)
    section.children = tuple(
        c for c in section.children if not isinstance(c, GebpOp)
    )
    yield "V331-flop-coverage", plan

    # V332: a merge plan whose batch metadata lists a dropped problem
    plan = BatchedSmm(machine).plan_batch([(8, 8, 8), (16, 16, 16)])
    plan.root.subplans = plan.root.subplans[:1]
    yield "V332-batch-partition", plan

    # V401: inflate a pack's row extent so it reads B beyond K
    plan = ref_packed_plan()
    pack = _find(plan, PackOp)
    pack.rows = pack.rows * 4
    yield "V401-oob-access", plan

    # V402: undersize the pack buffer below what the pack writes
    plan = ref_packed_plan()
    pack = _find(plan, PackOp)
    pack.padded_elements = (pack.rows * pack.cols) // 2
    yield "V402-pack-overrun", plan

    # V411: overlapping thread strips (two threads own the same C rows)
    plan = mt_plan()
    strips = _find(plan, ThreadStripsOp)
    strips.chunks = (strips.chunks[0] + 7,) + tuple(strips.chunks[1:])
    yield "V411-strip-race", plan

    # V412: missing barrier between the cooperative pack and its readers
    plan = mt_plan()
    section = _find_section_with(plan, BarrierOp)
    kept = []
    removed = False
    for child in section.children:
        if not removed and isinstance(child, BarrierOp):
            removed = True
            continue
        kept.append(child)
    section.children = tuple(kept)
    yield "V412-unordered-read", plan

    # V413: warp the 2-D grid so no disjoint decomposition exists
    plan = MultithreadedGemm(
        machine, "eigen", threads=4
    ).plan_gemm(64, 64, 64)
    cp = _find(plan, CriticalPathOp)
    first = cp.chunks[0]
    cp.chunks = ((first[0] + 5, first[1]),) + tuple(cp.chunks[1:])
    yield "V413-grid-race", plan

    # V421: claim one packed B shared far beyond an L2 cluster
    plan = mt_plan()
    strips = _find(plan, ThreadStripsOp)
    strips.b_shared_by = machine.l2.shared_by * 8
    yield "V421-topology-mismatch", plan

    # the V422/V423 class rules only arm on tagged strips, so their
    # mutants start from a heterogeneous lowering regardless of the
    # machine under test
    from ..machine.phytium import big_little_like

    het = big_little_like()

    def het_plan():
        return MultithreadedGemm(
            het, "openblas", threads=8
        ).plan_gemm(64, 256, 256)

    # V422: tag one strip with a class index the machine does not have
    plan = het_plan()
    strips = _find(plan, ThreadStripsOp)
    strips.core_classes = (99,) + tuple(strips.core_classes[1:])
    yield "V422-class-mismatch", plan

    # V423: shift one row between classes so the chunks match neither
    # the balanced nor the throughput-weighted partition (sum stays M,
    # so V301/V331 stay quiet and only the imbalance is the defect)
    plan = het_plan()
    strips = _find(plan, ThreadStripsOp)
    chunks = list(strips.chunks)
    chunks[0] -= 1
    chunks[-1] += 1
    strips.chunks = tuple(chunks)
    yield "V423-unbalanced-strips", plan


def plan_self_check(machine) -> List[Tuple[str, bool]]:
    """Negative controls: does every plan rule fire on its mutant?

    Mirrors :func:`repro.verify.verifier.self_check`: returns
    ``(rule_id, fired)`` pairs, one per V3xx rule, where ``fired`` means
    the injected violation produced at least one diagnostic of exactly
    that rule.
    """
    results = []
    for rule_id, plan in _mutant_plans(machine):
        report = verify_plan(plan)
        fired = any(d.rule == rule_id for d in report.diagnostics)
        results.append((rule_id, fired))
    return results


def inject_bad_plan(machine) -> Tuple[str, ExecutionPlan]:
    """One deliberately broken plan for the ``--inject-bad`` CLI path."""
    for rule_id, plan in _mutant_plans(machine):
        if rule_id == "V321-missing-pack":
            return rule_id, plan
    raise AssertionError("V321 mutant missing from the self-check set")


# ---------------------------------------------------------------------------
# the golden verification sweep (``repro lint --plans``)
# ---------------------------------------------------------------------------


#: drivers reused across a sweep, keyed by (machine identity, lib,
#: threads).  A fresh driver per case would re-run the JIT tile search
#: and lose every kernel/steady-state cache between shapes — the
#: dominant cost of the golden sweep.  Drivers are stateless w.r.t. the
#: plans they lower (each ``plan_gemm`` builds a fresh context), so
#: sharing one per configuration is exactly what real callers do.
_DRIVER_MEMO = BoundedMemo(maxsize=64)


def shared_driver(machine, lib: str, threads: int):
    """The memoized driver instance for one (machine, lib, threads)."""
    from ..blas import make_driver
    from ..core import ReferenceSmmDriver
    from ..parallel import MultithreadedGemm
    from ..plan.fingerprint import machine_token

    key = (machine_token(machine), lib, threads)
    driver = _DRIVER_MEMO.get(key)
    if driver is not None:
        return driver
    if lib in ("reference", "reference-fused"):
        driver = ReferenceSmmDriver(
            machine, threads=threads,
            fused_packing=(lib == "reference-fused"),
        )
    elif threads > 1:
        driver = MultithreadedGemm(machine, lib, threads=threads)
    else:
        driver = make_driver(lib, machine)
    _DRIVER_MEMO.put(key, driver)
    return driver


def lower_named(machine, lib: str, threads: int,
                m: int, n: int, k: int) -> ExecutionPlan:
    """Lower one (driver, threads, shape) case like the golden recorder."""
    return shared_driver(machine, lib, threads).plan_gemm(m, n, k)


def golden_plan_cases(
    machine,
    shape: Optional[Tuple[int, int, int]] = None,
    libs: Optional[Tuple[str, ...]] = None,
    threads: Optional[Tuple[int, ...]] = None,
) -> Iterator[Tuple[str, int, Tuple[int, int, int], ExecutionPlan]]:
    """Yield ``(lib, threads, shape, plan)`` over the verification grid.

    With no arguments this is the full golden sweep the acceptance
    criteria pin: every driver's lowering of the Fig. 5 / Fig. 10 shape
    grids at 1/4/64 threads must analyze clean.  ``shape``/``libs``/
    ``threads`` narrow the sweep (the CLI's ``lint --plans M N K
    --lib L --threads T`` form).
    """
    from ..workloads import sweeps

    if shape is not None:
        for lib in libs or GOLDEN_DRIVERS:
            for t in threads or (1,):
                if t > 1 and lib not in GOLDEN_MT_DRIVERS:
                    continue
                yield lib, t, shape, lower_named(machine, lib, t, *shape)
        return

    st_libs = tuple(
        lib for lib in (libs or GOLDEN_DRIVERS) if lib in GOLDEN_DRIVERS
    )
    mt_libs = tuple(
        lib for lib in (libs or GOLDEN_MT_DRIVERS)
        if lib in GOLDEN_MT_DRIVERS
    )
    thread_set = threads or (1,) + sweeps.GOLDEN_MT_THREADS
    if 1 in thread_set:
        for lib in st_libs:
            for (m, n, k) in sweeps.golden_single_thread_grid():
                yield lib, 1, (m, n, k), lower_named(
                    machine, lib, 1, m, n, k
                )
    for t in thread_set:
        if t == 1:
            continue
        for lib in mt_libs:
            for (m, n, k) in sweeps.golden_mt_grid():
                yield lib, t, (m, n, k), lower_named(
                    machine, lib, t, m, n, k
                )
