"""The kernel verifier: orchestrates the static-analysis passes.

:class:`KernelVerifier` runs the def-use/liveness pass, the Eq. 4 register
budget pass, and (when a core model is supplied) the static-bound pass over
one :class:`~repro.isa.KernelSequence` and folds the findings into a
:class:`~repro.verify.diagnostics.VerificationReport`.

Entry points by layer:

* :func:`verify_kernel` / :func:`assert_kernel_ok` — one kernel; the
  generator and JIT factory call the latter on every emitted kernel;
* :func:`audit_catalog` / :func:`audit_catalogs` — every kernel a library
  catalog can emit, edges included (``KernelCatalog.audit`` delegates
  here);
* :func:`self_check` — proves each rule still fires on a known-bad
  kernel, the negative control run by ``repro lint --self-check``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..isa.instructions import (
    Instruction,
    fmla,
    ldr_q,
    movi_zero,
    subs_imm,
    branch_nz,
)
from ..isa.registers import N_VECTOR_REGISTERS
from ..isa.sequence import KernelSequence
from ..machine.config import CoreConfig
from ..util.errors import KernelVerificationError
from .bounds import static_bounds
from .budget import budget_diagnostics
from .defuse import analyze_defuse
from .diagnostics import RULES, Diagnostic, VerificationReport, make_diagnostic

__all__ = [
    "KernelVerifier",
    "verify_kernel",
    "assert_kernel_ok",
    "audit_catalog",
    "audit_catalogs",
    "catalog_specs",
    "self_check",
]


class KernelVerifier:
    """Static analyzer over kernel IR: def-use, Eq. 4 budget, bounds.

    Without a core model only the structural passes run (this is what the
    generator uses — structure must hold on any machine).  With one, the
    verifier also validates latency keys, computes static cycle bounds and
    flags latency-limited kernels.
    """

    def __init__(
        self,
        core: Optional[CoreConfig] = None,
        n_registers: int = 0,
    ) -> None:
        self.core = core
        self.n_registers = n_registers or (
            core.vector_registers if core is not None else N_VECTOR_REGISTERS
        )

    def verify(self, kernel: KernelSequence) -> VerificationReport:
        """All passes over ``kernel``, folded into one report."""
        defuse = analyze_defuse(kernel)
        diagnostics: List[Diagnostic] = list(defuse.diagnostics)
        diagnostics.extend(
            budget_diagnostics(kernel, defuse, self.n_registers)
        )
        bounds = None
        if self.core is not None:
            missing = sorted({
                ins.latency_key
                for ins in kernel.all_instructions()
                if ins.latency_key not in self.core.latencies
            })
            for key in missing:
                diagnostics.append(make_diagnostic(
                    "V202-unknown-latency",
                    f"latency key {key!r} is not in the core model "
                    f"({self.core.name})",
                    kernel.name,
                ))
            if not missing:
                bounds = static_bounds(kernel, self.core)
                if bounds.latency_limited:
                    diagnostics.append(make_diagnostic(
                        "V201-latency-bound",
                        "dependence chains bound the body at "
                        f"{bounds.critical_path_bound:.1f} cycles/iteration "
                        f"(throughput floor {bounds.throughput_bound:.1f}) "
                        "- too few independent accumulator chains",
                        kernel.name,
                    ))
        diagnostics.sort(key=lambda d: d.sort_key())
        return VerificationReport(
            kernel_name=kernel.name,
            diagnostics=tuple(diagnostics),
            live_high_water=defuse.live_high_water,
            bounds=bounds,
        )


def verify_kernel(
    kernel: KernelSequence, core: Optional[CoreConfig] = None
) -> VerificationReport:
    """One-shot verification of ``kernel`` (convenience wrapper)."""
    return KernelVerifier(core).verify(kernel)


def assert_kernel_ok(
    kernel: KernelSequence, core: Optional[CoreConfig] = None
) -> VerificationReport:
    """Verify ``kernel`` and raise on any error-severity finding.

    This is the generator/JIT gate: a structurally broken kernel must
    never reach the scheduler, where it would silently produce wrong
    cycle counts.
    """
    report = verify_kernel(kernel, core)
    if not report.ok:
        raise KernelVerificationError(
            f"kernel {kernel.name!r} failed static verification:\n"
            + "\n".join(
                f"  {d.rule}: {d.message}" for d in report.errors
            )
        )
    return report


def catalog_specs(catalog) -> List:
    """Main, alternate and representative edge specs of one catalog.

    This is the coverage set every catalog audit (and ``repro lint``)
    verifies: the main kernel, the Table-I alternates, and the edge
    kernels the catalog's edge policy produces for a macro-tile with
    remainders in both dimensions.
    """
    from ..kernels.catalog import tile_plan

    main = catalog.main
    specs = [main] + list(catalog.alternates)
    # a macro-tile with both an M- and an N-edge exercises the catalog's
    # full edge policy (pow2 decomposition, padding, or scalar tails)
    mc = 2 * main.mr + max(1, main.mr // 2 - 1)
    nc = 2 * main.nr + max(1, main.nr - 1) if main.nr > 1 else 2 * main.nr
    for invocation in tile_plan(catalog, mc, nc):
        if invocation.spec not in specs:
            specs.append(invocation.spec)
    return specs


def audit_catalog(
    catalog,
    core: Optional[CoreConfig] = None,
) -> Dict[str, VerificationReport]:
    """Verify every kernel ``catalog`` can emit, keyed by kernel name.

    Covers the main kernel, the Table-I alternates, and the edge kernels
    the catalog's edge policy produces for a macro-tile with remainders in
    both dimensions.
    """
    from ..kernels.generator import MicroKernelGenerator

    verifier = KernelVerifier(core)
    generator = MicroKernelGenerator(verify=False)  # audit reports, not raises
    reports: Dict[str, VerificationReport] = {}
    for spec in catalog_specs(catalog):
        kernel = generator.generate(spec)
        if kernel.name not in reports:
            reports[kernel.name] = verifier.verify(kernel)
    return reports


def audit_catalogs(
    core: Optional[CoreConfig] = None, lanes: int = 4
) -> Dict[str, Dict[str, VerificationReport]]:
    """Audit all four library catalogs at ``lanes`` lanes."""
    from ..kernels.catalog import all_catalogs

    return {
        library: audit_catalog(catalog, core)
        for library, catalog in all_catalogs(lanes).items()
    }


def _looped(name: str, prologue, body, meta=None) -> KernelSequence:
    """A minimal kernel with standard loop control appended to ``body``."""
    return KernelSequence(
        name=name,
        prologue=tuple(prologue),
        body=tuple(body) + (subs_imm("x3", "x3", 1), branch_nz("x3")),
        epilogue=(),
        meta=meta or {},
    )


def _bad_kernels(core: CoreConfig) -> List[Tuple[str, KernelSequence, int]]:
    """(expected rule, kernel, register-file size) negative controls."""
    inits = [movi_zero("v1"), movi_zero("v2")]
    regs = core.vector_registers
    cases = [
        ("V001-uninit-read",
         _looped("bad-uninit", inits, [fmla("v0", "v1", "v2")]), regs),
        ("V002-acc-clobber",
         _looped("bad-clobber", inits + [movi_zero("v0")],
                 [fmla("v0", "v1", "v2"), movi_zero("v0")]), regs),
        ("V003-dead-write",
         _looped("bad-dead-write", inits + [movi_zero("v0")],
                 [ldr_q("v9", "x0"), fmla("v0", "v1", "v2")]), regs),
        ("V101-reg-budget",
         _looped("bad-budget",
                 [movi_zero(f"v{i}") for i in range(8)] + inits[:1],
                 [fmla(f"v{i}", "v1", "v1") for i in range(8)]), 4),
        ("V102-reg-pressure",
         _looped("bad-pressure", inits + [movi_zero("v0")],
                 [fmla("v0", "v1", "v2")],
                 meta={"mr": 32, "nr": 32, "lanes": 4}), regs),
        ("V201-latency-bound",
         _looped("bad-latency", inits + [movi_zero("v0")],
                 [fmla("v0", "v1", "v2") for _ in range(4)]), regs),
        ("V202-unknown-latency",
         _looped("bad-latency-key", inits + [movi_zero("v0")],
                 [fmla("v0", "v1", "v2"),
                  Instruction(text="mystery v0", port="alu",
                              latency_key="mystery", reads=("v0",),
                              writes=("v0",))]), regs),
    ]
    return cases


def self_check(core: Optional[CoreConfig] = None) -> List[Tuple[str, bool]]:
    """Prove every rule fires on its negative control.

    Returns ``(rule_id, fired)`` pairs covering the whole rule inventory;
    ``repro lint --self-check`` fails unless every entry fired.  This
    guards the verifier itself: a refactor that silently stops a rule from
    firing turns every downstream audit into a rubber stamp.
    """
    if core is None:
        core = CoreConfig()
    results: List[Tuple[str, bool]] = []
    for rule, kernel, n_registers in _bad_kernels(core):
        report = KernelVerifier(core, n_registers=n_registers).verify(kernel)
        fired = any(d.rule == rule for d in report.diagnostics)
        results.append((rule, fired))
    covered = {rule for rule, _ in results}
    for rule in sorted(RULES):
        if rule not in covered:
            results.append((rule, False))
    return results
