"""C002 fixture: bound methods submitted to a process pool.

The exact PR 9 regression in miniature: ``run_in_executor`` is handed
``self._tune_one`` — pickling the bound method drags the whole instance
(its executor, any locks it holds) into the worker process, or fails
outright with an unpicklable member.  The fix is a module-level worker
function, as in :mod:`repro.tuning.warm`.
"""

from concurrent.futures import ProcessPoolExecutor


class BrokenTunerPool:
    """Deliberately broken: see the module docstring."""

    def __init__(self, jobs):
        self._pool = ProcessPoolExecutor(max_workers=jobs)

    def tune_async(self, loop, shape):
        # BUG (C002): bound method into the process pool (the PR 9 bug)
        return loop.run_in_executor(self._pool, self._tune_one, shape)

    def submit_all(self, shapes):
        with ProcessPoolExecutor(max_workers=2) as pool:
            # BUG (C002): same pickling trap through a local pool
            return [pool.submit(self._tune_one, s) for s in shapes]

    def _tune_one(self, shape):
        return shape
