"""C003 fixture: asyncio primitives constructed before the loop runs.

The second PR 9 regression in miniature: on Python 3.9,
``asyncio.Queue()`` binds ``get_event_loop()`` at construction — built
in ``__init__``, before ``asyncio.run()`` starts the serving loop, the
queue belongs to the wrong (or no) loop and every ``await queue.get()``
dies with "attached to a different loop".  The fix is lazy construction
inside the running loop (``BackgroundTuner._ensure_queue``).
"""

import asyncio


class BrokenQueueService:
    """Deliberately broken: see the module docstring."""

    def __init__(self):
        # BUG (C003): constructed eagerly, before any loop is running
        self._queue = asyncio.Queue()
        self._done = asyncio.Event()

    async def put(self, item):
        await self._queue.put(item)

    async def wait(self):
        await self._done.wait()
