"""C001 fixture: lock-guarded attributes mutated without the lock.

``record`` establishes the discipline — ``_hits`` and ``_entries`` are
shared state guarded by ``_lock`` — and ``reset`` breaks it, mutating
both outside any ``with self._lock`` block.  A concurrent ``record``
and ``reset`` lose updates or resurrect cleared entries.
"""

import threading


class BrokenSharedCounter:
    """Deliberately racy: see the module docstring."""

    def __init__(self):
        self._lock = threading.Lock()
        self._hits = 0
        self._entries = {}

    def record(self, key, value):
        with self._lock:
            self._hits += 1
            self._entries[key] = value

    def reset(self):
        # BUG (C001): both attributes are lock-guarded in `record` but
        # mutated here with no lock held
        self._hits = 0
        self._entries.clear()
