"""C004 fixture: ``await`` while holding a threading lock.

``land`` suspends inside ``with self._lock`` — the *thread* lock stays
held across the await, so every other thread touching the cache blocks
for the full duration of the awaited notification, and a second
coroutine on the same loop deadlocks the moment it tries to acquire.
"""

import threading


class BrokenAsyncCache:
    """Deliberately broken: see the module docstring."""

    def __init__(self):
        self._lock = threading.Lock()
        self._plans = {}

    async def land(self, token, plan):
        with self._lock:
            self._plans[token] = plan
            # BUG (C004): suspension point inside the lock
            await self._notify(token)

    async def _notify(self, token):
        return token
