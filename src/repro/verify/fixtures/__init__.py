"""Seeded-bug fixtures for the C0xx concurrency lint.

Each ``_cNNN_*.py`` file in this directory deliberately contains the
concurrency bug its rule exists to catch — the mutation negative
controls behind ``repro audit --self-check``
(:func:`repro.verify.concurrency.concurrency_self_check`).  The C002
and C003 fixtures reproduce the two PR 9 regression bugs verbatim in
miniature: a bound method pickled into a process pool, and an
``asyncio.Queue`` constructed before the serving loop exists.

The files are never imported by the package and the directory is
excluded from the ``repro audit`` tree scan; they are read as *source
text* by the linter only.
"""
