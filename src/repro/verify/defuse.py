"""Def-use and liveness analysis over kernel instruction sequences.

The pass interprets a :class:`~repro.isa.KernelSequence` the way the
hardware executes it — prologue once, loop body repeatedly, epilogue once —
by analyzing the linearized stream ``prologue, body, body, epilogue``.
Two body copies are exactly enough to expose back-edge effects: a register
read at the top of the body is defined either before the loop (prologue) or
by a later instruction of the previous iteration, and both cases appear in
the doubled stream.

Scalar (``x``) registers are the kernel's ABI: pointers and the trip
counter arrive live-in and stay live-out, so they are exempt from the
uninitialized-read and dead-write rules.  Vector registers have no ABI
meaning across the kernel boundary — every value must be produced before
it is consumed, and every produced value should be consumed (results leave
through stores).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from ..isa.instructions import Instruction
from ..isa.registers import is_vreg
from ..isa.sequence import KernelSequence
from .diagnostics import Diagnostic, make_diagnostic

__all__ = ["DefUseResult", "analyze_defuse"]


@dataclass(frozen=True)
class DefUseResult:
    """Outcome of the def-use/liveness pass over one kernel."""

    kernel_name: str
    diagnostics: Tuple[Diagnostic, ...]
    #: loop-carried read-modify-write vector registers (the accumulators)
    accumulators: Tuple[str, ...]
    #: maximum simultaneously-live vector registers at any program point
    live_high_water: int
    #: distinct vector registers touched anywhere in the kernel
    vector_registers_used: int


def _linearize(
    kernel: KernelSequence,
) -> List[Tuple[str, int, int, Instruction]]:
    """The analyzed stream: (part, index-in-part, iteration, instruction).

    The body appears twice (iterations 1 and 2) so loop-carried effects are
    visible to the straight-line passes; diagnostics deduplicate on the
    (part, index) anchor, so the doubling never reports a site twice.
    """
    stream: List[Tuple[str, int, int, Instruction]] = []
    for i, ins in enumerate(kernel.prologue):
        stream.append(("prologue", i, 1, ins))
    for iteration in (1, 2):
        for i, ins in enumerate(kernel.body):
            stream.append(("body", i, iteration, ins))
    for i, ins in enumerate(kernel.epilogue):
        stream.append(("epilogue", i, 1, ins))
    return stream


def _find_accumulators(kernel: KernelSequence) -> Set[str]:
    """Loop-carried RMW vector registers of the body.

    A register qualifies when some body instruction both reads and writes
    it *and* its first access in body program order is a read — i.e. the
    value survives the back-edge.  Scratch registers that are rebuilt every
    iteration (``dup``/``fmul`` temporaries) fail the first-access test and
    are legitimately overwritten.
    """
    first_access: Dict[str, str] = {}
    rmw: Set[str] = set()
    for ins in kernel.body:
        for reg in ins.reads:
            first_access.setdefault(reg, "read")
        for reg in ins.writes:
            first_access.setdefault(reg, "write")
            if reg in ins.reads and is_vreg(reg):
                rmw.add(reg)
    return {reg for reg in rmw if first_access.get(reg) == "read"}


def analyze_defuse(kernel: KernelSequence) -> DefUseResult:
    """Run the def-use, clobber, dead-write and liveness checks.

    Emits ``V001-uninit-read`` for vector registers consumed before any
    definition along the prologue→body→body→epilogue path,
    ``V002-acc-clobber`` for body writes that destroy a loop-carried
    accumulator without reading it, and ``V003-dead-write`` (advisory) for
    produced values nothing ever consumes.
    """
    stream = _linearize(kernel)
    accumulators = _find_accumulators(kernel)
    diagnostics: List[Diagnostic] = []
    reported: Set[Tuple[str, str, int, str]] = set()

    def report(rule: str, message: str, part: str, index: int,
               register: str) -> None:
        key = (rule, part, index, register)
        if key in reported:
            return
        reported.add(key)
        diagnostics.append(make_diagnostic(
            rule, message, kernel.name, part=part, index=index,
            register=register,
        ))

    # -- forward pass: uninitialized reads, clobbers, dead writes ----------
    defined: Set[str] = set()
    # register -> (part, index, consumed?) of its latest unretired write
    pending: Dict[str, Tuple[str, int, bool]] = {}
    for part, index, iteration, ins in stream:
        for reg in ins.reads:
            if is_vreg(reg) and reg not in defined:
                report(
                    "V001-uninit-read",
                    f"{ins.text!r} reads {reg} before any write "
                    f"(iteration {iteration})",
                    part, index, reg,
                )
                defined.add(reg)  # report each register's first leak once
            if reg in pending:
                site_part, site_index, _ = pending[reg]
                pending[reg] = (site_part, site_index, True)
        for reg in ins.writes:
            if (part == "body" and reg in accumulators
                    and reg not in ins.reads):
                report(
                    "V002-acc-clobber",
                    f"{ins.text!r} overwrites loop-carried accumulator "
                    f"{reg} without reading it",
                    part, index, reg,
                )
            if is_vreg(reg):
                prev = pending.get(reg)
                if prev is not None and not prev[2]:
                    report(
                        "V003-dead-write",
                        f"value written to {reg} is overwritten before "
                        "any read",
                        prev[0], prev[1], reg,
                    )
                pending[reg] = (part, index, False)
            defined.add(reg)
    for reg, (site_part, site_index, consumed) in pending.items():
        if not consumed:
            report(
                "V003-dead-write",
                f"value written to {reg} is never read before the kernel "
                "ends",
                site_part, site_index, reg,
            )

    # -- backward pass: liveness high-water mark ---------------------------
    live: Set[str] = set()
    high_water = 0
    for _, _, _, ins in reversed(stream):
        live.difference_update(ins.writes)
        live.update(r for r in ins.reads if is_vreg(r))
        if len(live) > high_water:
            high_water = len(live)

    diagnostics.sort(key=lambda d: d.sort_key())
    return DefUseResult(
        kernel_name=kernel.name,
        diagnostics=tuple(diagnostics),
        accumulators=tuple(sorted(accumulators)),
        live_high_water=high_water,
        vector_registers_used=kernel.vector_registers_used(),
    )
