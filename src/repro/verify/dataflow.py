"""Symbolic interval dataflow over ExecutionPlan trees (rules V401/V402).

The V3xx analyzer (:mod:`repro.verify.planlint`) checks plan *structure*;
this module reasons about *addresses*.  Every PackOp / GebpOp /
JitSweepOp / FusedPackOp / ThreadStripsOp touches rectangular regions of
the GEMM operands and of the packed panels, and each region is an affine
interval in the problem extents (M, N, K) and the node's tile parameters
(mc, nc, kc, mr, nr, chunk sizes).  The analyzer derives those intervals
symbolically — no pricing, no data — and proves every touch in bounds
against a :class:`~repro.memlayout.addressspace.AddressSpace` model of
the operands:

* **V401** — a matrix touch (A, B or C) whose interval cannot be placed
  inside the operand's extent: the access reads or writes outside the
  allocation for *every* legal placement.
* **V402** — a packed-panel write of more logical elements than the
  pack buffer's declared capacity (``padded_elements``): the pack
  overruns its own allocation.

Placement convention: a tile of extent ``e`` over an operand extent
``E`` is in bounds iff ``e <= E`` (some offset ``0 <= o <= E - e``
exists).  Thread strips carry real offsets — thread ``t``'s rows start
at the balanced-partition prefix sum (see
:func:`repro.parallel.partition.strip_spans`) — so their intervals are
checked as placed, which is also what the race analyzer
(:mod:`repro.verify.races`) overlaps pairwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..memlayout.addressspace import AddressSpace, Allocation
from ..parallel.partition import strip_spans, weighted_split
from ..plan.ir import (
    ExecutionPlan,
    FusedPackOp,
    GebpOp,
    JitSweepOp,
    MergeOp,
    PackOp,
    ThreadStripsOp,
)
from ..util.validation import ceil_div
from .planrules import PlanDiagnostic, make_plan_diagnostic


@dataclass(frozen=True)
class Interval:
    """A half-open integer interval ``[lo, hi)`` (rows, columns, bytes)."""

    lo: int
    hi: int

    @classmethod
    def sized(cls, lo: int, length: int) -> "Interval":
        """The interval of ``length`` elements starting at ``lo``."""
        return cls(lo, lo + max(length, 0))

    @property
    def length(self) -> int:
        """Element count (empty intervals have length 0)."""
        return max(self.hi - self.lo, 0)

    @property
    def empty(self) -> bool:
        """True when the interval covers nothing."""
        return self.hi <= self.lo

    def overlaps(self, other: "Interval") -> bool:
        """True when the two intervals share at least one element."""
        return (not self.empty and not other.empty
                and self.lo < other.hi and other.lo < self.hi)

    def intersect(self, other: "Interval") -> "Interval":
        """The common sub-interval (possibly empty)."""
        return Interval(max(self.lo, other.lo), min(self.hi, other.hi))

    def within(self, outer: "Interval") -> bool:
        """True when this interval lies entirely inside ``outer``."""
        return self.empty or (self.lo >= outer.lo and self.hi <= outer.hi)

    def __str__(self) -> str:
        return f"[{self.lo}, {self.hi})"


@dataclass(frozen=True)
class Access:
    """One symbolic region access: a buffer, a mode, a 2-D interval."""

    buffer: str  # 'A' | 'B' | 'C' | 'pack_a' | 'pack_b'
    mode: str  # 'read' | 'write'
    rows: Interval
    cols: Interval
    path: str

    def region(self) -> str:
        """``A[0, 8)x[0, 4)``-style rendering for diagnostics."""
        return f"{self.buffer}{self.rows}x{self.cols}"


def strip_row_intervals(extent: int, chunks,
                        nominal=None) -> List[Interval]:
    """Per-thread C/A row intervals of one ThreadStripsOp fan-out.

    Thread ``t``'s rows start at the nominal partition's prefix sum —
    the balanced :func:`~repro.parallel.partition.split_even` by
    default, or an explicit ``nominal`` chunking (the throughput-
    weighted partition of a heterogeneous lowering) — and span its
    declared chunk: the placement
    :func:`repro.parallel.partition.strip_spans` defines, under which a
    legal chunking tiles ``[0, extent)`` exactly and an inflated chunk
    overlaps its successor.
    """
    return [
        Interval(lo, hi)
        for lo, hi in strip_spans(extent, chunks, nominal=nominal)
    ]


def plan_partition_mode(plan: ExecutionPlan) -> str:
    """The 1-D partition scheme a plan's lowering declared.

    ``"weighted"`` when the multithreaded lowering recorded a
    throughput-weighted M split in its info metadata; ``"even"``
    otherwise (the legacy balanced split).
    """
    meta = plan.meta if isinstance(plan.meta, dict) else {}
    info = meta.get("info")
    mode = info.get("partition") if isinstance(info, dict) else None
    return mode if mode in ("even", "weighted") else "even"


def plan_kernel_granule(plan: ExecutionPlan) -> int:
    """The kernel's mr — the work-unit granule of a weighted partition.

    Parsed from the plan's ``kernel_shape`` metadata (``"MRxNR"``); 1
    when absent or malformed (row-granular placement).
    """
    meta = plan.meta if isinstance(plan.meta, dict) else {}
    shape = meta.get("kernel_shape")
    if isinstance(shape, str) and "x" in shape:
        try:
            return max(1, int(shape.split("x", 1)[0]))
        except ValueError:
            pass
    return 1


def strip_nominal_chunks(extent: int, node: Any, machine,
                         mode: str, granule: int = 1
                         ) -> Optional[List[int]]:
    """The nominal partition placing a (possibly class-tagged) fan-out.

    ``None`` means the balanced default.  For a weighted-partition plan
    the nominal offsets follow the per-class throughput weights derived
    from the strip tags at the kernel's mr ``granule`` (the unit size
    the lowering apportions); unknown class indices yield ``None``
    (placement falls back to balanced — the V422 check reports the bad
    tag itself).
    """
    tags = getattr(node, "core_classes", ())
    if mode != "weighted" or not tags or machine is None:
        return None
    if len(tags) != len(getattr(node, "chunks", ())):
        return None  # tag/chunk count mismatch: V422 territory
    try:
        classes = machine.classes
    except AttributeError:
        return None
    weights = []
    for tag in tags:
        if not isinstance(tag, int) or not 0 <= tag < len(classes):
            return None
        core = classes[tag].core
        weights.append(
            float(core.vector_bits * core.ports["fma"] * core.freq_hz)
        )
    return weighted_split(extent, weights, granule=granule)


# ---------------------------------------------------------------------------
# the memlayout address-space model of one plan's operands
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OperandModel:
    """One GEMM operand bound to an address-space allocation.

    ``padded_rows`` differs from ``rows`` only for panel-major storage
    (BLASFEO zero-pads the tail panel to ``ps`` rows); byte spans are
    computed column-major over the padded extent, exactly like
    :meth:`~repro.memlayout.panelmajor.PanelMajorMatrix.element_offset`
    linearizes panel-major element addresses.
    """

    name: str
    rows: int
    cols: int
    padded_rows: int
    itemsize: int
    allocation: Allocation

    @property
    def extent(self) -> Tuple[Interval, Interval]:
        """(row interval, column interval) of the logical operand."""
        return Interval(0, self.rows), Interval(0, self.cols)

    def byte_span(self, rows: Interval, cols: Interval) -> Interval:
        """Byte-address hull of a (rows x cols) region of this operand."""
        if rows.empty or cols.empty:
            return Interval(self.allocation.base, self.allocation.base)
        first = (cols.lo * self.padded_rows + rows.lo) * self.itemsize
        last = ((cols.hi - 1) * self.padded_rows
                + (rows.hi - 1) + 1) * self.itemsize
        return Interval(self.allocation.base + first,
                        self.allocation.base + last)


@dataclass(frozen=True)
class PlanAddressModel:
    """The plan's operands laid out in one simulated address space."""

    space: AddressSpace
    operands: Dict[str, OperandModel]
    itemsize: int

    def describe(self, access: Access) -> str:
        """Region plus byte addresses, for V401 diagnostics."""
        operand = self.operands.get(access.buffer)
        if operand is None:
            return access.region()
        span = operand.byte_span(
            access.rows.intersect(Interval(0, max(access.rows.hi, 0))),
            access.cols.intersect(Interval(0, max(access.cols.hi, 0))),
        )
        return (f"{access.region()} (bytes [{span.lo:#x}, {span.hi:#x}) of "
                f"the {operand.allocation.nbytes}-byte {operand.name} "
                "allocation)")


def _first_itemsize(plan: ExecutionPlan) -> int:
    for _, node in plan.walk():
        size = getattr(node, "itemsize", None)
        if isinstance(size, int) and size > 0:
            return size
    return 4


def build_address_model(
    plan: ExecutionPlan, mnk: Tuple[int, int, int]
) -> PlanAddressModel:
    """Allocate the plan's A/B/C operands in a fresh address space.

    Column-major extents; when the plan's metadata carries a panel
    height ``ps`` (the BLASFEO lowering), A is padded to whole panels
    the way the panel-major conversion allocates it.
    """
    m, n, k = mnk
    itemsize = _first_itemsize(plan)
    meta = plan.meta if isinstance(plan.meta, dict) else {}
    ps = meta.get("ps")
    a_rows = (ceil_div(m, ps) * ps
              if isinstance(ps, int) and ps > 0 else m)
    space = AddressSpace()
    operands = {}
    for name, rows, padded, cols in (
        ("A", m, a_rows, k), ("B", k, k, n), ("C", m, m, n),
    ):
        alloc = space.alloc(name, padded * cols * itemsize, panel=0)
        operands[name] = OperandModel(
            name=name, rows=rows, cols=cols, padded_rows=padded,
            itemsize=itemsize, allocation=alloc,
        )
    return PlanAddressModel(space=space, operands=operands,
                            itemsize=itemsize)


# ---------------------------------------------------------------------------
# per-node symbolic access sets
# ---------------------------------------------------------------------------


def node_accesses(node: Any, mnk: Tuple[int, int, int],
                  path: str, nominal=None) -> List[Access]:
    """The matrix regions one plan node touches, as placed intervals.

    Tiles without explicit offsets are placed at the origin (the
    in-bounds proof only needs *some* legal placement to exist, i.e.
    extent-fits-extent); thread strips carry their canonical offsets —
    balanced by default, or the ``nominal`` weighted partition a
    heterogeneous lowering declared.
    """
    m, n, k = mnk
    out: List[Access] = []

    def touch(buffer: str, mode: str, rows: Interval,
              cols: Interval) -> None:
        out.append(Access(buffer=buffer, mode=mode, rows=rows,
                          cols=cols, path=path))

    if isinstance(node, PackOp):
        source = "B" if node.bucket == "pack_b" else "A"
        touch(source, "read", Interval.sized(0, node.rows),
              Interval.sized(0, node.cols))
    elif isinstance(node, FusedPackOp):
        touch("B", "read", Interval.sized(0, node.k),
              Interval.sized(0, node.n))
    elif isinstance(node, GebpOp):
        touch("A", "read", Interval.sized(0, node.mc),
              Interval.sized(0, node.kc))
        touch("B", "read", Interval.sized(0, node.kc),
              Interval.sized(0, node.nc))
        touch("C", "write", Interval.sized(0, node.mc),
              Interval.sized(0, node.nc))
    elif isinstance(node, JitSweepOp):
        touch("A", "read", Interval.sized(0, node.m),
              Interval.sized(0, node.k))
        touch("B", "read", Interval.sized(0, node.k),
              Interval.sized(0, node.n))
        touch("C", "write", Interval.sized(0, node.m),
              Interval.sized(0, node.n))
    elif isinstance(node, ThreadStripsOp):
        for rows in strip_row_intervals(m, node.chunks, nominal=nominal):
            if rows.empty:
                continue
            touch("A", "read", rows, Interval.sized(0, node.kcb))
            touch("C", "write", rows, Interval.sized(0, node.ncb))
    return out


# ---------------------------------------------------------------------------
# the analyzer
# ---------------------------------------------------------------------------


class DataflowAnalyzer:
    """Interval in-bounds proofs for every matrix and packed-panel touch."""

    def analyze(self, plan: ExecutionPlan, driver: str,
                mnk: Optional[Tuple[int, int, int]]
                ) -> List[PlanDiagnostic]:
        """V401/V402 findings for one plan (sub-plans excluded: the
        verifier recurses into critical-path/merge sub-plans itself)."""
        if mnk is None or isinstance(plan.root, MergeOp):
            return []
        model = build_address_model(plan, mnk)
        machine = getattr(plan.context, "machine", None)
        mode = plan_partition_mode(plan)
        granule = plan_kernel_granule(plan)
        diags: List[PlanDiagnostic] = []
        self._walk(plan.root, "", driver, mnk, model, machine, mode,
                   granule, diags)
        return diags

    def _walk(self, node: Any, parent: str, driver: str, mnk,
              model: PlanAddressModel, machine, mode: str, granule: int,
              diags: List[PlanDiagnostic]) -> None:
        path = _segment(parent, node)
        if isinstance(node, PackOp):
            self._check_pack_capacity(node, path, driver, model, diags)
        nominal = None
        if isinstance(node, ThreadStripsOp):
            nominal = strip_nominal_chunks(mnk[0], node, machine, mode,
                                           granule=granule)
        for access in node_accesses(node, mnk, path, nominal=nominal):
            self._check_bounds(access, driver, model, diags)
        for child in getattr(node, "children", ()):
            self._walk(child, path, driver, mnk, model, machine, mode,
                       granule, diags)
        # critical-path/merge sub-plans are full plans with their own
        # shapes; PlanVerifier re-enters the analysis per sub-plan

    def _check_bounds(self, access: Access, driver: str,
                      model: PlanAddressModel,
                      diags: List[PlanDiagnostic]) -> None:
        operand = model.operands.get(access.buffer)
        if operand is None:
            return
        row_extent, col_extent = operand.extent
        if (access.rows.within(row_extent)
                and access.cols.within(col_extent)):
            return
        diags.append(make_plan_diagnostic(
            "V401-oob-access",
            f"{access.mode}s {model.describe(access)} outside the "
            f"{operand.rows}x{operand.cols} operand extent — no legal "
            "placement keeps the touch in bounds",
            driver, access.path,
        ))

    def _check_pack_capacity(self, node: PackOp, path: str, driver: str,
                             model: PlanAddressModel,
                             diags: List[PlanDiagnostic]) -> None:
        if node.padded_elements <= 0:
            return  # capacity not declared: nothing to prove against
        logical = node.rows * node.cols
        if logical <= node.padded_elements:
            return
        diags.append(make_plan_diagnostic(
            "V402-pack-overrun",
            f"packs {node.rows}x{node.cols} = {logical} logical "
            f"element(s) into a buffer of {node.padded_elements} "
            f"element(s) ({node.padded_elements * node.itemsize} B) — "
            f"the pack overruns its allocation by "
            f"{(logical - node.padded_elements) * node.itemsize} B",
            driver, path,
        ))


def _segment(parent: str, node: Any) -> str:
    kind = getattr(node, "kind", node.__class__.__name__)
    label = getattr(node, "label", "")
    seg = f"{kind}[{label}]" if label else str(kind)
    return f"{parent}/{seg}" if parent else seg


#: the process-wide default dataflow analyzer (stateless)
DATAFLOW_ANALYZER = DataflowAnalyzer()


def analyze_dataflow(plan: ExecutionPlan, driver: str,
                     mnk: Optional[Tuple[int, int, int]]
                     ) -> List[PlanDiagnostic]:
    """V401/V402 findings for one plan with the default analyzer."""
    return DATAFLOW_ANALYZER.analyze(plan, driver, mnk)


__all__ = [
    "Interval",
    "Access",
    "OperandModel",
    "PlanAddressModel",
    "build_address_model",
    "node_accesses",
    "strip_row_intervals",
    "plan_partition_mode",
    "plan_kernel_granule",
    "strip_nominal_chunks",
    "DataflowAnalyzer",
    "analyze_dataflow",
]
