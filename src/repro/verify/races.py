"""Happens-before race analysis over ExecutionPlan trees (V411-V421).

The paper's multithreaded findings (Fig. 10, Table II) hinge on which
loop each library parallelizes and where packed panels live.  The plan
IR encodes exactly that — :class:`~repro.plan.ir.ThreadStripsOp` fans
one kc-step out across threads, :class:`~repro.plan.ir.PackOp` records
cooperative packing groups, :class:`~repro.plan.ir.BarrierOp` the
synchronization points — so races are statically decidable:

* **V411** — two thread strips' C row intervals overlap.  Strips of one
  fan-out are concurrent by construction (no barrier can separate
  them), so interval overlap *is* a write-write race.
* **V412** — a cooperatively packed panel is read with no
  happens-before edge from the pack: the program order covers only the
  reader's own packing slice, the other packers' slices need a barrier
  over the whole group.
* **V413** — the 2-D grid of a :class:`~repro.plan.ir.CriticalPathOp`
  admits no disjoint row x column decomposition within the C extent —
  some pair of concurrent sub-GEMMs writes the same C tile.
* **V421** — a sharing-group claim is inconsistent with the machine's
  panel topology: more packers than plan threads, more threads than
  cores, or a ``b_shared_by`` wider than one shared-L2 cluster.

The happens-before model is deliberately small.  Within one section
scope, events execute in program order *per thread*; an event by a
cooperating group of ``g`` threads is ordered before a later event iff
a barrier over at least ``g`` threads sits between them
(:meth:`HappensBefore.ordered`).  That mirrors the synchronization
semantics the sync cost model prices (tree barriers over the packing
group) and the ``_barrier`` logic of the V3xx scope walk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..plan.ir import (
    BarrierOp,
    CriticalPathOp,
    ExecutionPlan,
    FusedPackOp,
    GebpOp,
    JitSweepOp,
    MergeOp,
    PackOp,
    Section,
    ThreadStripsOp,
)
from ..parallel.partition import split_even
from .dataflow import (
    Interval,
    plan_kernel_granule,
    plan_partition_mode,
    strip_nominal_chunks,
    strip_row_intervals,
)
from .planrules import PlanDiagnostic, make_plan_diagnostic


@dataclass(frozen=True)
class HbEvent:
    """One node of the happens-before graph (program-order position).

    ``kind`` is ``'write'`` / ``'read'`` / ``'barrier'``; ``group`` is
    the number of threads executing the event (1 = private, the plan's
    packing group for cooperative packs, the barrier group for
    barriers); ``buffer`` names the packed panel a write/read touches.
    """

    seq: int
    kind: str
    group: int
    path: str
    buffer: str = ""


@dataclass
class HappensBefore:
    """Happens-before over one section scope's event sequence.

    Edges: program order within a thread, plus barrier edges — a
    barrier over ``g`` threads orders everything the ``g`` cooperating
    threads did before it against everything they do after.
    """

    events: List[HbEvent] = field(default_factory=list)

    def add(self, kind: str, group: int, path: str,
            buffer: str = "") -> HbEvent:
        """Append one event in program order."""
        event = HbEvent(seq=len(self.events), kind=kind,
                        group=max(group, 1), path=path, buffer=buffer)
        self.events.append(event)
        return event

    def ordered(self, before: HbEvent, after: HbEvent) -> bool:
        """True when ``before`` happens-before ``after`` for *all*
        threads involved.

        A private event (group 1) is ordered by program order alone; a
        cooperative event needs an intervening barrier covering its
        whole group — program order only covers the consuming thread's
        own slice of the cooperation.
        """
        if before.seq >= after.seq:
            return False
        if before.group <= 1:
            return True
        return any(
            e.kind == "barrier"
            and before.seq < e.seq < after.seq
            and e.group >= before.group
            for e in self.events
        )

    def edges(self) -> List[Tuple[int, int]]:
        """Materialized (before_seq, after_seq) pairs (docs/tests)."""
        out = []
        for a in self.events:
            for b in self.events:
                if (a.kind != "barrier" and b.kind != "barrier"
                        and self.ordered(a, b)):
                    out.append((a.seq, b.seq))
        return out


def grid_tiling(
    chunks: Tuple[Tuple[int, int], ...], m: int, n: int
) -> Optional[Tuple[List[int], List[int]]]:
    """Recover a disjoint (m_chunks, n_chunks) cross-product, if any.

    A 2-D grid lowering emits ``[(mi, nj) for mi in m_chunks for nj in
    n_chunks]``; any decomposition whose row sums fit M and column sums
    fit N is a witness that the sub-GEMMs' C tiles can be placed
    disjointly.  Returns ``None`` when no period of the chunk list
    yields such a witness — the V413 signal.
    """
    count = len(chunks)
    if count == 0:
        return [], []
    njs = [c[1] for c in chunks]
    for period in range(1, count + 1):
        if count % period != 0:
            continue
        if any(njs[i] != njs[i % period] for i in range(count)):
            continue
        mis = []
        consistent = True
        for block in range(count // period):
            rows = {c[0] for c in chunks[block * period:
                                         (block + 1) * period]}
            if len(rows) != 1:
                consistent = False
                break
            mis.append(rows.pop())
        if not consistent:
            continue
        if (sum(max(mi, 0) for mi in mis) <= m
                and sum(max(nj, 0) for nj in njs[:period]) <= n):
            return mis, njs[:period]
    return None


@dataclass
class _RaceState:
    """Per-plan race-analysis context."""

    driver: str
    threads: int
    mnk: Optional[Tuple[int, int, int]]
    diags: List[PlanDiagnostic]
    machine: Any = None
    partition: str = "even"
    granule: int = 1

    def diag(self, rule_id: str, message: str, path: str) -> None:
        self.diags.append(
            make_plan_diagnostic(rule_id, message, self.driver, path)
        )


class RaceAnalyzer:
    """Static data-race and topology-consistency checks (V411-V421)."""

    def analyze(self, plan: ExecutionPlan, driver: str, threads: int,
                mnk: Optional[Tuple[int, int, int]]
                ) -> List[PlanDiagnostic]:
        """V411-V413 plus V421 findings for one plan (sub-plans
        excluded: the verifier recurses into them itself)."""
        if isinstance(plan.root, MergeOp):
            return []
        machine = getattr(plan.context, "machine", None)
        st = _RaceState(driver=driver, threads=threads, mnk=mnk,
                        diags=[], machine=machine,
                        partition=plan_partition_mode(plan),
                        granule=plan_kernel_granule(plan))
        self._scope((plan.root,), "", st)
        if machine is not None:
            self._topology(plan.root, "", machine, st)
        return st.diags

    # -- happens-before construction per section scope -------------------

    def _scope(self, children, parent: str, st: _RaceState) -> None:
        """Build one scope's happens-before graph and check races.

        Packed panels live per section scope (the kc-step structure all
        lowerings share), so conflicting accesses are scoped the same
        way the V3xx dataflow state machine scopes panel lifetimes.
        """
        hb = HappensBefore()
        writes: Dict[str, HbEvent] = {}
        for child in children:
            path = _segment(parent, child)
            if isinstance(child, Section):
                self._scope(getattr(child, "children", ()), path, st)
            elif isinstance(child, PackOp):
                if child.bucket in ("pack_a", "pack_b"):
                    share = child.share if child.share else 1
                    writes[child.bucket] = hb.add(
                        "write", share, path, buffer=child.bucket)
            elif isinstance(child, FusedPackOp):
                writes["pack_b"] = hb.add(
                    "write", 1, path, buffer="pack_b")
            elif isinstance(child, BarrierOp):
                hb.add("barrier", child.group, path)
            elif isinstance(child, GebpOp):
                if not child.packing_free:
                    self._read(hb, writes, "pack_a", 1, path, st)
                    self._read(hb, writes, "pack_b", 1, path, st)
            elif isinstance(child, JitSweepOp):
                if child.packed_b:
                    group = st.threads if child.executed_factors else 1
                    self._read(hb, writes, "pack_b", group, path, st)
            elif isinstance(child, ThreadStripsOp):
                self._read(hb, writes, "pack_b", len(child.chunks),
                           path, st)
                self._strip_overlap(child, path, st)
            elif isinstance(child, CriticalPathOp):
                self._grid_overlap(child, path, st)

    def _read(self, hb: HappensBefore, writes: Dict[str, HbEvent],
              buffer: str, group: int, path: str,
              st: _RaceState) -> None:
        """One consumer read: needs a happens-before edge from the
        buffer's cooperative write (V412)."""
        read = hb.add("read", group, path, buffer=buffer)
        write = writes.get(buffer)
        if write is None or hb.ordered(write, read):
            return
        st.diag(
            "V412-unordered-read",
            f"reads the {buffer} panel packed cooperatively by "
            f"{write.group} thread(s) with no happens-before edge from "
            "the pack (program order covers only the reader's own "
            f"slice; no intervening barrier spans the group of "
            f"{write.group})",
            path,
        )
        # one finding per missing edge: treat as ordered afterwards
        writes.pop(buffer, None)

    # -- strip / grid write-write overlap (V411 / V413) -------------------

    def _strip_overlap(self, node: ThreadStripsOp, path: str,
                       st: _RaceState) -> None:
        if st.mnk is None:
            return
        m = st.mnk[0]
        nominal = strip_nominal_chunks(m, node, st.machine, st.partition,
                                       granule=st.granule)
        intervals = strip_row_intervals(m, node.chunks, nominal=nominal)
        for t in range(len(intervals) - 1):
            mine, rest = intervals[t], intervals[t + 1]
            if not mine.overlaps(rest):
                continue
            shared = mine.intersect(rest)
            st.diag(
                "V411-strip-race",
                f"thread {t}'s C rows {mine} overlap thread {t + 1}'s "
                f"{rest} (both write rows {shared} of C; strips of one "
                "fan-out are concurrent, so this is a write-write "
                "race)",
                path,
            )
            return  # one finding per fan-out

    def _grid_overlap(self, node: CriticalPathOp, path: str,
                      st: _RaceState) -> None:
        if st.mnk is None:
            return
        m, n, _ = st.mnk
        if grid_tiling(node.chunks, m, n) is None:
            st.diag(
                "V413-grid-race",
                f"the {len(node.chunks)}-chunk grid admits no disjoint "
                f"row x column decomposition within the {m}x{n} C "
                "extent — concurrent sub-GEMMs write overlapping C "
                "tiles",
                path,
            )

    # -- NUMA / shared-L2 topology consistency (V421) ----------------------

    def _topology(self, node: Any, parent: str, machine,
                  st: _RaceState) -> None:
        path = _segment(parent, node)
        cluster = machine.l2.shared_by
        cores = machine.n_cores
        if parent == "" and st.threads > cores:
            st.diag(
                "V421-topology-mismatch",
                f"plan runs {st.threads} thread(s) on a machine with "
                f"{cores} core(s) ({machine.numa.panels} panel(s) x "
                f"{machine.numa.cores_per_panel})",
                path,
            )
        if isinstance(node, PackOp):
            share = node.share or 1
            if share > st.threads or share > cores:
                st.diag(
                    "V421-topology-mismatch",
                    f"cooperative pack group of {share} exceeds the "
                    f"plan's {st.threads} thread(s) on {cores} core(s)",
                    path,
                )
        shared_claim = getattr(node, "b_shared_by", 1)
        if isinstance(node, (GebpOp, ThreadStripsOp)) \
                and shared_claim > cluster:
            st.diag(
                "V421-topology-mismatch",
                f"claims one packed-B copy shared by {shared_claim} "
                f"core(s), but an L2 cluster spans only {cluster} "
                "core(s) — the panel cannot be placed in one shared "
                "L2",
                path,
            )
        if isinstance(node, ThreadStripsOp) \
                and node.pack_a_share > st.threads:
            st.diag(
                "V421-topology-mismatch",
                f"pack-A group of {node.pack_a_share} exceeds the "
                f"plan's {st.threads} thread(s)",
                path,
            )
        if isinstance(node, ThreadStripsOp):
            self._strip_classes(node, path, machine, st)
        for child in getattr(node, "children", ()):
            self._topology(child, path, machine, st)

    # -- core-class consistency of tagged strips (V422 / V423) -------------

    def _strip_classes(self, node: ThreadStripsOp, path: str, machine,
                       st: _RaceState) -> None:
        """Class-tag consistency (V422) and partition sanity (V423).

        Untagged strips are the homogeneous legacy form and are always
        consistent; a tagged fan-out must carry one valid tag per chunk
        agreeing with compact thread placement, and its declared chunks
        must realize a recognized partition — balanced or
        throughput-weighted — of the M extent.
        """
        tags = getattr(node, "core_classes", ())
        if not tags:
            return
        classes = getattr(machine, "classes", None)
        if classes is None:
            return
        if len(tags) != len(node.chunks):
            st.diag(
                "V422-class-mismatch",
                f"{len(tags)} core-class tag(s) for {len(node.chunks)} "
                "strip chunk(s) — every strip needs exactly one tag",
                path,
            )
            return
        for t, tag in enumerate(tags):
            if not isinstance(tag, int) or not 0 <= tag < len(classes):
                st.diag(
                    "V422-class-mismatch",
                    f"strip {t} tagged with unknown core-class index "
                    f"{tag!r} (machine has {len(classes)} class(es))",
                    path,
                )
                return
        core_class_of = getattr(machine, "core_class_of", None)
        if core_class_of is not None:
            cores = machine.n_cores
            for t, tag in enumerate(tags):
                expected = core_class_of(t % cores)
                if tag != expected:
                    st.diag(
                        "V422-class-mismatch",
                        f"strip {t} tagged class {tag} "
                        f"({classes[tag].name!r}) but compact placement "
                        f"puts thread {t} on a class-{expected} core "
                        f"({classes[expected].name!r})",
                        path,
                    )
                    return
        if st.mnk is None or not getattr(machine, "is_heterogeneous",
                                         False):
            return
        m = st.mnk[0]
        declared = list(node.chunks)
        even = split_even(m, len(declared))
        weighted = strip_nominal_chunks(m, node, machine, "weighted",
                                        granule=st.granule)
        if declared != even and (weighted is None
                                 or declared != weighted):
            st.diag(
                "V423-unbalanced-strips",
                f"strip chunks {declared} match neither the balanced "
                f"partition {even} nor the throughput-weighted "
                f"partition {weighted} of {m} rows over the tagged "
                "core classes",
                path,
            )


def _segment(parent: str, node: Any) -> str:
    kind = getattr(node, "kind", node.__class__.__name__)
    label = getattr(node, "label", "")
    seg = f"{kind}[{label}]" if label else str(kind)
    return f"{parent}/{seg}" if parent else seg


#: the process-wide default race analyzer (stateless)
RACE_ANALYZER = RaceAnalyzer()


def analyze_races(plan: ExecutionPlan, driver: str, threads: int,
                  mnk: Optional[Tuple[int, int, int]]
                  ) -> List[PlanDiagnostic]:
    """V411-V421 findings for one plan with the default analyzer."""
    return RACE_ANALYZER.analyze(plan, driver, threads, mnk)


__all__ = [
    "HbEvent",
    "HappensBefore",
    "grid_tiling",
    "RaceAnalyzer",
    "analyze_races",
    "Interval",
]
