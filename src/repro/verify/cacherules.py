"""Cache & wire integrity verification (V5xx): prove the cache.

The tuning cache is the one plan-carrying surface the V0xx-V4xx
verifier family never inspects — a corrupted, stale or foreign entry is
served bit-for-bit to every client of ``repro serve``.  This module
closes that gap for ``repro audit [--cache PATH]``:

* **V501** — every cached plan is *re-lowered* through the reference
  driver (same tile, packing and factorization) and run through the
  full plan verifier (:func:`repro.verify.planlint.verify_plan`); an
  entry that no longer lowers cleanly on this machine/code version is
  flagged rather than served.
* **V502** — schema version, machine fingerprint, entry-token/key
  consistency, bucket-lattice membership, dtype and thread counts are
  checked against the current catalogs.
* **V503** — modeled-cost monotonicity: no entry may be worse than its
  own heuristic baseline, and (via :meth:`CacheAuditor.audit_merge`) a
  ``tune merge`` output is never worse than either input for a key.
* **V504** — :class:`~repro.serving.schema.PlanResponse` wire dicts are
  validated: known provenance, a plan present exactly when the response
  is not an error, and the plan keyed to the request's token.
* **V505** — a *live* cache whose total residency exceeds its
  configured global capacity (the pre-1.7 per-shard LRU overshoot,
  fixed in :class:`~repro.tuning.cache.ShardedTuningCache`).

Every rule has a mutation negative control (:func:`cache_self_check`),
mirroring the kernel/plan verifier ``--self-check`` contract.

Imports of :mod:`repro.tuning` and :mod:`repro.serving` are deliberately
lazy — both packages import :mod:`repro.verify` at module scope.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..util.errors import ConfigError, ReproError
from .diagnostics import SEVERITIES
from .planrules import CACHE_RULES


@dataclass(frozen=True)
class CacheDiagnostic:
    """One cache/wire-audit finding, anchored to a payload entry."""

    rule: str
    severity: str
    message: str
    #: which payload/file/cache the finding came from
    source: str
    #: the cache token or response index the finding anchors to ("" for
    #: payload-wide findings such as a fingerprint mismatch)
    token: str = ""

    @property
    def where(self) -> str:
        """``source[token]`` anchor for tables and logs."""
        return f"{self.source}[{self.token}]" if self.token else self.source

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict rendering for machine consumption (JSON-friendly)."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "source": self.source,
            "token": self.token,
        }

    def sort_key(self) -> Tuple:
        """Stable ordering: severity, rule, source, token."""
        sev = (SEVERITIES.index(self.severity)
               if self.severity in SEVERITIES else 99)
        return (sev, self.rule, self.source, self.token)


def make_cache_diagnostic(
    rule_id: str, message: str, source: str, token: str = ""
) -> CacheDiagnostic:
    """Build a :class:`CacheDiagnostic`; severity comes from the registry."""
    rule = CACHE_RULES[rule_id]
    return CacheDiagnostic(
        rule=rule.rule_id, severity=rule.severity, message=message,
        source=source, token=token,
    )


#: relative tolerance for modeled-cost comparisons: entries are exact
#: floats from the same pricing engine, so only genuine regressions
#: exceed it
_COST_RTOL = 1e-9


class CacheAuditor:
    """Offline verifier of tuning-cache payloads and serving responses.

    One auditor is bound to (machine, dtype) — the identity a cache file
    is fingerprinted against.  ``replay=False`` skips the V501
    re-lowering pass (structural checks only), for callers that need a
    fast schema sweep.
    """

    def __init__(self, machine, dtype=np.float32, replay: bool = True) -> None:
        self.machine = machine
        self.dtype = np.dtype(dtype)
        self.replay = replay
        self._tuner = None

    def tuner(self):
        """The (lazily built) tuner whose drivers re-lower entries."""
        if self._tuner is None:
            from ..tuning.cache import TuningCache
            from ..tuning.tuner import AdaptiveTuner

            scratch = TuningCache(self.machine, self.dtype, path="")
            self._tuner = AdaptiveTuner(self.machine, self.dtype,
                                        cache=scratch)
        return self._tuner

    # -- payload audit (V501-V503) -------------------------------------

    def audit_payload(self, payload: Dict, source: str = "payload",
                      replay: Optional[bool] = None) -> List[CacheDiagnostic]:
        """Audit one exported/on-disk cache payload; sorted findings."""
        from ..tuning.cache import (
            TUNING_SCHEMA_VERSION,
            bucket_shape,
            machine_fingerprint,
        )
        from ..tuning.plan import TunedPlan

        replay = self.replay if replay is None else replay
        diags: List[CacheDiagnostic] = []
        schema = payload.get("schema")
        if schema != TUNING_SCHEMA_VERSION:
            diags.append(make_cache_diagnostic(
                "V502-fingerprint-consistency",
                f"schema {schema!r} != current {TUNING_SCHEMA_VERSION}",
                source,
            ))
        expected = machine_fingerprint(self.machine, self.dtype)
        fingerprint = payload.get("fingerprint")
        if fingerprint != expected:
            diags.append(make_cache_diagnostic(
                "V502-fingerprint-consistency",
                f"machine fingerprint {fingerprint!r} != {expected} "
                f"(machine {self.machine.name!r}, dtype {self.dtype}, "
                f"current code version)",
                source,
            ))
        entries = payload.get("entries", {}) or {}
        for token in sorted(entries):
            try:
                plan = TunedPlan.from_dict(entries[token], source="cache")
            except ReproError as exc:
                # ConfigError for structural damage, KernelDesignError &
                # friends for specs that fail their own invariants
                diags.append(make_cache_diagnostic(
                    "V502-fingerprint-consistency",
                    f"malformed entry: {exc}", source, token,
                ))
                continue
            diags.extend(self._audit_entry(token, plan, bucket_shape,
                                           source))
            if replay:
                diags.extend(self._replay_entry(token, plan, source))
        return sorted(diags, key=lambda d: d.sort_key())

    def _audit_entry(self, token, plan, bucket_shape,
                     source) -> List[CacheDiagnostic]:
        diags: List[CacheDiagnostic] = []
        key = plan.key
        if key.token != token:
            diags.append(make_cache_diagnostic(
                "V502-fingerprint-consistency",
                f"entry keyed {token!r} carries plan key {key.token!r}",
                source, token,
            ))
        shape = (key.m, key.n, key.k)
        if bucket_shape(*shape) != shape:
            diags.append(make_cache_diagnostic(
                "V502-fingerprint-consistency",
                f"key shape {shape} is not on the bucket lattice "
                f"(bucket is {bucket_shape(*shape)})",
                source, token,
            ))
        if key.dtype != str(self.dtype):
            diags.append(make_cache_diagnostic(
                "V502-fingerprint-consistency",
                f"entry dtype {key.dtype!r} != cache dtype {self.dtype}",
                source, token,
            ))
        if key.threads > self.machine.n_cores:
            diags.append(make_cache_diagnostic(
                "V502-fingerprint-consistency",
                f"entry threads {key.threads} exceeds the machine's "
                f"{self.machine.n_cores} cores",
                source, token,
            ))
        if (plan.heuristic_cycles > 0
                and plan.total_cycles
                > plan.heuristic_cycles * (1.0 + _COST_RTOL)):
            diags.append(make_cache_diagnostic(
                "V503-merge-monotonicity",
                f"entry models {plan.total_cycles:,.0f} cycles, worse "
                f"than its own heuristic baseline "
                f"{plan.heuristic_cycles:,.0f} (the never-slower "
                f"guarantee is broken)",
                source, token,
            ))
        return diags

    def _replay_entry(self, token, plan, source) -> List[CacheDiagnostic]:
        """V501: re-lower the entry and run the full plan verifier."""
        from .planlint import verify_plan

        key = plan.key
        try:
            driver = self.tuner().driver(key.threads)
            lowered = driver.plan_with(
                key.m, key.n, key.k, main=plan.spec,
                packed_b=plan.packed_b,
                factorization=plan.blis_factorization(),
            )
        except ReproError as exc:
            return [make_cache_diagnostic(
                "V501-replay-verification",
                f"entry cannot be re-lowered: {exc}", source, token,
            )]
        report = verify_plan(lowered, label=f"cache:{token}")
        if report.ok:
            return []
        rules = ", ".join(sorted({d.rule for d in report.errors}))
        return [make_cache_diagnostic(
            "V501-replay-verification",
            f"re-lowered plan fails the plan verifier: {rules}",
            source, token,
        )]

    # -- live-cache audit (adds V505) ----------------------------------

    def audit_cache(self, cache, source: str = "",
                    replay: Optional[bool] = None) -> List[CacheDiagnostic]:
        """Audit a live cache object: payload rules plus V505.

        Works on both :class:`~repro.tuning.cache.TuningCache` and
        :class:`~repro.tuning.cache.ShardedTuningCache` (anything with
        ``export_json``/``capacity``/``__len__``).
        """
        source = source or (cache.path or "<memory>")
        payload = json.loads(cache.export_json())
        diags = self.audit_payload(payload, source=source, replay=replay)
        total = len(cache)
        if total > cache.capacity:
            diags.append(make_cache_diagnostic(
                "V505-capacity-overshoot",
                f"{total} resident entries exceed the configured "
                f"global capacity {cache.capacity}",
                source,
            ))
        return sorted(diags, key=lambda d: d.sort_key())

    # -- wire audit (V504) ---------------------------------------------

    def audit_responses(self, responses: Sequence[Dict],
                        source: str = "wire") -> List[CacheDiagnostic]:
        """Validate serving-response wire dicts against the schema."""
        from ..serving.schema import PlanResponse

        diags: List[CacheDiagnostic] = []
        for idx, data in enumerate(responses):
            anchor = f"response {idx}"
            try:
                response = PlanResponse.from_dict(data)
            except ConfigError as exc:
                diags.append(make_cache_diagnostic(
                    "V504-response-provenance", str(exc), source, anchor,
                ))
                continue
            if response.provenance == "error":
                if response.plan is not None:
                    diags.append(make_cache_diagnostic(
                        "V504-response-provenance",
                        "error response carries a plan", source, anchor,
                    ))
                continue
            if response.plan is None:
                diags.append(make_cache_diagnostic(
                    "V504-response-provenance",
                    f"{response.provenance!r} response carries no plan",
                    source, anchor,
                ))
                continue
            expected = response.request.token
            got = response.plan.key.token
            if got != expected:
                diags.append(make_cache_diagnostic(
                    "V504-response-provenance",
                    f"served plan is keyed {got!r} but the request "
                    f"buckets to {expected!r}",
                    source, anchor,
                ))
        return sorted(diags, key=lambda d: d.sort_key())

    # -- merge audit (V503) --------------------------------------------

    def audit_merge(self, merged: Dict,
                    inputs: Sequence[Dict]) -> List[CacheDiagnostic]:
        """V503 over a federation: the merged payload must hold every
        input token at a modeled cost no worse than that input's."""
        merged_plans = _parse_entries(merged)
        diags: List[CacheDiagnostic] = []
        for idx, payload in enumerate(inputs):
            source = f"merge input {idx}"
            for token, plan in _parse_entries(payload).items():
                held = merged_plans.get(token)
                if held is None:
                    diags.append(make_cache_diagnostic(
                        "V503-merge-monotonicity",
                        "merge dropped the entry instead of keeping "
                        "the better plan",
                        source, token,
                    ))
                elif (held.total_cycles
                      > plan.total_cycles * (1.0 + _COST_RTOL)):
                    diags.append(make_cache_diagnostic(
                        "V503-merge-monotonicity",
                        f"merged entry models {held.total_cycles:,.0f} "
                        f"cycles, worse than the input's "
                        f"{plan.total_cycles:,.0f}",
                        source, token,
                    ))
        return sorted(diags, key=lambda d: d.sort_key())


def _parse_entries(payload: Dict) -> Dict[str, object]:
    """(token -> TunedPlan) for every well-formed entry of a payload."""
    from ..tuning.plan import TunedPlan

    out = {}
    for token, entry in (payload.get("entries", {}) or {}).items():
        try:
            out[token] = TunedPlan.from_dict(entry, source="cache")
        except ConfigError:
            continue
    return out


def wire_responses(payload: Dict) -> List[Dict]:
    """Synthesize cache-provenance wire responses from a payload.

    One response per well-formed entry, exactly what the serving layer
    would emit on a hot hit — the round-trip ``repro audit --cache``
    feeds through :meth:`CacheAuditor.audit_responses`.
    """
    from ..serving.schema import PlanRequest, PlanResponse

    out = []
    for token, plan in sorted(_parse_entries(payload).items()):
        key = plan.key
        request = PlanRequest(m=key.m, n=key.n, k=key.k,
                              dtype=key.dtype, threads=key.threads)
        out.append(PlanResponse(request=request, provenance="cache",
                                plan=plan).to_dict())
    return out


def audit_cache_file(machine, path: str, dtype=np.float32,
                     replay: bool = True) -> Tuple[List[CacheDiagnostic], int]:
    """Audit one cache file end to end: payload rules + wire round-trip.

    Returns ``(findings, entry_count)``.  Raises
    :class:`~repro.util.errors.ConfigError` when the file is unreadable.
    """
    from ..tuning.cache import read_cache_payload

    payload = read_cache_payload(path)
    auditor = CacheAuditor(machine, dtype, replay=replay)
    findings = auditor.audit_payload(payload, source=path)
    findings += auditor.audit_responses(wire_responses(payload),
                                        source=path)
    entries = len(payload.get("entries", {}) or {})
    return sorted(findings, key=lambda d: d.sort_key()), entries


# ---------------------------------------------------------------------------
# negative controls
# ---------------------------------------------------------------------------


def _base_payload(machine, dtype=np.float32) -> Dict:
    """A small known-good payload: heuristic plans over three buckets."""
    from ..tuning.cache import TuningCache
    from ..tuning.tuner import AdaptiveTuner

    cache = TuningCache(machine, dtype, path="")
    tuner = AdaptiveTuner(machine, dtype, cache=cache)
    threads = 2 if machine.n_cores >= 2 else 1
    for shape, t in (((8, 8, 8), 1), ((16, 16, 16), 1),
                     ((24, 24, 24), threads)):
        cache.put(tuner.heuristic_plan(*shape, threads=t))
    return json.loads(cache.export_json())


def cache_self_check(machine, dtype=np.float32) -> List[Tuple[str, bool]]:
    """Mutation negative controls: every V5xx rule must fire on its
    seeded-bad payload/response/cache.  Returns ``(rule_id, fired)``
    pairs (the ``plan_self_check`` contract)."""
    from ..tuning.cache import ShardedTuningCache
    from ..tuning.plan import TunedPlan

    auditor = CacheAuditor(machine, dtype)
    base = _base_payload(machine, dtype)
    results: List[Tuple[str, bool]] = []

    def fired(rule_id, diags) -> bool:
        return any(d.rule == rule_id for d in diags)

    # V501: break the re-lowering — a main tile far outside the register
    # budget parses fine but has no feasible kernel plan
    bad = json.loads(json.dumps(base))
    token = next(iter(bad["entries"]))
    bad["entries"][token]["spec"]["mr"] = 64
    results.append((
        "V501-replay-verification",
        fired("V501-replay-verification",
              auditor.audit_payload(bad, source="self-check")),
    ))

    # V502: forge the machine fingerprint
    bad = json.loads(json.dumps(base))
    bad["fingerprint"] = "0" * 16
    results.append((
        "V502-fingerprint-consistency",
        fired("V502-fingerprint-consistency",
              auditor.audit_payload(bad, source="self-check",
                                    replay=False)),
    ))

    # V503: an entry worse than its own heuristic baseline
    bad = json.loads(json.dumps(base))
    token = next(iter(bad["entries"]))
    bad["entries"][token]["total_cycles"] *= 2.0
    results.append((
        "V503-merge-monotonicity",
        fired("V503-merge-monotonicity",
              auditor.audit_payload(bad, source="self-check",
                                    replay=False)),
    ))

    # V504: a cache-provenance response with its plan stripped
    responses = wire_responses(base)
    responses[0]["plan"] = None
    results.append((
        "V504-response-provenance",
        fired("V504-response-provenance",
              auditor.audit_responses(responses, source="self-check")),
    ))

    # V505: a live cache holding more than its global capacity (the
    # pre-1.7 per-shard overshoot, recreated by shrinking the bound
    # after the entries landed)
    live = ShardedTuningCache(machine, dtype, path="", capacity=8,
                              shards=2)
    for entry in base["entries"].values():
        live.put(TunedPlan.from_dict(entry, source="cache"))
    live.capacity = 1
    results.append((
        "V505-capacity-overshoot",
        fired("V505-capacity-overshoot",
              auditor.audit_cache(live, source="self-check",
                                  replay=False)),
    ))
    return results


def inject_bad_payload(machine, dtype=np.float32) -> Tuple[str, Dict]:
    """(rule_id, payload) of a known-bad cache payload for
    ``repro audit --inject-bad`` (forged machine fingerprint)."""
    payload = _base_payload(machine, dtype)
    payload["fingerprint"] = "0" * 16
    return "V502-fingerprint-consistency", payload


def cache_rules_table() -> str:
    """The V5xx rule inventory as a text table (docs and ``audit``)."""
    from ..util.tables import format_table

    rows = [[r.rule_id, r.severity, r.summary]
            for r in sorted(CACHE_RULES.values(), key=lambda r: r.rule_id)]
    return format_table(["rule", "severity", "summary"], rows,
                        title="cache & wire integrity rules")
