"""Tile planning for the reference SMM (exact JIT edge kernels).

Unlike the library catalogs (pow2 edge kernels / whole-tile padding /
scalar tails), the reference implementation asks the JIT factory for an
*exact-shape, properly scheduled* kernel per edge region — the paper's
Sec. III-B guidance ("use aligned vector loads/stores and FMA instructions",
"pack the small amount of edge data to better fit the SIMD unit") realized
as row-padded pipelined kernels.
"""

from __future__ import annotations

from typing import List

from ..kernels.catalog import TileInvocation
from ..kernels.jit import JitKernelFactory
from ..util.errors import KernelDesignError
from ..util.validation import ceil_div, check_positive_int


def jit_tile_plan(
    jit: JitKernelFactory,
    mc: int,
    nc: int,
    pack_edge_b: bool = True,
    main=None,
    strided: bool = False,
) -> List[TileInvocation]:
    """Micro-kernel invocations covering (mc x nc) with exact edge kernels.

    ``pack_edge_b=False`` models skipping the Fig. 8 edge packing: the edge
    kernels then read B with strided scalar loads (the ablation knob).
    ``main`` overrides the main tile; ``strided=True`` marks every kernel
    as reading unpacked B (the packing-optional "no pack" path).
    """
    from dataclasses import replace

    check_positive_int(mc, "mc", KernelDesignError)
    check_positive_int(nc, "nc", KernelDesignError)
    main = main if main is not None else (
        jit.strided_main_spec() if strided else jit.main_spec
    )
    full_m, rem_m = divmod(mc, main.mr)
    full_n, rem_n = divmod(nc, main.nr)
    lanes = jit.lanes
    plan: List[TileInvocation] = []

    def spec_for(mr: int, nr: int, is_n_edge: bool):
        spec = jit.spec_for(mr, nr)
        if strided or (is_n_edge and not pack_edge_b):
            # unpacked B: strided scalar loads (Fig. 8 "without")
            spec = replace(spec, b_layout="strided")
        return spec

    def padded_rows(mr: int) -> int:
        return ceil_div(mr, lanes) * lanes

    if full_m and full_n:
        plan.append(TileInvocation(
            spec=main, rows=main.mr, cols=main.nr,
            padded_rows=main.mr, padded_cols=main.nr,
            calls=full_m * full_n, edge=False,
        ))
    if rem_m and full_n:
        spec = spec_for(rem_m, main.nr, is_n_edge=False)
        plan.append(TileInvocation(
            spec=spec, rows=rem_m, cols=main.nr,
            padded_rows=padded_rows(rem_m), padded_cols=main.nr,
            calls=full_n, edge=True,
        ))
    if rem_n and full_m:
        spec = spec_for(main.mr, rem_n, is_n_edge=True)
        plan.append(TileInvocation(
            spec=spec, rows=main.mr, cols=rem_n,
            padded_rows=main.mr, padded_cols=rem_n,
            calls=full_m, edge=True,
        ))
    if rem_m and rem_n:
        spec = spec_for(rem_m, rem_n, is_n_edge=True)
        plan.append(TileInvocation(
            spec=spec, rows=rem_m, cols=rem_n,
            padded_rows=padded_rows(rem_m), padded_cols=rem_n,
            calls=1, edge=True,
        ))
    return plan


def warm_kernel_library(jit: JitKernelFactory, analyzer) -> int:
    """Pre-analyze every edge kernel the JIT tile plans can emit.

    The steady-state analysis of a micro-kernel body is the expensive
    first-touch cost on a plan query for a never-seen remainder pair
    (tens of ms per kernel).  The edge space is finite — per main tile,
    the M-edge, N-edge and corner kernels over remainders
    ``1..mr-1 x 1..nr-1`` — so a long-lived service analyzes it once up
    front and every later cold query pays pricing cost only.  Results
    land in ``analyzer``'s memo (and its attached persistent store, when
    one is installed), making the warm-up a one-time cost per machine
    model.  Returns the number of kernels analyzed; infeasible
    register-pressure corners are skipped.
    """
    analyzed = 0
    seen = set()
    for strided in (False, True):
        for main in jit.main_candidates(packed_b=not strided):
            for rem_m in range(main.mr):
                for rem_n in range(main.nr):
                    try:
                        plan = jit_tile_plan(
                            jit, main.mr + rem_m, main.nr + rem_n,
                            main=main, strided=strided,
                        )
                    except KernelDesignError:
                        continue
                    for inv in plan:
                        if inv.spec.name in seen:
                            continue
                        seen.add(inv.spec.name)
                        try:
                            analyzer.analyze(jit.generator.generate(inv.spec))
                        except KernelDesignError:
                            continue
                        analyzed += 1
    return analyzed
