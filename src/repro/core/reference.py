"""The paper's reference SMM implementation (Section IV).

The paper closes by sketching what a high-performance SMM library for
ARMv8 many-cores should look like; this driver implements all four planks:

1. **Packing-optional SMM** — the driver *prices* both strategies with the
   same cost models used everywhere else and picks per call: pack B into
   slivers (amortized when K-reuse is high), or run kernels straight off
   the column-major operands.  For tiny matrices packing never pays; the
   decision is printed in the result info for the ablation benchmark.
2. **A set of optimal micro-kernels** — exact-shape, register-constraint-
   checked, pipelined kernels from :class:`~repro.kernels.JitKernelFactory`
   instead of naive scalar edges or whole-tile padding.
3. **Adaptive code generation** — the JIT cache compiles one kernel per
   distinct tile shape and reuses it across calls (hit statistics exposed).
4. **Multi-dimensional parallelization** — thread counts factorized over
   the loop nest with the BLIS-style rule, refusing to fragment small
   dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..blas.base import (
    GemmResult,
    make_cache_model,
    shared_analyzer,
    validate_gemm_operands,
)
from ..kernels.jit import JitKernelFactory
from ..machine.config import MachineConfig
from ..packing.cost import PackingCostModel
from ..parallel.partition import blis_factorization
from ..parallel.sync import barrier_cycles
from ..timing.breakdown import GemmTiming
from ..timing.models import gemm_flops
from ..util.errors import DriverError
from ..util.validation import ceil_div
from .planner import jit_tile_plan


@dataclass(frozen=True)
class SmmDecision:
    """The adaptive choices one call made (exposed for the ablations)."""

    packed_b: bool
    pack_cycles_estimate: float
    nopack_penalty_estimate: float
    kernel_shape: str
    threads: int
    factorization: Optional[object] = None


class ReferenceSmmDriver:
    """Packing-optional, JIT-kerneled, multi-dimensionally parallel SMM."""

    def __init__(
        self,
        machine: MachineConfig,
        dtype=np.float32,
        threads: int = 1,
        force_packing: Optional[bool] = None,
        pack_edge_b: bool = True,
        warm: bool = True,
        fused_packing: bool = False,
    ) -> None:
        self.machine = machine
        self.dtype = np.dtype(dtype)
        if threads < 1 or threads > machine.n_cores:
            raise DriverError(
                f"threads must be in [1, {machine.n_cores}], got {threads}"
            )
        self.threads = threads
        self.force_packing = force_packing
        self.pack_edge_b = pack_edge_b
        self.warm = warm
        #: Fig. 11: integrate the B pack into kernel execution, hiding it
        #: in the kernel's spare load/store/dispatch slots
        self.fused_packing = fused_packing
        self.jit = JitKernelFactory(machine.core, dtype)
        self.analyzer = shared_analyzer(machine)
        self._topology_cache = None
        if threads > 1:
            from ..parallel.executor import ThreadTopology

            topo = ThreadTopology.for_machine(machine, threads)
            bandwidth_share = (
                topo.panels_used * machine.numa.dram_bytes_per_cycle / threads
            )
            self.cache_model = make_cache_model(
                machine,
                active_l2_sharers=topo.active_l2_sharers,
                numa_remote_fraction=topo.shared_remote_fraction,
                bandwidth_share=bandwidth_share,
            )
        else:
            self.cache_model = make_cache_model(machine)
        self.packing_cost = PackingCostModel(
            machine.core, self.cache_model, lanes=self.jit.lanes
        )

    @property
    def name(self) -> str:
        """Driver name."""
        return "reference-smm"

    # ------------------------------------------------------------------

    def gemm(
        self,
        a: np.ndarray,
        b: np.ndarray,
        c: Optional[np.ndarray] = None,
        alpha: float = 1.0,
        beta: float = 0.0,
    ) -> GemmResult:
        """C = alpha * A @ B + beta * C via the reference SMM strategy."""
        m, n, k = validate_gemm_operands(a, b, c)
        if a.dtype != self.dtype:
            raise DriverError(
                f"driver configured for {self.dtype}, operands are {a.dtype}"
            )
        out = np.asarray(alpha * (a @ b), order="F")
        if c is not None and beta != 0.0:
            out = out + beta * c
        timing, decision = self.cost_gemm(m, n, k)
        info: Dict[str, object] = {
            "library": self.name,
            "decision": decision,
            "jit_stats": self.jit.stats,
        }
        return GemmResult(c=np.asarray(out, order="F"), timing=timing, info=info)

    # ------------------------------------------------------------------

    def cost_gemm(self, m: int, n: int, k: int):
        """(GemmTiming, SmmDecision) for one call."""
        if self.threads == 1:
            return self._cost_single(m, n, k)
        return self._cost_parallel(m, n, k)

    def cost_with(self, m: int, n: int, k: int, main=None,
                  packed_b: Optional[bool] = None, factorization=None):
        """(GemmTiming, SmmDecision) under an explicit plan.

        The adaptive tuner's entry point: pins any of the driver's three
        free choices — the main-tile :class:`~repro.kernels.KernelSpec`
        (``main``), the packing decision (``packed_b``), and for
        multithreaded drivers the loop factorization — and prices the
        resulting plan with the same models :meth:`cost_gemm` uses.  Every
        pinned argument left ``None`` falls back to the driver's own
        adaptive choice, so ``cost_with()`` with no overrides is exactly
        the fixed-heuristic cost.
        """
        if self.threads == 1:
            return self._cost_single(m, n, k, main=main, packed_b=packed_b)
        return self._cost_parallel(
            m, n, k, main=main, packed_b=packed_b,
            factorization=factorization,
        )

    def _cost_single(self, m: int, n: int, k: int, main=None,
                     packed_b: Optional[bool] = None):
        itemsize = self.dtype.itemsize
        timing = GemmTiming(useful_flops=gemm_flops(m, n, k))

        # --- packing-optional decision -------------------------------
        pack_cycles, nopack_penalty = self._estimate_pack_tradeoff(
            m, n, k, itemsize, main=main
        )
        effective_pack = (
            self._fused_pack_cycles(m, n, k, itemsize)
            if self.fused_packing else pack_cycles
        )
        if packed_b is None:
            packed_b = (
                self.force_packing
                if self.force_packing is not None
                else effective_pack < nopack_penalty
            )

        if packed_b:
            timing.pack_b_cycles += effective_pack

        kern, executed = self._kernel_cost(m, n, k, itemsize, packed_b,
                                           main=main)
        timing.kernel_cycles += kern
        timing.executed_flops += executed

        shape_spec = main if main is not None else self.jit.main_spec
        decision = SmmDecision(
            packed_b=packed_b,
            pack_cycles_estimate=effective_pack,
            nopack_penalty_estimate=nopack_penalty,
            kernel_shape=f"{shape_spec.mr}x{shape_spec.nr}",
            threads=1,
        )
        return timing, decision

    def _fused_pack_cycles(self, m: int, n: int, k: int,
                           itemsize: int) -> float:
        """Pack-B cost when fused into kernel execution (Fig. 11)."""
        from .fusion import fused_pack_cycles

        main = self.jit.main_spec
        padded = k * ceil_div(n, main.nr) * main.nr
        source = self._residency(m, n, k, itemsize)
        phase = self.cache_model.packing_phase(
            k, n, itemsize, source_contiguous=False, source_resident=source
        )
        kernel = self.jit.generator.generate(main)
        state = self.analyzer.analyze(kernel)
        kern_cycles, _ = self._kernel_cost(m, n, k, itemsize, packed_b=True)
        estimate = fused_pack_cycles(
            self.machine.core, kernel, state, kern_cycles,
            padded, phase.stall_cycles, lanes=self.jit.lanes,
            source_contiguous=False,
        )
        return estimate.fused_extra_cycles

    def _cost_parallel(self, m: int, n: int, k: int, main=None,
                       packed_b: Optional[bool] = None, factorization=None):
        """Multithreaded critical path, assembled per kc-iteration.

        Mirrors the BLIS executor's structure (cooperative B pack within
        the jc group, barriers sized by the group, per-thread kernel sweep)
        but with the reference design's JIT kernels and packing-optional
        decision.  K is blocked at a kc matched to L1 like the library
        drivers do, so large-K problems synchronize per panel instead of
        packing all of B at once.
        """
        itemsize = self.dtype.itemsize
        tile = main if main is not None else self.jit.main_spec
        fact = (
            factorization if factorization is not None
            else blis_factorization(m, n, self.threads, tile.mr, tile.nr)
        )
        numa = self.machine.numa
        timing = GemmTiming(useful_flops=gemm_flops(m, n, k))

        m_chunk = ceil_div(m, fact.ic)
        n_group = ceil_div(n, fact.jc)
        n_chunk = ceil_div(n_group, fact.jr)
        kc = max(32, min(k, 256))

        # residency is a property of the *global* problem: a 2048x2048 B
        # streams from memory even though each thread's slice is small
        global_res = self._residency(m, n, k, itemsize)
        a_res = (
            "l2" if m * k * itemsize
            <= 0.75 * self.cache_model.effective_l2_bytes and self.warm
            else global_res
        )

        pack_cycles, nopack_penalty = self._estimate_pack_tradeoff(
            m_chunk, n_chunk, kc, itemsize,
            source_residency=global_res, main=main,
        )
        if packed_b is None:
            packed_b = (
                self.force_packing
                if self.force_packing is not None
                else pack_cycles < nopack_penalty
            )

        for kk in range(0, k, kc):
            kcb = min(kc, k - kk)
            if packed_b:
                # the jc group packs its B panel cooperatively from the
                # globally-resident source
                group_pack, _ = self._pack_estimate(
                    m_chunk, n_group, kcb, itemsize,
                    source_residency=global_res, main=main,
                )
                timing.pack_b_cycles += group_pack / fact.pack_b_group
                timing.sync_cycles += barrier_cycles(fact.pack_b_group, numa)
                b_res = "l2"  # just packed into the cluster's L2
            else:
                b_res = global_res
            kern, executed = self._kernel_cost(
                m_chunk, n_chunk, kcb, itemsize, packed_b,
                residency_pair=(a_res, b_res), main=main,
            )
            timing.kernel_cycles += kern
            timing.executed_flops += executed * fact.ic * fact.jc * fact.jr
            timing.sync_cycles += barrier_cycles(fact.pack_b_group, numa)

        decision = SmmDecision(
            packed_b=packed_b,
            pack_cycles_estimate=pack_cycles,
            nopack_penalty_estimate=nopack_penalty,
            kernel_shape=f"{tile.mr}x{tile.nr}",
            threads=self.threads,
            factorization=fact,
        )
        return timing, decision

    def _pack_estimate(self, m: int, n: int, k: int, itemsize: int,
                       source_residency: Optional[str] = None, main=None):
        """(cycles, padded elements) for packing one (k x n) B panel."""
        main = main if main is not None else self.jit.main_spec
        padded = k * ceil_div(n, main.nr) * main.nr
        source = source_residency or self._residency(m, n, k, itemsize)
        cycles, _ = self.packing_cost.pack_cycles(
            k, n, itemsize,
            source_contiguous=False,
            source_resident=source,
            padded_elements=padded,
        )
        return cycles, padded

    # ------------------------------------------------------------------

    def _estimate_pack_tradeoff(self, m: int, n: int, k: int, itemsize: int,
                                source_residency: Optional[str] = None,
                                main=None):
        """(pack cycles, unpacked-kernel penalty cycles) for operand B."""
        panel = main if main is not None else self.jit.main_spec
        padded_b = k * ceil_div(n, panel.nr) * panel.nr
        source = source_residency or self._residency(m, n, k, itemsize)
        pack_cycles, _ = self.packing_cost.pack_cycles(
            k, n, itemsize,
            source_contiguous=False,
            source_resident=source,
            padded_elements=padded_b,
        )
        # penalty of unpacked B: price both kernel variants and subtract.
        # An explicitly pinned main tile only applies to its own B layout,
        # so the opposite variant falls back to the orientation search.
        pair = (None if source_residency is None
                else (source_residency, source_residency))
        packed_main = main if main is not None and main.b_layout == "packed" else None
        strided_main = main if main is not None and main.b_layout == "strided" else None
        packed_kern, _ = self._kernel_cost(m, n, k, itemsize, packed_b=True,
                                           residency_pair=pair,
                                           main=packed_main)
        unpacked_kern, _ = self._kernel_cost(m, n, k, itemsize,
                                             packed_b=False,
                                             residency_pair=pair,
                                             main=strided_main)
        return pack_cycles, max(unpacked_kern - packed_kern, 0.0)

    def _kernel_cost(self, m: int, n: int, k: int, itemsize: int,
                     packed_b: bool, residency_pair=None, main=None):
        """(cycles, executed_flops) of the JIT kernel sweep over (m, n, k).

        With ``main=None`` the JIT tries both orientations of its main tile
        (e.g. 8x12 and 12x8) and keeps the cheaper plan — part of the
        paper's "adaptive code generation" plank: the best combination of
        micro-kernels depends on the input shape.  An explicit ``main``
        pins the tile (the tuner prices each candidate separately).
        """
        from ..util.errors import KernelDesignError

        candidates = (
            [main] if main is not None
            else self.jit.main_candidates(packed_b)
        )
        best = None
        for candidate_main in candidates:
            try:
                candidate = self._kernel_cost_with_main(
                    m, n, k, itemsize, packed_b, candidate_main,
                    residency_pair=residency_pair,
                )
            except KernelDesignError:
                continue  # this orientation does not fit the register file
            if best is None or candidate[0] < best[0]:
                best = candidate
        if best is None:
            raise DriverError(
                f"no feasible kernel plan for {m}x{n}x{k} "
                f"(packed_b={packed_b})"
            )
        return best

    def _kernel_cost_with_main(self, m: int, n: int, k: int, itemsize: int,
                               packed_b: bool, main, residency_pair=None):
        if residency_pair is not None and residency_pair[0] is not None:
            a_res, b_res = residency_pair
        else:
            tiny = self.warm and (
                (m * k + k * n + m * n) * itemsize
                <= 0.75 * self.machine.l1d.size_bytes
            )
            a_res = b_res = (
                "l1" if tiny else self._residency(m, n, k, itemsize)
            )
        phase = self.cache_model.kernel_phase(
            m, n, k, main.mr, main.nr, itemsize,
            a_resident=a_res,
            b_resident=b_res,
            simd_lanes=self.jit.lanes,
        )
        cycles = 0.0
        executed = 0.0
        plan = jit_tile_plan(
            self.jit, m, n, pack_edge_b=self.pack_edge_b,
            main=main, strided=not packed_b,
        )
        for inv in plan:
            kernel = self.jit.generator.generate(inv.spec)
            state = self.analyzer.analyze(kernel)
            call = state.kernel_call_cycles(k)
            if packed_b and inv.spec.b_layout == "strided":
                # Fig. 8: inside an otherwise-packed plan, a strided
                # invocation is an N-edge sliver left unpacked — its
                # elements are discontiguous relative to the packed buffer.
                # (In the fully-unpacked plan B columns stay contiguous in
                # the column-major source, so no such charge applies.)
                call += self.cache_model.strided_b_extra_stall(
                    k, inv.padded_cols, itemsize
                )
            cycles += inv.calls * call
            executed += inv.calls * 2.0 * inv.padded_rows * inv.padded_cols * k
        cycles += phase.stall_cycles
        cycles = max(cycles, self.cache_model.dram_floor_cycles(phase))
        return cycles, executed

    def _residency(self, m: int, n: int, k: int, itemsize: int) -> str:
        if not self.warm:
            return "mem"
        footprint = (m * k + k * n + m * n) * itemsize
        if footprint <= 0.75 * self.machine.l1d.size_bytes:
            return "l1"
        if footprint <= 0.75 * self.cache_model.effective_l2_bytes:
            return "l2"
        return "mem"
