"""The paper's reference SMM implementation (Section IV).

The paper closes by sketching what a high-performance SMM library for
ARMv8 many-cores should look like; this driver implements all four planks:

1. **Packing-optional SMM** — the driver *prices* both strategies with the
   same cost models used everywhere else and picks per call: pack B into
   slivers (amortized when K-reuse is high), or run kernels straight off
   the column-major operands.  For tiny matrices packing never pays; the
   decision is printed in the result info for the ablation benchmark.
2. **A set of optimal micro-kernels** — exact-shape, register-constraint-
   checked, pipelined kernels from :class:`~repro.kernels.JitKernelFactory`
   instead of naive scalar edges or whole-tile padding.
3. **Adaptive code generation** — the JIT cache compiles one kernel per
   distinct tile shape and reuses it across calls (hit statistics exposed).
4. **Multi-dimensional parallelization** — thread counts factorized over
   the loop nest with the BLIS-style rule, refusing to fragment small
   dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..blas.base import (
    GemmResult,
    make_cache_model,
    result_info,
    shared_analyzer,
    validate_gemm_operands,
)
from ..kernels.jit import JitKernelFactory
from ..machine.config import MachineConfig
from ..packing.cost import PackingCostModel
from ..util.errors import DriverError


@dataclass(frozen=True)
class SmmDecision:
    """The adaptive choices one call made (exposed for the ablations)."""

    packed_b: bool
    pack_cycles_estimate: float
    nopack_penalty_estimate: float
    kernel_shape: str
    threads: int
    factorization: Optional[object] = None


class ReferenceSmmDriver:
    """Packing-optional, JIT-kerneled, multi-dimensionally parallel SMM."""

    def __init__(
        self,
        machine: MachineConfig,
        dtype=np.float32,
        threads: int = 1,
        force_packing: Optional[bool] = None,
        pack_edge_b: bool = True,
        warm: bool = True,
        fused_packing: bool = False,
    ) -> None:
        self.machine = machine
        self.dtype = np.dtype(dtype)
        if threads < 1 or threads > machine.n_cores:
            raise DriverError(
                f"threads must be in [1, {machine.n_cores}], got {threads}"
            )
        self.threads = threads
        self.force_packing = force_packing
        self.pack_edge_b = pack_edge_b
        self.warm = warm
        #: Fig. 11: integrate the B pack into kernel execution, hiding it
        #: in the kernel's spare load/store/dispatch slots
        self.fused_packing = fused_packing
        self.jit = JitKernelFactory(machine.core, dtype)
        self.analyzer = shared_analyzer(machine)
        self._topology_cache = None
        if threads > 1:
            from ..parallel.executor import ThreadTopology

            topo = ThreadTopology.for_machine(machine, threads)
            bandwidth_share = (
                topo.panels_used * machine.numa.dram_bytes_per_cycle / threads
            )
            self.cache_model = make_cache_model(
                machine,
                active_l2_sharers=topo.active_l2_sharers,
                numa_remote_fraction=topo.shared_remote_fraction,
                bandwidth_share=bandwidth_share,
            )
        else:
            self.cache_model = make_cache_model(machine)
        self.packing_cost = PackingCostModel(
            machine.core, self.cache_model, lanes=self.jit.lanes
        )

    @property
    def name(self) -> str:
        """Driver name."""
        return "reference-smm"

    # ------------------------------------------------------------------

    def gemm(
        self,
        a: np.ndarray,
        b: np.ndarray,
        c: Optional[np.ndarray] = None,
        alpha: float = 1.0,
        beta: float = 0.0,
    ) -> GemmResult:
        """C = alpha * A @ B + beta * C via the reference SMM strategy."""
        m, n, k = validate_gemm_operands(a, b, c)
        if a.dtype != self.dtype:
            raise DriverError(
                f"driver configured for {self.dtype}, operands are {a.dtype}"
            )
        out = np.asarray(alpha * (a @ b), order="F")
        if c is not None and beta != 0.0:
            out = out + beta * c
        plan = self.plan_gemm(m, n, k)
        timing = plan.price()
        decision = plan.meta["decision"]
        info: Dict[str, object] = result_info(
            library=self.name,
            threads=self.threads,
            kernel_shape=decision.kernel_shape,
            packed_b=decision.packed_b,
            decision=decision,
            jit_stats=self.jit.stats,
            execution_plan=plan,
        )
        return GemmResult(c=np.asarray(out, order="F"), timing=timing, info=info)

    # ------------------------------------------------------------------

    def plan_gemm(self, m: int, n: int, k: int):
        """Lower one call to an ExecutionPlan with the adaptive choices."""
        return self.plan_with(m, n, k)

    def plan_with(self, m: int, n: int, k: int, main=None,
                  packed_b: Optional[bool] = None, factorization=None):
        """Lower one call under an explicit plan (the tuner's pins).

        Pins any of the driver's three free choices — the main-tile
        :class:`~repro.kernels.KernelSpec` (``main``), the packing
        decision (``packed_b``), and for multithreaded drivers the loop
        factorization.  Every pinned argument left ``None`` falls back
        to the driver's own adaptive choice; ``meta["provenance"]``
        records which case ran.
        """
        from ..plan.lower import lower_reference

        return lower_reference(
            self, m, n, k, main=main, packed_b=packed_b,
            factorization=factorization,
        )

    def cost_gemm(self, m: int, n: int, k: int):
        """(GemmTiming, SmmDecision) for one call."""
        plan = self.plan_gemm(m, n, k)
        return plan.price(), plan.meta["decision"]

    def cost_with(self, m: int, n: int, k: int, main=None,
                  packed_b: Optional[bool] = None, factorization=None):
        """(GemmTiming, SmmDecision) under an explicit plan.

        The adaptive tuner's entry point: lowers via :meth:`plan_with`
        and prices the plan with the same engine :meth:`cost_gemm` uses,
        so ``cost_with()`` with no overrides is exactly the
        fixed-heuristic cost.
        """
        plan = self.plan_with(
            m, n, k, main=main, packed_b=packed_b,
            factorization=factorization,
        )
        return plan.price(), plan.meta["decision"]
