"""Batched SMM: many small multiplications through one reusable context.

The paper motivates SMM with applications that issue *streams* of small
GEMMs — DNN layers, block-sparse kernels, ABFT checksums.  A batched
interface amortizes the JIT/analysis work across the batch (the code cache
is hot after the first call of each shape), which is exactly how LIBXSMM is
used in practice.

Two parallelization modes for a batch on a many-core:

* ``within`` — every GEMM gets all the threads (what naive OpenMP BLAS
  does).  For genuinely small GEMMs this is the losing strategy the
  paper's Fig. 10 documents.
* ``across`` — independent GEMMs are distributed over the cores, each run
  single-threaded (the LIBXSMM/batch-BLAS strategy).  No intra-GEMM
  synchronization at all; one join barrier at the end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..machine.config import MachineConfig
from ..parallel.sync import barrier_cycles
from ..timing.breakdown import GemmTiming
from ..util.errors import DriverError
from .reference import ReferenceSmmDriver


@dataclass
class BatchResult:
    """Outputs and aggregate accounting for one batch."""

    outputs: List[np.ndarray]
    timing: GemmTiming
    #: distinct (m, n, k) shapes seen, in first-appearance order
    shapes: Tuple[Tuple[int, int, int], ...]
    jit_hit_rate: float

    def gflops(self, machine: MachineConfig) -> float:
        """Aggregate achieved GFLOPS over the batch."""
        return self.timing.gflops(machine)


class BatchedSmm:
    """A reusable SMM context for streams of small multiplications."""

    def __init__(
        self,
        machine: MachineConfig,
        dtype=np.float32,
        threads: int = 1,
        force_packing: Optional[bool] = None,
    ) -> None:
        self.driver = ReferenceSmmDriver(
            machine, dtype=dtype, threads=threads, force_packing=force_packing
        )
        self.machine = machine
        self.dtype = np.dtype(dtype)

    def plan_batch(self, shapes: Sequence[Tuple[int, int, int]]):
        """Lower a batch of (m, n, k) shapes to one merged ExecutionPlan.

        The plan's merge root sums the per-problem buckets exactly like
        folding :meth:`~repro.timing.breakdown.GemmTiming.merged_with`
        over the individual timings, so ``plan_batch(shapes).price()``
        matches the timing :meth:`run` would report for those shapes.
        """
        if not shapes:
            raise DriverError("empty batch")
        from ..plan.lower import lower_batch

        return lower_batch(self.driver, shapes)

    def cost_batch(self, shapes: Sequence[Tuple[int, int, int]]) -> GemmTiming:
        """Aggregate cycle accounting for a batch (no operands)."""
        return self.plan_batch(shapes).price()

    def run(
        self,
        pairs: Iterable[Tuple[np.ndarray, np.ndarray]],
        alpha: float = 1.0,
    ) -> BatchResult:
        """Multiply every (A, B) pair; returns outputs plus merged timing."""
        outputs: List[np.ndarray] = []
        total: Optional[GemmTiming] = None
        shapes: List[Tuple[int, int, int]] = []
        seen = set()
        count = 0
        for a, b in pairs:
            result = self.driver.gemm(a, b, alpha=alpha)
            outputs.append(result.c)
            total = (
                result.timing if total is None
                else total.merged_with(result.timing)
            )
            shape = (a.shape[0], b.shape[1], a.shape[1])
            if shape not in seen:
                seen.add(shape)
                shapes.append(shape)
            count += 1
        if total is None:
            raise DriverError("empty batch")
        return BatchResult(
            outputs=outputs,
            timing=total,
            shapes=tuple(shapes),
            jit_hit_rate=self.driver.jit.stats.hit_rate,
        )

    def run_across_cores(
        self,
        pairs: Sequence[Tuple[np.ndarray, np.ndarray]],
        cores: int,
        alpha: float = 1.0,
    ) -> BatchResult:
        """Distribute independent GEMMs over ``cores`` (batch parallelism).

        Each multiplication runs single-threaded on one core; the batch is
        split greedily by predicted cycles (longest-processing-time rule),
        and the result's timing is the critical path: the busiest core's
        total plus one join barrier.  This is the LIBXSMM-style strategy
        for SMM streams and the natural counterpoint to the paper's
        Fig. 10 within-GEMM parallelization.
        """
        if not pairs:
            raise DriverError("empty batch")
        if cores < 1 or cores > self.machine.n_cores:
            raise DriverError(
                f"cores must be in [1, {self.machine.n_cores}], got {cores}"
            )
        outputs: List[np.ndarray] = []
        timings: List[GemmTiming] = []
        shapes: List[Tuple[int, int, int]] = []
        seen = set()
        for a, b in pairs:
            result = self.driver.gemm(a, b, alpha=alpha)
            outputs.append(result.c)
            timings.append(result.timing)
            shape = (a.shape[0], b.shape[1], a.shape[1])
            if shape not in seen:
                seen.add(shape)
                shapes.append(shape)

        # longest-processing-time assignment to cores
        loads = [0.0] * cores
        per_core: List[List[GemmTiming]] = [[] for _ in range(cores)]
        order = sorted(range(len(timings)),
                       key=lambda i: -timings[i].total_cycles)
        for i in order:
            core = min(range(cores), key=loads.__getitem__)
            loads[core] += timings[i].total_cycles
            per_core[core].append(timings[i])

        busiest = max(range(cores), key=loads.__getitem__)
        critical = GemmTiming(
            useful_flops=sum(t.useful_flops for t in timings),
            executed_flops=sum(t.executed_flops for t in timings),
        )
        for t in per_core[busiest]:
            critical.kernel_cycles += t.kernel_cycles
            critical.pack_a_cycles += t.pack_a_cycles
            critical.pack_b_cycles += t.pack_b_cycles
            critical.other_cycles += t.other_cycles
        critical.sync_cycles = barrier_cycles(cores, self.machine.numa)
        critical.extra["cores"] = float(cores)
        critical.extra["imbalance"] = (
            loads[busiest] / (sum(loads) / cores) if sum(loads) else 1.0
        )
        return BatchResult(
            outputs=outputs,
            timing=critical,
            shapes=tuple(shapes),
            jit_hit_rate=self.driver.jit.stats.hit_rate,
        )

    def run_accumulate(
        self,
        pairs: Sequence[Tuple[np.ndarray, np.ndarray]],
        c: np.ndarray,
        alpha: float = 1.0,
    ) -> BatchResult:
        """Accumulate every product into one C (the BCSR / ABFT pattern)."""
        if not pairs:
            raise DriverError("empty batch")
        total: Optional[GemmTiming] = None
        out = np.array(c, copy=True, order="F")
        for a, b in pairs:
            result = self.driver.gemm(a, b, c=out, alpha=alpha, beta=1.0)
            out = result.c
            total = (
                result.timing if total is None
                else total.merged_with(result.timing)
            )
        return BatchResult(
            outputs=[out],
            timing=total,
            shapes=tuple({(a.shape[0], b.shape[1], a.shape[1])
                          for a, b in pairs}),
            jit_hit_rate=self.driver.jit.stats.hit_rate,
        )
