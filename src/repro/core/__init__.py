"""The paper's primary contribution: the Section-IV reference SMM."""

from .batched import BatchedSmm, BatchResult
from .fusion import FusionEstimate, fused_pack_cycles, kernel_slot_usage
from .planner import jit_tile_plan
from .reference import ReferenceSmmDriver, SmmDecision

__all__ = [
    "ReferenceSmmDriver",
    "SmmDecision",
    "BatchedSmm",
    "BatchResult",
    "jit_tile_plan",
    "FusionEstimate",
    "fused_pack_cycles",
    "kernel_slot_usage",
]
