"""Fused (kernel-integrated) packing — the paper's Figure 11 proposal.

Section IV sketches a restructured SMM where the B sliver is packed
*inside* kernel execution ("we pack B1 into continuous memory regions,
which is integrated in the kernel execution").  The performance argument:
an FMA-bound micro-kernel leaves load/store issue slots idle every cycle;
a fused pack loop can ride in those slots, hiding most of the packing cost
behind compute instead of serializing it.

:func:`fused_pack_cycles` bounds the *extra* time fused packing adds to a
kernel phase, from first principles:

* the kernel's steady state tells us its load/store/dispatch slot usage
  per cycle (from the kernel body's port histogram over its measured
  cycles/iteration);
* the pack loop needs a known number of load, store and dispatch slots;
* the fused extra time is the pack's slot demand divided by the kernel's
  *spare* slot supply — never worse than running the pack separately.

Cache-fill stalls of the pack stream overlap with compute as well (the
kernel does not depend on the packed data of the *next* sliver), retained
with the same prefetch-overlap discount as a separate pack.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.sequence import KernelSequence
from ..machine.config import CoreConfig
from ..pipeline.steady import SteadyState
from ..util.errors import DriverError


@dataclass(frozen=True)
class FusionEstimate:
    """Outcome of fusing one pack stream under one kernel."""

    separate_cycles: float
    fused_extra_cycles: float
    spare_load_slots_per_cycle: float
    spare_store_slots_per_cycle: float
    spare_dispatch_per_cycle: float

    @property
    def hidden_fraction(self) -> float:
        """Share of the separate pack cost hidden by fusion."""
        if self.separate_cycles <= 0:
            return 0.0
        return 1.0 - self.fused_extra_cycles / self.separate_cycles


def kernel_slot_usage(kernel: KernelSequence, state: SteadyState) -> dict:
    """Issue slots the kernel body consumes per cycle, by port class."""
    if state.cycles_per_iter <= 0:
        raise DriverError("kernel steady state has non-positive cycles")
    hist = kernel.port_histogram()
    return {
        port: count / state.cycles_per_iter for port, count in hist.items()
    }


def fused_pack_cycles(
    core: CoreConfig,
    kernel: KernelSequence,
    state: SteadyState,
    kernel_cycles: float,
    pack_elements: int,
    pack_stall_cycles: float,
    lanes: int = 4,
    source_contiguous: bool = False,
) -> FusionEstimate:
    """Extra cycles to fuse packing ``pack_elements`` under the kernel.

    ``kernel_cycles`` is the kernel phase the pack can hide under;
    ``pack_stall_cycles`` the unhidden fill time a separate pack would pay
    (it still applies, half-discounted, because fills overlap compute).
    """
    if pack_elements < 0:
        raise DriverError(f"pack_elements must be >= 0, got {pack_elements}")
    if pack_elements == 0:
        return FusionEstimate(0.0, 0.0, 0.0, 0.0, 0.0)

    usage = kernel_slot_usage(kernel, state)
    spare_load = max(core.ports["load"] - usage.get("load", 0.0), 0.0)
    spare_store = max(core.ports["store"] - usage.get("store", 0.0), 0.0)
    body_per_cycle = len(kernel.body) / state.cycles_per_iter
    spare_dispatch = max(core.dispatch_width - body_per_cycle, 0.0)

    # pack slot demand (mirrors repro.packing.cost pack loops)
    if source_contiguous:
        loads_needed = pack_elements / lanes
        ops_needed = 2.5 * pack_elements / lanes  # ld + st + pointer math
    else:
        loads_needed = float(pack_elements)  # scalar gathers
        ops_needed = 2.25 * pack_elements  # add + ldr per element + str_q
    stores_needed = pack_elements / lanes

    demands = []
    for needed, spare in (
        (loads_needed, spare_load),
        (stores_needed, spare_store),
        (ops_needed, spare_dispatch),
    ):
        if needed <= 0:
            continue
        if spare <= 1e-9:
            demands.append(float("inf"))
        else:
            demands.append(needed / spare)
    slot_time = max(demands) if demands else 0.0

    # whatever fits under the kernel is free; the excess serializes
    extra_slots = max(slot_time - kernel_cycles, 0.0)
    extra = extra_slots + 0.5 * pack_stall_cycles

    # fusion can never be worse than a separate pack loop
    separate = _separate_pack_cycles(
        pack_elements, pack_stall_cycles, lanes, source_contiguous, core
    )
    extra = min(extra, separate)
    return FusionEstimate(
        separate_cycles=separate,
        fused_extra_cycles=extra,
        spare_load_slots_per_cycle=spare_load,
        spare_store_slots_per_cycle=spare_store,
        spare_dispatch_per_cycle=spare_dispatch,
    )


def _separate_pack_cycles(
    elements: int,
    stall: float,
    lanes: int,
    contiguous: bool,
    core: CoreConfig,
) -> float:
    """Standalone pack-loop estimate consistent with PackingCostModel."""
    if contiguous:
        loop = elements / lanes  # store-port bound
    else:
        loop = max(
            elements / core.ports["load"],
            2.25 * elements / core.dispatch_width,
        )
    return loop + stall
