"""The GEMM planning service: micro-batched queries over a sharded cache.

``repro serve`` wraps the adaptive tuner, the batch pricing engine and
the sharded tuning cache into one long-lived asyncio service.  A query's
lifecycle:

1. the client ``await``-s :meth:`PlanService.query` (or ``query_many``);
   the micro-batcher coalesces every request that arrives inside the
   batching window into one handler call;
2. **hot shapes** resolve in the handler with a single sharded-cache
   lookup (per-shard locks — no global contention) and come back with
   ``provenance="cache"``;
3. **cold shapes** are grouped by thread count and priced through one
   :func:`~repro.plan.batch.price_batch` call over their heuristic
   lowerings — bit-identical to ``AdaptiveTuner.heuristic_plan`` — and
   answered immediately as ``provenance="heuristic-pending"``;
4. each cold bucket is pushed onto the background tuning queue exactly
   once (in-flight dedup); a worker runs the full candidate search off
   the query path — in a process pool reusing the ``tune warm`` workers
   when the machine model is registry-named, in a thread otherwise —
   and lands the tuned plan in the cache, where the next query finds it.

The service never blocks a query on tuning: the modeled-cost guarantee
(`tuned <= heuristic`) means the immediate heuristic answer is safe, and
the cache monotonically improves underneath the traffic.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..machine.config import MachineConfig
from ..plan.batch import price_batch
from ..tuning.cache import ShardedTuningCache
from ..tuning.plan import TunedPlan
from ..tuning.tuner import AdaptiveTuner
from ..tuning.warm import MACHINE_FACTORIES, _pool_init, _tune_one
from ..util.errors import ConfigError, ReproError
from .batcher import MicroBatcher
from .schema import PlanRequest, PlanResponse

Shape = Tuple[int, int, int]


@dataclass
class ServiceStats:
    """Serving counters (``repro serve --stats``)."""

    queries: int = 0
    hot_hits: int = 0
    cold: int = 0
    errors: int = 0
    #: cold queries whose bucket was already on the tuning queue
    inflight_deduped: int = 0
    tuned_landed: int = 0
    tune_failures: int = 0
    #: repr of the most recent background-tuning exception ("" when none);
    #: makes a systematically failing tuning path diagnosable from --stats
    last_tune_error: str = ""
    started_at: float = field(default_factory=time.perf_counter)

    @property
    def hit_rate(self) -> float:
        """Cache hits per successfully served query."""
        served = self.hot_hits + self.cold
        if served == 0:
            return 0.0
        return self.hot_hits / served

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable counters."""
        return {
            "queries": self.queries,
            "hot_hits": self.hot_hits,
            "cold": self.cold,
            "errors": self.errors,
            "hit_rate": round(self.hit_rate, 4),
            "inflight_deduped": self.inflight_deduped,
            "tuned_landed": self.tuned_landed,
            "tune_failures": self.tune_failures,
            "last_tune_error": self.last_tune_error,
            "uptime_seconds": round(
                time.perf_counter() - self.started_at, 3
            ),
        }


class BackgroundTuner:
    """The background tuning queue: dedup, fan-out, cache landing.

    Cold buckets arrive via :meth:`enqueue`; an asyncio worker drains
    them through an executor — a :class:`ProcessPoolExecutor` running
    the ``tune warm`` pool workers when the machine is registry-named
    and ``jobs > 0``, else a single-thread executor around
    ``AdaptiveTuner.search`` (the tuner is not thread-safe, so the
    thread path is deliberately width-one).  ``_inflight`` holds every
    queued-or-running token; duplicates are counted, not re-tuned.
    """

    def __init__(self, tuner: AdaptiveTuner, stats: ServiceStats,
                 machine_name: str = "", jobs: int = 0) -> None:
        self.tuner = tuner
        self.stats = stats
        self.machine_name = machine_name
        self.jobs = jobs
        self._inflight: set = set()
        #: created lazily inside the running loop (start/enqueue): on
        #: Python 3.9 asyncio.Queue binds get_event_loop() at
        #: construction, and PlanService is typically built before
        #: asyncio.run() starts the loop it will serve on
        self._queue: Optional["asyncio.Queue[Tuple[str, Shape, int]]"] = None
        self._worker: Optional[asyncio.Task] = None
        self._executor: Optional[Executor] = None
        self._pool = False

    def _ensure_queue(self) -> "asyncio.Queue[Tuple[str, Shape, int]]":
        if self._queue is None:
            self._queue = asyncio.Queue()
        return self._queue

    def start(self) -> None:
        """Create the queue, executor and drain task (idempotent).

        Must run inside the event loop that will serve queries.
        """
        self._ensure_queue()
        if self._worker is not None and not self._worker.done():
            return
        if self._executor is None:
            if self.jobs > 0 and self.machine_name in MACHINE_FACTORIES:
                try:
                    self._executor = ProcessPoolExecutor(
                        max_workers=self.jobs,
                        initializer=_pool_init,
                        initargs=(self.machine_name,
                                  str(self.tuner.dtype)),
                    )
                    self._pool = True
                except (OSError, ValueError):
                    self._executor = None
            if self._executor is None:
                self._executor = ThreadPoolExecutor(max_workers=1)
                self._pool = False
        self._worker = asyncio.ensure_future(self._drain())

    def enqueue(self, token: str, shape: Shape, threads: int) -> bool:
        """Queue one cold bucket; False when it was already in flight."""
        if token in self._inflight:
            self.stats.inflight_deduped += 1
            return False
        self._inflight.add(token)
        self._ensure_queue().put_nowait((token, shape, threads))
        return True

    @property
    def depth(self) -> int:
        """Tokens queued or currently tuning."""
        return len(self._inflight)

    def in_flight(self, token: str) -> bool:
        """True while the token is queued or being tuned."""
        return token in self._inflight

    async def _drain(self) -> None:
        loop = asyncio.get_running_loop()
        queue = self._ensure_queue()
        while True:
            token, shape, threads = await queue.get()
            try:
                if self._pool:
                    # submit the module-level ``tune warm`` worker, not a
                    # bound method: pickling self would drag the sharded
                    # cache's locks and this executor into the job
                    entry = await loop.run_in_executor(
                        self._executor, _tune_one, (shape, threads),
                    )
                    plan = (TunedPlan.from_dict(entry)
                            if entry is not None else None)
                else:
                    plan = await loop.run_in_executor(
                        self._executor, self._tune_sync, shape, threads,
                    )
            except asyncio.CancelledError:
                self._inflight.discard(token)
                raise
            except Exception as exc:  # noqa: BLE001 — never kills serving
                plan = None
                self.stats.last_tune_error = repr(exc)
            if plan is not None:
                self.tuner.cache.put(plan)
                self.stats.tuned_landed += 1
            else:
                self.stats.tune_failures += 1
            self._inflight.discard(token)
            queue.task_done()

    def _tune_sync(self, shape: Shape, threads: int) -> Optional[TunedPlan]:
        """In-thread tuning (the non-pool path; the tuner is loop-local)."""
        m, n, k = shape
        try:
            return self.tuner.search(m, n, k, threads=threads)
        except ReproError as exc:
            self.stats.last_tune_error = repr(exc)
            return None

    async def join(self) -> None:
        """Wait until every queued bucket has been tuned and landed."""
        if self._queue is not None:
            await self._queue.join()

    async def stop(self) -> None:
        """Cancel the drain task and shut the executor down."""
        if self._worker is not None:
            self._worker.cancel()
            try:
                await self._worker
            except asyncio.CancelledError:
                pass
            self._worker = None
        if self._executor is not None:
            self._executor.shutdown(wait=False)
            self._executor = None


class PlanService:
    """Long-lived plan-query service over one machine model."""

    def __init__(
        self,
        machine: MachineConfig,
        dtype=np.float32,
        machine_name: str = "",
        cache: Optional[ShardedTuningCache] = None,
        cache_path: str = "",
        shards: int = 8,
        capacity: int = 4096,
        max_batch: int = 256,
        max_delay: float = 0.002,
        tune_jobs: int = 0,
    ) -> None:
        self.machine = machine
        self.dtype = np.dtype(dtype)
        self.machine_name = machine_name
        self.cache = cache if cache is not None else ShardedTuningCache(
            machine, dtype, path=cache_path, capacity=capacity,
            shards=shards,
        )
        self.tuner = AdaptiveTuner(machine, dtype, cache=self.cache)
        self.stats = ServiceStats()
        self.batcher = MicroBatcher(
            self._handle_batch, max_batch=max_batch, max_delay=max_delay,
        )
        self.background = BackgroundTuner(
            self.tuner, self.stats, machine_name=machine_name,
            jobs=tune_jobs,
        )
        self._started = False

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        """Load the cache and start the background tuning worker."""
        self.cache.load()
        self.background.start()
        self.stats.started_at = time.perf_counter()
        self._started = True

    async def stop(self, save: bool = True) -> None:
        """Flush the batcher, stop tuning, optionally persist the cache."""
        await self.batcher.flush()
        await self.background.stop()
        if save and self.cache.dirty:
            self.cache.save()
        self._started = False

    async def drain(self) -> None:
        """Wait for the background queue to land every pending bucket."""
        await self.batcher.flush()
        await self.background.join()

    # -- queries -------------------------------------------------------

    async def query(self, request: PlanRequest) -> PlanResponse:
        """One plan query through the micro-batcher."""
        if not self._started:
            await self.start()
        return await self.batcher.submit(request)

    async def query_many(
        self, requests: Sequence[PlanRequest]
    ) -> List[PlanResponse]:
        """A client-side batch; resolves when every response is in."""
        return list(await asyncio.gather(
            *(self.query(request) for request in requests)
        ))

    # -- the batch handler (runs synchronously inside the loop) --------

    def _handle_batch(
        self, requests: Sequence[PlanRequest]
    ) -> List[PlanResponse]:
        self.stats.queries += len(requests)
        responses: List[Optional[PlanResponse]] = [None] * len(requests)
        cold: List[Tuple[int, PlanRequest]] = []
        for idx, request in enumerate(requests):
            error = self._validate(request)
            if error is not None:
                self.stats.errors += 1
                responses[idx] = PlanResponse(
                    request=request, provenance="error", error=error,
                )
                continue
            m, n, k = request.m, request.n, request.k
            hit = self.cache.get(m, n, k, request.threads)
            if hit is not None:
                self.stats.hot_hits += 1
                responses[idx] = PlanResponse(
                    request=request, provenance="cache", plan=hit,
                    pending=self.background.in_flight(request.token),
                )
            else:
                cold.append((idx, request))
        if cold:
            for (idx, request), plan in zip(
                cold, self._heuristic_batch([r for _, r in cold])
            ):
                self.stats.cold += 1
                self.background.enqueue(
                    request.token,
                    (request.m, request.n, request.k),
                    request.threads,
                )
                responses[idx] = PlanResponse(
                    request=request, provenance="heuristic-pending",
                    plan=plan, pending=True,
                )
        return responses  # type: ignore[return-value]

    def _validate(self, request: PlanRequest) -> Optional[str]:
        if request.machine and request.machine not in (
            self.machine_name, self.machine.name,
        ):
            return (
                f"machine {request.machine!r} does not match the served "
                f"model {self.machine_name or self.machine.name!r}"
            )
        if str(np.dtype(request.dtype)) != str(self.dtype):
            return (
                f"dtype {request.dtype!r} does not match the served "
                f"dtype {self.dtype}"
            )
        if request.threads > self.machine.n_cores:
            return (
                f"threads {request.threads} exceeds the machine's "
                f"{self.machine.n_cores} cores"
            )
        return None

    def _heuristic_batch(
        self, requests: Sequence[PlanRequest]
    ) -> List[TunedPlan]:
        """Micro-batched heuristic plans, bit-identical to the tuner's.

        Cold requests are deduplicated by bucket, grouped by thread
        count, lowered with the tuner's own memoized drivers and priced
        through one :func:`price_batch` call per group — the same charge
        tapes ``AdaptiveTuner.heuristic_plan`` replays, so the served
        ``as_dict`` is bit-for-bit what a direct tuner call returns.
        """
        unique: Dict[str, Tuple[PlanRequest, int]] = {}
        order: List[str] = []
        for request in requests:
            token = request.token
            if token not in unique:
                unique[token] = (request, len(order))
                order.append(token)
        by_threads: Dict[int, List[str]] = {}
        for token in order:
            request, _ = unique[token]
            by_threads.setdefault(request.threads, []).append(token)
        plans: Dict[str, TunedPlan] = {}
        for threads, tokens in by_threads.items():
            driver = self.tuner.driver(threads)
            keys = [unique[token][0].key() for token in tokens]
            lowered = [
                driver.plan_gemm(key.m, key.n, key.k) for key in keys
            ]
            timings = price_batch(lowered)
            for token, key, plan_ir, timing in zip(
                tokens, keys, lowered, timings
            ):
                decision = plan_ir.meta["decision"]
                spec = self.tuner._heuristic_spec(driver, decision)
                plans[token] = TunedPlan.from_timing(
                    key, spec, decision.packed_b, decision.factorization,
                    timing, self.machine, self.dtype,
                    verified=self.tuner._kernel_verified(spec),
                    source="heuristic",
                    heuristic_cycles=timing.total_cycles,
                )
        return [plans[request.token] for request in requests]

    # -- warm-up and introspection -------------------------------------

    def warm_kernels(self) -> int:
        """Pre-analyze the JIT edge-kernel library (one-time startup cost).

        Bounds cold-query latency: steady-state analysis of a new edge
        kernel costs tens of ms, and without warm-up a query for a fresh
        remainder pair pays it inline.  Analyses persist in the attached
        steady store, so restarts are near-instant.  Returns the kernel
        count analyzed (see
        :func:`repro.core.planner.warm_kernel_library`).
        """
        from ..core.planner import warm_kernel_library

        driver = self.tuner.driver(1)
        return warm_kernel_library(driver.jit, driver.analyzer)

    def prewarm(self, shapes: Sequence[Shape], threads: int = 1) -> int:
        """Batch-price heuristic plans for ``shapes`` into the cache.

        The install-time move: after ``prewarm`` (or a ``tune warm`` /
        ``tune merge`` of a shipped cache), every query for these
        buckets is a hot O(1) lookup.  Returns the number of buckets
        inserted (already-cached buckets are left untouched — a tuned
        entry is never downgraded to a heuristic one).
        """
        requests = []
        seen = set()
        for m, n, k in shapes:
            request = PlanRequest(m=int(m), n=int(n), k=int(k),
                                  dtype=str(self.dtype), threads=threads)
            if request.token in seen:
                continue
            seen.add(request.token)
            if self.cache.peek(request.token) is None:
                requests.append(request)
        for plan in self._heuristic_batch(requests):
            self.cache.put(plan)
        return len(requests)

    def stats_summary(self) -> Dict[str, object]:
        """Service + batcher + cache counters in one JSON-able dict.

        Beyond the service's own caches this also surfaces the engine's
        sibling caches — the plan-verification memo, the batch-pricing
        memo and the steady-state store — so ``repro serve --stats`` is
        one stop for the whole caching picture.
        """
        from ..pipeline import store_stats
        from ..plan import batch_pricing_cache_info
        from ..verify import verification_cache_info

        return {
            "service": self.stats.to_dict(),
            "batcher": self.batcher.stats.to_dict(),
            "cache": self.cache.summary(),
            "per_shard": self.cache.per_shard_occupancy(),
            "tuning_queue_depth": self.background.depth,
            "verification_memo": dict(verification_cache_info()),
            "batch_pricing": dict(batch_pricing_cache_info()),
            "steady_store": dict(store_stats()),
        }
