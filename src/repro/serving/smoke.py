"""In-process serving smoke test (``repro serve --self-test``).

One bounded end-to-end pass over the planning service, asserting the
properties the roadmap cares about without a network or a long-running
process:

1. prewarm the golden Fig. 5/Fig. 10 query grid into the sharded cache,
   holding a few buckets back as deliberate cold shapes;
2. issue the whole grid as one concurrent client batch — the hot part
   must come back ``provenance="cache"`` and the cold part
   ``provenance="heuristic-pending"`` (with the in-flight queue
   deduplicating repeats);
3. check served plans are bit-identical (``to_dict``) to a direct
   :class:`~repro.tuning.tuner.AdaptiveTuner` heuristic call;
4. measure single-query cold latency (the < 50 ms acceptance number);
5. drain the background tuning queue so at least one tuned plan lands,
   re-query it hot, and shut the service down cleanly.

``make serve-smoke`` runs this and fails the build on any violated
invariant.
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

from ..tuning.tuner import AdaptiveTuner
from ..tuning.warm import machine_by_name
from ..workloads.sweeps import serve_query_grid
from .client import PlanClient, run_service_once
from .schema import PlanRequest
from .server import PlanService

#: buckets deliberately left cold by the smoke's prewarm
SMOKE_COLD_SHAPES: Tuple[Tuple[int, int, int], ...] = (
    (7, 11, 13), (33, 65, 129), (97, 101, 89),
)

#: generous CI bound on the cold-path latency (the recorded metric in
#: BENCH_<rev>.json is the honest number; acceptance target is 50 ms)
SMOKE_COLD_BUDGET_SECONDS = 0.25


def run_smoke(machine_name: str = "phytium2000plus", shards: int = 8,
              tune_cold: bool = True) -> Dict[str, object]:
    """Run the smoke pass; returns the report dict (``ok`` key verdict).

    ``tune_cold=False`` skips the background-tuning drain (step 5) for
    callers that only want the serving-path timings.
    """
    from ..blas.base import shared_analyzer
    from ..pipeline import attach_steady_store, save_attached_stores

    machine = machine_by_name(machine_name)
    attach_steady_store(shared_analyzer(machine))
    service = PlanService(
        machine, machine_name=machine_name, shards=shards,
        max_delay=0.001,
    )
    grid = serve_query_grid(min(4, machine.n_cores))
    cold = set(SMOKE_COLD_SHAPES)
    warm_shapes = [shape for shape, t in grid if t == 1
                   and shape not in cold]
    mt_threads = max(t for _, t in grid)
    failures: List[str] = []
    report: Dict[str, object] = {
        "machine": machine_name,
        "shards": shards,
        "grid_queries": len(grid),
    }

    async def body(service: PlanService):
        client = PlanClient(service)
        report["kernels_warmed"] = service.warm_kernels()
        prewarmed = service.prewarm(warm_shapes, threads=1)
        prewarmed += service.prewarm(
            [shape for shape, t in grid if t == mt_threads],
            threads=mt_threads,
        )
        report["prewarmed"] = prewarmed

        # mixed hot/cold batch over the full grid (cold shapes twice, so
        # the in-flight dedup path is exercised in the same batch)
        requests = [
            PlanRequest(m=m, n=n, k=k, threads=t)
            for (m, n, k), t in grid
        ]
        requests.extend(
            PlanRequest(m=m, n=n, k=k, threads=1)
            for (m, n, k) in SMOKE_COLD_SHAPES
        )
        start = time.perf_counter()
        responses = await service.query_many(requests)
        elapsed = time.perf_counter() - start
        by_provenance: Dict[str, int] = {}
        for response in responses:
            by_provenance[response.provenance] = (
                by_provenance.get(response.provenance, 0) + 1
            )
        report["batch_queries"] = len(requests)
        report["batch_seconds"] = round(elapsed, 4)
        report["queries_per_second"] = (
            round(len(requests) / elapsed, 1) if elapsed else 0.0
        )
        report["provenance"] = by_provenance
        report["hit_rate"] = round(service.stats.hit_rate, 4)
        report["inflight_deduped"] = service.stats.inflight_deduped

        expected_cold = 2 * len(SMOKE_COLD_SHAPES)
        if by_provenance.get("heuristic-pending", 0) != expected_cold:
            failures.append(
                f"expected {expected_cold} heuristic-pending responses, "
                f"got {by_provenance.get('heuristic-pending', 0)}"
            )
        if by_provenance.get("cache", 0) != len(requests) - expected_cold:
            failures.append("hot part of the batch missed the cache")
        if service.stats.inflight_deduped < len(SMOKE_COLD_SHAPES):
            failures.append("in-flight dedup never fired")

        # parity: a served plan is bit-identical to the tuner's own
        tuner = AdaptiveTuner(service.machine, service.dtype,
                              cache=service.cache)
        probe = warm_shapes[0]
        served = await client.query(*probe)
        direct = tuner.heuristic_plan(*probe)
        if served.plan.to_dict() != direct.to_dict():
            failures.append(
                f"served plan for {probe} differs from the direct "
                "heuristic plan"
            )

        # cold-path latency: one fresh bucket, timed alone
        fresh = (41, 43, 47)
        start = time.perf_counter()
        response = await client.query(*fresh)
        cold_seconds = time.perf_counter() - start
        report["cold_query_ms"] = round(cold_seconds * 1e3, 2)
        if response.provenance != "heuristic-pending":
            failures.append(
                f"fresh shape served as {response.provenance!r}"
            )
        if cold_seconds > SMOKE_COLD_BUDGET_SECONDS:
            failures.append(
                f"cold query took {cold_seconds * 1e3:.1f} ms "
                f"(budget {SMOKE_COLD_BUDGET_SECONDS * 1e3:.0f} ms)"
            )

        if tune_cold:
            await service.drain()
            report["tuned_landed"] = service.stats.tuned_landed
            if service.stats.tuned_landed < 1:
                failures.append("background tuning landed no plans")
            retried = await client.query(*SMOKE_COLD_SHAPES[0])
            if retried.provenance != "cache":
                failures.append(
                    "tuned bucket still cold after the queue drained"
                )
        report["stats"] = service.stats_summary()

    run_service_once(service, body)
    save_attached_stores()
    report["ok"] = not failures
    report["failures"] = failures
    return report


def render_smoke(report: Dict[str, object], show_stats: bool = False) -> str:
    """Human-readable smoke summary."""
    lines = [
        f"serve self-test on {report['machine']} "
        f"({report['shards']} cache shard(s)):",
        f"  kernels warmed: {report.get('kernels_warmed', 0)}",
        f"  prewarmed     : {report.get('prewarmed', 0)} bucket(s)",
        f"  batch         : {report.get('batch_queries', 0)} queries in "
        f"{report.get('batch_seconds', 0.0):.3f}s "
        f"({report.get('queries_per_second', 0.0):,.0f} q/s)",
        f"  provenance    : " + ", ".join(
            f"{name} {count}" for name, count in
            sorted(dict(report.get("provenance", {})).items())
        ),
        f"  hit rate      : {float(report.get('hit_rate', 0.0)):.1%}",
        f"  cold query    : {report.get('cold_query_ms', 0.0)} ms",
        f"  inflight dedup: {report.get('inflight_deduped', 0)}",
    ]
    if "tuned_landed" in report:
        lines.append(
            f"  tuned landed  : {report['tuned_landed']} plan(s)"
        )
    stats = dict(report.get("stats", {}) or {})
    if stats:
        memo = dict(stats.get("verification_memo", {}))
        tapes = dict(dict(stats.get("batch_pricing", {})).get("tapes", {}))
        store = dict(stats.get("steady_store", {}))
        lines.append(
            f"  memo caches   : verification "
            f"{memo.get('hits', 0)}h/{memo.get('misses', 0)}m, "
            f"pricing tapes {tapes.get('hits', 0)}h/{tapes.get('misses', 0)}m, "
            f"steady store {store.get('hits', 0)}h/{store.get('misses', 0)}m "
            f"({store.get('entries', 0)} entries)"
        )
    if show_stats:
        import json

        lines.append("  stats:")
        lines.extend(
            "    " + line for line in json.dumps(
                report.get("stats", {}), indent=1, sort_keys=True,
            ).splitlines()
        )
    failures = list(report.get("failures", []))
    if failures:
        lines.append("FAIL:")
        lines.extend(f"  - {failure}" for failure in failures)
    else:
        lines.append("OK: mixed hot/cold batch served, clean shutdown")
    return "\n".join(lines)
