"""Request/response schema of the GEMM planning service.

One query is one (M, N, K, dtype, threads, machine) tuple — the identity
of a tuning decision — and one response is an executable
:class:`~repro.tuning.plan.TunedPlan` plus its serving provenance:

* ``"cache"`` — answered from the sharded tuning cache (the hot path;
  the plan's own ``source`` says whether it was searched or is a
  persisted heuristic);
* ``"heuristic-pending"`` — a cold shape: the fixed-heuristic plan,
  priced through the micro-batched engine and returned immediately,
  while the shape sits on the background tuning queue.  A later query
  for the same bucket returns the tuned plan from the cache;
* ``"error"`` — the request was malformed (bad shape, unknown dtype, or
  a machine name that does not match the server's model).

Everything serializes to plain JSON dictionaries, so the same schema
rides the in-process client and the TCP JSON-lines transport.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..tuning.cache import plan_key
from ..tuning.plan import PlanKey, TunedPlan
from ..util.errors import ConfigError

#: serving provenance markers (distinct from TunedPlan.source)
PROVENANCES = ("cache", "heuristic-pending", "error")


@dataclass(frozen=True)
class PlanRequest:
    """One plan query: problem shape, dtype, threads and machine name.

    ``machine`` may be left empty to mean "whatever the server models";
    a non-empty name must match the server's machine or the query is
    answered with an error (plans are machine-fingerprinted — serving a
    plan for the wrong machine would be silently wrong).
    """

    m: int
    n: int
    k: int
    dtype: str = "float32"
    threads: int = 1
    machine: str = ""

    def __post_init__(self) -> None:
        if min(self.m, self.n, self.k) < 1:
            raise ConfigError(f"invalid request shape {self!r}")
        if self.threads < 1:
            raise ConfigError(f"invalid request threads {self.threads}")
        try:
            np.dtype(self.dtype)
        except TypeError as exc:
            raise ConfigError(f"unknown dtype {self.dtype!r}") from exc

    def key(self) -> PlanKey:
        """The bucketed plan key this query resolves to."""
        return plan_key(self.m, self.n, self.k, self.dtype, self.threads)

    @property
    def token(self) -> str:
        """The cache token (bucketed shape + dtype + threads)."""
        return self.key().token

    def to_dict(self) -> Dict:
        """JSON-serializable form (the wire format)."""
        return {
            "m": self.m, "n": self.n, "k": self.k,
            "dtype": self.dtype, "threads": self.threads,
            "machine": self.machine,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "PlanRequest":
        """Parse one wire-format request (raises ConfigError when bad)."""
        try:
            return cls(
                m=int(data["m"]), n=int(data["n"]), k=int(data["k"]),
                dtype=str(data.get("dtype", "float32")),
                threads=int(data.get("threads", 1)),
                machine=str(data.get("machine", "")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigError(f"malformed plan request: {exc}") from exc


@dataclass
class PlanResponse:
    """One served plan (or an error) for one request."""

    request: PlanRequest
    provenance: str
    plan: Optional[TunedPlan] = None
    #: True while the shape sits on the background tuning queue
    pending: bool = False
    error: str = ""
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.provenance not in PROVENANCES:
            raise ConfigError(
                f"unknown serving provenance {self.provenance!r}"
            )

    @property
    def ok(self) -> bool:
        """True when a plan was served."""
        return self.provenance != "error"

    def to_dict(self) -> Dict:
        """JSON-serializable form (the wire format)."""
        return {
            "request": self.request.to_dict(),
            "provenance": self.provenance,
            "plan": self.plan.to_dict() if self.plan is not None else None,
            "pending": self.pending,
            "error": self.error,
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "PlanResponse":
        """Parse one wire-format response."""
        try:
            plan = data.get("plan")
            return cls(
                request=PlanRequest.from_dict(data["request"]),
                provenance=str(data["provenance"]),
                plan=TunedPlan.from_dict(plan) if plan is not None else None,
                pending=bool(data.get("pending", False)),
                error=str(data.get("error", "")),
                meta=dict(data.get("meta", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigError(f"malformed plan response: {exc}") from exc
