"""Clients and transport for the planning service.

Two ways to talk to a :class:`~repro.serving.server.PlanService`:

* :class:`PlanClient` — the in-process async client (the path tests,
  the smoke target and the benchmark recorder use); and
* a TCP JSON-lines transport (:func:`serve_tcp` server-side,
  :class:`TcpPlanClient` client-side): one JSON object per line,
  ``{"requests": [...]}`` answered by ``{"responses": [...]}``, plus
  ``{"cmd": "stats"}`` and ``{"cmd": "shutdown"}`` control messages.

:func:`run_service_once` is the synchronous convenience wrapper: start a
service, run a coroutine against it, stop cleanly — one event loop, no
leaked tasks — used by the CLI self-test and ``make serve-smoke``.
"""

from __future__ import annotations

import asyncio
import json
from typing import Awaitable, Callable, Dict, List, Optional, Sequence, Tuple

from ..util.errors import ConfigError
from .schema import PlanRequest, PlanResponse
from .server import PlanService


class PlanClient:
    """In-process client: shape tuples in, :class:`PlanResponse` out."""

    def __init__(self, service: PlanService) -> None:
        self.service = service

    async def query(self, m: int, n: int, k: int, threads: int = 1,
                    dtype: str = "") -> PlanResponse:
        """One shape query against the served machine."""
        return await self.service.query(PlanRequest(
            m=m, n=n, k=k,
            dtype=dtype or str(self.service.dtype),
            threads=threads,
        ))

    async def query_shapes(
        self, shapes: Sequence[Tuple[int, int, int]], threads: int = 1,
    ) -> List[PlanResponse]:
        """A batch of shape queries, answered in order."""
        dtype = str(self.service.dtype)
        return await self.service.query_many([
            PlanRequest(m=m, n=n, k=k, dtype=dtype, threads=threads)
            for (m, n, k) in shapes
        ])


def run_service_once(service: PlanService,
                     body: Callable[[PlanService], Awaitable],
                     save: bool = False):
    """Run ``body(service)`` inside one event loop with clean shutdown."""

    async def _main():
        await service.start()
        try:
            return await body(service)
        finally:
            await service.stop(save=save)

    return asyncio.run(_main())


# ---------------------------------------------------------------------------
# TCP JSON-lines transport
# ---------------------------------------------------------------------------


async def _handle_connection(service: PlanService,
                             reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter,
                             shutdown: asyncio.Event) -> None:
    try:
        while not reader.at_eof():
            line = await reader.readline()
            if not line:
                break
            try:
                message = json.loads(line)
            except json.JSONDecodeError as exc:
                payload: Dict = {"error": f"bad json: {exc}"}
            else:
                payload = await _dispatch(service, message, shutdown)
            writer.write(json.dumps(payload).encode() + b"\n")
            await writer.drain()
            if shutdown.is_set():
                break
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def _dispatch(service: PlanService, message: Dict,
                    shutdown: asyncio.Event) -> Dict:
    if not isinstance(message, dict):
        return {"error": "message must be a JSON object"}
    cmd = message.get("cmd")
    if cmd == "stats":
        return {"stats": service.stats_summary()}
    if cmd == "shutdown":
        shutdown.set()
        return {"ok": True, "shutdown": True}
    raw = message.get("requests")
    if not isinstance(raw, list):
        return {"error": "expected {'requests': [...]} or {'cmd': ...}"}
    requests: List[Optional[PlanRequest]] = []
    errors: Dict[int, str] = {}
    for idx, entry in enumerate(raw):
        try:
            requests.append(PlanRequest.from_dict(entry))
        except ConfigError as exc:
            requests.append(None)
            errors[idx] = str(exc)
    answered = await service.query_many(
        [r for r in requests if r is not None]
    )
    out: List[Dict] = []
    it = iter(answered)
    for idx, request in enumerate(requests):
        if request is None:
            out.append({"provenance": "error", "plan": None,
                        "pending": False, "error": errors[idx],
                        "request": raw[idx], "meta": {}})
        else:
            out.append(next(it).to_dict())
    return {"responses": out}


async def serve_tcp(service: PlanService, host: str = "127.0.0.1",
                    port: int = 0,
                    ready: Optional[asyncio.Event] = None,
                    bound: Optional[List] = None) -> None:
    """Serve the JSON-lines protocol until a client sends ``shutdown``.

    ``port=0`` binds an ephemeral port; the actual ``(host, port)`` is
    appended to ``bound`` (when given) and ``ready`` is set once the
    socket listens — the hooks tests and in-process launchers need.
    """
    await service.start()
    shutdown = asyncio.Event()
    server = await asyncio.start_server(
        lambda r, w: _handle_connection(service, r, w, shutdown),
        host, port,
    )
    try:
        address = server.sockets[0].getsockname()[:2]
        if bound is not None:
            bound.append(address)
        if ready is not None:
            ready.set()
        await shutdown.wait()
    finally:
        server.close()
        await server.wait_closed()
        await service.stop()


class TcpPlanClient:
    """Minimal JSON-lines client for :func:`serve_tcp`."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port

    async def _roundtrip(self, message: Dict) -> Dict:
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            writer.write(json.dumps(message).encode() + b"\n")
            await writer.drain()
            line = await reader.readline()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        if not line:
            raise ConfigError("server closed the connection")
        return json.loads(line)

    async def query_batch(
        self, requests: Sequence[PlanRequest]
    ) -> List[PlanResponse]:
        """Send one request batch; responses in request order."""
        payload = await self._roundtrip(
            {"requests": [r.to_dict() for r in requests]}
        )
        if "responses" not in payload:
            raise ConfigError(
                f"protocol error: {payload.get('error', payload)}"
            )
        out: List[PlanResponse] = []
        for entry in payload["responses"]:
            try:
                out.append(PlanResponse.from_dict(entry))
            except ConfigError:
                # the request itself was malformed; echo it as an error
                # response against a placeholder key
                out.append(PlanResponse(
                    request=PlanRequest(1, 1, 1), provenance="error",
                    error=str(entry.get("error", "malformed response")),
                    meta={"raw_request": entry.get("request")},
                ))
        return out

    async def stats(self) -> Dict:
        """The server's ``stats_summary``."""
        payload = await self._roundtrip({"cmd": "stats"})
        return payload.get("stats", {})

    async def shutdown(self) -> bool:
        """Ask the server to stop serving."""
        payload = await self._roundtrip({"cmd": "shutdown"})
        return bool(payload.get("shutdown", False))
