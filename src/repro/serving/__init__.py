"""GEMM planning as a service (the ``repro serve`` engine).

The "millions of DNN-layer shape queries" tier of the roadmap: a
long-lived asyncio service that answers (M, N, K, dtype, threads,
machine) plan queries from a sharded tuning cache, micro-batches
concurrent misses through the PR-7 batch pricing engine, and keeps a
background tuning queue busy turning heuristic answers into tuned ones.

* :class:`PlanService` — the service core: sharded-cache hot path,
  micro-batched heuristic cold path, background tuning with in-flight
  dedup;
* :class:`PlanRequest` / :class:`PlanResponse` — the query schema (JSON
  wire format shared by both transports);
* :class:`PlanClient` / :class:`TcpPlanClient` / :func:`serve_tcp` —
  in-process and TCP JSON-lines clients;
* :class:`MicroBatcher` — the generic submission coalescer;
* :func:`run_smoke` — the in-process self-test behind
  ``repro serve --self-test`` and ``make serve-smoke``.
"""

from .batcher import BatcherStats, MicroBatcher
from .client import PlanClient, TcpPlanClient, run_service_once, serve_tcp
from .schema import PROVENANCES, PlanRequest, PlanResponse
from .server import BackgroundTuner, PlanService, ServiceStats
from .smoke import run_smoke, render_smoke

__all__ = [
    "PlanService",
    "BackgroundTuner",
    "ServiceStats",
    "PlanRequest",
    "PlanResponse",
    "PROVENANCES",
    "PlanClient",
    "TcpPlanClient",
    "serve_tcp",
    "run_service_once",
    "MicroBatcher",
    "BatcherStats",
    "run_smoke",
    "render_smoke",
]
