"""Asyncio micro-batcher: coalesce concurrent submissions into batches.

The serving hot path is a dictionary lookup, but every lookup that
misses pays a lowering + pricing walk; amortizing those over a batch is
what makes the PR-7 batch engine's throughput reachable end to end.  The
batcher is deliberately generic: callers ``await submit(item)`` and a
single drain task gathers everything that arrived within ``max_delay``
seconds (or the first ``max_batch`` items, whichever comes first) into
one synchronous ``handler(items) -> results`` call.  Results are
scattered back to the per-item futures in order; a handler exception
fails every item of that batch, never the batcher itself.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..util.errors import ConfigError


@dataclass
class BatcherStats:
    """Counters of one micro-batcher."""

    items: int = 0
    batches: int = 0
    max_batch: int = 0

    @property
    def mean_batch(self) -> float:
        """Mean items per dispatched batch."""
        if self.batches == 0:
            return 0.0
        return self.items / self.batches

    def to_dict(self) -> dict:
        """JSON-serializable counters."""
        return {
            "items": self.items,
            "batches": self.batches,
            "max_batch": self.max_batch,
            "mean_batch": round(self.mean_batch, 2),
        }


class MicroBatcher:
    """Coalesces concurrent ``submit`` calls into ``handler`` batches."""

    def __init__(
        self,
        handler: Callable[[Sequence[Any]], Sequence[Any]],
        max_batch: int = 128,
        max_delay: float = 0.002,
    ) -> None:
        if max_batch < 1:
            raise ConfigError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay < 0:
            raise ConfigError(f"max_delay must be >= 0, got {max_delay}")
        self._handler = handler
        self.max_batch = max_batch
        self.max_delay = max_delay
        self.stats = BatcherStats()
        self._pending: List[Tuple[Any, asyncio.Future]] = []
        self._wake: Optional[asyncio.Event] = None
        self._drain_task: Optional[asyncio.Task] = None

    async def submit(self, item: Any) -> Any:
        """Enqueue one item; resolves to its slot of the handler result."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append((item, future))
        if self._wake is None:
            self._wake = asyncio.Event()
        if self._drain_task is None or self._drain_task.done():
            self._drain_task = asyncio.ensure_future(self._drain())
        if len(self._pending) >= self.max_batch:
            self._wake.set()
        return await future

    async def flush(self) -> None:
        """Dispatch anything pending without waiting for the window."""
        if self._wake is not None:
            self._wake.set()
        if self._drain_task is not None and not self._drain_task.done():
            await self._drain_task

    async def _drain(self) -> None:
        while self._pending:
            # the batching window: wait for either the timer or a full
            # batch (submit sets the event at max_batch)
            self._wake.clear()
            if self.max_delay > 0 and len(self._pending) < self.max_batch:
                try:
                    await asyncio.wait_for(self._wake.wait(),
                                           self.max_delay)
                except asyncio.TimeoutError:
                    pass
            else:
                # yield once so same-tick submitters can still join
                await asyncio.sleep(0)
            batch = self._pending[: self.max_batch]
            del self._pending[: len(batch)]
            if not batch:
                continue
            self._dispatch(batch)

    def _dispatch(self, batch: List[Tuple[Any, asyncio.Future]]) -> None:
        items = [item for item, _ in batch]
        self.stats.items += len(items)
        self.stats.batches += 1
        self.stats.max_batch = max(self.stats.max_batch, len(items))
        try:
            results = self._handler(items)
            if len(results) != len(items):
                raise ConfigError(
                    f"batch handler returned {len(results)} results "
                    f"for {len(items)} items"
                )
        except BaseException as exc:  # noqa: BLE001 — forwarded per item
            for _, future in batch:
                if not future.done():
                    future.set_exception(exc)
            return
        for (_, future), result in zip(batch, results):
            if not future.done():
                future.set_result(result)
