"""repro — a simulated-hardware reproduction of *Characterizing Small-Scale
Matrix Multiplications on ARMv8-based Many-Core Architectures* (IPPS 2021).

The package is a laboratory: a cycle-approximate model of the Phytium 2000+
many-core processor (pipeline, caches, NUMA), an ARMv8/NEON micro-kernel
instruction layer, faithful models of the four BLAS libraries the paper
evaluates (OpenBLAS, BLIS, BLASFEO, Eigen), deterministic multithreaded
execution, the paper's proposed reference SMM implementation, and an
input-aware adaptive tuner with a persistent on-disk tuning cache
(``repro.tuning``, driven by the ``repro tune`` CLI).

Quick start::

    import numpy as np
    from repro import phytium2000plus, make_driver, random_matrix, make_rng

    machine = phytium2000plus()
    driver = make_driver("blasfeo", machine)
    rng = make_rng()
    a, b = random_matrix(rng, 24, 24), random_matrix(rng, 24, 24)
    result = driver.gemm(a, b)
    print(result.timing.efficiency(machine, np.float32))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured comparison of every figure and table.
"""

from .blas import (
    BlockingParams,
    GemmResult,
    make_blasfeo,
    make_blis,
    make_driver,
    make_eigen,
    make_openblas,
)
from .core import BatchedSmm, BatchResult, ReferenceSmmDriver, SmmDecision
from .machine import (
    CacheConfig,
    CoreConfig,
    MachineConfig,
    NumaConfig,
    a64fx_like,
    graviton2_like,
    machine_summary,
    phytium2000plus,
)
from .parallel import MultithreadedGemm
from .plan import (
    ENGINE,
    Engine,
    ExecutionPlan,
    RecordingTraceSink,
    TraceEvent,
    TraceSink,
)
from .timing import GemmTiming, gemm_flops, p2c, timing_from_trace
from .tuning import AdaptiveTuner, TunedPlan, TuningCache, warm_cache
from .util import DEFAULT_SEED, ReproError, make_rng, random_matrix

__version__ = "1.7.0"

__all__ = [
    "__version__",
    # machine
    "MachineConfig",
    "CoreConfig",
    "CacheConfig",
    "NumaConfig",
    "phytium2000plus",
    "a64fx_like",
    "graviton2_like",
    "machine_summary",
    # drivers
    "make_driver",
    "make_openblas",
    "make_blis",
    "make_blasfeo",
    "make_eigen",
    "BlockingParams",
    "GemmResult",
    "MultithreadedGemm",
    # the paper's contribution
    "ReferenceSmmDriver",
    "SmmDecision",
    "BatchedSmm",
    "BatchResult",
    # the execution-plan IR and traced pricing engine
    "ExecutionPlan",
    "Engine",
    "ENGINE",
    "TraceSink",
    "TraceEvent",
    "RecordingTraceSink",
    # timing
    "GemmTiming",
    "gemm_flops",
    "p2c",
    "timing_from_trace",
    # input-aware tuning
    "AdaptiveTuner",
    "TunedPlan",
    "TuningCache",
    "warm_cache",
    # utilities
    "ReproError",
    "make_rng",
    "random_matrix",
    "DEFAULT_SEED",
]
