"""Simulated multithreading: partitioning, synchronization, execution."""

from .executor import MultithreadedGemm, ThreadTopology
from .partition import (
    BlisFactorization,
    blis_factorization,
    blis_factorization_scored,
    core_class_weights,
    grid_partition,
    openblas_partition,
    split_even,
    strip_spans,
    weighted_spans,
    weighted_split,
)
from .sync import barrier_cycles, sync_points_per_iteration

__all__ = [
    "MultithreadedGemm",
    "ThreadTopology",
    "split_even",
    "strip_spans",
    "weighted_split",
    "weighted_spans",
    "core_class_weights",
    "openblas_partition",
    "grid_partition",
    "blis_factorization",
    "blis_factorization_scored",
    "BlisFactorization",
    "barrier_cycles",
    "sync_points_per_iteration",
]
