"""Synchronization cost model (paper Sec. III-D).

Multithreaded GEMM synchronizes at three points per kc-iteration: after
cooperatively packing B, after packing A, and at the end of the kernel
sweep before the packed buffers are reused.  We model a tree barrier:
``ceil(log2(T))`` stages of core-to-core signalling, each stage costing
``barrier_stage_cycles`` (longer when the participants span NUMA panels).

The paper's observation that BLIS wins partly by *reducing the number of
threads per barrier* falls out directly: a barrier over 8 threads costs
3 stages, one over 64 threads costs 6 — and the 64-thread one crosses
panels, inflating the per-stage latency.
"""

from __future__ import annotations

import math

from ..machine.config import NumaConfig
from ..util.errors import ParallelError
from ..util.validation import check_positive_int


def barrier_cycles(
    threads: int,
    numa: NumaConfig,
    cores_per_panel: int = 0,
) -> float:
    """Cycles for one tree barrier over ``threads`` compactly-placed threads."""
    check_positive_int(threads, "threads", ParallelError)
    if threads == 1:
        return 0.0
    stages = math.ceil(math.log2(threads))
    per_panel = cores_per_panel or numa.cores_per_panel
    panels_spanned = math.ceil(threads / per_panel)
    # stages that cross a panel boundary pay the remote factor
    local_stages = min(stages, max(1, math.ceil(math.log2(min(threads, per_panel)))))
    remote_stages = stages - local_stages
    return (
        local_stages * numa.barrier_stage_cycles
        + remote_stages * numa.barrier_stage_cycles * numa.remote_factor
        + (panels_spanned - 1) * 0.0  # panel fan-in folded into remote stages
    )


def sync_points_per_iteration(cooperative_pack_a: bool,
                              cooperative_pack_b: bool) -> int:
    """Barriers per kc-iteration given which packs are cooperative.

    A cooperative pack needs a barrier after it (everyone must see the full
    buffer); the end-of-iteration barrier before buffer reuse is always
    present in multithreaded runs.
    """
    return 1 + int(cooperative_pack_a) + int(cooperative_pack_b)
