"""Deterministic multithreaded GEMM execution models (paper Sec. III-D).

Threads are simulated, not spawned: each scheme partitions the work the way
its library does, costs every thread's share with the same pipeline/cache
models the single-thread drivers use (but configured for L2 sharing and
NUMA), and assembles the critical path::

    per kc-iteration:  cooperative packs (cost / group size)
                       + barriers (tree, sized by the cooperating group)
                       + max over threads of (private pack + kernel sweep)

Three schemes:

* ``openblas`` — M split 1-D across all T threads; B packed cooperatively
  by everyone; barriers span all T threads.  Small M leaves most threads
  with sub-``mr`` slivers or nothing.
* ``blis`` — multi-dimensional: T factorized over (jc, ic, jr) by
  :func:`~repro.parallel.partition.blis_factorization`; pack-B barriers
  span only ``ic*jr`` threads, pack-A barriers span ``jr``.
* ``eigen`` — balanced 2-D grid of independent sub-GEMMs, one join barrier.

BLASFEO provides only single-threaded SMM routines (paper Sec. II-C), so
requesting it here raises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..blas.base import KernelCostModel, make_cache_model
from ..blas.goto import GotoGemmDriver
from ..blas.libraries import make_blis, make_eigen, make_openblas
from ..machine.config import MachineConfig
from ..packing.cost import PackingCostModel
from ..timing.breakdown import GemmTiming
from ..timing.models import gemm_flops
from ..util.errors import ParallelError
from ..util.validation import ceil_div, check_positive_int
from .partition import (
    BlisFactorization,
    blis_factorization,
    grid_partition,
    split_even,
)
from .sync import barrier_cycles

_SCHEMES = ("openblas", "blis", "eigen")


@dataclass(frozen=True)
class ThreadTopology:
    """Derived placement facts for T compactly-placed threads."""

    threads: int
    active_l2_sharers: int
    panels_used: int
    shared_remote_fraction: float

    @staticmethod
    def for_machine(machine: MachineConfig, threads: int) -> "ThreadTopology":
        """Compact placement: threads fill cores 0..T-1 in order."""
        check_positive_int(threads, "threads", ParallelError)
        if threads > machine.n_cores:
            raise ParallelError(
                f"threads={threads} exceeds core count {machine.n_cores}"
            )
        sharers = min(machine.l2.shared_by, threads)
        panels = ceil_div(threads, machine.numa.cores_per_panel)
        # a buffer packed cooperatively lives striped across the packers'
        # panels; a reader finds 1/panels of it local on average
        remote = 0.0 if panels == 1 else 1.0 - 1.0 / panels
        return ThreadTopology(
            threads=threads,
            active_l2_sharers=sharers,
            panels_used=panels,
            shared_remote_fraction=remote,
        )


class MultithreadedGemm:
    """Facade: functional result + scheme-specific critical-path timing."""

    def __init__(
        self,
        machine: MachineConfig,
        library: str,
        threads: int,
        dtype=np.float32,
        blocking=None,
    ) -> None:
        if library == "blasfeo":
            raise ParallelError(
                "BLASFEO provides only single-threaded SMM routines "
                "(paper Sec. II-C); use threads=1 with the BLASFEO driver"
            )
        if library not in _SCHEMES:
            raise ParallelError(
                f"unknown library {library!r}; choose from {_SCHEMES}"
            )
        self.machine = machine
        self.library = library
        self.dtype = np.dtype(dtype)
        self.topology = ThreadTopology.for_machine(machine, threads)
        factory = {
            "openblas": make_openblas,
            "blis": make_blis,
            "eigen": make_eigen,
        }[library]
        self.driver: GotoGemmDriver = factory(
            machine, dtype=dtype, blocking=blocking
        )
        # each of T threads gets an equal share of the active panels' DRAM
        # channels (compact placement)
        bandwidth_share = (
            self.topology.panels_used
            * machine.numa.dram_bytes_per_cycle
            / self.topology.threads
        )
        self.cache_mt = make_cache_model(
            machine,
            active_l2_sharers=self.topology.active_l2_sharers,
            numa_remote_fraction=self.topology.shared_remote_fraction,
            bandwidth_share=bandwidth_share,
        )
        self.kernel_cost = KernelCostModel(machine, dtype)
        self.packing_cost = PackingCostModel(
            machine.core, self.cache_mt,
            lanes=machine.core.simd_lanes(dtype),
        )

    @property
    def threads(self) -> int:
        """Simulated thread count."""
        return self.topology.threads

    # ------------------------------------------------------------------

    def gemm(
        self,
        a: np.ndarray,
        b: np.ndarray,
        c: Optional[np.ndarray] = None,
        alpha: float = 1.0,
        beta: float = 0.0,
    ) -> "GemmResultLike":
        """C = alpha*A@B + beta*C; timing is the simulated critical path."""
        from ..blas.base import GemmResult, validate_gemm_operands

        m, n, k = validate_gemm_operands(a, b, c)
        out = np.asarray(alpha * (a @ b), order="F")
        if c is not None and beta != 0.0:
            out = out + beta * c
        timing, info = self.cost(m, n, k)
        info["library"] = self.library
        info["threads"] = self.threads
        return GemmResult(c=np.asarray(out, order="F"), timing=timing, info=info)

    def cost(self, m: int, n: int, k: int):
        """(GemmTiming, info) for the configured scheme."""
        if self.library == "openblas":
            return self._cost_openblas(m, n, k)
        if self.library == "blis":
            return self._cost_blis(m, n, k)
        return self._cost_eigen(m, n, k)

    # ------------------------------------------------------------------

    def _cost_openblas(self, m: int, n: int, k: int):
        drv = self.driver
        blocking = drv.blocking
        cat = drv.catalog
        itemsize = self.dtype.itemsize
        T = self.threads
        numa = self.machine.numa
        timing = GemmTiming(useful_flops=gemm_flops(m, n, k))
        chunks = [c for c in split_even(m, T)]
        max_chunk = max(chunks)
        source_res = drv._source_residency(m, n, k, itemsize, self.cache_mt)

        for jj in range(0, n, blocking.nc):
            ncb = min(blocking.nc, n - jj)
            for kk in range(0, k, blocking.kc):
                kcb = min(blocking.kc, k - kk)
                # cooperative B pack, split across all T threads
                pb_total, _ = self.packing_cost.pack_cycles(
                    kcb, ncb, itemsize,
                    source_contiguous=drv.config.pack_b_contiguous,
                    source_resident=source_res,
                    padded_elements=kcb * _round_up(ncb, cat.nr),
                )
                timing.pack_b_cycles += pb_total / T
                timing.sync_cycles += barrier_cycles(T, numa)

                # each thread: private A pack + kernel sweep over its strip.
                # Critical path = the largest chunk; executed flops sum over
                # the (at most two) distinct chunk sizes.
                b_shared = min(self.machine.l2.shared_by, T)
                pa, kern, executed_max = self._strip_cost(
                    cat, max_chunk, ncb, kcb, itemsize, source_res,
                    pack_a_contiguous=drv.config.pack_a_contiguous,
                    mc=blocking.mc,
                    b_shared_by=b_shared,
                )
                timing.pack_a_cycles += pa
                timing.kernel_cycles += kern
                for chunk_size in set(ch for ch in chunks if ch > 0):
                    count = sum(1 for ch in chunks if ch == chunk_size)
                    if chunk_size == max_chunk:
                        executed = executed_max
                    else:
                        _, _, executed = self._strip_cost(
                            cat, chunk_size, ncb, kcb, itemsize, source_res,
                            pack_a_contiguous=drv.config.pack_a_contiguous,
                            mc=blocking.mc,
                            b_shared_by=b_shared,
                        )
                    timing.executed_flops += executed * count
                timing.sync_cycles += barrier_cycles(T, numa)
        info = {"scheme": "1d-m", "chunks_nonzero": sum(1 for c in chunks if c),
                "max_chunk": max_chunk}
        return timing, info

    def _cost_blis(self, m: int, n: int, k: int):
        drv = self.driver
        blocking = drv.blocking
        cat = drv.catalog
        itemsize = self.dtype.itemsize
        numa = self.machine.numa
        fact: BlisFactorization = blis_factorization(
            m, n, self.threads, cat.mr, cat.nr
        )
        timing = GemmTiming(useful_flops=gemm_flops(m, n, k))
        source_res = drv._source_residency(m, n, k, itemsize, self.cache_mt)

        n_group = max(split_even(n, fact.jc))  # one jc group's N extent
        m_chunk = max(split_even(m, fact.ic))  # one thread's M extent
        n_thread = max(split_even(n_group, fact.jr))  # one thread's N extent

        for jj in range(0, n_group, blocking.nc):
            ncb = min(blocking.nc, n_group - jj)
            ncb_thread = min(n_thread, ncb)
            for kk in range(0, k, blocking.kc):
                kcb = min(blocking.kc, k - kk)
                # B pack cooperative within the jc group
                pb_total, _ = self.packing_cost.pack_cycles(
                    kcb, ncb, itemsize,
                    source_contiguous=drv.config.pack_b_contiguous,
                    source_resident=source_res,
                    padded_elements=kcb * _round_up(ncb, cat.nr),
                )
                timing.pack_b_cycles += pb_total / fact.pack_b_group
                timing.sync_cycles += barrier_cycles(fact.pack_b_group, numa)

                # A pack cooperative within the jr group, kernel per thread
                pa, kern, executed = self._strip_cost(
                    cat, m_chunk, ncb_thread, kcb, itemsize, source_res,
                    pack_a_contiguous=drv.config.pack_a_contiguous,
                    mc=blocking.mc,
                    pack_a_share=fact.pack_a_group,
                    b_shared_by=min(self.machine.l2.shared_by,
                                    fact.pack_b_group),
                )
                timing.pack_a_cycles += pa
                timing.kernel_cycles += kern
                timing.executed_flops += executed * fact.ic * fact.jc * fact.jr
                if fact.pack_a_group > 1:
                    timing.sync_cycles += barrier_cycles(fact.pack_a_group, numa)
                timing.sync_cycles += barrier_cycles(fact.pack_b_group, numa)
        info = {"scheme": "multidim", "factorization": fact}
        return timing, info

    def _cost_eigen(self, m: int, n: int, k: int):
        drv = self.driver
        numa = self.machine.numa
        chunks = grid_partition(m, n, self.threads)
        timing = GemmTiming(useful_flops=gemm_flops(m, n, k))
        worst: Optional[GemmTiming] = None
        per_shape = {}
        for (mi, nj) in set(chunks):
            if mi == 0 or nj == 0:
                continue
            t = drv.cost_gemm(mi, nj, k, cache_model=self.cache_mt)
            per_shape[(mi, nj)] = t
            if worst is None or t.total_cycles > worst.total_cycles:
                worst = t
        if worst is None:
            raise ParallelError("empty partition")
        timing.kernel_cycles = worst.kernel_cycles
        timing.pack_a_cycles = worst.pack_a_cycles
        timing.pack_b_cycles = worst.pack_b_cycles
        timing.executed_flops = sum(
            per_shape[(mi, nj)].executed_flops
            for (mi, nj) in chunks if (mi, nj) in per_shape
        )
        timing.sync_cycles = barrier_cycles(self.threads, numa)
        info = {"scheme": "2d-grid", "grid_chunks": len(chunks)}
        return timing, info

    # ------------------------------------------------------------------

    def _strip_cost(
        self,
        catalog,
        m_strip: int,
        ncb: int,
        kcb: int,
        itemsize: int,
        source_res: str,
        pack_a_contiguous: bool,
        mc: int,
        pack_a_share: int = 1,
        b_shared_by: int = 1,
    ):
        """(pack_a, kernel, executed_flops) for one thread's M-strip.

        ``b_shared_by``: cores of one L2 cluster reading the same packed B
        panel (their DRAM fills amortize).
        """
        if m_strip <= 0:
            return 0.0, 0.0, 0.0
        pack_a = 0.0
        kernel = 0.0
        executed = 0.0
        for ii in range(0, m_strip, mc):
            mcb = min(mc, m_strip - ii)
            pa, _ = self.packing_cost.pack_cycles(
                mcb, kcb, itemsize,
                source_contiguous=pack_a_contiguous,
                source_resident=source_res,
                padded_elements=_round_up(mcb, catalog.mr) * kcb,
            )
            pack_a += pa / pack_a_share
            phase = self.cache_mt.kernel_phase(
                mcb, ncb, kcb, catalog.mr, catalog.nr, itemsize,
                a_resident="l2",
                b_resident="l2"
                if kcb * ncb * itemsize <= 0.5 * self.cache_mt.effective_l2_bytes
                else "mem",
                simd_lanes=self.kernel_cost.lanes,
                b_shared_by=b_shared_by,
            )
            cyc, exe = self.kernel_cost.gebp_kernel_cycles(
                catalog, mcb, ncb, kcb, phase=phase, cache=self.cache_mt
            )
            kernel += cyc
            executed += exe
        return pack_a, kernel, executed


def _round_up(value: int, base: int) -> int:
    return ((value + base - 1) // base) * base


#: loose alias used in the gemm() return annotation (GemmResult is imported
#: lazily inside the method to avoid an import cycle with repro.blas)
GemmResultLike = object
