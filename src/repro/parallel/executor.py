"""Deterministic multithreaded GEMM execution models (paper Sec. III-D).

Threads are simulated, not spawned: each scheme partitions the work the way
its library does, costs every thread's share with the same pipeline/cache
models the single-thread drivers use (but configured for L2 sharing and
NUMA), and assembles the critical path::

    per kc-iteration:  cooperative packs (cost / group size)
                       + barriers (tree, sized by the cooperating group)
                       + max over threads of (private pack + kernel sweep)

Three schemes:

* ``openblas`` — M split 1-D across all T threads; B packed cooperatively
  by everyone; barriers span all T threads.  Small M leaves most threads
  with sub-``mr`` slivers or nothing.
* ``blis`` — multi-dimensional: T factorized over (jc, ic, jr) by
  :func:`~repro.parallel.partition.blis_factorization`; pack-B barriers
  span only ``ic*jr`` threads, pack-A barriers span ``jr``.
* ``eigen`` — balanced 2-D grid of independent sub-GEMMs, one join barrier.

BLASFEO provides only single-threaded SMM routines (paper Sec. II-C), so
requesting it here raises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..blas.base import KernelCostModel, make_cache_model
from ..blas.goto import GotoGemmDriver
from ..blas.libraries import make_blis, make_eigen, make_openblas
from ..machine.config import MachineConfig
from ..packing.cost import PackingCostModel
from ..util.errors import ParallelError
from ..util.validation import ceil_div, check_positive_int

_SCHEMES = ("openblas", "blis", "eigen")

_PARTITIONS = ("auto", "even", "weighted")


@dataclass(frozen=True)
class ThreadTopology:
    """Derived placement facts for T compactly-placed threads."""

    threads: int
    active_l2_sharers: int
    panels_used: int
    shared_remote_fraction: float

    @staticmethod
    def for_machine(machine: MachineConfig, threads: int) -> "ThreadTopology":
        """Compact placement: threads fill cores 0..T-1 in order."""
        check_positive_int(threads, "threads", ParallelError)
        if threads > machine.n_cores:
            raise ParallelError(
                f"threads={threads} exceeds core count {machine.n_cores}"
            )
        sharers = min(machine.l2.shared_by, threads)
        panels = ceil_div(threads, machine.numa.cores_per_panel)
        # a buffer packed cooperatively lives striped across the packers'
        # panels; a reader finds 1/panels of it local on average
        remote = 0.0 if panels == 1 else 1.0 - 1.0 / panels
        return ThreadTopology(
            threads=threads,
            active_l2_sharers=sharers,
            panels_used=panels,
            shared_remote_fraction=remote,
        )


class MultithreadedGemm:
    """Facade: functional result + scheme-specific critical-path timing."""

    def __init__(
        self,
        machine: MachineConfig,
        library: str,
        threads: int,
        dtype=np.float32,
        blocking=None,
        partition: str = "auto",
    ) -> None:
        if library == "blasfeo":
            raise ParallelError(
                "BLASFEO provides only single-threaded SMM routines "
                "(paper Sec. II-C); use threads=1 with the BLASFEO driver"
            )
        if library not in _SCHEMES:
            raise ParallelError(
                f"unknown library {library!r}; choose from {_SCHEMES}"
            )
        if partition not in _PARTITIONS:
            raise ParallelError(
                f"unknown partition {partition!r}; choose from {_PARTITIONS}"
            )
        self.machine = machine
        self.library = library
        self.dtype = np.dtype(dtype)
        # "auto" resolves to throughput-weighted M-strips exactly when the
        # socket is asymmetric; homogeneous machines keep the balanced
        # split bit-for-bit (weighted_split degenerates to split_even
        # there anyway).
        self.partition = (
            ("weighted" if machine.is_heterogeneous else "even")
            if partition == "auto" else partition
        )
        self.topology = ThreadTopology.for_machine(machine, threads)
        factory = {
            "openblas": make_openblas,
            "blis": make_blis,
            "eigen": make_eigen,
        }[library]
        self.driver: GotoGemmDriver = factory(
            machine, dtype=dtype, blocking=blocking
        )
        # each of T threads gets an equal share of the active panels' DRAM
        # channels (compact placement)
        bandwidth_share = (
            self.topology.panels_used
            * machine.numa.dram_bytes_per_cycle
            / self.topology.threads
        )
        self.cache_mt = make_cache_model(
            machine,
            active_l2_sharers=self.topology.active_l2_sharers,
            numa_remote_fraction=self.topology.shared_remote_fraction,
            bandwidth_share=bandwidth_share,
        )
        self.kernel_cost = KernelCostModel(machine, dtype)
        self.packing_cost = PackingCostModel(
            machine.core, self.cache_mt,
            lanes=machine.core.simd_lanes(dtype),
        )
        # per-class model bindings (heterogeneous machines only): each
        # class prices its strips with its own core/cache view, built
        # from the same topology facts as the base models
        self.class_models = None
        if machine.is_heterogeneous:
            from ..plan.engine import ClassModels

            models = []
            for idx, cls in enumerate(machine.classes):
                class_machine = machine.class_machine(idx)
                cache_cls = make_cache_model(
                    class_machine,
                    active_l2_sharers=self.topology.active_l2_sharers,
                    numa_remote_fraction=(
                        self.topology.shared_remote_fraction
                    ),
                    bandwidth_share=bandwidth_share,
                )
                models.append(ClassModels(
                    name=cls.name,
                    machine=class_machine,
                    cache=cache_cls,
                    kernel_cost=KernelCostModel(class_machine, dtype),
                    packing=PackingCostModel(
                        class_machine.core, cache_cls,
                        lanes=class_machine.core.simd_lanes(dtype),
                    ),
                    freq_scale=(
                        cls.core.freq_hz / machine.core.freq_hz
                    ),
                ))
            self.class_models = tuple(models)

    @property
    def threads(self) -> int:
        """Simulated thread count."""
        return self.topology.threads

    # ------------------------------------------------------------------

    def gemm(
        self,
        a: np.ndarray,
        b: np.ndarray,
        c: Optional[np.ndarray] = None,
        alpha: float = 1.0,
        beta: float = 0.0,
    ) -> "GemmResultLike":
        """C = alpha*A@B + beta*C; timing is the simulated critical path."""
        from ..blas.base import GemmResult, validate_gemm_operands

        from ..blas.base import result_info

        m, n, k = validate_gemm_operands(a, b, c)
        out = np.asarray(alpha * (a @ b), order="F")
        if c is not None and beta != 0.0:
            out = out + beta * c
        plan = self.plan_gemm(m, n, k)
        timing = plan.price()
        cat = self.driver.catalog
        info = result_info(
            library=self.library,
            threads=self.threads,
            kernel_shape=f"{cat.mr}x{cat.nr}",
            packed_b=True,  # every scheme packs B (cooperatively)
            execution_plan=plan,
            **plan.meta["info"],
        )
        return GemmResult(c=np.asarray(out, order="F"), timing=timing, info=info)

    def plan_gemm(self, m: int, n: int, k: int):
        """Lower one call to an ExecutionPlan for the configured scheme."""
        from ..plan.lower import lower_library_mt

        return lower_library_mt(self, m, n, k)

    def cost(self, m: int, n: int, k: int):
        """(GemmTiming, info) for the configured scheme."""
        plan = self.plan_gemm(m, n, k)
        return plan.price(), dict(plan.meta["info"])


#: loose alias used in the gemm() return annotation (GemmResult is imported
#: lazily inside the method to avoid an import cycle with repro.blas)
GemmResultLike = object
