"""Work partitioning schemes (paper Sec. III-D).

* :func:`split_even` — balanced 1-D chunking.
* :func:`openblas_partition` — OpenBLAS's scheme as the paper describes it:
  the C task grid is split along M across *all* threads ("all the sub-tasks
  in the same row are assigned to the same thread"; its M=128/64-thread
  example yields per-thread workloads of ``mc/64 x nc x kc``).  For small M
  most threads receive slivers thinner than mr — or nothing at all.
* :func:`grid_partition` — a balanced 2-D grid (the Eigen model).
* :func:`blis_factorization` — BLIS's multi-dimensional parallelism: the
  thread count is factorized over the jc/ic/jr loops, *refusing to
  parallelize a dimension that is too small*, minimizing predicted edge
  waste and synchronization span.
* :func:`weighted_split` / :func:`weighted_spans` — throughput-weighted
  1-D chunking for asymmetric (big.LITTLE) sockets: mr-granular work
  units assigned greedily by per-thread throughput weight (makespan-
  minimizing, asymptotically proportional), degenerating bit-for-bit
  to :func:`split_even` / :func:`strip_spans` when every weight is
  equal.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import List, Tuple

from ..util.errors import ParallelError
from ..util.validation import ceil_div, check_positive_int


def split_even(extent: int, parts: int) -> List[int]:
    """Split ``extent`` into ``parts`` non-negative chunks, balanced.

    The first ``extent % parts`` chunks get the extra element.  Chunks may
    be zero when parts > extent (idle threads — a real phenomenon the
    OpenBLAS small-M analysis depends on).
    """
    check_positive_int(parts, "parts", ParallelError)
    if extent < 0:
        raise ParallelError(f"extent must be >= 0, got {extent}")
    base, extra = divmod(extent, parts)
    return [base + (1 if i < extra else 0) for i in range(parts)]


def strip_spans(extent: int, chunks, nominal=None) -> List[Tuple[int, int]]:
    """Canonical ``[start, end)`` row span of each per-thread chunk.

    Thread ``t``'s start offset is fixed by the *nominal* partition of
    ``extent`` over ``len(chunks)`` threads — by default the balanced
    :func:`split_even` prefix sums (how the 1-D M split assigns row
    blocks); a throughput-weighted lowering passes its
    :func:`weighted_split` result as ``nominal`` so placement follows
    the weighted offsets.  Each span extends by its *declared* chunk
    size.  For a legal partition ``chunks == nominal`` and the spans
    tile ``[0, extent)`` exactly — no gap, no overlap; an inflated
    chunk overlaps its successor's rows (the V411 race signature) and a
    deflated one leaves a gap.  This is the placement both the static
    race analyzer (:mod:`repro.verify.races`) and its dynamic tiling
    oracle (``tests/test_partition_tiling.py``) agree on.
    """
    if not chunks:
        return []
    placement = (
        list(nominal) if nominal is not None
        else split_even(extent, len(chunks))
    )
    if len(placement) != len(chunks):
        raise ParallelError(
            f"nominal partition has {len(placement)} entries for "
            f"{len(chunks)} chunks"
        )
    offset, spans = 0, []
    for nom, declared in zip(placement, chunks):
        spans.append((offset, offset + max(declared, 0)))
        offset += nom
    return spans


def weighted_split(extent: int, weights, granule: int = 1) -> List[int]:
    """Split ``extent`` into ``len(weights)`` chunks by throughput weight.

    The extent is divided into work units of ``granule`` rows (pass the
    kernel's ``mr`` so no thread is handed a sliver thinner than one
    register tile — edge kernels are so much slower that row-
    proportional splits can *lose* to the balanced one) and the units
    are assigned greedily to minimize the makespan: each unit goes to
    the thread whose finish time ``(count + 1) / weight`` stays
    smallest (ties to the lower index).  Unit counts are asymptotically
    proportional to the weights.  When every weight is equal the unit
    assignment is *exactly* :func:`split_even` — at ``granule=1`` the
    homogeneous fast path stays bit-for-bit — and chunks may be zero
    for threads too slow to earn a unit (idle threads, like the
    balanced split).  The last nonzero chunk absorbs the final partial
    granule so the chunks always sum to ``extent``.
    """
    if not weights:
        raise ParallelError("weights must be non-empty")
    if extent < 0:
        raise ParallelError(f"extent must be >= 0, got {extent}")
    check_positive_int(granule, "granule", ParallelError)
    for w in weights:
        if not w >= 0:
            raise ParallelError(f"weights must be >= 0, got {w!r}")
    total = float(sum(weights))
    if total <= 0:
        raise ParallelError("at least one weight must be positive")
    units = extent if granule == 1 else ceil_div(extent, granule)
    if all(w == weights[0] for w in weights):
        counts = split_even(units, len(weights))
    else:
        counts = [0] * len(weights)
        ready = [
            ((counts[i] + 1) / float(w), i)
            for i, w in enumerate(weights) if w > 0
        ]
        heapq.heapify(ready)
        for _ in range(units):
            _, i = heapq.heappop(ready)
            counts[i] += 1
            heapq.heappush(ready, ((counts[i] + 1) / float(weights[i]), i))
    if granule == 1:
        return counts
    chunks = [c * granule for c in counts]
    excess = sum(chunks) - extent
    if excess:
        for i in reversed(range(len(chunks))):
            if chunks[i] > 0:
                chunks[i] -= excess
                break
    return chunks


def weighted_spans(
    extent: int, weights, granule: int = 1
) -> List[Tuple[int, int]]:
    """``[start, end)`` spans of the throughput-weighted partition.

    Prefix sums of :func:`weighted_split`: the spans tile ``[0, extent)``
    exactly (no gap, no overlap) and degenerate to
    :func:`strip_spans` of the balanced split when all weights are
    equal.
    """
    chunks = weighted_split(extent, weights, granule=granule)
    return strip_spans(extent, chunks, nominal=chunks)


def core_class_weights(machine, threads: int) -> List[float]:
    """Per-thread throughput weight under compact placement.

    Thread ``t`` runs on core ``t``; its weight is its core class's
    ``vector_bits x fma_ports x freq_hz`` — proportional to
    ``flops_per_cycle(dtype) x frequency`` for every dtype, so one
    weight vector serves all precisions.  On a homogeneous machine all
    weights are equal and :func:`weighted_split` degenerates to
    :func:`split_even`.
    """
    check_positive_int(threads, "threads", ParallelError)
    classes = machine.classes
    weights = []
    for t in range(threads):
        cls = classes[machine.core_class_of(t % machine.n_cores)]
        core = cls.core
        weights.append(
            float(core.vector_bits * core.ports["fma"] * core.freq_hz)
        )
    return weights


def openblas_partition(m: int, n: int, threads: int) -> List[Tuple[int, int]]:
    """Per-thread (m_chunk, n_chunk) under the OpenBLAS scheme (1-D over M)."""
    check_positive_int(threads, "threads", ParallelError)
    return [(mi, n) for mi in split_even(m, threads)]


def grid_partition(m: int, n: int, threads: int) -> List[Tuple[int, int]]:
    """Per-thread (m_chunk, n_chunk) on a balanced 2-D grid.

    Chooses the factorization tm x tn = threads with tm/tn closest to the
    m/n aspect ratio.
    """
    check_positive_int(threads, "threads", ParallelError)
    best = None
    for tm in _divisors(threads):
        tn = threads // tm
        score = abs(math.log((m / tm) / max(n / tn, 1e-9)))
        if best is None or score < best[0]:
            best = (score, tm, tn)
    _, tm, tn = best
    m_chunks = split_even(m, tm)
    n_chunks = split_even(n, tn)
    return [(mi, nj) for mi in m_chunks for nj in n_chunks]


@dataclass(frozen=True)
class BlisFactorization:
    """Thread counts assigned to the parallelizable loops."""

    jc: int  # Layer-1 jj loop (N, outer)
    ic: int  # Layer-3 ii loop (M)
    jr: int  # Layer-4 j loop (N, within a GEBP)
    ir: int = 1  # Layer-5 i loop (rarely used)

    @property
    def threads(self) -> int:
        """Total thread count."""
        return self.jc * self.ic * self.jr * self.ir

    @property
    def pack_b_group(self) -> int:
        """Threads cooperating on (and synchronizing after) one B-panel pack."""
        return self.ic * self.jr * self.ir

    @property
    def pack_a_group(self) -> int:
        """Threads cooperating on one A-block pack."""
        return self.jr * self.ir


def _divisors(x: int) -> List[int]:
    return [d for d in range(1, x + 1) if x % d == 0]


def blis_factorization(
    m: int,
    n: int,
    threads: int,
    mr: int,
    nr: int,
    min_tile_multiples: int = 2,
    max_sync_group: int = 8,
) -> BlisFactorization:
    """Choose (jc, ic, jr) the way the paper describes BLIS doing it.

    Rule-based, mirroring Sec. III-D:

    1. *Do not parallelize a small dimension*: pick the largest divisor
       ``ic`` of ``threads`` keeping at least ``min_tile_multiples`` mr-tiles
       of M per thread (M=64 with 64 threads must not end at mc=mr=1).
    2. Split the remaining threads between jr (inner, shares one packed B
       panel — better locality) and jc (outer), keeping the pack-B barrier
       group ``ic*jr`` at or below ``max_sync_group`` so synchronization
       stays fine-grained (the paper's M=128 example: 8 threads per sync).
    3. Never fragment N below ``min_tile_multiples`` nr-tiles per thread.
    """
    check_positive_int(threads, "threads", ParallelError)
    check_positive_int(mr, "mr", ParallelError)
    check_positive_int(nr, "nr", ParallelError)
    if m <= 0 or n <= 0:
        raise ParallelError(f"invalid problem extents {m}x{n}")

    ic = 1
    for cand in _divisors(threads):
        if m // cand >= min_tile_multiples * mr:
            ic = cand
    rest = threads // ic

    jr = 1
    for cand in _divisors(rest):
        group = ic * cand
        jc = rest // cand
        if group > max_sync_group:
            continue
        if n // (jc * cand) < min_tile_multiples * nr:
            continue
        jr = cand
    jc = rest // jr
    # when N cannot feed all jc*jr column workers some simply receive empty
    # chunks (idle threads), exactly like the real runtime
    return BlisFactorization(jc=jc, ic=ic, jr=jr)


def factorization_candidates(
    m: int,
    n: int,
    threads: int,
    mr: int,
    nr: int,
) -> List[BlisFactorization]:
    """Distinct loop factorizations worth pricing for one (m, n) problem.

    The adaptive tuner's partitioning search space: the paper's rule-based
    BLIS choice, the scored alternative, the two single-dimension extremes
    (all-M like OpenBLAS, all-N), and a balanced 2-D split.  Deduplicated;
    the rule-based choice always comes first so a cost tie keeps it.
    """
    check_positive_int(threads, "threads", ParallelError)
    candidates = [
        blis_factorization(m, n, threads, mr, nr),
        blis_factorization_scored(m, n, threads, mr, nr),
        BlisFactorization(jc=1, ic=threads, jr=1),
        BlisFactorization(jc=threads, ic=1, jr=1),
    ]
    root = int(math.isqrt(threads))
    for tm in range(root, 0, -1):
        if threads % tm == 0:
            candidates.append(
                BlisFactorization(jc=threads // tm, ic=tm, jr=1)
            )
            break
    seen, unique = set(), []
    for fact in candidates:
        ident = (fact.jc, fact.ic, fact.jr, fact.ir)
        if ident not in seen:
            seen.add(ident)
            unique.append(fact)
    return unique


def blis_factorization_scored(
    m: int,
    n: int,
    threads: int,
    mr: int,
    nr: int,
    min_tile_multiples: int = 1,
) -> BlisFactorization:
    """Score-based alternative factorizer (used by the parallelization
    ablation benchmark to contrast with the paper's rule-based choice).

    Minimizes predicted edge waste, then synchronization span, then load
    imbalance over all divisor triples.
    """
    check_positive_int(threads, "threads", ParallelError)
    check_positive_int(mr, "mr", ParallelError)
    check_positive_int(nr, "nr", ParallelError)
    best: Tuple[float, BlisFactorization] = None
    for jc in _divisors(threads):
        rest = threads // jc
        for ic in _divisors(rest):
            jr = rest // ic
            fact = BlisFactorization(jc=jc, ic=ic, jr=jr)
            m_per = m / ic
            n_per = n / (jc * jr)
            waste = 0.0
            m_pad = ceil_div(max(int(math.ceil(m_per)), 1), mr) * mr
            n_pad = ceil_div(max(int(math.ceil(n_per)), 1), nr) * nr
            waste += m_pad / max(m_per, 1e-9) - 1.0
            waste += n_pad / max(n_per, 1e-9) - 1.0
            if m_per < min_tile_multiples * mr and ic > 1:
                waste += 10.0 * ic
            if n_per < min_tile_multiples * nr and (jc * jr) > 1:
                waste += 10.0 * (jc * jr)
            sync_span = math.log2(max(fact.pack_b_group, 1) + 1)
            imbalance = (ceil_div(m, max(ic, 1)) * ic - m) / max(m, 1)
            score = waste * 100.0 + sync_span + imbalance
            if best is None or score < best[0]:
                best = (score, fact)
    return best[1]
