"""BLASFEO's panel-major storage format (paper Fig. 3).

A panel-major matrix is split into horizontal panels of a fixed height
``ps``; inside each panel the elements are stored column by column, so one
panel column (``ps`` contiguous elements) is exactly one SIMD-friendly
sliver.  Element ``(i, j)`` lives at::

    panel = i // ps
    offset = panel * (ps * padded_cols) + j * ps + (i % ps)

The last panel is zero-padded to ``ps`` rows.  Because the format already
*is* the micro-kernel's input layout, BLASFEO needs no packing step inside
GEMM — the core reason it dominates the paper's single-threaded SMM results.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..util.errors import LayoutError
from ..util.validation import ceil_div, check_positive_int


@dataclass
class PanelMajorMatrix:
    """An (rows x cols) matrix held in panel-major storage."""

    rows: int
    cols: int
    ps: int
    #: backing store, shape (n_panels * ps, cols); rows beyond ``rows`` are 0
    data: np.ndarray

    def __post_init__(self) -> None:
        check_positive_int(self.ps, "ps", LayoutError)
        if self.rows < 0 or self.cols < 0:
            raise LayoutError(f"invalid shape {self.rows}x{self.cols}")
        expected_rows = ceil_div(max(self.rows, 1), self.ps) * self.ps
        if self.data.shape != (expected_rows, self.cols):
            raise LayoutError(
                f"backing store shape {self.data.shape} != expected "
                f"({expected_rows}, {self.cols})"
            )

    @property
    def n_panels(self) -> int:
        """Number of ps-row panels (including the padded tail panel)."""
        return self.data.shape[0] // self.ps

    @property
    def padded_rows(self) -> int:
        """Row count including tail padding."""
        return self.data.shape[0]

    @property
    def nbytes(self) -> int:
        """Backing-store size in bytes."""
        return self.data.nbytes

    def panel(self, index: int) -> np.ndarray:
        """View of panel ``index`` (shape (ps, cols))."""
        if not 0 <= index < self.n_panels:
            raise LayoutError(f"panel {index} out of range [0, {self.n_panels})")
        return self.data[index * self.ps : (index + 1) * self.ps, :]

    def sliver(self, panel_index: int, col: int) -> np.ndarray:
        """One contiguous panel column (ps elements)."""
        if not 0 <= col < self.cols:
            raise LayoutError(f"column {col} out of range [0, {self.cols})")
        return self.panel(panel_index)[:, col]

    def to_dense(self, order: str = "F") -> np.ndarray:
        """The logical (rows x cols) matrix as a dense array."""
        return np.asarray(self.data[: self.rows, :], order=order).copy(order=order)

    def element_offset(self, i: int, j: int) -> int:
        """Linear element offset of ``(i, j)`` in the flat panel-major buffer."""
        if not (0 <= i < self.rows and 0 <= j < self.cols):
            raise LayoutError(
                f"index ({i}, {j}) out of range for {self.rows}x{self.cols}"
            )
        panel = i // self.ps
        return panel * (self.ps * self.cols) + j * self.ps + (i % self.ps)


def to_panel_major(dense: np.ndarray, ps: int) -> PanelMajorMatrix:
    """Convert a dense matrix to panel-major storage (the format-conversion
    step BLASFEO performs once, *outside* the GEMM hot path)."""
    check_positive_int(ps, "ps", LayoutError)
    if dense.ndim != 2:
        raise LayoutError(f"expected a 2-D matrix, got ndim={dense.ndim}")
    rows, cols = dense.shape
    padded = ceil_div(max(rows, 1), ps) * ps
    data = np.zeros((padded, cols), dtype=dense.dtype)
    data[:rows, :] = dense
    return PanelMajorMatrix(rows=rows, cols=cols, ps=ps, data=data)


def from_panel_major(pm: PanelMajorMatrix, order: str = "F") -> np.ndarray:
    """Inverse of :func:`to_panel_major`."""
    return pm.to_dense(order=order)


def conversion_element_moves(rows: int, cols: int, ps: int) -> int:
    """Element copies needed to convert to panel-major (cost accounting).

    Every logical element moves exactly once; padded tail rows are zeroed,
    which we charge as stores too.
    """
    if rows < 0 or cols < 0:
        raise LayoutError(f"invalid shape {rows}x{cols}")
    padded = ceil_div(max(rows, 1), ps) * ps
    return padded * cols
