"""Matrix layouts, the simulated address space and NUMA placement."""

from .addressspace import AddressSpace, Allocation
from .matrix import MatrixHandle, bind, make_matrix
from .panelmajor import (
    PanelMajorMatrix,
    conversion_element_moves,
    from_panel_major,
    to_panel_major,
)

__all__ = [
    "AddressSpace",
    "Allocation",
    "MatrixHandle",
    "make_matrix",
    "bind",
    "PanelMajorMatrix",
    "to_panel_major",
    "from_panel_major",
    "conversion_element_moves",
]
