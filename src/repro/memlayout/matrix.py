"""Matrix handles: a NumPy payload plus simulated placement metadata.

GEMM drivers compute on the NumPy array (functional correctness) while the
performance model consults the handle's storage order and NUMA placement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..util.errors import LayoutError
from .addressspace import AddressSpace, Allocation

_ORDERS = ("col", "row")


@dataclass
class MatrixHandle:
    """A dense operand with layout and placement metadata."""

    array: np.ndarray
    order: str = "col"
    #: NUMA panel whose memory controller owns the pages (first touch)
    home_panel: int = 0
    allocation: Optional[Allocation] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.array.ndim != 2:
            raise LayoutError(f"matrix must be 2-D, got ndim={self.array.ndim}")
        if self.order not in _ORDERS:
            raise LayoutError(f"order must be one of {_ORDERS}, got {self.order!r}")
        want_flag = "F_CONTIGUOUS" if self.order == "col" else "C_CONTIGUOUS"
        if not self.array.flags[want_flag]:
            raise LayoutError(
                f"array is not {self.order}-major contiguous; pass "
                f"np.asarray(a, order={'F' if self.order == 'col' else 'C'!r})"
            )

    @property
    def rows(self) -> int:
        """Row count (M or K)."""
        return int(self.array.shape[0])

    @property
    def cols(self) -> int:
        """Column count (K or N)."""
        return int(self.array.shape[1])

    @property
    def itemsize(self) -> int:
        """Element width in bytes."""
        return int(self.array.dtype.itemsize)

    @property
    def leading_dim(self) -> int:
        """BLAS leading dimension (contiguous extent)."""
        return self.rows if self.order == "col" else self.cols

    @property
    def nbytes(self) -> int:
        """Payload size."""
        return int(self.array.nbytes)

    def element_address(self, i: int, j: int) -> int:
        """Simulated byte address of element ``(i, j)``.

        Requires the handle to be bound to an :class:`AddressSpace`
        allocation (see :func:`bind`).
        """
        if self.allocation is None:
            raise LayoutError("matrix is not bound to an address space")
        if not (0 <= i < self.rows and 0 <= j < self.cols):
            raise LayoutError(
                f"index ({i}, {j}) out of range for {self.rows}x{self.cols}"
            )
        if self.order == "col":
            offset = j * self.rows + i
        else:
            offset = i * self.cols + j
        return self.allocation.base + offset * self.itemsize


def make_matrix(
    array: np.ndarray,
    order: str = "col",
    home_panel: int = 0,
) -> MatrixHandle:
    """Wrap ``array`` (copying into the requested order if needed)."""
    np_order = "F" if order == "col" else "C"
    payload = np.asarray(array, order=np_order)
    return MatrixHandle(array=payload, order=order, home_panel=home_panel)


def bind(
    handle: MatrixHandle, space: AddressSpace, name: str
) -> MatrixHandle:
    """Assign the handle a base address on its home panel."""
    allocation = space.alloc(name, handle.nbytes, panel=handle.home_panel)
    handle.allocation = allocation
    return handle
