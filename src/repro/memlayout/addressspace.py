"""A flat simulated address space with NUMA placement.

The functional side of the reproduction computes on NumPy arrays; the cache
simulator and the NUMA model additionally need *addresses*.  This module
provides a bump allocator that assigns each buffer a base address, aligned
and tagged with the panel (NUMA domain) that owns its memory, mimicking
first-touch placement on Phytium 2000+.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..util.errors import LayoutError
from ..util.validation import check_non_negative_int, check_positive_int, round_up


@dataclass(frozen=True)
class Allocation:
    """One allocated buffer: address range plus owning NUMA panel."""

    name: str
    base: int
    nbytes: int
    panel: int

    @property
    def end(self) -> int:
        """One past the last byte."""
        return self.base + self.nbytes

    def contains(self, addr: int) -> bool:
        """True when ``addr`` falls inside this allocation."""
        return self.base <= addr < self.end


class AddressSpace:
    """Bump allocator over a flat byte-addressed space."""

    def __init__(self, alignment: int = 64) -> None:
        check_positive_int(alignment, "alignment")
        if alignment & (alignment - 1):
            raise LayoutError(f"alignment must be a power of two, got {alignment}")
        self.alignment = alignment
        self._next = alignment  # keep address 0 unused as a guard
        self._allocations: List[Allocation] = []
        self._by_name: Dict[str, Allocation] = {}

    def alloc(self, name: str, nbytes: int, panel: int = 0) -> Allocation:
        """Allocate ``nbytes`` on NUMA ``panel``; names must be unique."""
        check_positive_int(nbytes, "nbytes")
        check_non_negative_int(panel, "panel")
        if name in self._by_name:
            raise LayoutError(f"allocation name {name!r} already in use")
        base = round_up(self._next, self.alignment)
        allocation = Allocation(name=name, base=base, nbytes=nbytes, panel=panel)
        self._next = base + nbytes
        self._allocations.append(allocation)
        self._by_name[name] = allocation
        return allocation

    def lookup(self, name: str) -> Allocation:
        """Allocation registered under ``name``."""
        try:
            return self._by_name[name]
        except KeyError as exc:
            raise LayoutError(f"no allocation named {name!r}") from exc

    def owner_of(self, addr: int) -> Allocation:
        """Allocation covering ``addr`` (linear scan; diagnostics only)."""
        for allocation in self._allocations:
            if allocation.contains(addr):
                return allocation
        raise LayoutError(f"address {addr:#x} is not allocated")

    @property
    def bytes_allocated(self) -> int:
        """Total bytes handed out."""
        return sum(a.nbytes for a in self._allocations)

    def panel_of(self, addr: int) -> int:
        """NUMA panel owning ``addr``."""
        return self.owner_of(addr).panel
