"""The paper's published numbers, digitized.

Table II is printed in full in the paper; encoding it as data lets the
benchmark harness render model-vs-paper side by side and quantify trend
agreement (rank correlations), instead of hand-waving "the shape matches".
Figure values are only described qualitatively in the text, so only the
table and the headline scalar callouts are digitized.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..util.errors import ConfigError

#: Table II of the paper: M -> (Kernel%, PackA%, PackB%, Sync%, KernelEff%)
PAPER_TABLE2: Dict[int, Tuple[float, float, float, float, float]] = {
    16: (35.5, 2.0, 56.9, 4.2, 43.6),
    32: (45.1, 2.1, 47.7, 4.0, 59.3),
    48: (50.0, 5.0, 38.4, 5.6, 68.6),
    64: (57.9, 4.5, 31.2, 5.6, 73.6),
    80: (57.4, 5.6, 30.4, 5.8, 74.9),
    96: (64.5, 4.0, 25.1, 5.7, 71.8),
    112: (68.4, 3.9, 21.6, 5.5, 72.8),
    128: (70.2, 10.0, 17.4, 1.7, 67.7),
    144: (74.0, 10.8, 12.5, 2.0, 71.1),
    160: (74.4, 7.5, 15.3, 2.2, 67.6),
    176: (74.4, 8.8, 13.0, 3.1, 72.8),
    192: (79.6, 5.5, 14.0, 0.3, 73.5),
    208: (77.3, 5.9, 13.8, 2.5, 73.6),
    224: (79.8, 6.9, 10.5, 2.4, 75.2),
    240: (78.2, 6.4, 10.4, 4.5, 74.7),
    256: (82.2, 6.5, 9.7, 1.2, 74.6),
}

#: headline scalar callouts from the running text
PAPER_SCALARS = {
    "blasfeo_best_fraction": 0.96,  # "BLASFEO can reach 96% of the peak"
    "eigen_best_fraction": 0.58,  # "Eigen can only reach 58%"
    "openblas_80_fraction": 0.835,  # "performance of M=N=K=80 is 83.5%"
    "kernel_best_fraction": 0.933,  # "best performance (93.3%) at M=N=80"
    "kernel_worst_fraction": 0.718,  # "in the worst cases ... 71.8%"
    "blis_mt_peak_fraction": 0.60,  # "peaking at around 60%"
    "packing_worst_share": 0.50,  # "accounts for more than 50%"
    "peak_gflops_fp64": 563.2,
}


def spearman_rank_correlation(
    xs: Sequence[float], ys: Sequence[float]
) -> float:
    """Spearman's rho between two equal-length sequences."""
    if len(xs) != len(ys):
        raise ConfigError(f"length mismatch: {len(xs)} vs {len(ys)}")
    if len(xs) < 3:
        raise ConfigError("need at least 3 points for a rank correlation")
    rx = _ranks(xs)
    ry = _ranks(ys)
    rx_c = rx - rx.mean()
    ry_c = ry - ry.mean()
    denom = float(np.sqrt((rx_c ** 2).sum() * (ry_c ** 2).sum()))
    if denom == 0:
        raise ConfigError("constant sequence has no rank correlation")
    return float((rx_c * ry_c).sum() / denom)


def _ranks(values: Sequence[float]) -> np.ndarray:
    arr = np.asarray(values, dtype=float)
    order = arr.argsort()
    ranks = np.empty_like(arr)
    ranks[order] = np.arange(len(arr), dtype=float)
    # average ties
    for v in np.unique(arr):
        mask = arr == v
        if mask.sum() > 1:
            ranks[mask] = ranks[mask].mean()
    return ranks


def table2_side_by_side(model_table) -> List[List[object]]:
    """Rows interleaving the paper's Table II with the model's.

    ``model_table`` is the :class:`TableResult` from
    :func:`repro.analysis.table2`; Ms must match the paper's grid.
    """
    rows = []
    for row in model_table.rows:
        m = row[0]
        if m not in PAPER_TABLE2:
            raise ConfigError(f"model table has M={m}, not in the paper grid")
        paper = PAPER_TABLE2[m]
        rows.append([
            m,
            paper[0], row[1],   # kernel
            paper[2], row[3],   # packB
            paper[3], row[4],   # sync
            paper[4], row[5],   # kernel efficiency
        ])
    return rows


def table2_trend_agreement(model_table) -> Dict[str, float]:
    """Spearman rho between paper and model for each Table II column."""
    ms = [row[0] for row in model_table.rows]
    paper_cols = {
        "kernel": [PAPER_TABLE2[m][0] for m in ms],
        "pack_b": [PAPER_TABLE2[m][2] for m in ms],
        "kernel_eff": [PAPER_TABLE2[m][4] for m in ms],
    }
    model_cols = {
        "kernel": [row[1] for row in model_table.rows],
        "pack_b": [row[3] for row in model_table.rows],
        "kernel_eff": [row[5] for row in model_table.rows],
    }
    return {
        name: spearman_rank_correlation(paper_cols[name], model_cols[name])
        for name in paper_cols
    }
