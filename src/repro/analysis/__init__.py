"""Experiment drivers and result containers for the paper reproduction."""

from .experiments import (
    LIBRARIES,
    MT_LIBRARIES,
    fig5,
    fig5a,
    fig5b,
    fig5c,
    fig5d,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig10_heterogeneous,
    reference_comparison,
    table1,
    table2,
)
from .claims import Claim, all_claims, failed_claims, verify_reproduction
from .paperdata import (
    PAPER_SCALARS,
    PAPER_TABLE2,
    spearman_rank_correlation,
    table2_side_by_side,
    table2_trend_agreement,
)
from .report import generate_report
from .sensitivity import (
    apply_parameter,
    edge_kernel_metric,
    mutable_parameters,
    smm_efficiency_metric,
    sweep_parameter,
)
from .results import FigureResult, FigureSeries, TableResult

__all__ = [
    "FigureResult",
    "FigureSeries",
    "TableResult",
    "LIBRARIES",
    "MT_LIBRARIES",
    "fig5",
    "fig5a",
    "fig5b",
    "fig5c",
    "fig5d",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig10_heterogeneous",
    "table1",
    "table2",
    "reference_comparison",
    "generate_report",
    "Claim",
    "all_claims",
    "verify_reproduction",
    "failed_claims",
    "PAPER_TABLE2",
    "PAPER_SCALARS",
    "spearman_rank_correlation",
    "table2_side_by_side",
    "table2_trend_agreement",
    "sweep_parameter",
    "apply_parameter",
    "mutable_parameters",
    "smm_efficiency_metric",
    "edge_kernel_metric",
]
