"""The paper's claims as executable checks.

``EXPERIMENTS.md`` asserts that every shape claim of the paper reproduces;
this module makes those assertions *code*: a registry of claims, each with
the paper's statement, the quantity our model measures, and a tolerance.
:func:`verify_reproduction` evaluates all of them and returns a verdict
table — the programmatic core of the reproduction, runnable via
``python -m repro verify``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np

from ..machine.config import MachineConfig
from .results import TableResult


@dataclass(frozen=True)
class Claim:
    """One paper claim with its executable check."""

    claim_id: str
    source: str  # where in the paper
    statement: str
    #: returns (measured description, passed)
    check: Callable[[MachineConfig], tuple]


def _fig5_claims() -> List[Claim]:
    from . import experiments

    def blasfeo_best(machine):
        fig = experiments.fig5a(machine)
        best = max(fig.series_by_name("blasfeo").ys)
        return f"BLASFEO best case {best:.1%}", best > 0.90

    def eigen_worst(machine):
        fig = experiments.fig5a(machine)
        eigen = max(fig.series_by_name("eigen").ys)
        others = min(
            max(fig.series_by_name(lib).ys)
            for lib in ("openblas", "blis", "blasfeo")
        )
        return f"Eigen best {eigen:.1%} vs others' best >= {others:.1%}", \
            eigen < others

    def edge_fluctuation(machine):
        from ..blas import make_openblas

        drv = make_openblas(machine)
        e80 = drv.cost_gemm(80, 80, 80).efficiency(machine, np.float32)
        e75 = drv.cost_gemm(75, 75, 75).efficiency(machine, np.float32)
        return f"80^3 at {e80:.1%} vs 75^3 at {e75:.1%}", e80 > e75 * 1.05

    return [
        Claim("fig5-blasfeo-best", "Sec. III-A, Fig. 5",
              "BLASFEO performs significantly better, up to ~96% of peak",
              blasfeo_best),
        Claim("fig5-eigen-worst", "Sec. III-A, Fig. 5",
              "using Eigen yields bad GEMM performance (best ~58%)",
              eigen_worst),
        Claim("fig5-edge-sawtooth", "Sec. III-B",
              "M=N=K=80 significantly better than neighbouring 75",
              edge_fluctuation),
    ]


def _fig6_claims() -> List[Claim]:
    from . import experiments

    def packing_over_half(machine):
        fig = experiments.fig6(machine)
        worst = max(fig.series_by_name("small-M").ys)
        return f"worst packing share {worst:.1%}", worst > 0.5

    def k_independent(machine):
        fig = experiments.fig6(machine)
        small_k = max(fig.series_by_name("small-K").ys)
        return f"small-K packing share <= {small_k:.1%}", small_k < 0.2

    return [
        Claim("fig6-over-half", "Sec. III-A, Fig. 6",
              "in the worst cases packing accounts for more than 50%",
              packing_over_half),
        Claim("fig6-k-free", "Sec. III-A, Eq. 3",
              "when K is very small the packing overhead can be ignored",
              k_independent),
    ]


def _fig9_claims() -> List[Claim]:
    from . import experiments

    def best_93(machine):
        sweeps = experiments.fig9(machine)
        best = max(sweeps["sweep-M"].series[0].ys)
        return f"best kernel efficiency {best:.1%}", 0.88 < best < 0.97

    return [
        Claim("fig9-best", "Sec. III-B/C, Fig. 9",
              "the kernel reaches the best performance ~93.3% of peak",
              best_93),
    ]


def _fig10_claims() -> List[Claim]:
    from . import experiments

    def blis_best(machine):
        figs = experiments.fig10(machine)
        fig = figs["small-M"]
        blis = fig.series_by_name("blis").ys
        ob = fig.series_by_name("openblas").ys
        eig = fig.series_by_name("eigen").ys
        wins = sum(1 for b, o, e in zip(blis, ob, eig) if b > o and b > e)
        return f"BLIS best at {wins}/{len(blis)} points", \
            wins >= len(blis) - 2

    def openblas_poor(machine):
        figs = experiments.fig10(machine)
        first = figs["small-M"].series_by_name("openblas").ys[0]
        return f"OpenBLAS at M=16: {first:.1%}", first < 0.1

    def blis_peak(machine):
        figs = experiments.fig10(machine)
        peak = max(figs["small-M"].series_by_name("blis").ys)
        return f"BLIS peak {peak:.1%}", 0.5 < peak < 0.85

    return [
        Claim("fig10-blis-best", "Sec. III-D, Fig. 10",
              "BLIS performs the best with 64 threads", blis_best),
        Claim("fig10-openblas-poor", "Sec. III-D, Fig. 10",
              "OpenBLAS has especially poor performance when M is small",
              openblas_poor),
        Claim("fig10-blis-60", "Sec. III-D",
              "BLIS the best performer, peaking at around 60%", blis_peak),
    ]


def _table2_claims() -> List[Claim]:
    from . import experiments

    def packb_dominates(machine):
        t = experiments.table2(machine)
        first, last = t.rows[0][3], t.rows[-1][3]
        return f"PackB {first}% at M=16 -> {last}% at M=256", \
            first > 50 and last < 25

    def kernel_grows(machine):
        t = experiments.table2(machine)
        first, last = t.rows[0][1], t.rows[-1][1]
        return f"Kernel {first}% -> {last}%", first < 35 and last > 65

    return [
        Claim("table2-packb", "Sec. III-D, Table II",
              "the main overhead comes from kernel and PackB; PackB "
              "dominates small M", packb_dominates),
        Claim("table2-kernel", "Sec. III-D, Table II",
              "the kernel share grows with M (35.5% -> 82.2%)",
              kernel_grows),
    ]


def _section4_claims() -> List[Claim]:
    def reference_wins(machine):
        from ..blas import make_blasfeo, make_blis, make_eigen, make_openblas
        from ..core import ReferenceSmmDriver

        sizes = range(5, 101, 5)
        ref = ReferenceSmmDriver(machine)
        ref_avg = float(np.mean([
            ref.cost_gemm(s, s, s)[0].efficiency(machine, np.float32)
            for s in sizes
        ]))
        lib_avgs = {}
        for name, factory in (
            ("openblas", make_openblas), ("blis", make_blis),
            ("blasfeo", make_blasfeo), ("eigen", make_eigen),
        ):
            drv = factory(machine)
            lib_avgs[name] = float(np.mean([
                drv.cost_gemm(s, s, s).efficiency(machine, np.float32)
                for s in sizes
            ]))
        best_lib = max(lib_avgs.values())
        return f"reference avg {ref_avg:.1%} vs best library {best_lib:.1%}", \
            ref_avg > best_lib

    return [
        Claim("sec4-reference", "Sec. IV",
              "a reference SMM with the four proposed features outperforms "
              "the existing libraries on SMM", reference_wins),
    ]


def all_claims() -> List[Claim]:
    """Every registered claim, in paper order."""
    return (
        _fig5_claims() + _fig6_claims() + _fig9_claims()
        + _fig10_claims() + _table2_claims() + _section4_claims()
    )


def verify_reproduction(machine: MachineConfig) -> TableResult:
    """Evaluate every claim; returns the verdict table."""
    rows = []
    for claim in all_claims():
        measured, passed = claim.check(machine)
        rows.append([
            claim.claim_id,
            claim.source,
            measured,
            "PASS" if passed else "FAIL",
        ])
    return TableResult(
        table_id="reproduction-verdicts",
        headers=["claim", "paper source", "measured", "verdict"],
        rows=rows,
    )


def failed_claims(verdicts: TableResult) -> Dict[str, str]:
    """claim-id -> measured text for every failing claim (empty = success)."""
    return {
        row[0]: row[2] for row in verdicts.rows if row[3] != "PASS"
    }
