"""Experiment drivers: one function per paper figure/table.

These are the single source of truth for the reproduction — the benchmark
harness, the EXPERIMENTS.md generator and the integration tests all call
these functions.  Everything runs on the cost models (no operand arrays),
so a full figure takes well under a second.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..blas import make_blasfeo, make_blis, make_eigen, make_openblas
from ..core.reference import ReferenceSmmDriver
from ..kernels.catalog import table1_rows
from ..kernels.generator import KernelSpec, MicroKernelGenerator
from ..machine.config import MachineConfig
from ..parallel.executor import MultithreadedGemm
from ..pipeline.scheduler import OoOScheduler, render_schedule
from ..pipeline.steady import SteadyStateAnalyzer, bound_analysis
from ..timing.models import p2c
from ..workloads import sweeps
from .results import FigureResult, FigureSeries, TableResult

LIBRARIES = ("openblas", "blis", "blasfeo", "eigen")
MT_LIBRARIES = ("openblas", "blis", "eigen")


def _single_thread_drivers(machine: MachineConfig, dtype=np.float32) -> Dict[str, object]:
    return {
        "openblas": make_openblas(machine, dtype=dtype),
        "blis": make_blis(machine, dtype=dtype),
        "blasfeo": make_blasfeo(machine, dtype=dtype),
        "eigen": make_eigen(machine, dtype=dtype),
    }


def _efficiency(timing, machine, dtype, n_cores=1) -> float:
    return timing.efficiency(machine, dtype, n_cores)


# ---------------------------------------------------------------------------
# Figure 5: single-thread SMM performance
# ---------------------------------------------------------------------------


def fig5(
    machine: MachineConfig,
    shapes: Sequence[Tuple[int, int, int]],
    figure_id: str,
    x_of: int,
    dtype=np.float32,
    libraries: Sequence[str] = LIBRARIES,
    include_reference: bool = False,
) -> FigureResult:
    """Single-thread efficiency of every library over ``shapes``.

    ``x_of``: which index of (m, n, k) is the swept axis.
    """
    drivers = _single_thread_drivers(machine, dtype)
    xs = [shape[x_of] for shape in shapes]
    series = []
    for lib in libraries:
        drv = drivers[lib]
        ys = [
            _efficiency(drv.cost_gemm(m, n, k), machine, dtype)
            for (m, n, k) in shapes
        ]
        series.append(FigureSeries(name=lib, ys=ys))
    if include_reference:
        ref = ReferenceSmmDriver(machine, dtype=dtype)
        ys = [
            _efficiency(ref.cost_gemm(m, n, k)[0], machine, dtype)
            for (m, n, k) in shapes
        ]
        series.append(FigureSeries(name="reference", ys=ys))
    return FigureResult(
        figure_id=figure_id,
        x_label="MNK"[x_of] if x_of < 3 else "size",
        y_label="fraction of single-core peak",
        xs=xs,
        series=series,
    )


def fig5a(machine: MachineConfig, dtype=np.float32, **kw) -> FigureResult:
    """Fig. 5(a): square 5..200."""
    return fig5(machine, sweeps.fig5a_square(), "fig5a", 0, dtype, **kw)


def fig5b(machine: MachineConfig, dtype=np.float32, **kw) -> FigureResult:
    """Fig. 5(b): M swept 2..40, N=K=100."""
    return fig5(machine, sweeps.fig5b_small_m(), "fig5b", 0, dtype, **kw)


def fig5c(machine: MachineConfig, dtype=np.float32, **kw) -> FigureResult:
    """Fig. 5(c): N swept 2..40, M=K=100."""
    return fig5(machine, sweeps.fig5c_small_n(), "fig5c", 1, dtype, **kw)


def fig5d(machine: MachineConfig, dtype=np.float32, **kw) -> FigureResult:
    """Fig. 5(d): K swept 2..40, M=N=100."""
    return fig5(machine, sweeps.fig5d_small_k(), "fig5d", 2, dtype, **kw)


# ---------------------------------------------------------------------------
# Figure 6: packing overhead breakdown (OpenBLAS)
# ---------------------------------------------------------------------------


def fig6(machine: MachineConfig, dtype=np.float32) -> FigureResult:
    """Packing share of total time for the three small-dimension sweeps,
    plus the analytic P2C prediction for the swept axis."""
    drv = make_openblas(machine, dtype=dtype)
    grids = sweeps.fig6_packing_sweeps()
    xs = [shape_axis for shape_axis in range(2, 41, 2)]
    series = []
    p2c_ys: Optional[List[float]] = None
    for name, shapes in grids.items():
        ys = []
        for (m, n, k) in shapes:
            timing = drv.cost_gemm(m, n, k)
            total = timing.total_cycles
            ys.append(timing.packing_cycles / total if total else 0.0)
        series.append(FigureSeries(name=name, ys=ys))
    # analytic P2C along the small-M sweep, rescaled to a share in [0, 1)
    p2c_ys = [p2c(m, 100) / (1.0 + p2c(m, 100))
              for (m, n, k) in grids["small-M"]]
    series.append(FigureSeries(name="p2c-model(small-M)", ys=p2c_ys))
    return FigureResult(
        figure_id="fig6",
        x_label="swept dimension",
        y_label="packing fraction of total time",
        xs=xs,
        series=series,
    )


# ---------------------------------------------------------------------------
# Figure 7: the OpenBLAS 8x4 edge micro-kernel under the scheduler
# ---------------------------------------------------------------------------


def fig7(machine: MachineConfig, dtype=np.float32) -> Dict[str, object]:
    """Schedule analysis of the naive 8x4 edge kernel vs an optimized one.

    Returns the assembly-style listings, the scheduled issue table of the
    naive kernel (the paper's 'two load units / short dependence distance'
    discussion), steady-state cycles/iteration and the analytic bounds.
    """
    lanes = machine.core.simd_lanes(dtype)
    gen = MicroKernelGenerator()
    naive = gen.generate(
        KernelSpec(8, 4, unroll=4, lanes=lanes, style="naive",
                   label="openblas-edge")
    )
    optimized = gen.generate(
        KernelSpec(8, 4, unroll=4, lanes=lanes, style="pipelined",
                   label="optimized")
    )
    analyzer = SteadyStateAnalyzer(machine.core)
    scheduler = OoOScheduler(machine.core)
    naive_state = analyzer.analyze(naive)
    opt_state = analyzer.analyze(optimized)
    schedule = scheduler.run(
        list(naive.prologue) + list(naive.body) * 2, record_ops=True
    )
    peak = machine.core.flops_per_cycle(dtype)

    # the OpenBLAS edge family: this is where the edge-case slowdown really
    # comes from on an out-of-order core (narrow tiles -> too few
    # accumulator chains to cover the FMA latency)
    edge_family = {}
    for mr in (8, 4, 2, 1):
        kernel = gen.generate(
            KernelSpec(mr, 4, unroll=4, lanes=lanes, style="naive",
                       label="openblas-edge")
        )
        state = analyzer.analyze(kernel)
        edge_family[f"{mr}x4"] = state.flops_per_cycle / peak

    # sensitivity: how small would the scheduling window have to be for the
    # Fig. 7 load placement to matter?
    from dataclasses import replace as _replace

    window_sensitivity = {}
    for window in (32, 16, 8, 6, 4):
        core_w = _replace(machine.core, scheduler_window=window)
        an_w = SteadyStateAnalyzer(core_w)
        s_naive = an_w.analyze(gen.generate(
            KernelSpec(8, 4, unroll=4, lanes=lanes, style="naive",
                       label=f"w{window}")))
        window_sensitivity[window] = s_naive.flops_per_cycle / peak

    return {
        "naive_listing": naive.listing(),
        "optimized_listing": optimized.listing(),
        "schedule_table": render_schedule(schedule, max_rows=48),
        "naive_cycles_per_kstep": naive_state.cycles_per_iter / naive.unroll,
        "optimized_cycles_per_kstep": opt_state.cycles_per_iter / optimized.unroll,
        "naive_efficiency": naive_state.flops_per_cycle / peak,
        "optimized_efficiency": opt_state.flops_per_cycle / peak,
        "naive_bounds": bound_analysis(naive, machine.core),
        "optimized_bounds": bound_analysis(optimized, machine.core),
        "edge_family_efficiency": edge_family,
        "window_sensitivity": window_sensitivity,
    }


# ---------------------------------------------------------------------------
# Figure 8: packing the N-edge sliver
# ---------------------------------------------------------------------------


def fig8(machine: MachineConfig, dtype=np.float32) -> FigureResult:
    """Reference SMM with and without edge-B packing on N % nr == 1 shapes.

    Forces the packed execution path: the Fig. 8 question — pack the tiny
    edge sliver, or read it discontiguously — only arises inside a packed
    implementation.
    """
    with_pack = ReferenceSmmDriver(machine, dtype=dtype, pack_edge_b=True,
                                   force_packing=True)
    without = ReferenceSmmDriver(machine, dtype=dtype, pack_edge_b=False,
                                 force_packing=True)
    nr = with_pack.jit.main_spec.nr
    xs = []
    ys_with = []
    ys_without = []
    for base in range(nr, 12 * nr + 1, nr):
        n = base + 1  # force an N edge of exactly 1
        m = k = 96
        xs.append(n)
        ys_with.append(
            _efficiency(with_pack.cost_gemm(m, n, k)[0], machine, dtype)
        )
        ys_without.append(
            _efficiency(without.cost_gemm(m, n, k)[0], machine, dtype)
        )
    return FigureResult(
        figure_id="fig8",
        x_label="N (N % nr == 1)",
        y_label="fraction of single-core peak",
        xs=xs,
        series=[
            FigureSeries(name="edge-packed", ys=ys_with),
            FigureSeries(name="edge-unpacked", ys=ys_without),
        ],
    )


# ---------------------------------------------------------------------------
# Figure 9: kernel-only efficiency (no packing)
# ---------------------------------------------------------------------------


def fig9(machine: MachineConfig, dtype=np.float32) -> Dict[str, FigureResult]:
    """OpenBLAS kernel efficiency over the M/N/K sweeps, packing excluded."""
    drv = make_openblas(machine, dtype=dtype)
    out: Dict[str, FigureResult] = {}
    for name, shapes in sweeps.fig9_kernel_sweeps().items():
        xs = []
        ys = []
        for i, (m, n, k) in enumerate(shapes):
            timing = drv.cost_gemm(m, n, k)
            xs.append({"sweep-M": m, "sweep-N": n, "sweep-K": k}[name])
            ys.append(timing.kernel_efficiency(machine, dtype))
        out[name] = FigureResult(
            figure_id=f"fig9-{name}",
            x_label=name.split("-")[1],
            y_label="kernel-only fraction of peak",
            xs=xs,
            series=[FigureSeries(name="openblas-kernel", ys=ys)],
        )
    return out


# ---------------------------------------------------------------------------
# Figure 10: 64-thread comparison
# ---------------------------------------------------------------------------


def fig10(
    machine: MachineConfig,
    threads: int = 64,
    dtype=np.float32,
    include_reference: bool = False,
) -> Dict[str, FigureResult]:
    """Multithreaded efficiency of OpenBLAS/BLIS/Eigen on irregular shapes."""
    out: Dict[str, FigureResult] = {}
    executors = {
        lib: MultithreadedGemm(machine, lib, threads=threads, dtype=dtype)
        for lib in MT_LIBRARIES
    }
    reference = (
        ReferenceSmmDriver(machine, dtype=dtype, threads=threads)
        if include_reference
        else None
    )
    for name, shapes in sweeps.fig10_mt_sweeps().items():
        axis = {"small-M": 0, "small-N": 1, "small-K": 2}[name]
        xs = [shape[axis] for shape in shapes]
        series = []
        for lib in MT_LIBRARIES:
            ys = []
            for (m, n, k) in shapes:
                timing, _ = executors[lib].cost(m, n, k)
                ys.append(_efficiency(timing, machine, dtype, threads))
            series.append(FigureSeries(name=lib, ys=ys))
        if reference is not None:
            ys = [
                _efficiency(reference.cost_gemm(m, n, k)[0], machine, dtype,
                            threads)
                for (m, n, k) in shapes
            ]
            series.append(FigureSeries(name="reference", ys=ys))
        out[name] = FigureResult(
            figure_id=f"fig10-{name}",
            x_label="MNK"[axis],
            y_label=f"fraction of {threads}-core peak",
            xs=xs,
            series=series,
        )
    return out


def fig10_heterogeneous(
    machine: Optional[MachineConfig] = None,
    threads: Optional[int] = None,
    dtype=np.float32,
    library: str = "openblas",
) -> FigureResult:
    """Weighted vs balanced M-partition on an asymmetric socket.

    The Fig. 10 small-M sweep re-run with the 1-D M-split scheme on a
    heterogeneous machine (default :func:`~repro.machine.phytium
    .big_little_like`), lowered twice: once with the legacy balanced
    split and once with throughput-weighted strips.  The ``speedup``
    series is even/weighted modeled cycles — above 1.0 exactly where
    unweighting lets the little class pace the kc-step barrier.
    """
    from ..machine.phytium import big_little_like

    machine = machine if machine is not None else big_little_like()
    threads = threads if threads is not None else machine.n_cores
    shapes = sweeps.fig10_mt_sweeps()["small-M"]
    xs = [m for (m, _, _) in shapes]
    cycles: Dict[str, List[float]] = {}
    for partition in ("even", "weighted"):
        mt = MultithreadedGemm(
            machine, library, threads=threads, dtype=dtype,
            partition=partition,
        )
        cycles[partition] = [
            mt.cost(m, n, k)[0].total_cycles for (m, n, k) in shapes
        ]
    speedups = [
        even / weighted
        for even, weighted in zip(cycles["even"], cycles["weighted"])
    ]
    return FigureResult(
        figure_id="fig10-het-partition",
        x_label="M",
        y_label="modeled cycles (even vs weighted) / speedup",
        xs=xs,
        series=[
            FigureSeries(name="even", ys=cycles["even"]),
            FigureSeries(name="weighted", ys=cycles["weighted"]),
            FigureSeries(name="speedup", ys=speedups),
        ],
    )


# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------


def table1() -> TableResult:
    """Table I: library kernel comparison."""
    rows = table1_rows()
    return TableResult(
        table_id="table1",
        headers=["", "OpenBLAS", "BLIS", "BLASFEO", "Eigen"],
        rows=rows,
    )


def table2(
    machine: MachineConfig, threads: int = 64, dtype=np.float32
) -> TableResult:
    """Table II: BLIS multithreaded breakdown over the M sweep."""
    mt = MultithreadedGemm(machine, "blis", threads=threads, dtype=dtype)
    rows = []
    for m in sweeps.table2_ms():
        timing, info = mt.cost(m, sweeps.MT_LARGE, sweeps.MT_LARGE)
        bp = timing.breakdown_percent()
        rows.append([
            m,
            round(bp["kernel"], 1),
            round(bp["pack_a"], 1),
            round(bp["pack_b"], 1),
            round(bp["sync"], 1),
            round(100.0 * timing.kernel_efficiency(machine, dtype, threads), 1),
        ])
    return TableResult(
        table_id="table2",
        headers=["M", "Kernel", "PackA", "PackB", "Sync", "Kernel effic"],
        rows=rows,
        notes={"threads": threads, "n": sweeps.MT_LARGE, "k": sweeps.MT_LARGE},
    )


# ---------------------------------------------------------------------------
# Section IV: reference SMM comparison (the paper's future work, built)
# ---------------------------------------------------------------------------


def reference_comparison(
    machine: MachineConfig, dtype=np.float32
) -> FigureResult:
    """Reference SMM vs the four libraries on the square sweep."""
    return fig5a(machine, dtype, include_reference=True)
