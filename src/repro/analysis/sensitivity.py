"""Machine-parameter sensitivity analysis.

Each performance effect in this reproduction is an explicit hardware
mechanism; sensitivity analysis is how we show the mechanisms *cause* the
shapes.  :func:`sweep_parameter` re-runs a metric while varying one machine
parameter (FMA latency, L1 size, DRAM bandwidth, scheduler window, ...),
producing the "would the paper's conclusion change on different silicon?"
curves used by the sensitivity benchmark.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, List, Sequence

import numpy as np

from ..machine.config import CacheConfig, MachineConfig
from ..util.errors import ConfigError
from .results import FigureResult, FigureSeries

#: parameter path -> function(machine, value) -> new machine
_MUTATORS: Dict[str, Callable[[MachineConfig, object], MachineConfig]] = {
    "core.fma_latency": lambda m, v: m.with_core(
        latencies={**m.core.latencies, "fma": int(v)}
    ),
    "core.load_latency": lambda m, v: m.with_core(
        latencies={**m.core.latencies, "load": int(v)}
    ),
    "core.dispatch_width": lambda m, v: m.with_core(dispatch_width=int(v)),
    "core.scheduler_window": lambda m, v: m.with_core(
        scheduler_window=int(v)
    ),
    "core.vector_registers": lambda m, v: m.with_core(
        vector_registers=int(v)
    ),
    "l1.size_bytes": lambda m, v: replace(
        m, l1d=_resize_cache(m.l1d, int(v))
    ),
    "numa.dram_bytes_per_cycle": lambda m, v: replace(
        m, numa=replace(m.numa, dram_bytes_per_cycle=float(v))
    ),
    "numa.barrier_stage_cycles": lambda m, v: replace(
        m, numa=replace(m.numa, barrier_stage_cycles=int(v))
    ),
}


def _resize_cache(cache: CacheConfig, size: int) -> CacheConfig:
    return replace(cache, size_bytes=size)


def mutable_parameters() -> List[str]:
    """Names accepted by :func:`sweep_parameter`."""
    return sorted(_MUTATORS)


def apply_parameter(
    machine: MachineConfig, parameter: str, value
) -> MachineConfig:
    """A copy of ``machine`` with one parameter replaced."""
    try:
        mutator = _MUTATORS[parameter]
    except KeyError as exc:
        raise ConfigError(
            f"unknown parameter {parameter!r}; choose from "
            f"{mutable_parameters()}"
        ) from exc
    return mutator(machine, value)


def sweep_parameter(
    machine: MachineConfig,
    parameter: str,
    values: Sequence,
    metric: Callable[[MachineConfig], Dict[str, float]],
    figure_id: str = "sensitivity",
) -> FigureResult:
    """Evaluate ``metric`` on machines varying in one parameter.

    ``metric`` maps a machine to named scalar outcomes (e.g. per-library
    efficiencies); each name becomes one series over ``values``.
    """
    if not values:
        raise ConfigError("values must be non-empty")
    series_data: Dict[str, List[float]] = {}
    for value in values:
        outcome = metric(apply_parameter(machine, parameter, value))
        for name, y in outcome.items():
            series_data.setdefault(name, []).append(float(y))
    return FigureResult(
        figure_id=figure_id,
        x_label=parameter,
        y_label="metric",
        xs=list(values),
        series=[FigureSeries(name=n, ys=ys)
                for n, ys in sorted(series_data.items())],
    )


def smm_efficiency_metric(
    size: int = 48, dtype=np.float32
) -> Callable[[MachineConfig], Dict[str, float]]:
    """Metric factory: per-library single-thread efficiency at one size."""
    def metric(machine: MachineConfig) -> Dict[str, float]:
        from ..blas import make_driver

        out = {}
        for lib in ("openblas", "blis", "blasfeo", "eigen"):
            drv = make_driver(lib, machine, dtype=dtype)
            out[lib] = drv.cost_gemm(size, size, size).efficiency(
                machine, dtype
            )
        return out

    return metric


def edge_kernel_metric(dtype=np.float32):
    """Metric factory: efficiency of a narrow 4x4 vector edge kernel.

    The 4x4 tile carries 4 accumulator chains; with one FMA pipe its
    steady-state efficiency is ``min(4 / fma_latency, 1)`` — the
    chain-starvation mechanism behind the paper's edge-kernel slowness,
    demonstrated by sweeping the FMA latency.
    """
    def metric(machine: MachineConfig) -> Dict[str, float]:
        from ..kernels import KernelSpec, MicroKernelGenerator
        from ..pipeline import SteadyStateAnalyzer

        gen = MicroKernelGenerator()
        analyzer = SteadyStateAnalyzer(machine.core)
        kernel = gen.generate(
            KernelSpec(4, 4, unroll=4, style="pipelined",
                       label=f"sens-{machine.core.latencies['fma']}")
        )
        state = analyzer.analyze(kernel)
        peak = machine.core.flops_per_cycle(dtype)
        return {"edge-4x4": state.flops_per_cycle / peak}

    return metric
