"""Result containers for reproduced figures and tables."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..util.errors import ReproError
from ..util.tables import format_figure, format_table


@dataclass
class FigureSeries:
    """One line of a figure."""

    name: str
    ys: List[float]


@dataclass
class FigureResult:
    """One reproduced figure: shared x axis, several named series."""

    figure_id: str
    x_label: str
    y_label: str
    xs: List[object]
    series: List[FigureSeries]
    notes: Dict[str, object] = field(default_factory=dict)

    def series_by_name(self, name: str) -> FigureSeries:
        """Lookup one series."""
        for s in self.series:
            if s.name == name:
                return s
        raise ReproError(
            f"{self.figure_id}: no series {name!r}; have "
            f"{[s.name for s in self.series]}"
        )

    def render(self) -> str:
        """Plain-text rendering (table + sparklines)."""
        return format_figure(
            f"{self.figure_id}  ({self.x_label})",
            self.xs,
            [(s.name, s.ys) for s in self.series],
            y_label=self.y_label,
        )

    def to_csv(self) -> str:
        """CSV export (x column plus one column per series) for plotting."""
        import csv
        import io

        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow([self.x_label] + [s.name for s in self.series])
        for i, x in enumerate(self.xs):
            writer.writerow([x] + [s.ys[i] for s in self.series])
        return buf.getvalue()


@dataclass
class TableResult:
    """One reproduced table."""

    table_id: str
    headers: List[str]
    rows: List[Sequence[object]]
    notes: Dict[str, object] = field(default_factory=dict)

    def render(self) -> str:
        """Plain-text rendering."""
        return format_table(self.headers, self.rows, title=self.table_id)

    def column(self, header: str) -> List[object]:
        """Extract one column by header name."""
        try:
            idx = self.headers.index(header)
        except ValueError as exc:
            raise ReproError(
                f"{self.table_id}: no column {header!r}; have {self.headers}"
            ) from exc
        return [row[idx] for row in self.rows]

    def to_csv(self) -> str:
        """CSV export for external processing."""
        import csv
        import io

        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(self.headers)
        writer.writerows(self.rows)
        return buf.getvalue()
