"""Markdown report generation: the whole reproduction in one document.

:func:`generate_report` runs every experiment and emits a self-contained
markdown report (figures as monospace blocks, tables as markdown tables,
plus the headline shape checks with pass/fail marks).  Used by the
``characterization_sweep`` example's ``--markdown`` mode and by tests that
pin the report structure.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..machine.config import MachineConfig, machine_summary
from . import experiments
from .results import FigureResult, TableResult


def _code_block(text: str) -> str:
    return "```\n" + text + "\n```"


def _markdown_table(table: TableResult) -> str:
    headers = [str(h) if h else " " for h in table.headers]
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in table.rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(lines)


def _check(label: str, ok: bool) -> str:
    return f"- {'✔' if ok else '✘'} {label}"


def _fig_section(title: str, fig: FigureResult, checks: List[str]) -> List[str]:
    out = [f"## {title}", "", _code_block(fig.render()), ""]
    if checks:
        out.extend(checks)
        out.append("")
    return out


def generate_report(machine: MachineConfig, dtype=np.float32) -> str:
    """Run the full battery and render one markdown report."""
    lines: List[str] = [
        "# SMM characterization report",
        "",
        "Machine under simulation:",
        "",
        _code_block(machine_summary(machine)),
        "",
        "## Table I — library kernels",
        "",
        _markdown_table(experiments.table1()),
        "",
    ]

    f5a = experiments.fig5a(machine, dtype)
    blasfeo = f5a.series_by_name("blasfeo").ys
    eigen = f5a.series_by_name("eigen").ys
    lines += _fig_section(
        "Figure 5(a) — single-thread square sweep", f5a,
        [
            _check("BLASFEO best-case above 90% of peak", max(blasfeo) > 0.9),
            _check("Eigen capped below 60%", max(eigen) < 0.6),
        ],
    )

    f6 = experiments.fig6(machine, dtype)
    lines += _fig_section(
        "Figure 6 — packing overhead", f6,
        [
            _check("worst-case packing share above 50%",
                   max(f6.series_by_name("small-M").ys) > 0.5),
            _check("small-K packing share below 20%",
                   max(f6.series_by_name("small-K").ys) < 0.2),
        ],
    )

    f7 = experiments.fig7(machine, dtype)
    fam = f7["edge_family_efficiency"]
    lines += [
        "## Figure 7 — the 8x4 edge micro-kernel",
        "",
        _code_block(f7["naive_listing"]),
        "",
        "Edge-family efficiency: "
        + ", ".join(f"{k}: {v:.0%}" for k, v in fam.items()),
        "",
        _check("edge family decays monotonically",
               fam["8x4"] > fam["4x4"] > fam["2x4"] > fam["1x4"]),
        "",
    ]

    f9 = experiments.fig9(machine, dtype)
    m_ys = f9["sweep-M"].series[0].ys
    lines += _fig_section(
        "Figure 9 — kernel-only efficiency (M sweep)", f9["sweep-M"],
        [_check("best kernel efficiency above 88%", max(m_ys) > 0.88)],
    )

    f10 = experiments.fig10(machine, dtype=dtype)
    small_m = f10["small-M"]
    blis = small_m.series_by_name("blis").ys
    ob = small_m.series_by_name("openblas").ys
    lines += _fig_section(
        "Figure 10 — 64 threads, small M", small_m,
        [
            _check("BLIS best at 64 threads",
                   sum(b > o for b, o in zip(blis, ob)) >= len(ob) - 2),
            _check("OpenBLAS collapses at tiny M", ob[0] < 0.1),
        ],
    )

    t2 = experiments.table2(machine, dtype=dtype)
    lines += [
        "## Table II — BLIS multithreaded breakdown",
        "",
        _markdown_table(t2),
        "",
        _check("PackB decays with M",
               t2.column("PackB")[0] > t2.column("PackB")[-1]),
        _check("kernel share grows with M",
               t2.column("Kernel")[0] < t2.column("Kernel")[-1]),
        "",
    ]

    ref = experiments.reference_comparison(machine, dtype)
    ref_ys = ref.series_by_name("reference").ys
    bf_ys = ref.series_by_name("blasfeo").ys
    lines += _fig_section(
        "Section IV — reference SMM", ref,
        [_check(
            "reference beats BLASFEO on the small-size average",
            float(np.mean(ref_ys[:20])) > float(np.mean(bf_ys[:20])),
        )],
    )

    return "\n".join(lines)
