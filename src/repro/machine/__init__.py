"""Machine models: configuration dataclasses and concrete instances."""

from .config import (
    PORT_CLASSES,
    CacheConfig,
    CoreClass,
    CoreConfig,
    MachineConfig,
    NumaConfig,
    dtype_itemsize,
    machine_summary,
)
from .phytium import (
    a64fx_like,
    big_little_like,
    graviton2_like,
    phytium2000plus,
    sve512_like,
)

__all__ = [
    "PORT_CLASSES",
    "CoreClass",
    "CoreConfig",
    "CacheConfig",
    "NumaConfig",
    "MachineConfig",
    "dtype_itemsize",
    "machine_summary",
    "phytium2000plus",
    "a64fx_like",
    "graviton2_like",
    "big_little_like",
    "sve512_like",
]
