"""Machine models: configuration dataclasses and concrete instances."""

from .config import (
    PORT_CLASSES,
    CacheConfig,
    CoreConfig,
    MachineConfig,
    NumaConfig,
    dtype_itemsize,
    machine_summary,
)
from .phytium import a64fx_like, graviton2_like, phytium2000plus

__all__ = [
    "PORT_CLASSES",
    "CoreConfig",
    "CacheConfig",
    "NumaConfig",
    "MachineConfig",
    "dtype_itemsize",
    "machine_summary",
    "phytium2000plus",
    "a64fx_like",
    "graviton2_like",
]
