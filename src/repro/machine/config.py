"""Machine-model configuration dataclasses.

The simulator is parameterized by a :class:`MachineConfig` describing one
many-core processor: per-core pipeline resources (:class:`CoreConfig`), the
cache hierarchy (:class:`CacheConfig` per level) and the NUMA topology
(:class:`NumaConfig`).  The Phytium 2000+ instance used throughout the paper
reproduction is built by :func:`repro.machine.phytium.phytium2000plus`; the
dataclasses themselves are architecture-neutral so other ARMv8 parts (e.g.
A64FX-like configurations) can be described for sensitivity studies.

Units: sizes in bytes, frequencies in Hz, latencies in core cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

import numpy as np

from ..util.errors import ConfigError
from ..util.validation import (
    check_positive_float,
    check_positive_int,
    check_power_of_two,
    require,
)

#: Functional-unit classes the pipeline scheduler knows about.  Each
#: instruction declares which port class it occupies for one cycle.
PORT_CLASSES = ("fma", "alu", "load", "store", "branch")


@dataclass(frozen=True)
class CoreConfig:
    """One superscalar out-of-order core.

    Models the resources the paper's analysis reasons about: dispatch width,
    re-order-buffer capacity, the number of execution ports per class, the
    SIMD register file, and instruction latencies.
    """

    name: str = "generic-armv8"
    freq_hz: float = 2.2e9
    dispatch_width: int = 4
    rob_entries: int = 160
    #: number of issue ports per functional-unit class
    ports: Dict[str, int] = field(
        default_factory=lambda: {"fma": 1, "alu": 2, "load": 2, "store": 1, "branch": 1}
    )
    #: result latency per instruction class (cycles, from issue to ready)
    latencies: Dict[str, int] = field(
        default_factory=lambda: {
            "fma": 5,
            "fmul": 5,
            "fadd": 4,
            "alu": 1,
            "load": 3,  # L1 hit latency
            "store": 1,
            "branch": 1,
            "dup": 3,
        }
    )
    vector_registers: int = 32
    vector_bits: int = 128
    scalar_registers: int = 31  # x0-x30
    #: out-of-order scheduling window: instruction i cannot issue before
    #: instruction i - window has issued (models the finite issue queues —
    #: the Xiaomi core has 16-entry Int and FP queues; 32 approximates the
    #: union of the four queues)
    scheduler_window: int = 32
    #: instruction-cache capacity in bytes; bounds kernel unrolling
    icache_bytes: int = 32 * 1024
    #: approximate encoded size of one instruction (A64 is fixed 4 bytes)
    instruction_bytes: int = 4

    def __post_init__(self) -> None:
        check_positive_float(self.freq_hz, "freq_hz")
        check_positive_int(self.dispatch_width, "dispatch_width")
        check_positive_int(self.rob_entries, "rob_entries")
        check_positive_int(self.scheduler_window, "scheduler_window")
        check_positive_int(self.vector_registers, "vector_registers")
        check_power_of_two(self.vector_bits, "vector_bits")
        require(self.vector_bits >= 64, f"vector_bits too small: {self.vector_bits}")
        for cls in PORT_CLASSES:
            require(
                cls in self.ports and self.ports[cls] >= 1,
                f"port class {cls!r} missing or non-positive in ports={self.ports}",
            )
        for name, lat in self.latencies.items():
            require(
                isinstance(lat, int) and lat >= 1,
                f"latency for {name!r} must be a positive int, got {lat!r}",
            )

    # -- derived quantities ------------------------------------------------

    def simd_lanes(self, dtype) -> int:
        """Number of elements of ``dtype`` per vector register."""
        itemsize = np.dtype(dtype).itemsize
        lanes = self.vector_bits // (8 * itemsize)
        if lanes < 1:
            raise ConfigError(
                f"dtype {np.dtype(dtype)} wider than the {self.vector_bits}-bit "
                "vector registers"
            )
        return lanes

    def flops_per_cycle(self, dtype) -> float:
        """Peak floating-point operations per cycle for ``dtype``.

        One fused multiply-add per lane counts as two flops; all ``fma``
        ports are assumed FMA-capable.
        """
        return 2.0 * self.simd_lanes(dtype) * self.ports["fma"]

    def peak_gflops(self, dtype) -> float:
        """Single-core peak in GFLOPS for ``dtype``."""
        return self.flops_per_cycle(dtype) * self.freq_hz / 1e9


@dataclass(frozen=True)
class CacheConfig:
    """One cache level.

    ``shared_by`` is the number of cores sharing one physical instance; the
    Phytium 2000+ L2 is shared by the four cores of a core-pair cluster and
    uses a non-LRU (pseudo-random) replacement policy, which the paper calls
    out as a source of multi-threaded kernel inefficiency.
    """

    name: str
    size_bytes: int
    line_bytes: int = 64
    associativity: int = 4
    shared_by: int = 1
    #: 'lru' or 'random'
    replacement: str = "lru"
    #: latency of a hit in this level, in core cycles
    hit_latency: int = 3
    #: write-allocate, write-back is assumed throughout

    def __post_init__(self) -> None:
        check_positive_int(self.size_bytes, "size_bytes")
        check_power_of_two(self.line_bytes, "line_bytes")
        check_positive_int(self.associativity, "associativity")
        check_positive_int(self.shared_by, "shared_by")
        check_positive_int(self.hit_latency, "hit_latency")
        require(
            self.replacement in ("lru", "random"),
            f"replacement must be 'lru' or 'random', got {self.replacement!r}",
        )
        n_sets, rem = divmod(self.size_bytes, self.line_bytes * self.associativity)
        require(
            rem == 0 and n_sets >= 1,
            f"cache {self.name}: size {self.size_bytes} not divisible into "
            f"{self.associativity}-way sets of {self.line_bytes}-byte lines",
        )
        require(
            n_sets & (n_sets - 1) == 0,
            f"cache {self.name}: set count {n_sets} must be a power of two",
        )

    @property
    def n_sets(self) -> int:
        """Number of sets."""
        return self.size_bytes // (self.line_bytes * self.associativity)


@dataclass(frozen=True)
class NumaConfig:
    """Panel/NUMA topology.

    Phytium 2000+ groups its 64 cores into eight panels; each panel owns a
    DDR4 channel through its memory controller.  An access served by a
    remote panel's controller pays ``remote_factor`` times the local DRAM
    latency (directory hop through the DCUs).
    """

    panels: int = 8
    cores_per_panel: int = 8
    local_dram_latency: int = 150
    remote_factor: float = 1.8
    #: cycles for one hop of a tree barrier stage (used by the sync model)
    barrier_stage_cycles: int = 450
    #: sustainable DRAM bandwidth of one panel's memory controller, in
    #: bytes per core cycle (DDR4-2400 single channel ~= 19.2 GB/s ~= 8.7
    #: B/cycle at 2.2 GHz)
    dram_bytes_per_cycle: float = 8.7

    def __post_init__(self) -> None:
        check_positive_int(self.panels, "panels")
        check_positive_int(self.cores_per_panel, "cores_per_panel")
        check_positive_int(self.local_dram_latency, "local_dram_latency")
        check_positive_float(self.remote_factor, "remote_factor")
        check_positive_int(self.barrier_stage_cycles, "barrier_stage_cycles")
        check_positive_float(self.dram_bytes_per_cycle, "dram_bytes_per_cycle")

    @property
    def total_cores(self) -> int:
        """Total core count across panels."""
        return self.panels * self.cores_per_panel

    def panel_of(self, core_id: int) -> int:
        """Panel index owning ``core_id``."""
        if not 0 <= core_id < self.total_cores:
            raise ConfigError(
                f"core_id {core_id} out of range [0, {self.total_cores})"
            )
        return core_id // self.cores_per_panel

    @property
    def remote_dram_latency(self) -> int:
        """Latency of a DRAM access served by a remote panel, in cycles."""
        return int(round(self.local_dram_latency * self.remote_factor))


@dataclass(frozen=True)
class CoreClass:
    """One homogeneous group of cores inside a (possibly asymmetric) socket.

    A big.LITTLE socket is a list of these: each class binds a
    :class:`CoreConfig` (pipeline resources, SIMD width, frequency), the
    number of cores of that class, and — when the classes differ in their
    private cache sizing — per-class L1D/L2 overrides.  ``None`` cache
    overrides mean "use the machine-level cache config".
    """

    core: CoreConfig
    count: int
    l1d: Optional[CacheConfig] = None
    l2: Optional[CacheConfig] = None

    def __post_init__(self) -> None:
        check_positive_int(self.count, "count")
        if self.l1d is not None:
            require(
                self.l1d.shared_by == 1,
                f"class {self.core.name!r}: L1D must be private "
                f"(shared_by=1), got {self.l1d.shared_by}",
            )

    @property
    def name(self) -> str:
        """The class name (its core model's name)."""
        return self.core.name

    def simd_lanes(self, dtype) -> int:
        """Elements of ``dtype`` per vector register of this class."""
        return self.core.simd_lanes(dtype)

    def flops_per_cycle(self, dtype) -> float:
        """Peak flops per cycle of one core of this class."""
        return self.core.flops_per_cycle(dtype)

    def peak_gflops(self, dtype) -> float:
        """Aggregate peak of the whole class in GFLOPS."""
        return self.core.peak_gflops(dtype) * self.count


@dataclass(frozen=True)
class MachineConfig:
    """A whole many-core processor: core model, caches, topology.

    ``core_classes`` is ``None`` for the homogeneous machines the paper
    studies (every core is ``core``); an asymmetric socket supplies a
    tuple of :class:`CoreClass` entries whose counts sum to the NUMA core
    count.  Class 0 is the *base* class and must equal ``core`` so every
    legacy single-core-model consumer keeps reading a coherent view.
    Core ids map to classes in consecutive blocks: class 0 owns ids
    ``[0, count_0)``, class 1 owns ``[count_0, count_0 + count_1)``, ...
    """

    core: CoreConfig
    l1d: CacheConfig
    l2: CacheConfig
    numa: NumaConfig
    name: str = "generic-manycore"
    core_classes: Optional[Tuple[CoreClass, ...]] = None

    def __post_init__(self) -> None:
        require(
            self.l1d.shared_by == 1,
            f"L1D must be private (shared_by=1), got {self.l1d.shared_by}",
        )
        require(
            self.numa.total_cores % self.l2.shared_by == 0,
            f"L2 sharing degree {self.l2.shared_by} must divide the core "
            f"count {self.numa.total_cores}",
        )
        if self.core_classes is not None:
            require(
                len(self.core_classes) >= 1,
                "core_classes must be None or a non-empty tuple",
            )
            total = sum(cls.count for cls in self.core_classes)
            require(
                total == self.numa.total_cores,
                f"core-class counts sum to {total}, expected the NUMA core "
                f"count {self.numa.total_cores}",
            )
            require(
                self.core_classes[0].core == self.core,
                "core_classes[0].core must equal the machine's base core "
                f"(class 0 is {self.core_classes[0].core.name!r}, base is "
                f"{self.core.name!r})",
            )

    def __repr__(self) -> str:
        # Hand-written to stay byte-identical to the dataclass-generated
        # repr for homogeneous machines: plan fingerprints and the tuning
        # cache key on repr(machine), and pre-class golden fingerprints
        # must not move.  ``core_classes`` appears only when set.
        base = (
            f"{self.__class__.__qualname__}(core={self.core!r}, "
            f"l1d={self.l1d!r}, l2={self.l2!r}, numa={self.numa!r}, "
            f"name={self.name!r}"
        )
        if self.core_classes is None:
            return base + ")"
        return base + f", core_classes={self.core_classes!r})"

    @property
    def n_cores(self) -> int:
        """Total number of cores."""
        return self.numa.total_cores

    @property
    def is_heterogeneous(self) -> bool:
        """Whether the socket has more than one core class."""
        return self.core_classes is not None and len(self.core_classes) > 1

    @property
    def classes(self) -> Tuple[CoreClass, ...]:
        """The core classes; homogeneous machines synthesize one class."""
        if self.core_classes is not None:
            return self.core_classes
        return (CoreClass(core=self.core, count=self.n_cores),)

    def core_class_of(self, core_id: int) -> int:
        """Class index owning ``core_id`` (consecutive id blocks)."""
        if not 0 <= core_id < self.n_cores:
            raise ConfigError(
                f"core_id {core_id} out of range [0, {self.n_cores})"
            )
        base = 0
        for idx, cls in enumerate(self.classes):
            base += cls.count
            if core_id < base:
                return idx
        raise ConfigError(  # pragma: no cover - counts validated in init
            f"core_id {core_id} not covered by core classes"
        )

    def class_l1d(self, class_idx: int) -> CacheConfig:
        """The private L1D config of class ``class_idx``."""
        cls = self.classes[class_idx]
        return cls.l1d if cls.l1d is not None else self.l1d

    def class_l2(self, class_idx: int) -> CacheConfig:
        """The L2 config serving class ``class_idx``."""
        cls = self.classes[class_idx]
        return cls.l2 if cls.l2 is not None else self.l2

    def class_machine(self, class_idx: int) -> "MachineConfig":
        """A homogeneous view of one class (for per-class cost models).

        The view binds the class's core and cache overrides and drops
        ``core_classes``, so the existing single-class kernel, cache and
        packing models price that class without modification.
        """
        cls = self.classes[class_idx]
        if self.core_classes is None:
            return self
        return replace(
            self,
            core=cls.core,
            l1d=cls.l1d if cls.l1d is not None else self.l1d,
            l2=cls.l2 if cls.l2 is not None else self.l2,
            core_classes=None,
        )

    def peak_gflops(self, dtype, n_cores: int = 1) -> float:
        """Aggregate peak for the first ``n_cores`` cores in GFLOPS.

        On a heterogeneous machine cores fill in core-id order, so the
        big class (by convention listed first) contributes before the
        little one; homogeneous machines keep the legacy product form
        bit-for-bit.
        """
        check_positive_int(n_cores, "n_cores")
        require(
            n_cores <= self.n_cores,
            f"n_cores {n_cores} exceeds machine core count {self.n_cores}",
        )
        if not self.is_heterogeneous:
            return self.core.peak_gflops(dtype) * n_cores
        total = 0.0
        remaining = n_cores
        for cls in self.classes:
            take = min(remaining, cls.count)
            total += cls.core.peak_gflops(dtype) * take
            remaining -= take
            if remaining == 0:
                break
        return total

    def l2_cluster_of(self, core_id: int) -> int:
        """Index of the L2 cluster (sharing group) owning ``core_id``."""
        if not 0 <= core_id < self.n_cores:
            raise ConfigError(f"core_id {core_id} out of range [0, {self.n_cores})")
        return core_id // self.l2.shared_by

    def with_core(self, **overrides) -> "MachineConfig":
        """Copy of this machine with core parameters replaced.

        On a heterogeneous machine the overrides apply to the base class
        (class 0) so the ``core == core_classes[0].core`` invariant holds.
        """
        new_core = replace(self.core, **overrides)
        if self.core_classes is None:
            return replace(self, core=new_core)
        new_classes = (replace(self.core_classes[0], core=new_core),) + tuple(
            self.core_classes[1:]
        )
        return replace(self, core=new_core, core_classes=new_classes)


def dtype_itemsize(dtype) -> int:
    """Byte width of a NumPy dtype (convenience for cost models)."""
    return int(np.dtype(dtype).itemsize)


def machine_summary(machine: MachineConfig) -> str:
    """A human-readable multi-line description of ``machine``."""
    core = machine.core
    n_clusters = machine.n_cores // machine.l2.shared_by
    lines = [
        f"machine {machine.name}",
        f"  cores: {machine.n_cores} @ {core.freq_hz / 1e9:.1f} GHz "
        f"({machine.numa.panels} panels x {machine.numa.cores_per_panel})",
        f"  numa: {machine.numa.panels} panels, "
        f"{n_clusters} L2 clusters of {machine.l2.shared_by} cores",
        f"  core: {core.dispatch_width}-wide dispatch, {core.rob_entries}-entry ROB, "
        f"ports={core.ports}",
        f"  simd: {core.vector_registers} x {core.vector_bits}-bit registers",
        f"  L1D: {machine.l1d.size_bytes // 1024} KiB, "
        f"{machine.l1d.associativity}-way {machine.l1d.replacement}",
        f"  L2:  {machine.l2.size_bytes // 1024} KiB, "
        f"{machine.l2.associativity}-way {machine.l2.replacement}, "
        f"shared by {machine.l2.shared_by}",
        f"  peak: {machine.peak_gflops(np.float32, machine.n_cores):.1f} GFLOPS fp32, "
        f"{machine.peak_gflops(np.float64, machine.n_cores):.1f} GFLOPS fp64",
    ]
    if machine.is_heterogeneous:
        lines.append(f"  classes: {len(machine.classes)}")
        for idx, cls in enumerate(machine.classes):
            l1d = machine.class_l1d(idx)
            l2 = machine.class_l2(idx)
            lines.append(
                f"    [{idx}] {cls.name}: {cls.count} cores @ "
                f"{cls.core.freq_hz / 1e9:.1f} GHz, "
                f"{cls.core.vector_bits}-bit SIMD, "
                f"L1D {l1d.size_bytes // 1024} KiB / "
                f"L2 {l2.size_bytes // 1024} KiB, "
                f"{cls.peak_gflops(np.float32):.1f} GFLOPS fp32"
            )
    return "\n".join(lines)
